#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs, in order:
#   1. go vet            (stdlib static checks)
#   2. gridlint          (syntactic tier, cmd/gridlint)
#   3. gridlint -typed   (type-aware tier: lock order, held-lock I/O,
#                         view lifetimes, dropped errors — checked
#                         against lint.baseline.json; new findings AND
#                         stale baseline entries both fail)
#   4. go build          (everything compiles)
#   5. go test           (unit + integration tests)
#   6. go test -race     (race-clean verification)
#   7. chaos suite       (seeded fault-injection scenarios, -race)
#   8. trace suite       (span collection under -race + end-to-end span tree)
#   9. telemetry suite   (instruments under -race, exposition golden, HTTP endpoints)
#  10. wire hot path     (codec benches with alloc counts + differential fuzz)
#  11. soak smoke        (benchrunner soak, short sustained-rate window with
#                         asserting thresholds: >=1M msgs/s, allocs/msg, p99)
#  12. flight overhead   (same soak with the flight recorder journaling
#                         every frame + exemplar histogram: must hold
#                         >=95% of the control run's throughput)
#  13. shard sweep       (16-writer ingest vs analyzer scans across shard
#                         counts and classifier partitions: the sharded
#                         store must sustain >=2x the 1-shard rate in
#                         the peak-contention cell)
#  14. topology suite   (spec parse/validate/deploy lifecycle + HTTP
#                         control plane + example equivalence, -race)
#  15. fuzz smoke        (5s per wire-facing fuzz target)
#
# Any failure stops the gate with a non-zero exit. Run it before every
# commit; CI should run exactly this script.
set -eu

cd "$(dirname "$0")"

step() {
	printf '== %s\n' "$*"
}

step "go vet ./..."
go vet ./...

step "gridlint ./..."
go run ./cmd/gridlint ./...

step "gridlint -typed (baseline: lint.baseline.json)"
go run ./cmd/gridlint -typed -baseline=lint.baseline.json ./...

step "go build ./..."
go build ./...

step "go test ./..."
go test ./...

step "go test -race ./..."
go test -race ./...

step "chaos scenarios (-race, fixed seeds)"
go test -race -count=1 ./internal/chaos/...

step "trace subsystem (-race, end-to-end span tree)"
go test -race -count=1 ./internal/trace/...
go test -race -count=1 -run TestTraceEndToEnd .

step "telemetry subsystem (-race, exposition golden + HTTP endpoints)"
go test -race -count=1 ./internal/telemetry/...
go test -race -count=1 -run TestHTTP ./internal/report/

step "wire hot path (codec benches + differential fuzz)"
go test -run='^$' -bench 'MarshalBinary|UnmarshalBinary|ReadFrameReuse' -benchmem -benchtime 100x ./internal/acl
go test -run='^$' -fuzz=FuzzCodecEquivalence -fuzztime=5s ./internal/acl
go test -run='^$' -fuzz=FuzzUnmarshalBinaryFrame -fuzztime=5s ./internal/acl
go test -run='^$' -fuzz=FuzzUnmarshalBinaryIntoEquivalence -fuzztime=5s ./internal/acl

step "soak smoke (2s sustained ingest, asserting >=1M msgs/s steady state)"
soak_control="$(mktemp)"
trap 'rm -f "$soak_control"' EXIT
go run ./cmd/benchrunner soak -duration=2s -warmup=1s -out "$soak_control"

step "flight overhead soak (recorder + exemplars on, >=95% of control throughput)"
go run ./cmd/benchrunner soak -flight -duration=2s -warmup=1s -baseline "$soak_control"

step "shard sweep (16-writer ingest vs analyzer scans, >=2x 1-shard rate)"
go run ./cmd/benchrunner shard -duration=500ms -warmup=200ms -assert-scaling=2 >/dev/null

step "topology suite (-race, spec lifecycle + control plane)"
go test -race -count=1 ./internal/topology/...
go test -race -count=1 -run 'TestDetachedServer|TestSetInterface' ./internal/report/

step "fuzz smoke (5s per target)"
go test -run='^$' -fuzz=FuzzDecodePDU -fuzztime=5s ./internal/snmp
go test -run='^$' -fuzz=FuzzParse -fuzztime=5s ./internal/rules
go test -run='^$' -fuzz=FuzzUnmarshalFrame -fuzztime=5s ./internal/acl
go test -run='^$' -fuzz=FuzzParseSpec -fuzztime=5s ./internal/topology

step "verify: OK"
