// The sustained ingest soak: a loopback-TCP pipeline driven at a target
// message rate for a configurable duration, asserting the steady state
// the zero-alloc decode path promises — throughput at or above target,
// bounded p99 latency, and (near-)zero allocations per message across
// the whole process. The numbers land in BENCH_soak.json and verify.sh
// runs a short smoke with asserting thresholds, so a regression on the
// hot ingest path fails the gate.
//
// Topology: N collector connections (pre-encoded ACL2 frame batches,
// written raw) feed one management-station transport endpoint whose
// serveConn drains frames through the per-connection scratch Message
// and FrameReader.ReadMessageInto — exactly the production ingest path.
// The first frame of every batch carries a send timestamp in its
// content; the station handler turns those into a latency histogram.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/flight"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/transport"
)

type soakConfig struct {
	rate         int           // target aggregate msgs/s offered by the senders
	duration     time.Duration // measured steady-state window
	warmup       time.Duration // ramp before measurement starts
	conns        int           // collector connections
	payload      int           // content bytes per message (>= 8 for the timestamp)
	batch        int           // frames per write
	out          string        // result JSON path ("" = stdout only)
	assertRate   float64       // fail below this achieved msgs/s (0 = no assert)
	assertP99    time.Duration // fail above this p99 latency (0 = no assert)
	assertAllocs float64       // fail above this allocs/msg (< 0 = no assert)
	flight       bool          // journal every frame + observe exemplars on ingest
	baseline     string        // baseline result JSON for the overhead ratio
	assertRatio  float64       // fail below this fraction of baseline rate (0 = no assert)
}

// soakResult is the BENCH_soak.json shape.
type soakResult struct {
	GoMaxProcs    int     `json:"gomaxprocs"`
	Conns         int     `json:"conns"`
	Batch         int     `json:"batch"`
	PayloadBytes  int     `json:"payload_bytes"`
	FrameBytes    int     `json:"frame_bytes"`
	TargetRate    int     `json:"target_msgs_per_sec"`
	WarmupSec     float64 `json:"warmup_sec"`
	MeasuredSec   float64 `json:"measured_sec"`
	Messages      uint64  `json:"messages"`
	AchievedRate  float64 `json:"achieved_msgs_per_sec"`
	AllocsPerMsg  float64 `json:"allocs_per_msg"`
	BytesPerMsg   float64 `json:"heap_bytes_per_msg"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	MaxLatencyUS  float64 `json:"max_latency_us"`
	LatencySample uint64  `json:"latency_samples"`

	// Flight-mode extras (BENCH_flight.json): the same soak with the
	// flight recorder journaling every inbound frame and the ingest
	// histogram retaining trace exemplars — the observability tax,
	// measured. RateRatio compares against the -baseline run.
	FlightEnabled     bool    `json:"flight_enabled,omitempty"`
	FlightEvents      uint64  `json:"flight_events,omitempty"`
	FlightOverwritten uint64  `json:"flight_overwritten,omitempty"`
	ExemplarTrace     string  `json:"exemplar_trace,omitempty"`
	BaselineRate      float64 `json:"baseline_msgs_per_sec,omitempty"`
	RateRatio         float64 `json:"rate_ratio_vs_baseline,omitempty"`
}

func soakMain(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	cfg := soakConfig{}
	fs.IntVar(&cfg.rate, "rate", 1_200_000, "target aggregate msgs/s offered")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured steady-state window")
	fs.DurationVar(&cfg.warmup, "warmup", 2*time.Second, "warmup before measurement")
	fs.IntVar(&cfg.conns, "conns", 2, "collector connections")
	fs.IntVar(&cfg.payload, "payload", 64, "content bytes per message (min 8)")
	fs.IntVar(&cfg.batch, "batch", 256, "frames per coalesced write")
	fs.StringVar(&cfg.out, "out", "", "write result JSON here (stdout always)")
	fs.Float64Var(&cfg.assertRate, "assert-rate", 1_000_000, "fail below this achieved msgs/s (0 disables)")
	fs.DurationVar(&cfg.assertP99, "assert-p99", 50*time.Millisecond, "fail above this p99 latency (0 disables)")
	fs.Float64Var(&cfg.assertAllocs, "assert-allocs", 0.5, "fail above this allocs/msg (negative disables)")
	fs.BoolVar(&cfg.flight, "flight", false, "enable the flight recorder + exemplar histogram on the ingest path")
	fs.StringVar(&cfg.baseline, "baseline", "", "baseline soak result JSON (e.g. BENCH_soak.json) to compute the overhead ratio against")
	fs.Float64Var(&cfg.assertRatio, "assert-ratio", 0.95, "fail below this fraction of baseline throughput (needs -baseline; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.payload < 8 {
		cfg.payload = 8
	}
	if cfg.conns < 1 {
		cfg.conns = 1
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	res, err := runSoak(&cfg)
	if err != nil {
		return err
	}
	if cfg.baseline != "" {
		if err := soakCompare(&cfg, res); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	fmt.Printf("%s", blob)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
			return err
		}
	}
	return soakAssert(&cfg, res)
}

func soakAssert(cfg *soakConfig, res *soakResult) error {
	var fails []string
	if cfg.assertRate > 0 && res.AchievedRate < cfg.assertRate {
		fails = append(fails, fmt.Sprintf("throughput %.0f msgs/s below floor %.0f", res.AchievedRate, cfg.assertRate))
	}
	if cfg.assertP99 > 0 && res.P99LatencyUS > float64(cfg.assertP99.Microseconds()) {
		fails = append(fails, fmt.Sprintf("p99 latency %.0fus above ceiling %s", res.P99LatencyUS, cfg.assertP99))
	}
	if cfg.assertAllocs >= 0 && res.AllocsPerMsg > cfg.assertAllocs {
		fails = append(fails, fmt.Sprintf("allocs/msg %.3f above ceiling %.3f", res.AllocsPerMsg, cfg.assertAllocs))
	}
	if res.FlightEnabled {
		// Flight mode without journaled frames means the recorder never
		// saw the ingest path — a wiring bug, not a fast run.
		if res.FlightEvents < res.Messages {
			fails = append(fails, fmt.Sprintf("flight journaled %d events for %d messages", res.FlightEvents, res.Messages))
		}
		if res.ExemplarTrace == "" {
			fails = append(fails, "ingest histogram retained no exemplar")
		}
	}
	if cfg.assertRatio > 0 && res.BaselineRate > 0 && res.RateRatio < cfg.assertRatio {
		fails = append(fails, fmt.Sprintf("throughput ratio %.3f of baseline %.0f msgs/s below floor %.2f",
			res.RateRatio, res.BaselineRate, cfg.assertRatio))
	}
	if len(fails) > 0 {
		return fmt.Errorf("soak gate failed: %v", fails)
	}
	fmt.Println("soak: OK")
	return nil
}

// soakCompare loads the baseline run (a prior soakResult JSON, e.g.
// BENCH_soak.json) and records this run's throughput as a fraction of
// it. The 5%-overhead gate for the flight recorder rides on this:
//
//	benchrunner soak -out BENCH_soak.json
//	benchrunner soak -flight -baseline BENCH_soak.json -out BENCH_flight.json
func soakCompare(cfg *soakConfig, res *soakResult) error {
	blob, err := os.ReadFile(cfg.baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base soakResult
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", cfg.baseline, err)
	}
	if base.AchievedRate <= 0 {
		return fmt.Errorf("baseline %s: no achieved rate", cfg.baseline)
	}
	res.BaselineRate = base.AchievedRate
	res.RateRatio = res.AchievedRate / base.AchievedRate
	return nil
}

func runSoak(cfg *soakConfig) (*soakResult, error) {
	epoch := time.Now() // latency reference; timestamps are nanos since epoch

	var received atomic.Uint64
	var sampling atomic.Bool
	hist := &latHist{}
	handler := func(m *acl.Message) {
		received.Add(1)
		if len(m.Content) >= 8 {
			if ts := binary.BigEndian.Uint64(m.Content); ts != 0 && sampling.Load() {
				hist.observe(time.Since(epoch) - time.Duration(ts))
			}
		}
	}

	// Flight mode swaps in an instrumented handler instead of branching
	// inside the baseline one, so the control run pays nothing. The
	// transport journals every inbound frame (WithTCPFlight) and the
	// handler observes every message into an exemplar-retaining
	// histogram — the message ordinal stands in for the trace ID a
	// production frame would carry, so the exemplar store cost is real.
	var rec *flight.Recorder
	var ingestHist *telemetry.Histogram
	var opts []transport.TCPOption
	if cfg.flight {
		rec = flight.New(flight.Options{})
		defer rec.Close()
		ingestHist = telemetry.NewRegistry("soak").
			Histogram("soak_ingest_seconds", "soak ingest latency with trace exemplars", nil)
		opts = append(opts, transport.WithTCPFlight(rec))
		handler = func(m *acl.Message) {
			n := received.Add(1)
			var lat time.Duration
			if len(m.Content) >= 8 {
				if ts := binary.BigEndian.Uint64(m.Content); ts != 0 {
					lat = time.Since(epoch) - time.Duration(ts)
					if sampling.Load() {
						hist.observe(lat)
					}
				}
			}
			ingestHist.ObserveTrace(lat, n)
		}
	}

	station, err := transport.ListenTCP("127.0.0.1:0", handler, opts...)
	if err != nil {
		return nil, fmt.Errorf("station listen: %w", err)
	}
	defer station.Close()

	frame, tsOff, err := soakFrame(cfg.payload)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	sendErrs := make(chan error, cfg.conns)
	perConn := cfg.rate / cfg.conns
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := soakSender(ctx, station.Addr(), frame, tsOff, perConn, cfg.batch, epoch); err != nil {
				select {
				case sendErrs <- err:
				default:
				}
			}
		}(i)
	}

	soakSleep(ctx, cfg.warmup)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	rx0 := received.Load()
	t0 := time.Now()
	sampling.Store(true)

	soakSleep(ctx, cfg.duration)
	sampling.Store(false)
	rx1 := received.Load()
	t1 := time.Now()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	cancel()
	wg.Wait()
	close(sendErrs)
	// A sender error during the run invalidates the numbers — except
	// the expected teardown error when cancel closed the socket under
	// it, which wg.Wait ordering already excludes (senders only return
	// write errors while ctx is live).
	if err := <-sendErrs; err != nil {
		return nil, fmt.Errorf("sender: %w", err)
	}

	msgs := rx1 - rx0
	elapsed := t1.Sub(t0)
	if msgs == 0 || elapsed <= 0 {
		return nil, fmt.Errorf("no traffic measured (got %d msgs in %s)", msgs, elapsed)
	}
	p50, p99, max, samples := hist.summary()
	res := &soakResult{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Conns:         cfg.conns,
		Batch:         cfg.batch,
		PayloadBytes:  cfg.payload,
		FrameBytes:    len(frame),
		TargetRate:    cfg.rate,
		WarmupSec:     cfg.warmup.Seconds(),
		MeasuredSec:   elapsed.Seconds(),
		Messages:      msgs,
		AchievedRate:  float64(msgs) / elapsed.Seconds(),
		AllocsPerMsg:  float64(m1.Mallocs-m0.Mallocs) / float64(msgs),
		BytesPerMsg:   float64(m1.TotalAlloc-m0.TotalAlloc) / float64(msgs),
		P50LatencyUS:  float64(p50.Microseconds()),
		P99LatencyUS:  float64(p99.Microseconds()),
		MaxLatencyUS:  float64(max.Microseconds()),
		LatencySample: samples,
	}
	if rec != nil {
		st := rec.Stats()
		res.FlightEnabled = true
		res.FlightEvents = st.Emitted
		res.FlightOverwritten = st.Overwritten
		// The deepest populated bucket's exemplar: the breadcrumb an
		// operator would chase for the slowest class of message.
		if exs := ingestHist.Snapshot().Exemplars; len(exs) > 0 {
			res.ExemplarTrace = exs[len(exs)-1].TraceID
		}
	}
	return res, nil
}

// soakFrame builds the template ACL2 frame a collector connection
// repeats, returning the offset of the 8-byte timestamp slot inside the
// content. Header strings are fixed per run, so the station's intern
// table absorbs them all during warmup.
func soakFrame(payload int) ([]byte, int, error) {
	content := make([]byte, payload)
	marker := [8]byte{0xfe, 0xed, 0xfa, 0xce, 0xca, 0xfe, 0xbe, 0xef}
	copy(content, marker[:])
	for i := 8; i < len(content); i++ {
		content[i] = byte('a' + i%23)
	}
	m := &acl.Message{
		Performative:   acl.Inform,
		Sender:         acl.NewAID("soak-collector", "site1", "tcp://127.0.0.1:0"),
		Receivers:      []acl.AID{acl.NewAID("station", "station")},
		Content:        content,
		Language:       "binary",
		Ontology:       acl.OntologyGridManagement,
		Protocol:       acl.ProtocolRequest,
		ConversationID: "soak-ingest",
	}
	frame, err := acl.AppendFrame(nil, m, acl.FormatBinary)
	if err != nil {
		return nil, 0, err
	}
	tsOff := bytes.Index(frame, marker[:])
	if tsOff < 0 {
		return nil, 0, fmt.Errorf("timestamp marker not found in encoded frame")
	}
	// Zero the slot: a zero timestamp means "unsampled" to the handler.
	clear(frame[tsOff : tsOff+8])
	return frame, tsOff, nil
}

// soakSender owns one collector connection: it writes pre-encoded
// batches at the target rate, stamping the first frame of each batch
// with the send time. The token budget is recomputed from wall clock,
// so a sleep overshoot is repaid by writing back-to-back batches.
func soakSender(ctx context.Context, addr string, frame []byte, tsOff, rate, batch int, epoch time.Time) error {
	// Transport addresses carry the scheme ("tcp://host:port"); the
	// raw dialer wants just host:port.
	conn, err := net.Dial("tcp", strings.TrimPrefix(addr, "tcp://"))
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := bytes.Repeat(frame, batch)
	start := time.Now()
	var sent uint64
	for {
		if ctx.Err() != nil {
			return nil
		}
		due := uint64(time.Since(start).Seconds() * float64(rate))
		if sent >= due {
			// Pacing, not synchronization: the rate loop above is the
			// control; the sleep only yields the core between batches.
			//gridlint:ignore sleepsync rate pacing between pre-paid batches
			time.Sleep(200 * time.Microsecond)
			continue
		}
		binary.BigEndian.PutUint64(buf[tsOff:], uint64(time.Since(epoch)))
		if _, err := conn.Write(buf); err != nil {
			if ctx.Err() != nil {
				return nil // teardown closed the run, not a failure
			}
			return err
		}
		sent += uint64(batch)
	}
}

// soakSleep waits d or until the run is cancelled.
func soakSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// latHist is a lock-free log2-bucketed latency histogram: observe files
// each sample under its duration's bit length, quantiles report the
// bucket's upper bound. Coarse (factor-of-two) but allocation-free and
// race-free from concurrent connection handlers.
type latHist struct {
	buckets [64]atomic.Uint64
}

func (h *latHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))].Add(1)
}

func (h *latHist) summary() (p50, p99, max time.Duration, total uint64) {
	var counts [64]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0, 0, 0, 0
	}
	quantile := func(q float64) time.Duration {
		target := uint64(q * float64(total))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				return bucketUpper(i)
			}
		}
		return bucketUpper(len(counts) - 1)
	}
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			max = bucketUpper(i)
			break
		}
	}
	return quantile(0.50), quantile(0.99), max, total
}

func bucketUpper(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << i)
}
