// Command benchrunner regenerates every table and figure of the paper's
// evaluation plus the extension studies indexed in DESIGN.md:
//
//	benchrunner -exp table1       # Table 1: relative task costs
//	benchrunner -exp fig6         # Figure 6 (a)(b)(c): three architectures
//	benchrunner -exp crossover    # X1: volume where the grid wins
//	benchrunner -exp scaling      # X2: capacity vs analysis hosts
//	benchrunner -exp balancers    # X3: placement strategy ablation
//	benchrunner -exp mobility     # X4: mobile agents vs shipping data
//	benchrunner -exp replication  # X5: replica failure and repair
//	benchrunner -exp clustering   # X6: division vs loss of meaning
//	benchrunner -exp pipeline     # live grid: end-to-end measurement
//	benchrunner -exp all
//
// and the sustained ingest soak (see soak.go):
//
//	benchrunner soak -rate 1200000 -duration 10s -out BENCH_soak.json
//
// and the store shard sweep (see shard.go):
//
//	benchrunner shard -duration 2s -out BENCH_shard.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/metrics"
	"agentgrid/internal/obs"
	"agentgrid/internal/sim"
	"agentgrid/internal/store"
	"agentgrid/internal/workload"
)

func main() {
	// Subcommand dispatch before legacy flag parsing: `benchrunner
	// soak` has its own flag set.
	if len(os.Args) > 1 && os.Args[1] == "soak" {
		if err := soakMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner soak:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		if err := shardMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner shard:", err)
			os.Exit(1)
		}
		return
	}
	exp := flag.String("exp", "all", "experiment id (table1|fig6|crossover|scaling|balancers|mobility|replication|clustering|pipeline|all)")
	flag.Parse()
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(exp string) error {
	experiments := map[string]func() error{
		"table1":      table1,
		"fig6":        fig6,
		"crossover":   crossover,
		"scaling":     scaling,
		"balancers":   balancers,
		"mobility":    mobility,
		"replication": replication,
		"clustering":  clustering,
		"pipeline":    pipeline,
	}
	if exp == "all" {
		for _, name := range []string{"table1", "fig6", "crossover", "scaling",
			"balancers", "mobility", "replication", "clustering", "pipeline"} {
			if err := experiments[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	f, ok := experiments[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return f()
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func table1() error {
	header("Table 1: relative times of management tasks")
	fmt.Print(metrics.NewCostModel().RenderTable())
	return nil
}

func fig6() error {
	header("Figure 6: compared performances of three architectures (10 requests of each type)")
	a, b, c := sim.Figure6(sim.DefaultParams())
	fmt.Println("(a) centralized management")
	fmt.Println(sim.FormatOutcome(a))
	fmt.Println("(b) multi-agent with 2 collectors")
	fmt.Println(sim.FormatOutcome(b))
	fmt.Println("(c) grid of agents (3 collectors, 1 storage, 2 inference hosts)")
	fmt.Println(sim.FormatOutcome(c))
	return nil
}

func crossover() error {
	header("X1: crossover — management epoch vs request volume")
	res := sim.Crossover(sim.DefaultParams(), []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64})
	fmt.Print(res.Format())
	return nil
}

func scaling() error {
	header("X2: processing capacity vs analysis hosts (volume 80 of each kind)")
	pts := sim.Scaling(sim.DefaultParams(), workload.Mix{A: 80, B: 80, C: 80}, []int{1, 2, 4, 8, 16})
	fmt.Print(sim.FormatScaling(pts))
	return nil
}

func balancers() error {
	header("X3: load-balancing strategy ablation (4 analyzers, volume 40)")
	pts := sim.BalancerAblation(sim.DefaultParams(), workload.Mix{A: 40, B: 40, C: 40}, 4, 42)
	fmt.Print(sim.FormatBalancers(pts))
	return nil
}

func mobility() error {
	header("X4: mobile analysis agents vs shipping data to analyzers")
	pts := sim.MobilityStudy(sim.DefaultParams(), 30, []int{1, 2, 4, 6, 8, 12, 16, 24, 32})
	fmt.Print(sim.FormatMobility(pts))
	return nil
}

func replication() error {
	header("X5: store replication — failure and repair")
	rs, err := store.NewReplicaSet(3, 1024)
	if err != nil {
		return err
	}
	const writes = 500
	for i := 0; i < writes; i++ {
		rs.Append(obs.Record{
			Site: "site1", Device: "h1", Metric: "cpu.util",
			Value: float64(i), Step: i + 1, Time: time.Unix(int64(i), 0),
		})
	}
	fmt.Printf("wrote %d observations to 3 replicas (live: %d)\n", writes, rs.LiveCount())

	rs.Fail(0)
	p, _, err := rs.Latest("site1/h1/cpu.util")
	if err != nil {
		return err
	}
	fmt.Printf("replica 0 failed; reads fail over transparently (latest = %.0f, live: %d)\n",
		p.Value, rs.LiveCount())

	const missed = 100
	for i := 0; i < missed; i++ {
		rs.Append(obs.Record{
			Site: "site1", Device: "h1", Metric: "cpu.util",
			Value: float64(writes + i), Step: writes + i + 1, Time: time.Unix(int64(writes+i), 0),
		})
	}
	if err := rs.Repair(0); err != nil {
		return err
	}
	rep, _ := rs.Replica(0)
	latest, _ := rep.Latest("site1/h1/cpu.util")
	fmt.Printf("replica 0 repaired from a healthy peer after missing %d writes (caught up to %.0f, live: %d)\n",
		missed, latest.Value, rs.LiveCount())
	return nil
}

func clustering() error {
	header("X6: data division vs loss of meaning (200 devices x 4 metrics)")
	pts := sim.ClusteringStudy(200, 4, 16, 1)
	fmt.Print(sim.FormatClustering(pts))
	fmt.Println("\nrandom-shard recall vs shard count (device-affinity is always 1.0):")
	fmt.Printf("%-8s %10s\n", "shards", "recall")
	for _, shards := range []int{1, 2, 4, 8, 16, 32} {
		for _, pt := range sim.ClusteringStudy(200, 4, shards, 1) {
			if pt.Strategy == "random-shard" {
				fmt.Printf("%-8d %10.3f\n", shards, pt.Recall)
			}
		}
	}
	fmt.Println("\nrecall = fraction of devices whose cross-metric correlations survive the division")
	return nil
}

// pipeline runs the real system — devices, SNMP, agents, rules — and
// measures end-to-end behaviour, complementing the cost simulation with
// live numbers.
func pipeline() error {
	header("Live pipeline: 30 hosts through the full grid")
	grid, err := core.NewGrid(core.Config{
		Site:       "site1",
		Collectors: 3,
		Analyzers:  2,
		Rules: `
rule "hot" level 1 category cpu severity critical {
    when latest(cpu.util) > 95 then alert "hot {device}"
}
rule "sustained" level 2 category cpu {
    when avg(cpu.util, 5) > 85 then alert "sustained {device}"
}
rule "site" level 3 category cpu severity critical {
    when count_above(cpu.util, 95) >= 3 then alert "site hot"
}`,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		return err
	}
	defer grid.Stop()

	spec := workload.FleetSpec{Site: "site1", Hosts: 30, Seed: 99}
	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		return err
	}
	defer fleet.Close()
	if err := grid.AddGoals(workload.Goals(spec, fleet, 1, time.Hour)[0]); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		fleet.Stations()[i].Device.InjectFault(device.FaultCPUPegged)
	}

	start := time.Now()
	const cycles = 5
	for i := 0; i < cycles; i++ {
		fleet.Advance(1)
		if err := grid.CollectNow(ctx); err != nil {
			return err
		}
	}
	if !grid.WaitIdle(30 * time.Second) {
		return fmt.Errorf("grid did not drain")
	}
	elapsed := time.Since(start)

	series, appends := grid.Store().Stats()
	stats := grid.Root().Stats()
	fmt.Printf("cycles: %d over %d hosts in %v\n", cycles, spec.Hosts, elapsed.Round(time.Millisecond))
	fmt.Printf("store: %d series, %d observations\n", series, appends)
	fmt.Printf("processor grid: %d notices, %d tasks, %d completed\n",
		stats.Notices, stats.Dispatched, stats.Completed)
	fmt.Printf("alerts: %d\n", len(grid.Alerts()))
	fmt.Println("\nper-analyzer distribution:")
	for i, w := range grid.Workers() {
		ws := w.Stats()
		fmt.Printf("  analyzer %d: %d tasks, %d alerts\n", i+1, ws.Tasks, ws.Alerts)
	}
	return nil
}
