// The shard sweep: concurrent ingest against the striped store under a
// mixed workload — 16 writer goroutines appending single-device batches
// flat out while analyzer-style readers loop full-store scans
// (SeriesForMetric + Keys) through the federation. This is the workload
// the single-mutex store collapses under: one reader holding the global
// RLock during a 100k-series scan stalls every writer, while the
// sharded store pins the scan to one stripe at a time and ingest keeps
// flowing on the other fifteen.
//
// The sweep crosses shard counts × classifier partitions × preloaded
// series sizes, lands in BENCH_shard.json, and verify.sh asserts the
// N-shard configuration sustains at least twice the 1-shard ingest rate
// at 16 writers in the peak-contention cell of the sweep.
//
//	benchrunner shard -duration 2s -out BENCH_shard.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"agentgrid/internal/obs"
	"agentgrid/internal/store"
)

// shardMetricsPerDevice fixes the series-per-device fanout; series
// targets divide by it to get the device population.
const shardMetricsPerDevice = 16

// shardMaxPoints bounds each ring so a 100k-series preload stays in the
// hundreds of megabytes instead of the default 4096-point gigabytes.
const shardMaxPoints = 64

type shardConfig struct {
	duration      time.Duration // measured window per cell
	warmup        time.Duration // ramp before measurement per cell
	writers       int           // concurrent ingest goroutines
	readers       int           // concurrent full-scan goroutines
	batch         int           // records per AppendBatch (one device each)
	out           string        // result JSON path ("" = stdout only)
	assertScaling float64       // fail below this sharded/1-shard ratio (0 = no assert)
}

// shardRun is one sweep cell.
type shardRun struct {
	Shards      int     `json:"shards"`
	Partitions  int     `json:"partitions"`
	Series      int     `json:"series"`
	MeasuredSec float64 `json:"measured_sec"`
	Records     uint64  `json:"records"`
	RecsPerSec  float64 `json:"recs_per_sec"`
	ReadScans   uint64  `json:"read_scans"`
}

// shardScaling summarizes one series size: the sharded and partitioned
// ingest rates as multiples of the single-mutex baseline.
type shardScaling struct {
	Series             int     `json:"series"`
	BaselineRate       float64 `json:"baseline_recs_per_sec"`    // 1 shard, 1 partition
	ShardedRate        float64 `json:"sharded_recs_per_sec"`     // N shards, 1 partition
	Speedup            float64 `json:"speedup"`                  // sharded / baseline
	PartitionedRate    float64 `json:"partitioned_recs_per_sec"` // N shards, 4 partitions
	PartitionedSpeedup float64 `json:"partitioned_speedup"`
}

// shardResult is the BENCH_shard.json shape. PeakSpeedup is the gate:
// the best sharded-vs-1-shard ingest ratio across series sizes — the
// cell where the single-mutex convoy actually bites. (On a 1-core box
// the largest population is CPU-bound by the reader's lock-free sort,
// so not every cell can show lock-contention scaling.)
type shardResult struct {
	GoMaxProcs  int            `json:"gomaxprocs"`
	Writers     int            `json:"writers"`
	Readers     int            `json:"readers"`
	Batch       int            `json:"batch"`
	MaxPoints   int            `json:"max_points"`
	Runs        []shardRun     `json:"runs"`
	Scaling     []shardScaling `json:"scaling"`
	PeakSpeedup float64        `json:"peak_speedup"`
	PeakSeries  int            `json:"peak_speedup_series"`
}

func shardMain(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	cfg := shardConfig{}
	fs.DurationVar(&cfg.duration, "duration", 2*time.Second, "measured window per sweep cell")
	fs.DurationVar(&cfg.warmup, "warmup", 300*time.Millisecond, "warmup before measurement per cell")
	fs.IntVar(&cfg.writers, "writers", 16, "concurrent writer goroutines")
	fs.IntVar(&cfg.readers, "readers", 2, "concurrent analyzer-scan goroutines")
	fs.IntVar(&cfg.batch, "batch", 8, "records per appended batch")
	fs.StringVar(&cfg.out, "out", "", "write result JSON here (stdout always)")
	fs.Float64Var(&cfg.assertScaling, "assert-scaling", 2.0, "fail below this sharded-vs-1-shard ingest ratio (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.writers < 1 {
		cfg.writers = 1
	}
	if cfg.readers < 0 {
		cfg.readers = 0
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}

	res := &shardResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Writers:    cfg.writers,
		Readers:    cfg.readers,
		Batch:      cfg.batch,
		MaxPoints:  shardMaxPoints,
	}
	type cell struct{ shards, partitions int }
	cells := []cell{{1, 1}, {1, 4}, {store.DefaultShards, 1}, {store.DefaultShards, 4}}
	for _, series := range []int{10_000, 100_000} {
		rates := map[cell]float64{}
		for _, c := range cells {
			run, err := runShardCell(&cfg, c.shards, c.partitions, series)
			if err != nil {
				return fmt.Errorf("shards=%d partitions=%d series=%d: %w",
					c.shards, c.partitions, series, err)
			}
			rates[c] = run.RecsPerSec
			res.Runs = append(res.Runs, *run)
			fmt.Fprintf(os.Stderr, "shard: shards=%-3d partitions=%d series=%-6d  %12.0f recs/s  (%d scans)\n",
				c.shards, c.partitions, series, run.RecsPerSec, run.ReadScans)
		}
		base := rates[cell{1, 1}]
		sharded := rates[cell{store.DefaultShards, 1}]
		parted := rates[cell{store.DefaultShards, 4}]
		sc := shardScaling{
			Series:          series,
			BaselineRate:    base,
			ShardedRate:     sharded,
			PartitionedRate: parted,
		}
		if base > 0 {
			sc.Speedup = sharded / base
			sc.PartitionedSpeedup = parted / base
		}
		res.Scaling = append(res.Scaling, sc)
		if sc.Speedup > res.PeakSpeedup {
			res.PeakSpeedup = sc.Speedup
			res.PeakSeries = series
		}
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	fmt.Printf("%s", blob)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
			return err
		}
	}
	return shardAssert(&cfg, res)
}

func shardAssert(cfg *shardConfig, res *shardResult) error {
	if cfg.assertScaling <= 0 {
		return nil
	}
	if res.PeakSpeedup < cfg.assertScaling {
		return fmt.Errorf(
			"shard gate failed: %d-shard ingest peaks at %.2fx the 1-shard rate under %d writers (floor %.2fx)",
			store.DefaultShards, res.PeakSpeedup, res.Writers, cfg.assertScaling)
	}
	fmt.Fprintf(os.Stderr, "shard: OK (%.1fx at %d series)\n", res.PeakSpeedup, res.PeakSeries)
	return nil
}

// runShardCell measures one sweep cell: preload the series population,
// then run writers+readers for warmup+duration and report the measured
// ingest rate.
func runShardCell(cfg *shardConfig, shards, partitions, seriesTarget int) (*shardRun, error) {
	devices := seriesTarget / shardMetricsPerDevice
	if devices < cfg.writers {
		devices = cfg.writers
	}
	parts := make([]*store.Store, partitions)
	for i := range parts {
		parts[i] = store.NewSharded(shardMaxPoints, shards)
	}
	fed := store.NewFederation(parts)

	const site = "bench"
	metrics := make([]string, shardMetricsPerDevice)
	for m := range metrics {
		metrics[m] = fmt.Sprintf("metric.m%02d", m)
	}
	// Preload every series and pin each device to its owning partition —
	// the same FNV mapping the collector router uses.
	names := make([]string, devices)
	owner := make([]*store.Store, devices)
	pre := &obs.Batch{Collector: "bench", Records: make([]obs.Record, shardMetricsPerDevice)}
	for d := 0; d < devices; d++ {
		names[d] = fmt.Sprintf("dev-%05d", d)
		owner[d] = parts[store.PartitionIndex(site, names[d], partitions)]
		for m, metric := range metrics {
			pre.Records[m] = obs.Record{Site: site, Device: names[d], Metric: metric, Value: 1}
		}
		if err := owner[d].AppendBatch(pre); err != nil {
			return nil, fmt.Errorf("preload %s: %w", names[d], err)
		}
	}

	var stop atomic.Bool
	var written atomic.Uint64
	var scans atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := &obs.Batch{Collector: "bench", Records: make([]obs.Record, cfg.batch)}
			step := 0
			for d := w; !stop.Load(); d += cfg.writers {
				if d >= devices {
					d = w
				}
				for i := range b.Records {
					b.Records[i] = obs.Record{
						Site: site, Device: names[d],
						Metric: metrics[(step+i)%len(metrics)],
						Value:  float64(step), Step: step,
					}
				}
				if err := owner[d].AppendBatch(b); err != nil {
					return
				}
				written.Add(uint64(cfg.batch))
				step++
			}
		}(w)
	}
	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The L3 analyzer's fleet scan: the metric index plus the
			// full key census, the federation reads grid-wide rules
			// open with. Their lock-held portions (index copy, key-set
			// snapshot) are what convoy with 16 writers on a
			// single-mutex store; sharded, each snapshot pins one
			// stripe at a time and ingest flows on the other fifteen.
			for !stop.Load() {
				_ = fed.SeriesForMetric(metrics[3])
				_ = fed.Keys()
				scans.Add(1)
			}
		}()
	}

	// Fixed wall-clock sampling windows, not synchronization: the
	// workers free-run and the counters are snapshotted at the window
	// edges.
	//gridlint:ignore sleepsync fixed warmup window before sampling
	time.Sleep(cfg.warmup)
	w0 := written.Load()
	s0 := scans.Load()
	t0 := time.Now()
	//gridlint:ignore sleepsync fixed measurement window
	time.Sleep(cfg.duration)
	w1 := written.Load()
	s1 := scans.Load()
	elapsed := time.Since(t0)
	stop.Store(true)
	wg.Wait()

	recs := w1 - w0
	if recs == 0 || elapsed <= 0 {
		return nil, fmt.Errorf("no ingest measured (%d recs in %s)", recs, elapsed)
	}
	return &shardRun{
		Shards:      shards,
		Partitions:  partitions,
		Series:      devices * shardMetricsPerDevice,
		MeasuredSec: elapsed.Seconds(),
		Records:     recs,
		RecsPerSec:  float64(recs) / elapsed.Seconds(),
		ReadScans:   s1 - s0,
	}, nil
}
