package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

const dirtySrc = `package p

import "time"

func wait() {
	time.Sleep(time.Second)
}
`

const cleanSrc = `package p

func ok() int { return 1 }
`

func TestRunFindsIssues(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	var out, errOut strings.Builder
	code := run([]string{dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[sleepsync]") {
		t.Errorf("missing diagnostic, got: %s", out.String())
	}
}

func TestRunCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", cleanSrc)
	var out, errOut strings.Builder
	if code := run([]string{dir + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s", code, out.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestRunDisable(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	var out, errOut strings.Builder
	if code := run([]string{"-disable", "sleepsync", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s", code, out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"aclperformative", "guardedfield", "goroutineleak", "unboundedsend", "sleepsync"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlagsAndAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-enable", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown analyzer exit = %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent-gridlint-dir"}, &out, &errOut); code != 2 {
		t.Errorf("missing dir exit = %d, want 2", code)
	}
}

// TestRepoIsLintClean is the enforcement test: the whole repository
// must stay free of gridlint diagnostics.
func TestRepoIsLintClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("gridlint on repo exited %d:\n%s", code, out.String())
	}
}

func TestRunFormatJSON(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	var out, errOut strings.Builder
	if code := run([]string{"-format", "json", dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Analyzer != "sleepsync" || diags[0].Line == 0 {
		t.Errorf("unexpected JSON diagnostics: %+v", diags)
	}
}

func TestRunFormatSARIF(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	var out, errOut strings.Builder
	if code := run([]string{"-format", "sarif", dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("invalid SARIF: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "gridlint" {
		t.Fatalf("bad SARIF envelope: %s", out.String())
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("no SARIF results")
	}
	res := log.Runs[0].Results[0]
	if res.RuleID != "sleepsync" || res.Level != "warning" ||
		len(res.Locations) != 1 || res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
		t.Errorf("bad SARIF result: %+v", res)
	}
	// Every analyzer of both tiers appears as a rule.
	ruleIDs := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"sleepsync", "lockorder", "heldlockio", "viewlifetime", "errdrop"} {
		if !ruleIDs[want] {
			t.Errorf("SARIF rules missing %s", want)
		}
	}
}

func TestRunBadFormat(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "xml"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if code := run([]string{"-write-baseline"}, &out, &errOut); code != 2 {
		t.Errorf("-write-baseline without -baseline exit = %d, want 2", code)
	}
}

// TestRunBaselineRatchet exercises the full drift contract: accepted
// findings pass, new findings fail, stale entries fail.
func TestRunBaselineRatchet(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	baseline := filepath.Join(dir, "baseline.json")

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", baseline, "-write-baseline", dir}, &out, &errOut); code != 0 {
		t.Fatalf("write-baseline exit = %d: %s", code, errOut.String())
	}

	// Accepted: same findings, baseline covers them.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, dir}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run exit = %d; out: %s", code, out.String())
	}

	// New finding on top of the baseline fails.
	writeFile(t, dir, "q.go", `package p

import "time"

func waitMore() {
	time.Sleep(time.Minute)
}
`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, dir}, &out, &errOut); code != 1 {
		t.Fatalf("new-finding exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "q.go") || strings.Contains(out.String(), "p.go:") {
		t.Errorf("want only the fresh q.go finding, got: %s", out.String())
	}

	// Fixing everything makes the baseline stale, which also fails.
	writeFile(t, dir, "p.go", cleanSrc)
	writeFile(t, dir, "q.go", "package p\n")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline, dir}, &out, &errOut); code != 1 {
		t.Fatalf("stale-entry exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "stale baseline entry") {
		t.Errorf("missing stale-entry report: %s", errOut.String())
	}
}

// TestRepoIsTypedLintClean mirrors the verify.sh lint-typed gate: both
// tiers over the whole module, checked against the committed baseline.
func TestRepoIsTypedLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check; skipped under -short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errOut strings.Builder
	code := run([]string{"-typed", "-baseline", "lint.baseline.json", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("gridlint -typed on repo exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}
