package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

const dirtySrc = `package p

import "time"

func wait() {
	time.Sleep(time.Second)
}
`

const cleanSrc = `package p

func ok() int { return 1 }
`

func TestRunFindsIssues(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	var out, errOut strings.Builder
	code := run([]string{dir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[sleepsync]") {
		t.Errorf("missing diagnostic, got: %s", out.String())
	}
}

func TestRunCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", cleanSrc)
	var out, errOut strings.Builder
	if code := run([]string{dir + "/..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s", code, out.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestRunDisable(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.go", dirtySrc)
	var out, errOut strings.Builder
	if code := run([]string{"-disable", "sleepsync", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s", code, out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"aclperformative", "guardedfield", "goroutineleak", "unboundedsend", "sleepsync"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlagsAndAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-enable", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown analyzer exit = %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"/nonexistent-gridlint-dir"}, &out, &errOut); code != 2 {
		t.Errorf("missing dir exit = %d, want 2", code)
	}
}

// TestRepoIsLintClean is the enforcement test: the whole repository
// must stay free of gridlint diagnostics.
func TestRepoIsLintClean(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("gridlint on repo exited %d:\n%s", code, out.String())
	}
}
