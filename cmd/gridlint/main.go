// Command gridlint is the agent grid's project-specific static
// analyzer. It enforces the concurrency and FIPA-protocol invariants
// the grid depends on, in two tiers.
//
// The syntactic tier (the default) parses one package at a time and
// checks local discipline: constants for ACL performatives, locking on
// guarded fields, cancellation paths in goroutine loops, bounded
// channel sends, channel-based (never sleep-based) synchronization,
// pooled-buffer reuse.
//
// The typed tier (-typed) type-checks the whole module with go/types,
// resolves every identifier and builds a callgraph, then checks global
// properties no single file can show: a cycle-free lock acquisition
// order across packages (lockorder), no blocking I/O or channel sends
// while holding a mutex (heldlockio), zero-copy views that escape
// their producer's reuse window (viewlifetime), and silently dropped
// errors on the wire path (errdrop).
//
// Usage:
//
//	gridlint [flags] [pattern ...]
//
// Patterns are directories; a trailing /... recurses. The default
// pattern is ./... (the whole module). The typed tier always loads the
// module containing the current directory, whatever the patterns.
// Exit status is 1 when any diagnostic (or baseline drift) is
// reported, 2 on usage or load errors.
//
// Flags:
//
//	-list             list analyzers and exit
//	-enable  a,b,...  run only the named analyzers (both tiers)
//	-disable a,b,...  skip the named analyzers (both tiers)
//	-typed            also run the type-aware tier over the module
//	-format f         output format: text (default), json, sarif
//	-baseline FILE    compare findings against a checked-in baseline;
//	                  new findings AND stale entries fail
//	-write-baseline   rewrite the -baseline file from current findings
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//gridlint:ignore <analyzer> <why this is safe>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"agentgrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	typed := fs.Bool("typed", false, "also run the type-aware tier (whole-module go/types analysis)")
	format := fs.String("format", "text", "output format: text, json, sarif")
	baselinePath := fs.String("baseline", "", "baseline file for the findings ratchet")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from current findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "gridlint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "gridlint: -write-baseline requires -baseline=FILE")
		return 2
	}

	analyzers, err := lint.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	typedAnalyzers := lint.SelectTyped(*enable, *disable)
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		for _, a := range typedAnalyzers {
			fmt.Fprintf(stdout, "%-16s %s (typed)\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := loadPattern(pat)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(pkgs, analyzers)
	if *typed {
		m, err := lint.LoadTypedModule(".")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = append(diags, lint.RunTyped(m, typedAnalyzers)...)
		lint.SortDiagnostics(diags)
	}

	if *writeBaseline {
		if err := lint.WriteBaseline(*baselinePath, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "gridlint: wrote %d entr%s to %s\n",
			len(diags), plural(len(diags), "y", "ies"), *baselinePath)
		return 0
	}

	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags, stale = lint.ApplyBaseline(b, diags)
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, diags, lint.AllRules()); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "gridlint: stale baseline entry (no longer reported): %s [%s] %s\n",
			e.File, e.Analyzer, e.Message)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "gridlint: %d issue(s), %d stale baseline entr%s\n",
			len(diags), len(stale), plural(len(stale), "y", "ies"))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// loadPattern resolves one command-line pattern: "dir/..." walks
// recursively, a bare directory loads just that package.
func loadPattern(pat string) ([]*lint.Package, error) {
	if dir, ok := strings.CutSuffix(pat, "/..."); ok {
		if dir == "" || dir == "." {
			dir = "."
		}
		return lint.Load(dir)
	}
	if pat == "..." {
		return lint.Load(".")
	}
	pkg, err := lint.LoadDir(pat)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, nil
	}
	return []*lint.Package{pkg}, nil
}
