// Command gridlint is the agent grid's project-specific static
// analyzer. It enforces the concurrency and FIPA-protocol invariants
// the grid depends on — constants for ACL performatives, locking
// discipline on guarded fields, cancellation paths in goroutine loops,
// bounded channel sends and channel-based (never sleep-based)
// synchronization.
//
// Usage:
//
//	gridlint [flags] [pattern ...]
//
// Patterns are directories; a trailing /... recurses. The default
// pattern is ./... (the whole module). Exit status is 1 when any
// diagnostic is reported, 2 on usage or load errors.
//
// Flags:
//
//	-list             list analyzers and exit
//	-enable  a,b,...  run only the named analyzers
//	-disable a,b,...  skip the named analyzers
//
// Suppress a single finding with a trailing or preceding comment:
//
//	//gridlint:ignore <analyzer> <why this is safe>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"agentgrid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := loadPattern(pat)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gridlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// loadPattern resolves one command-line pattern: "dir/..." walks
// recursively, a bare directory loads just that package.
func loadPattern(pat string) ([]*lint.Package, error) {
	if dir, ok := strings.CutSuffix(pat, "/..."); ok {
		if dir == "" || dir == "." {
			dir = "."
		}
		return lint.Load(dir)
	}
	if pat == "..." {
		return lint.Load(".")
	}
	pkg, err := lint.LoadDir(pat)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, nil
	}
	return []*lint.Package{pkg}, nil
}
