package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/report"
	"agentgrid/internal/store"
	"agentgrid/internal/telemetry"
)

func startMetricsBackend(t *testing.T) (addr string, reg *telemetry.Registry) {
	t.Helper()
	reg = telemetry.NewRegistry("agentgrid")
	st := store.New(16)
	a := agent.New(acl.NewAID("ig", "ig"),
		func(context.Context, *acl.Message) error { return nil })
	h := telemetry.NewHealth()
	h.Register("store", func() error { return nil })
	ig, err := report.New(a, report.Config{Store: st, Metrics: reg, Health: h})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := report.NewServer(ig, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr(), reg
}

func TestGridctlTop(t *testing.T) {
	addr, reg := startMetricsBackend(t)
	delivered := reg.Counter("platform_messages_delivered_total", "x", telemetry.Labels{"container": "cg-1"})
	reg.GaugeFunc("platform_load_ratio", "x", telemetry.Labels{"container": "cg-1"}, func() float64 { return 0.25 })
	delivered.Add(10)

	var buf bytes.Buffer
	cli := &http.Client{Timeout: 5 * time.Second}
	go func() {
		// Traffic between the two samples gives top a nonzero rate.
		time.Sleep(20 * time.Millisecond)
		delivered.Add(100)
	}()
	if err := top(&buf, cli, "http://"+addr, topOptions{Frames: 1, Interval: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CONTAINER", "dlvr/s", "cg-1", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("top output missing %q:\n%s", want, out)
		}
	}
}

func TestGridctlTopOnceJSON(t *testing.T) {
	addr, reg := startMetricsBackend(t)
	reg.Counter("platform_messages_delivered_total", "x", telemetry.Labels{"container": "cg-1"}).Add(42)
	reg.GaugeFunc("platform_load_ratio", "x", telemetry.Labels{"container": "cg-1"}, func() float64 { return 0.5 })

	var buf bytes.Buffer
	cli := &http.Client{Timeout: 5 * time.Second}
	if err := top(&buf, cli, "http://"+addr, topOptions{Once: true, JSON: true}); err != nil {
		t.Fatal(err)
	}
	var frame topFrame
	if err := json.Unmarshal(buf.Bytes(), &frame); err != nil {
		t.Fatalf("one-shot output is not one JSON document: %v\n%s", err, buf.String())
	}
	if frame.IntervalSeconds != 0 {
		t.Fatalf("once frame interval = %v, want 0 (totals mode)", frame.IntervalSeconds)
	}
	var cg *topRow
	for i := range frame.Containers {
		if frame.Containers[i].Container == "cg-1" {
			cg = &frame.Containers[i]
		}
	}
	if cg == nil {
		t.Fatalf("frame missing cg-1: %+v", frame)
	}
	if cg.Load != 0.5 || cg.Values["delivered"] != 42 {
		t.Fatalf("cg-1 row = %+v, want load 0.5 delivered 42", *cg)
	}
}

// A grid exporting per-stripe store gauges gets the shard-balance line
// (and the JSON frames the structured summary).
func TestGridctlTopShardBalance(t *testing.T) {
	addr, reg := startMetricsBackend(t)
	reg.GaugeFunc("platform_load_ratio", "x", telemetry.Labels{"container": "clg-1"}, func() float64 { return 0.1 })
	for p := 0; p < 2; p++ {
		for s := 0; s < 4; s++ {
			v := float64(10 + p + s*2) // fullest stripe: p=1 s=3 -> 17
			reg.GaugeFunc("store_shard_series_count", "x",
				telemetry.Labels{"partition": string(rune('0' + p)), "shard": string(rune('0' + s))},
				func() float64 { return v })
		}
	}

	var buf bytes.Buffer
	cli := &http.Client{Timeout: 5 * time.Second}
	if err := top(&buf, cli, "http://"+addr, topOptions{Once: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shards 4 stripes x 2 partitions") {
		t.Fatalf("top output missing shard-balance line:\n%s", out)
	}

	buf.Reset()
	if err := top(&buf, cli, "http://"+addr, topOptions{Once: true, JSON: true}); err != nil {
		t.Fatal(err)
	}
	var frame topFrame
	if err := json.Unmarshal(buf.Bytes(), &frame); err != nil {
		t.Fatal(err)
	}
	b := frame.ShardBalance
	if b == nil {
		t.Fatalf("frame has no shard balance: %s", buf.String())
	}
	if b.Partitions != 2 || b.Shards != 4 || b.Min != 10 || b.Max != 17 {
		t.Fatalf("shard balance = %+v", *b)
	}
	if b.Mean <= 0 || b.Skew != b.Max/b.Mean {
		t.Fatalf("shard balance skew = %+v", *b)
	}
}

func TestGridctlMetricsAndReady(t *testing.T) {
	addr, reg := startMetricsBackend(t)
	reg.Counter("demo_things_total", "x", nil).Inc()
	for _, args := range [][]string{{"metrics"}, {"ready"}, {"health"}, {"top", "-n", "1", "-interval", "10ms"}} {
		if err := run(addr, 5*time.Second, args); err != nil {
			t.Errorf("gridctl %v: %v", args, err)
		}
	}
	if err := run(addr, 5*time.Second, []string{"top", "-interval", "0s"}); err == nil {
		t.Error("top with zero interval should fail")
	}
}
