// Command gridctl is the operator's client for a running grid's HTTP
// frontend:
//
//	gridctl -grid 127.0.0.1:8080 site site1            # text report
//	gridctl -grid 127.0.0.1:8080 site site1 html       # HTML report
//	gridctl -grid 127.0.0.1:8080 device site1 host-01  # one device, JSON
//	gridctl -grid 127.0.0.1:8080 alerts [min-severity] # alert history
//	gridctl -grid 127.0.0.1:8080 learn rules.dsl       # teach rules
//	gridctl -grid 127.0.0.1:8080 goals goals.txt       # add goals
//	gridctl -grid 127.0.0.1:8080 stats
//	gridctl -grid 127.0.0.1:8080 health
//	gridctl -grid 127.0.0.1:8080 ready                 # readiness + per-check detail
//	gridctl -grid 127.0.0.1:8080 metrics               # Prometheus text exposition
//	gridctl -grid 127.0.0.1:8080 top -interval 2s      # live per-container rates
//	gridctl -grid 127.0.0.1:8080 top -json -once       # one machine-readable sample
//	gridctl -grid 127.0.0.1:8080 trace <trace-id|conversation-id> [json]
//	gridctl -grid 127.0.0.1:8080 flight [json|dump <seq>|trigger [reason]]
//	gridctl -grid 127.0.0.1:8080 profile [kind] [seconds] [out.pprof]
//
// Topology lifecycle (against agentgridd -spec, or any server with a
// topology control plane attached):
//
//	gridctl -grid 127.0.0.1:8080 deploy grid.topo      # deploy a spec
//	gridctl -grid 127.0.0.1:8080 status [json|html]    # census (text default)
//	gridctl -grid 127.0.0.1:8080 destroy               # ordered teardown
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

func main() {
	grid := flag.String("grid", "127.0.0.1:8080", "grid HTTP address")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Parse()
	if err := run(*grid, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "gridctl:", err)
		os.Exit(1)
	}
}

func run(grid string, timeout time.Duration, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gridctl [flags] deploy|status|destroy|site|device|alerts|learn|goals|stats|health|ready|metrics|top|trace ...")
	}
	cli := &http.Client{Timeout: timeout}
	base := "http://" + grid
	switch args[0] {
	case "site":
		if len(args) < 2 {
			return fmt.Errorf("usage: gridctl site <site> [text|html|xml|json]")
		}
		format := "text"
		if len(args) >= 3 {
			format = args[2]
		}
		return get(cli, fmt.Sprintf("%s/site/%s?format=%s",
			base, url.PathEscape(args[1]), url.QueryEscape(format)))
	case "device":
		if len(args) < 3 {
			return fmt.Errorf("usage: gridctl device <site> <device>")
		}
		return get(cli, fmt.Sprintf("%s/device/%s/%s",
			base, url.PathEscape(args[1]), url.PathEscape(args[2])))
	case "alerts":
		u := base + "/alerts"
		if len(args) >= 2 {
			u += "?min=" + url.QueryEscape(args[1])
		}
		return get(cli, u)
	case "learn":
		if len(args) < 2 {
			return fmt.Errorf("usage: gridctl learn <rules.dsl>")
		}
		return postFile(cli, base+"/rules", args[1])
	case "goals":
		if len(args) < 2 {
			return fmt.Errorf("usage: gridctl goals <goals.txt>")
		}
		return postFile(cli, base+"/goals", args[1])
	case "deploy":
		if len(args) < 2 {
			return fmt.Errorf("usage: gridctl deploy <spec.topo>")
		}
		return postFile(cli, base+"/topology?format=text", args[1])
	case "status":
		format := "text"
		if len(args) >= 2 {
			format = args[1]
		}
		return get(cli, base+"/topology?format="+url.QueryEscape(format))
	case "destroy":
		return del(cli, base+"/topology")
	case "stats":
		return get(cli, base+"/stats")
	case "health":
		return get(cli, base+"/healthz")
	case "ready":
		return get(cli, base+"/readyz")
	case "metrics":
		return get(cli, base+"/metrics")
	case "top":
		return runTop(grid, timeout, args[1:])
	case "trace":
		if len(args) < 2 {
			return fmt.Errorf("usage: gridctl trace <trace-id|conversation-id> [json]")
		}
		u := base + "/trace/" + url.PathEscape(args[1])
		if len(args) >= 3 && args[2] == "json" {
			u += "?format=json"
		}
		return get(cli, u)
	case "flight":
		return runFlight(cli, base, args[1:])
	case "profile":
		return runProfile(cli, base, timeout, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func get(cli *http.Client, u string) error {
	resp, err := cli.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	if !strings.HasSuffix(string(body), "\n") {
		fmt.Println()
	}
	return nil
}

func del(cli *http.Client, u string) error {
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := cli.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	if !strings.HasSuffix(string(body), "\n") {
		fmt.Println()
	}
	return nil
}

func postFile(cli *http.Client, u, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	resp, err := cli.Post(u, "text/plain", strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	return nil
}
