package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/flight"
	"agentgrid/internal/obs"
	"agentgrid/internal/report"
	"agentgrid/internal/rules"
	"agentgrid/internal/store"
	"agentgrid/internal/trace"
)

// startBackend serves a minimal interface grid for the CLI to talk to.
// It returns the server address and the ID of one stored trace.
func startBackend(t *testing.T) (addr, traceID string) {
	t.Helper()
	st := store.New(16)
	st.Append(obs.Record{Site: "site1", Device: "h1", Metric: "cpu.util",
		Value: 42, Step: 1, Time: time.Unix(1, 0)})
	a := agent.New(acl.NewAID("ig", "site1"),
		func(context.Context, *acl.Message) error { return nil })
	tr := trace.New(trace.Options{})
	root := tr.StartRoot("collect.poll")
	root.SetConversation("conv-1")
	root.Child("collect.ship").End()
	root.End()
	tr.Flush()
	rec := flight.New(flight.Options{})
	t.Cleanup(rec.Close)
	rec.Emit("collect.poll", flight.Event{Container: "cg-1", Conversation: "conv-1"})
	ig, err := report.New(a, report.Config{
		Store:  st,
		Rules:  ruleSink{},
		Goals:  func(context.Context, string) error { return nil },
		Tracer: tr,
		Flight: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ig.AddAlerts([]rules.Alert{{Rule: "r", Site: "site1", Message: "m"}})
	srv, err := report.NewServer(ig, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr(), root.Context().TraceID
}

type ruleSink struct{}

func (ruleSink) AddSource(string) ([]string, error) { return []string{"r1"}, nil }

func TestGridctlCommands(t *testing.T) {
	addr, traceID := startBackend(t)
	dir := t.TempDir()
	rulesFile := filepath.Join(dir, "r.dsl")
	os.WriteFile(rulesFile, []byte(`rule "x" { when latest(m) > 1 then alert "m" }`), 0o644)
	goalsFile := filepath.Join(dir, "g.txt")
	os.WriteFile(goalsFile, []byte("goal g site1 h1 host - 5s\n"), 0o644)

	ok := [][]string{
		{"health"},
		{"stats"},
		{"site", "site1"},
		{"site", "site1", "json"},
		{"device", "site1", "h1"},
		{"alerts"},
		{"alerts", "critical"},
		{"learn", rulesFile},
		{"goals", goalsFile},
		{"trace", traceID},
		{"trace", traceID, "json"},
		{"trace", "conv-1"},
		{"flight"},
		{"flight", "json"},
		{"flight", "trigger", "test", "reason"},
		{"flight", "dump", "1"},
		{"flight", "dump", "1", "json"},
		{"profile", "goroutine", "-"},
		{"profile", "heap", filepath.Join(dir, "heap.pprof")},
	}
	for _, args := range ok {
		if err := run(addr, 5*time.Second, args); err != nil {
			t.Errorf("gridctl %v: %v", args, err)
		}
	}

	bad := [][]string{
		nil,                          // usage
		{"site"},                     // missing site
		{"device", "site1"},          // missing device
		{"learn"},                    // missing file
		{"goals"},                    // missing file
		{"learn", "/no/such/file"},   // unreadable
		{"juggle"},                   // unknown command
		{"site", "nowhere"},          // 404
		{"device", "site1", "ghost"}, // 404
		{"trace"},                    // missing id
		{"trace", "no-such-trace"},   // 404
		{"flight", "dump"},           // missing sequence
		{"flight", "dump", "x"},      // non-numeric sequence
		{"flight", "dump", "99"},     // no such dump
		{"flight", "juggle"},         // unknown subcommand
	}
	for _, args := range bad {
		if err := run(addr, 5*time.Second, args); err == nil {
			t.Errorf("gridctl %v should fail", args)
		}
	}
}
