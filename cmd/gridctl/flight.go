package main

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

// runFlight implements `gridctl flight`, the operator's view of the
// grid's always-on flight recorder:
//
//	gridctl flight                   stats + recent events (text)
//	gridctl flight json              same, machine-readable
//	gridctl flight dump 3            one retained dump
//	gridctl flight dump 3 json      ... as JSON
//	gridctl flight trigger [reason]  snapshot the ring now
//
// A trace= field in the output feeds straight into `gridctl trace`.
func runFlight(cli *http.Client, base string, args []string) error {
	u := base + "/debug/flight"
	if len(args) == 0 {
		return get(cli, u)
	}
	switch args[0] {
	case "json":
		return get(cli, u+"?format=json")
	case "dump":
		if len(args) < 2 {
			return fmt.Errorf("usage: gridctl flight dump <seq> [json]")
		}
		if _, err := strconv.ParseUint(args[1], 10, 64); err != nil {
			return fmt.Errorf("flight: bad dump sequence %q", args[1])
		}
		q := u + "?dump=" + url.QueryEscape(args[1])
		if len(args) >= 3 && args[2] == "json" {
			q += "&format=json"
		}
		return get(cli, q)
	case "trigger":
		reason := "manual: gridctl"
		if len(args) >= 2 {
			reason = strings.Join(args[1:], " ")
		}
		resp, err := cli.Post(u+"?reason="+url.QueryEscape(reason), "", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		fmt.Print(string(body))
		if !strings.HasSuffix(string(body), "\n") {
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("usage: gridctl flight [json|dump <seq> [json]|trigger [reason]]")
	}
}

// runProfile implements `gridctl profile`: an on-demand pprof capture
// from the grid's /debug/profile endpoint.
//
//	gridctl profile                  5s CPU profile -> cpu.pprof
//	gridctl profile mutex 10         10s mutex profile -> mutex.pprof
//	gridctl profile heap my.pprof    heap snapshot -> my.pprof
//	gridctl profile goroutine -      goroutine dump (debug text) -> stdout
//
// Sampling kinds (cpu, mutex, block) take a window in seconds; the
// snapshot kinds return immediately. An out path of "-" streams the
// debug=1 text rendering to stdout instead of saving a binary profile.
func runProfile(cli *http.Client, base string, timeout time.Duration, args []string) error {
	kind := "cpu"
	if len(args) >= 1 {
		kind = args[0]
	}
	seconds := 5
	out := kind + ".pprof"
	rest := args
	if len(rest) >= 1 {
		rest = rest[1:]
	}
	for _, a := range rest {
		if n, err := strconv.Atoi(a); err == nil {
			seconds = n
			continue
		}
		out = a
	}
	u := fmt.Sprintf("%s/debug/profile?kind=%s&seconds=%d", base, url.QueryEscape(kind), seconds)
	if out == "-" {
		return get(cli, u+"&debug=1")
	}
	// The capture window can exceed the caller's default timeout; give
	// the request room for the window plus overhead.
	window := time.Duration(seconds)*time.Second + 10*time.Second
	if window > timeout {
		cli = &http.Client{Timeout: window}
	}
	resp, err := cli.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s profile (%d bytes) to %s\n", kind, n, out)
	return nil
}
