package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"agentgrid/internal/telemetry"
)

// runTop implements `gridctl top`: a live ASCII dashboard of per-
// container throughput. It polls the grid's /metrics.json snapshot and
// computes rates client-side from consecutive samples, so the server
// stays a dumb exporter.
func runTop(grid string, timeout time.Duration, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	frames := fs.Int("n", 0, "frames to render before exiting (0 = run until interrupted)")
	interval := fs.Duration("interval", 2*time.Second, "sampling interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("top: interval must be positive")
	}
	cli := &http.Client{Timeout: timeout}
	return top(os.Stdout, cli, "http://"+grid, *frames, *interval)
}

func top(w io.Writer, cli *http.Client, base string, frames int, interval time.Duration) error {
	prev, err := fetchSnapshot(cli, base)
	if err != nil {
		return err
	}
	prevAt := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; frames <= 0 || i < frames; i++ {
		<-tick.C
		cur, err := fetchSnapshot(cli, base)
		if err != nil {
			return err
		}
		at := time.Now()
		renderTop(w, prev, cur, at.Sub(prevAt))
		prev, prevAt = cur, at
	}
	return nil
}

func fetchSnapshot(cli *http.Client, base string) (*telemetry.Snapshot, error) {
	resp, err := cli.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, string(body))
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("top: decode snapshot: %w", err)
	}
	return &snap, nil
}

// qualified returns a metric's fully qualified snapshot name — the
// registry prefixes every family with its namespace.
func qualified(snap *telemetry.Snapshot, metric string) string {
	if snap.Namespace == "" {
		return metric
	}
	return snap.Namespace + "_" + metric
}

// byContainer sums a metric's series per container label. Histograms
// contribute their observation count, so rates read as events/s.
func byContainer(snap *telemetry.Snapshot, metric string) map[string]float64 {
	out := make(map[string]float64)
	name := qualified(snap, metric)
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
		for _, s := range m.Series {
			c := s.Labels["container"]
			if c == "" {
				continue
			}
			if s.Hist != nil {
				out[c] += float64(s.Hist.Count)
			} else {
				out[c] += s.Value
			}
		}
	}
	return out
}

// gridValue sums every series of an unlabeled (grid-level) metric.
func gridValue(snap *telemetry.Snapshot, metric string) float64 {
	total := 0.0
	name := qualified(snap, metric)
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
		for _, s := range m.Series {
			if s.Hist != nil {
				total += float64(s.Hist.Count)
			} else {
				total += s.Value
			}
		}
	}
	return total
}

// topColumns are the per-container rate columns of the dashboard, each
// computed from one counter (or histogram count) family.
var topColumns = []struct {
	header string
	metric string
}{
	{"dlvr/s", "platform_messages_delivered_total"},
	{"sent/s", "acl_sent_frames_total"},
	{"recv/s", "acl_received_frames_total"},
	{"poll/s", "collect_polls_total"},
	{"rec/s", "classify_records_total"},
	{"task/s", "analyze_tasks_total"},
	{"alert/s", "report_alerts_total"},
}

func renderTop(w io.Writer, prev, cur *telemetry.Snapshot, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	load := byContainer(cur, "platform_load_ratio")
	depth := byContainer(cur, "agent_mailbox_depth_count")
	names := make(map[string]bool)
	for c := range load {
		names[c] = true
	}
	curCols := make([]map[string]float64, len(topColumns))
	prevCols := make([]map[string]float64, len(topColumns))
	for i, col := range topColumns {
		curCols[i] = byContainer(cur, col.metric)
		prevCols[i] = byContainer(prev, col.metric)
		for c := range curCols[i] {
			names[c] = true
		}
	}
	containers := make([]string, 0, len(names))
	for c := range names {
		containers = append(containers, c)
	}
	sort.Strings(containers)

	fmt.Fprintf(w, "grid %s  containers %d  store %.0f series  directory %.0f entries  spans dropped %.0f\n",
		cur.Namespace, len(containers),
		gridValue(cur, "store_series_count"),
		gridValue(cur, "directory_entries_count"),
		gridValue(cur, "trace_spans_dropped_total"))
	fmt.Fprintf(w, "%-10s %6s %6s", "CONTAINER", "load", "mbox")
	for _, col := range topColumns {
		fmt.Fprintf(w, " %8s", col.header)
	}
	fmt.Fprintln(w)
	for _, c := range containers {
		fmt.Fprintf(w, "%-10s %6.2f %6.0f", c, load[c], depth[c])
		for i := range topColumns {
			fmt.Fprintf(w, " %8.1f", (curCols[i][c]-prevCols[i][c])/secs)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
