package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"agentgrid/internal/telemetry"
)

// runTop implements `gridctl top`: a live ASCII dashboard of per-
// container throughput. It polls the grid's /metrics.json snapshot and
// computes rates client-side from consecutive samples, so the server
// stays a dumb exporter. With -once it takes a single sample and
// reports cumulative totals instead of rates; with -json each frame is
// one machine-readable JSON document (NDJSON when looping).
func runTop(grid string, timeout time.Duration, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	frames := fs.Int("n", 0, "frames to render before exiting (0 = run until interrupted)")
	interval := fs.Duration("interval", 2*time.Second, "sampling interval")
	asJSON := fs.Bool("json", false, "emit frames as JSON documents instead of the ASCII table")
	once := fs.Bool("once", false, "take one sample and exit; values are cumulative totals, not rates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*once && *interval <= 0 {
		return fmt.Errorf("top: interval must be positive")
	}
	cli := &http.Client{Timeout: timeout}
	return top(os.Stdout, cli, "http://"+grid, topOptions{
		Frames: *frames, Interval: *interval, JSON: *asJSON, Once: *once,
	})
}

type topOptions struct {
	Frames   int
	Interval time.Duration
	JSON     bool
	Once     bool
}

func top(w io.Writer, cli *http.Client, base string, o topOptions) error {
	if o.Once {
		cur, err := fetchSnapshot(cli, base)
		if err != nil {
			return err
		}
		return emitFrame(w, buildFrame(nil, cur, 0), o.JSON)
	}
	prev, err := fetchSnapshot(cli, base)
	if err != nil {
		return err
	}
	prevAt := time.Now()
	tick := time.NewTicker(o.Interval)
	defer tick.Stop()
	for i := 0; o.Frames <= 0 || i < o.Frames; i++ {
		<-tick.C
		cur, err := fetchSnapshot(cli, base)
		if err != nil {
			return err
		}
		at := time.Now()
		if err := emitFrame(w, buildFrame(prev, cur, at.Sub(prevAt)), o.JSON); err != nil {
			return err
		}
		prev, prevAt = cur, at
	}
	return nil
}

func fetchSnapshot(cli *http.Client, base string) (*telemetry.Snapshot, error) {
	resp, err := cli.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, string(body))
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("top: decode snapshot: %w", err)
	}
	return &snap, nil
}

// qualified returns a metric's fully qualified snapshot name — the
// registry prefixes every family with its namespace.
func qualified(snap *telemetry.Snapshot, metric string) string {
	if snap.Namespace == "" {
		return metric
	}
	return snap.Namespace + "_" + metric
}

// byContainer sums a metric's series per container label. Histograms
// contribute their observation count, so rates read as events/s.
func byContainer(snap *telemetry.Snapshot, metric string) map[string]float64 {
	out := make(map[string]float64)
	name := qualified(snap, metric)
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
		for _, s := range m.Series {
			c := s.Labels["container"]
			if c == "" {
				continue
			}
			if s.Hist != nil {
				out[c] += float64(s.Hist.Count)
			} else {
				out[c] += s.Value
			}
		}
	}
	return out
}

// gridValue sums every series of an unlabeled (grid-level) metric.
func gridValue(snap *telemetry.Snapshot, metric string) float64 {
	total := 0.0
	name := qualified(snap, metric)
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
		for _, s := range m.Series {
			if s.Hist != nil {
				total += float64(s.Hist.Count)
			} else {
				total += s.Value
			}
		}
	}
	return total
}

// topColumns are the per-container columns of the dashboard, each
// computed from one counter (or histogram count) family. In rate mode
// the value is the delta per second; in -once mode the running total.
var topColumns = []struct {
	header string
	field  string
	metric string
}{
	{"dlvr/s", "delivered", "platform_messages_delivered_total"},
	{"sent/s", "sent", "acl_sent_frames_total"},
	{"recv/s", "received", "acl_received_frames_total"},
	{"poll/s", "polls", "collect_polls_total"},
	{"rec/s", "records", "classify_records_total"},
	{"task/s", "tasks", "analyze_tasks_total"},
	{"alert/s", "alerts", "report_alerts_total"},
}

// shardBalance summarizes the store's per-stripe series census — the
// placement-skew view of the sharded store. Skew is the fullest
// stripe's series count over the mean (1.0 = perfectly even hashing).
type shardBalance struct {
	Partitions int     `json:"partitions"`
	Shards     int     `json:"shards"` // lock stripes per partition
	Min        float64 `json:"min_series"`
	Max        float64 `json:"max_series"`
	Mean       float64 `json:"mean_series"`
	Skew       float64 `json:"skew"`
}

// buildShardBalance folds the store_shard_series_count gauge family
// into the balance line. Nil when the grid exports no stripe gauges.
func buildShardBalance(snap *telemetry.Snapshot) *shardBalance {
	name := qualified(snap, "store_shard_series_count")
	parts := make(map[string]bool)
	stripes := make(map[string]bool)
	var values []float64
	for _, m := range snap.Metrics {
		if m.Name != name {
			continue
		}
		for _, s := range m.Series {
			parts[s.Labels["partition"]] = true
			stripes[s.Labels["shard"]] = true
			values = append(values, s.Value)
		}
	}
	if len(values) == 0 {
		return nil
	}
	b := &shardBalance{Partitions: len(parts), Shards: len(stripes), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.Mean = sum / float64(len(values))
	if b.Mean > 0 {
		b.Skew = b.Max / b.Mean
	}
	return b
}

// topRow is one container's dashboard line.
type topRow struct {
	Container string             `json:"container"`
	Load      float64            `json:"load"`
	Mailbox   float64            `json:"mailbox"`
	Values    map[string]float64 `json:"values"`
}

// topFrame is one dashboard sample, the unit both renderings share.
type topFrame struct {
	Namespace        string   `json:"namespace"`
	At               string   `json:"at"`
	IntervalSeconds  float64  `json:"interval_seconds"` // 0 = -once totals, not rates
	StoreSeries      float64  `json:"store_series"`
	DirectoryEntries float64  `json:"directory_entries"`
	SpansDropped     float64  `json:"spans_dropped"`

	// ShardBalance is present when the grid exports per-stripe store
	// gauges (store_shard_series_count).
	ShardBalance *shardBalance `json:"shard_balance,omitempty"`

	Containers []topRow `json:"containers"`
}

// buildFrame computes one frame. A nil prev (or zero dt) reports raw
// cumulative totals; otherwise each column is a per-second rate.
func buildFrame(prev, cur *telemetry.Snapshot, dt time.Duration) topFrame {
	secs := dt.Seconds()
	rates := prev != nil && secs > 0
	load := byContainer(cur, "platform_load_ratio")
	depth := byContainer(cur, "agent_mailbox_depth_count")
	names := make(map[string]bool)
	for c := range load {
		names[c] = true
	}
	curCols := make([]map[string]float64, len(topColumns))
	prevCols := make([]map[string]float64, len(topColumns))
	for i, col := range topColumns {
		curCols[i] = byContainer(cur, col.metric)
		if rates {
			prevCols[i] = byContainer(prev, col.metric)
		}
		for c := range curCols[i] {
			names[c] = true
		}
	}
	containers := make([]string, 0, len(names))
	for c := range names {
		containers = append(containers, c)
	}
	sort.Strings(containers)

	f := topFrame{
		Namespace:        cur.Namespace,
		At:               time.Now().UTC().Format(time.RFC3339),
		StoreSeries:      gridValue(cur, "store_series_count"),
		DirectoryEntries: gridValue(cur, "directory_entries_count"),
		SpansDropped:     gridValue(cur, "trace_spans_dropped_total"),
		ShardBalance:     buildShardBalance(cur),
	}
	if rates {
		f.IntervalSeconds = secs
	}
	for _, c := range containers {
		row := topRow{Container: c, Load: load[c], Mailbox: depth[c], Values: make(map[string]float64)}
		for i, col := range topColumns {
			v := curCols[i][c]
			if rates {
				v = (v - prevCols[i][c]) / secs
			}
			row.Values[col.field] = v
		}
		f.Containers = append(f.Containers, row)
	}
	return f
}

// emitFrame writes one frame as JSON or as the ASCII table.
func emitFrame(w io.Writer, f topFrame, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		return enc.Encode(f)
	}
	renderFrame(w, f)
	return nil
}

func renderFrame(w io.Writer, f topFrame) {
	fmt.Fprintf(w, "grid %s  containers %d  store %.0f series  directory %.0f entries  spans dropped %.0f\n",
		f.Namespace, len(f.Containers), f.StoreSeries, f.DirectoryEntries, f.SpansDropped)
	if b := f.ShardBalance; b != nil {
		fmt.Fprintf(w, "shards %d stripes x %d partitions  series/stripe min %.0f mean %.1f max %.0f  skew %.2f\n",
			b.Shards, b.Partitions, b.Min, b.Mean, b.Max, b.Skew)
	}
	fmt.Fprintf(w, "%-10s %6s %6s", "CONTAINER", "load", "mbox")
	for _, col := range topColumns {
		header := col.header
		if f.IntervalSeconds == 0 {
			// Totals, not rates: drop the /s suffix.
			header = col.field
		}
		fmt.Fprintf(w, " %8s", header)
	}
	fmt.Fprintln(w)
	for _, row := range f.Containers {
		fmt.Fprintf(w, "%-10s %6.2f %6.0f", row.Container, row.Load, row.Mailbox)
		for _, col := range topColumns {
			fmt.Fprintf(w, " %8.1f", row.Values[col.field])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
