// Command agentgridd runs agent-grid nodes.
//
// Grid mode (default) stands up the complete management grid of the
// paper's Figure 2 — collector, classifier, processor and interface
// grids — with an HTTP frontend for reports, alerts, rule learning and
// goal submission:
//
//	agentgridd -site site1 -rules rules.dsl -goals goals.txt -http 127.0.0.1:8080
//
// With -tcp the grid's containers bind TCP endpoints, and additional
// analysis capacity can join from other processes:
//
//	agentgridd -mode worker -name remote-1 -root tcp://HOST:PORT \
//	    -classifier tcp://HOST:PORT -rules rules.dsl
//
// With -spec the grid is described declaratively instead: the file is
// a topology spec (sites, replica counts, rules, an optional chaos
// schedule) that agentgridd deploys on boot and serves at /topology
// for gridctl deploy/status/destroy:
//
//	agentgridd -spec examples/specs/quickstart.topo -http 127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"agentgrid/internal/core"
	"agentgrid/internal/report"
	"agentgrid/internal/store"
	"agentgrid/internal/topology"
)

func main() {
	var (
		mode       = flag.String("mode", "grid", "grid | worker")
		site       = flag.String("site", "site1", "site name")
		collectors = flag.Int("collectors", 3, "collector containers (grid mode)")
		analyzers  = flag.Int("analyzers", 2, "analysis containers (grid mode)")
		community  = flag.String("community", "public", "SNMP community for collection")
		rulesFile  = flag.String("rules", "", "rule DSL file loaded into analysis workers")
		localFile  = flag.String("local-rules", "", "rule DSL file for collector pre-analysis")
		goalsFile  = flag.String("goals", "", "goal-spec file (one 'goal ...' line per device)")
		httpAddr   = flag.String("http", "127.0.0.1:8080", "interface-grid HTTP address (grid mode)")
		storeFile  = flag.String("store-file", "", "load the management store from this snapshot at start and save it on shutdown (grid mode)")
		scheduler  = flag.String("scheduler", "capability", "task placement: round-robin|random|least-loaded|capability")
		negotiated = flag.Bool("negotiated", false, "place analysis tasks via contract-net bidding")
		tcp        = flag.Bool("tcp", false, "bind containers on TCP so worker nodes can join (grid mode)")
		name       = flag.String("name", "worker-1", "container name (worker mode)")
		rootAddr   = flag.String("root", "", "grid root address tcp://host:port (worker mode)")
		clgAddr    = flag.String("classifier", "", "classifier address tcp://host:port (worker mode)")
		specFile   = flag.String("spec", "", "topology spec file: deploy it and serve the /topology lifecycle endpoint")
	)
	flag.Parse()

	if err := run(*mode, options{
		site: *site, collectors: *collectors, analyzers: *analyzers,
		community: *community, rulesFile: *rulesFile, localFile: *localFile,
		goalsFile: *goalsFile, httpAddr: *httpAddr, scheduler: *scheduler,
		storeFile:  *storeFile,
		negotiated: *negotiated, tcp: *tcp,
		name: *name, rootAddr: *rootAddr, clgAddr: *clgAddr,
		specFile: *specFile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "agentgridd:", err)
		os.Exit(1)
	}
}

type options struct {
	site, community, rulesFile, localFile, goalsFile, httpAddr, scheduler string
	storeFile                                                             string
	collectors, analyzers                                                 int
	negotiated, tcp                                                       bool
	name, rootAddr, clgAddr                                               string
	specFile                                                              string
}

func run(mode string, o options) error {
	if o.specFile != "" {
		if mode != "grid" {
			return fmt.Errorf("-spec only makes sense in grid mode, not %q", mode)
		}
		return runSpec(o)
	}
	switch mode {
	case "grid":
		return runGrid(o)
	case "worker":
		return runWorker(o)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// runSpec is topology-as-code mode: deploy the spec file, serve the
// /topology lifecycle endpoint (plus all grid endpoints) on one
// listener, and tear the deployment down on shutdown. The listener
// outlives the deployment — gridctl destroy followed by gridctl
// deploy cycles the grid without restarting the daemon.
func runSpec(o options) error {
	src, err := os.ReadFile(o.specFile)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	srv, err := report.NewDetachedServer(o.httpAddr)
	if err != nil {
		return err
	}
	defer srv.Close()
	mgr := topology.NewManager(topology.Options{
		ErrorLog: func(err error) { fmt.Fprintln(os.Stderr, "topology:", err) },
	})
	defer mgr.Close()
	mgr.AttachServer(srv)

	dep, err := mgr.Deploy(string(src))
	if err != nil {
		return fmt.Errorf("deploy %s: %w", o.specFile, err)
	}
	spec := dep.Spec()
	addr := srv.Addr()
	fmt.Printf("agentgridd: topology %s deployed from %s\n", spec.Name, o.specFile)
	fmt.Printf("  topology  http://%s/topology (json; ?format=text|html — html self-refreshes)\n", addr)
	fmt.Printf("  lifecycle POST/DELETE http://%s/topology (gridctl deploy|destroy)\n", addr)
	for _, site := range spec.Sites {
		fmt.Printf("  reports   http://%s/site/%s\n", addr, site.Name)
	}
	fmt.Printf("  alerts    http://%s/alerts\n", addr)
	fmt.Printf("  health    http://%s/healthz  readiness http://%s/readyz\n", addr, addr)
	waitForSignal()
	fmt.Println("agentgridd: destroying topology")
	if _, err := mgr.Destroy(); err != nil {
		return err
	}
	return nil
}

func readOptionalFile(path string) (string, error) {
	if path == "" {
		return "", nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func waitForSignal() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
}

func runGrid(o options) error {
	rulesSrc, err := readOptionalFile(o.rulesFile)
	if err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	localSrc, err := readOptionalFile(o.localFile)
	if err != nil {
		return fmt.Errorf("local rules: %w", err)
	}
	cfg := core.Config{
		Site:       o.site,
		Collectors: o.collectors,
		Analyzers:  o.analyzers,
		Community:  o.community,
		Rules:      rulesSrc,
		LocalRules: localSrc,
		Scheduler:  o.scheduler,
		Negotiated: o.negotiated,
		ErrorLog:   func(err error) { fmt.Fprintln(os.Stderr, "grid:", err) },
	}
	if o.tcp {
		cfg.TCPHost = "127.0.0.1"
	}
	grid, err := core.NewGrid(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		return err
	}
	defer grid.Stop()

	// Optional persistence: recover the management store from the last
	// shutdown's snapshot, and write one back on exit.
	if o.storeFile != "" {
		if data, err := os.ReadFile(o.storeFile); err == nil {
			snap, err := store.UnmarshalSnapshot(data)
			if err != nil {
				return fmt.Errorf("store snapshot: %w", err)
			}
			if err := grid.Store().Restore(snap); err != nil {
				return fmt.Errorf("store restore: %w", err)
			}
			series, _ := grid.Store().Stats()
			fmt.Printf("agentgridd: restored %d series from %s\n", series, o.storeFile)
		}
		defer func() {
			data, err := store.MarshalSnapshot(grid.Store().Snapshot())
			if err == nil {
				err = os.WriteFile(o.storeFile, data, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "agentgridd: save store:", err)
				return
			}
			fmt.Printf("agentgridd: store saved to %s\n", o.storeFile)
		}()
	}

	if o.goalsFile != "" {
		goalsSrc, err := os.ReadFile(o.goalsFile)
		if err != nil {
			return fmt.Errorf("goals: %w", err)
		}
		count := 0
		for _, line := range splitLines(string(goalsSrc)) {
			if line == "" {
				continue
			}
			goal, err := core.ParseGoalSpec(line)
			if err != nil {
				return fmt.Errorf("goal %q: %w", line, err)
			}
			if err := grid.AddGoal(*goal); err != nil {
				return err
			}
			count++
		}
		fmt.Printf("agentgridd: %d collection goals installed\n", count)
	}

	addr, err := grid.StartHTTP(o.httpAddr)
	if err != nil {
		return err
	}
	fmt.Printf("agentgridd: grid up for site %s\n", o.site)
	fmt.Printf("  reports   http://%s/site/%s\n", addr, o.site)
	fmt.Printf("  alerts    http://%s/alerts\n", addr)
	fmt.Printf("  learn     POST http://%s/rules\n", addr)
	fmt.Printf("  goals     POST http://%s/goals\n", addr)
	fmt.Printf("  metrics   http://%s/metrics (Prometheus; /metrics.json for gridctl top)\n", addr)
	fmt.Printf("  health    http://%s/healthz  readiness http://%s/readyz\n", addr, addr)
	if o.tcp {
		fmt.Printf("  root      %s (worker nodes: -mode worker -root ...)\n", grid.RootAddr())
		fmt.Printf("  classifier %s\n", grid.ClassifierAddr())
	}
	waitForSignal()
	fmt.Println("agentgridd: shutting down")
	return nil
}

func runWorker(o options) error {
	if o.rootAddr == "" {
		return fmt.Errorf("worker mode needs -root tcp://host:port")
	}
	rulesSrc, err := readOptionalFile(o.rulesFile)
	if err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	node, err := core.NewWorkerNode(core.WorkerNodeConfig{
		Name:           o.name,
		RootAddr:       o.rootAddr,
		ClassifierAddr: o.clgAddr,
		Rules:          rulesSrc,
		ErrorLog:       func(err error) { fmt.Fprintln(os.Stderr, "worker:", err) },
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := node.Start(ctx); err != nil {
		return err
	}
	defer node.Stop()
	fmt.Printf("agentgridd: worker %s joined grid at %s (listening %s)\n",
		o.name, o.rootAddr, node.Addr())
	waitForSignal()
	fmt.Println("agentgridd: worker leaving grid")
	return nil
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' || r == '\r' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}
