package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownMode(t *testing.T) {
	if err := run("interpretive-dance", options{}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestWorkerModeNeedsRoot(t *testing.T) {
	if err := run("worker", options{name: "w"}); err == nil {
		t.Fatal("worker without root accepted")
	}
}

func TestGridModeBadRulesFile(t *testing.T) {
	if err := run("grid", options{rulesFile: "/no/such/file"}); err == nil {
		t.Fatal("missing rules file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dsl")
	os.WriteFile(bad, []byte("rule {"), 0o644)
	if err := run("grid", options{rulesFile: bad, httpAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("bad rules accepted")
	}
}

func TestReadOptionalFile(t *testing.T) {
	if s, err := readOptionalFile(""); err != nil || s != "" {
		t.Fatalf("empty path = %q, %v", s, err)
	}
	dir := t.TempDir()
	f := filepath.Join(dir, "x")
	os.WriteFile(f, []byte("content"), 0o644)
	if s, err := readOptionalFile(f); err != nil || s != "content" {
		t.Fatalf("file = %q, %v", s, err)
	}
	if _, err := readOptionalFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSplitLines(t *testing.T) {
	got := splitLines("a\nb\r\nc")
	want := []string{"a", "b", "", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitLines = %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitLines = %q", got)
		}
	}
}
