// Command netsim runs a simulated managed network: a fleet of hosts,
// routers and switches answering the grid's SNMP-like protocol on
// loopback UDP. It prints one goal spec per device (the format gridctl
// and agentgridd consume), advances the simulation on an interval, and
// can inject faults on a schedule to exercise the grid's analyses.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/workload"
)

func main() {
	var (
		site      = flag.String("site", "site1", "site name carried in goal specs")
		hosts     = flag.Int("hosts", 10, "simulated host count")
		routers   = flag.Int("routers", 2, "simulated router count")
		switches  = flag.Int("switches", 1, "simulated switch count")
		community = flag.String("community", "public", "SNMP community")
		seed      = flag.Int64("seed", 1, "simulation seed")
		advance   = flag.Duration("advance", time.Second, "simulation step interval")
		interval  = flag.Duration("interval", 5*time.Second, "collection interval in emitted goal specs")
		faultAt   = flag.Duration("fault-after", 0, "inject a cpu-pegged fault on the first host after this delay (0 = never)")
		goalsOut  = flag.String("goals-out", "", "also write goal specs to this file")
	)
	flag.Parse()

	spec := workload.FleetSpec{
		Site: *site, Hosts: *hosts, Routers: *routers, Switches: *switches, Seed: *seed,
	}
	fleet, err := device.NewFleet(spec.BuildDevices(), *community)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	defer fleet.Close()

	var goalLines string
	for _, st := range fleet.Stations() {
		d := st.Device
		line := fmt.Sprintf("goal monitor-%s %s %s %s %s %s\n",
			d.Name(), *site, d.Name(), d.Class(), st.Addr(), *interval)
		goalLines += line
		fmt.Print(line)
	}
	if *goalsOut != "" {
		if err := os.WriteFile(*goalsOut, []byte(goalLines), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "netsim: write goals:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "netsim: wrote %d goal specs to %s\n", len(fleet.Stations()), *goalsOut)
	}
	fmt.Fprintf(os.Stderr, "netsim: %d devices up, advancing every %s; ctrl-c to stop\n",
		len(fleet.Stations()), *advance)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*advance)
	defer ticker.Stop()
	start := time.Now()
	faultDone := *faultAt == 0
	for {
		select {
		case <-sigc:
			fmt.Fprintln(os.Stderr, "netsim: shutting down")
			return
		case <-ticker.C:
			fleet.Advance(1)
			if !faultDone && time.Since(start) >= *faultAt && len(fleet.Stations()) > 0 {
				fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
				fmt.Fprintf(os.Stderr, "netsim: injected cpu-pegged on %s\n",
					fleet.Stations()[0].Device.Name())
				faultDone = true
			}
		}
	}
}
