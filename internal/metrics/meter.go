package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Meter accumulates relative resource units charged to a single host.
// It is safe for concurrent use; the zero value is ready to use.
type Meter struct {
	mu    sync.Mutex
	units Cost
	tasks map[string]int
}

// Charge adds one execution of a task with cost c, recorded under name.
func (m *Meter) Charge(name string, c Cost) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.units = m.units.Add(c)
	if m.tasks == nil {
		m.tasks = make(map[string]int)
	}
	m.tasks[name]++
}

// Totals returns the accumulated cost vector.
func (m *Meter) Totals() Cost {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.units
}

// TaskCount returns how many times the named task was charged.
func (m *Meter) TaskCount(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tasks[name]
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.units = Cost{}
	m.tasks = nil
}

// Ledger tracks meters for a set of hosts. The zero value is ready to use.
type Ledger struct {
	mu     sync.Mutex
	meters map[string]*Meter
}

// Host returns (creating if needed) the meter for the named host.
func (l *Ledger) Host(name string) *Meter {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.meters == nil {
		l.meters = make(map[string]*Meter)
	}
	m, ok := l.meters[name]
	if !ok {
		m = &Meter{}
		l.meters[name] = m
	}
	return m
}

// Hosts returns the host names with meters, sorted.
func (l *Ledger) Hosts() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.meters))
	for name := range l.meters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the current cost totals per host, sorted by host name.
func (l *Ledger) Snapshot() []HostUsage {
	hosts := l.Hosts()
	out := make([]HostUsage, 0, len(hosts))
	for _, h := range hosts {
		out = append(out, HostUsage{Host: h, Units: l.Host(h).Totals()})
	}
	return out
}

// GridTotal returns the sum across all hosts.
func (l *Ledger) GridTotal() Cost {
	var t Cost
	for _, hu := range l.Snapshot() {
		t = t.Add(hu.Units)
	}
	return t
}

// MaxPerResource returns, for each resource, the largest per-host total —
// the "bottleneck" reading the paper's Figure 6 bars make visible.
func (l *Ledger) MaxPerResource() Cost {
	var mx Cost
	for _, hu := range l.Snapshot() {
		for i, v := range hu.Units {
			if v > mx[i] {
				mx[i] = v
			}
		}
	}
	return mx
}

// HostUsage is one host's accumulated usage.
type HostUsage struct {
	Host  string
	Units Cost
}

// RenderUsage formats per-host usage in the style of the paper's Figure 6
// bar charts: one row per host with CPU, Network and Disc units.
func RenderUsage(rows []HostUsage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "Host", "CPU", "Network", "Disc")
	for _, hu := range rows {
		fmt.Fprintf(&b, "%-14s %8.0f %8.0f %8.0f\n",
			hu.Host, hu.Units.Get(CPU), hu.Units.Get(Network), hu.Units.Get(Disc))
	}
	return b.String()
}
