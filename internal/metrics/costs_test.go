package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1MatchesPaper(t *testing.T) {
	// Every row of Table 1, exactly as published.
	want := map[string]Cost{
		"Request A":       {10, 5, 0},
		"Request B":       {10, 10, 0},
		"Request C":       {10, 15, 0},
		"Parse A":         {15, 0, 0},
		"Parse B":         {15, 0, 0},
		"Parse C":         {15, 0, 0},
		"Storing":         {5, 0, 10},
		"Inference A":     {20, 0, 5},
		"Inference B":     {20, 0, 5},
		"Inference C":     {20, 0, 5},
		"Inference AxBxC": {40, 0, 8},
	}
	rows := Table1()
	if len(rows) != len(want) {
		t.Fatalf("Table1 has %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		w, ok := want[row.Task.Name]
		if !ok {
			t.Errorf("unexpected row %q", row.Task.Name)
			continue
		}
		if row.Cost != w {
			t.Errorf("%s = %v, want %v", row.Task.Name, row.Cost, w)
		}
	}
}

func TestCostModelAccessors(t *testing.T) {
	m := NewCostModel()
	cases := []struct {
		name string
		got  Cost
		want Cost
	}{
		{"Request(A)", m.Request(KindA), Cost{10, 5, 0}},
		{"Request(B)", m.Request(KindB), Cost{10, 10, 0}},
		{"Request(C)", m.Request(KindC), Cost{10, 15, 0}},
		{"Parse(A)", m.Parse(KindA), Cost{15, 0, 0}},
		{"Storing", m.Storing(), Cost{5, 0, 10}},
		{"Inference(B)", m.Inference(KindB), Cost{20, 0, 5}},
		{"CrossInference", m.CrossInference(), Cost{40, 0, 8}},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	m := NewCostModel()
	if _, ok := m.Lookup("Reticulate Splines"); ok {
		t.Fatal("Lookup of unknown task reported ok")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown task did not panic")
		}
	}()
	m.MustLookup("Reticulate Splines")
}

func TestCustomModelOverride(t *testing.T) {
	rows := []TaskCost{
		{Task{Name: "X"}, Cost{1, 2, 3}},
		{Task{Name: "X"}, Cost{4, 5, 6}}, // later duplicate wins
	}
	m := NewCustomCostModel(rows)
	if got := m.MustLookup("X"); got != (Cost{4, 5, 6}) {
		t.Fatalf("override not applied: %v", got)
	}
	if names := m.TaskNames(); len(names) != 1 || names[0] != "X" {
		t.Fatalf("TaskNames = %v, want [X]", names)
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{1, 2, 3}
	b := Cost{10, 20, 30}
	if got := a.Add(b); got != (Cost{11, 22, 33}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(3); got != (Cost{3, 6, 9}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Total(); got != 6 {
		t.Errorf("Total = %v", got)
	}
}

func TestCostAddCommutativeAssociative(t *testing.T) {
	// Costs in practice are small non-negative unit counts; generate
	// integral vectors so float addition is exact and associativity holds.
	cost := func(a, b, c uint16) Cost { return Cost{float64(a), float64(b), float64(c)} }
	comm := func(a, b [3]uint16) bool {
		x, y := cost(a[0], a[1], a[2]), cost(b[0], b[1], b[2])
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	assoc := func(a, b, c [3]uint16) bool {
		x, y, z := cost(a[0], a[1], a[2]), cost(b[0], b[1], b[2]), cost(c[0], c[1], c[2])
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("Add not associative: %v", err)
	}
}

func TestResourceAndKindStrings(t *testing.T) {
	if CPU.String() != "CPU" || Network.String() != "Network" || Disc.String() != "Disc" {
		t.Error("resource labels wrong")
	}
	if KindA.String() != "A" || KindB.String() != "B" || KindC.String() != "C" {
		t.Error("kind labels wrong")
	}
	if got := Resource(9).String(); !strings.Contains(got, "9") {
		t.Errorf("out-of-range resource string = %q", got)
	}
	if got := RequestKind(7).String(); !strings.Contains(got, "7") {
		t.Errorf("out-of-range kind string = %q", got)
	}
	if len(Resources()) != 3 || len(Kinds()) != 3 {
		t.Error("enumeration helpers wrong length")
	}
}

func TestRenderTable(t *testing.T) {
	out := NewCostModel().RenderTable()
	for _, want := range []string{"Tasks", "CPU", "Network", "Disc", "Request A", "Inference AxBxC"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Blank cells must stay blank, as in the paper: "Parse A" row has no
	// network or disc entry.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Parse A") {
			if strings.Count(line, "15") != 1 {
				t.Errorf("Parse A row should contain exactly one value: %q", line)
			}
		}
	}
}

func TestSortedNames(t *testing.T) {
	names := NewCostModel().SortedNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestCostScaleEdges(t *testing.T) {
	c := Cost{10, 5, 2}
	if got := c.Scale(0); got != (Cost{}) {
		t.Errorf("Scale(0) = %v, want zero cost", got)
	}
	if got := c.Scale(1); got != c {
		t.Errorf("Scale(1) = %v, want %v", got, c)
	}
	if got := c.Scale(-1); got != (Cost{-10, -5, -2}) {
		t.Errorf("Scale(-1) = %v", got)
	}
	if got := c.Scale(0.5); got != (Cost{5, 2.5, 1}) {
		t.Errorf("Scale(0.5) = %v", got)
	}
}

func TestCostZeroValue(t *testing.T) {
	var z Cost
	if z.Total() != 0 {
		t.Errorf("zero cost Total = %v", z.Total())
	}
	for _, r := range Resources() {
		if z.Get(r) != 0 {
			t.Errorf("zero cost Get(%s) = %v", r, z.Get(r))
		}
	}
	c := Cost{1, 2, 3}
	if got := c.Add(z); got != c {
		t.Errorf("Add(zero) = %v, want identity", got)
	}
}

func TestCostGetPerResource(t *testing.T) {
	c := Cost{CPU: 7, Network: 8, Disc: 9}
	if c.Get(CPU) != 7 || c.Get(Network) != 8 || c.Get(Disc) != 9 {
		t.Fatalf("Get mismatch: %v", c)
	}
}

func TestEmptyCustomModel(t *testing.T) {
	m := NewCustomCostModel(nil)
	if _, ok := m.Lookup("anything"); ok {
		t.Fatal("empty model resolved a task")
	}
	if names := m.TaskNames(); len(names) != 0 {
		t.Fatalf("empty model TaskNames = %v", names)
	}
	// RenderTable on an empty model is just the header line.
	out := m.RenderTable()
	if lines := strings.Split(strings.TrimRight(out, "\n"), "\n"); len(lines) != 1 {
		t.Fatalf("empty model table = %q", out)
	}
}

func TestTaskNamesIsACopy(t *testing.T) {
	m := NewCostModel()
	names := m.TaskNames()
	names[0] = "clobbered"
	if m.TaskNames()[0] == "clobbered" {
		t.Fatal("TaskNames exposes internal slice")
	}
}

func TestTable1RowMetadata(t *testing.T) {
	// The cross-kind rows (Storing, Inference AxBxC) are marked Cross;
	// per-kind rows carry their own kind.
	for _, row := range Table1() {
		switch row.Task.Name {
		case "Storing", "Inference AxBxC":
			if !row.Task.Cross {
				t.Errorf("%s not marked Cross", row.Task.Name)
			}
		case "Request B", "Parse B", "Inference B":
			if row.Task.Cross || row.Task.Kind != KindB {
				t.Errorf("%s metadata wrong: %+v", row.Task.Name, row.Task)
			}
		}
	}
}
