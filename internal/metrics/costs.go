// Package metrics implements the relative cost model of management tasks
// used throughout the paper's evaluation (Table 1) and the per-host
// resource meters that accumulate those costs during simulation.
//
// The paper measures three resources — CPU, communication network and disc —
// in dimensionless relative units. Every management activity (request,
// parse, storing, inference) charges a fixed number of units to the host
// that performs it; network units are charged to both endpoints of a
// transfer.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Resource identifies one of the three measured resources.
type Resource int

// The three resources the paper's evaluation tracks.
const (
	CPU Resource = iota
	Network
	Disc
	numResources
)

// String returns the paper's label for the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "CPU"
	case Network:
		return "Network"
	case Disc:
		return "Disc"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Resources lists all resources in presentation order.
func Resources() []Resource { return []Resource{CPU, Network, Disc} }

// RequestKind distinguishes the three request types of the evaluation
// scenario (paper §4.1). Each kind stands for a class of managed object:
// the paper's example collects processor usage, memory availability, disk
// space and process lists; the relative table abstracts those into types
// A, B and C with different costs.
type RequestKind int

// Request kinds from Table 1.
const (
	KindA RequestKind = iota
	KindB
	KindC
	numKinds
)

// String returns the table label of the kind ("A", "B" or "C").
func (k RequestKind) String() string {
	switch k {
	case KindA:
		return "A"
	case KindB:
		return "B"
	case KindC:
		return "C"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Kinds lists the request kinds in table order.
func Kinds() []RequestKind { return []RequestKind{KindA, KindB, KindC} }

// Task identifies one row of Table 1.
type Task struct {
	// Name is the row label exactly as printed in the paper,
	// e.g. "Request A" or "Inference AxBxC".
	Name string
	// Kind is the request kind the task applies to. Tasks that span all
	// kinds (Storing, Inference AxBxC) use KindA by convention and set
	// Cross to true.
	Kind RequestKind
	// Cross marks tasks that combine data across kinds (Inference AxBxC).
	Cross bool
}

// Cost is a vector of relative units per resource.
type Cost [numResources]float64

// Get returns the units charged against resource r.
func (c Cost) Get(r Resource) float64 { return c[r] }

// Add returns the element-wise sum of two cost vectors.
func (c Cost) Add(o Cost) Cost {
	var out Cost
	for i := range c {
		out[i] = c[i] + o[i]
	}
	return out
}

// Scale returns the cost vector multiplied by f.
func (c Cost) Scale(f float64) Cost {
	var out Cost
	for i := range c {
		out[i] = c[i] * f
	}
	return out
}

// Total returns the sum of all resource units (used for bid estimation).
func (c Cost) Total() float64 {
	var t float64
	for _, v := range c {
		t += v
	}
	return t
}

// TaskCost names a Table 1 row together with its cost vector.
type TaskCost struct {
	Task Task
	Cost Cost
}

// Table1 returns the paper's Table 1 ("Relative times of management tasks")
// verbatim. The rows, in order: Request A/B/C, Parse A/B/C, Storing,
// Inference A/B/C and Inference AxBxC. Blank table cells are zero units.
func Table1() []TaskCost {
	return []TaskCost{
		{Task{Name: "Request A", Kind: KindA}, Cost{CPU: 10, Network: 5, Disc: 0}},
		{Task{Name: "Request B", Kind: KindB}, Cost{CPU: 10, Network: 10, Disc: 0}},
		{Task{Name: "Request C", Kind: KindC}, Cost{CPU: 10, Network: 15, Disc: 0}},
		{Task{Name: "Parse A", Kind: KindA}, Cost{CPU: 15, Network: 0, Disc: 0}},
		{Task{Name: "Parse B", Kind: KindB}, Cost{CPU: 15, Network: 0, Disc: 0}},
		{Task{Name: "Parse C", Kind: KindC}, Cost{CPU: 15, Network: 0, Disc: 0}},
		{Task{Name: "Storing", Kind: KindA, Cross: true}, Cost{CPU: 5, Network: 0, Disc: 10}},
		{Task{Name: "Inference A", Kind: KindA}, Cost{CPU: 20, Network: 0, Disc: 5}},
		{Task{Name: "Inference B", Kind: KindB}, Cost{CPU: 20, Network: 0, Disc: 5}},
		{Task{Name: "Inference C", Kind: KindC}, Cost{CPU: 20, Network: 0, Disc: 5}},
		{Task{Name: "Inference AxBxC", Kind: KindA, Cross: true}, Cost{CPU: 40, Network: 0, Disc: 8}},
	}
}

// CostModel resolves task names to cost vectors. The zero value is not
// usable; construct with NewCostModel (Table 1) or NewCustomCostModel.
type CostModel struct {
	byName map[string]Cost
	order  []string
}

// NewCostModel returns the cost model of Table 1.
func NewCostModel() *CostModel {
	return NewCustomCostModel(Table1())
}

// NewCustomCostModel builds a model from an arbitrary set of rows.
// Later duplicates of a name override earlier ones.
func NewCustomCostModel(rows []TaskCost) *CostModel {
	m := &CostModel{byName: make(map[string]Cost, len(rows))}
	for _, row := range rows {
		if _, dup := m.byName[row.Task.Name]; !dup {
			m.order = append(m.order, row.Task.Name)
		}
		m.byName[row.Task.Name] = row.Cost
	}
	return m
}

// Lookup returns the cost of the named task.
func (m *CostModel) Lookup(name string) (Cost, bool) {
	c, ok := m.byName[name]
	return c, ok
}

// MustLookup is Lookup that panics on unknown names. Experiment code uses
// it where a miss is a programming error, never on external input.
func (m *CostModel) MustLookup(name string) Cost {
	c, ok := m.byName[name]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown task %q", name))
	}
	return c
}

// Request returns the cost of issuing a request of kind k.
func (m *CostModel) Request(k RequestKind) Cost { return m.MustLookup("Request " + k.String()) }

// Parse returns the cost of parsing a reply of kind k.
func (m *CostModel) Parse(k RequestKind) Cost { return m.MustLookup("Parse " + k.String()) }

// Storing returns the cost of storing one parsed record.
func (m *CostModel) Storing() Cost { return m.MustLookup("Storing") }

// Inference returns the cost of running inference rules over data of kind k.
func (m *CostModel) Inference(k RequestKind) Cost { return m.MustLookup("Inference " + k.String()) }

// CrossInference returns the cost of the combined AxBxC inference.
func (m *CostModel) CrossInference() Cost { return m.MustLookup("Inference AxBxC") }

// TaskNames returns the task names in table order.
func (m *CostModel) TaskNames() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// RenderTable formats the model in the layout of the paper's Table 1.
func (m *CostModel) RenderTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %8s %8s\n", "Tasks", "CPU", "Network", "Disc")
	for _, name := range m.order {
		c := m.byName[name]
		fmt.Fprintf(&b, "%-18s", name)
		for _, r := range Resources() {
			if v := c.Get(r); v != 0 {
				fmt.Fprintf(&b, " %8.0f", v)
			} else {
				fmt.Fprintf(&b, " %8s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedNames returns the task names sorted lexicographically (stable
// helper for tests and deterministic iteration).
func (m *CostModel) SortedNames() []string {
	out := m.TaskNames()
	sort.Strings(out)
	return out
}
