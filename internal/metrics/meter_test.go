package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestMeterChargeAndTotals(t *testing.T) {
	var m Meter
	m.Charge("Request A", Cost{10, 5, 0})
	m.Charge("Request A", Cost{10, 5, 0})
	m.Charge("Storing", Cost{5, 0, 10})
	if got := m.Totals(); got != (Cost{25, 10, 10}) {
		t.Fatalf("Totals = %v", got)
	}
	if n := m.TaskCount("Request A"); n != 2 {
		t.Fatalf("TaskCount = %d, want 2", n)
	}
	if n := m.TaskCount("never"); n != 0 {
		t.Fatalf("TaskCount(missing) = %d, want 0", n)
	}
	m.Reset()
	if got := m.Totals(); got != (Cost{}) {
		t.Fatalf("after Reset Totals = %v", got)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Charge("t", Cost{1, 0, 0})
			}
		}()
	}
	wg.Wait()
	if got := m.Totals().Get(CPU); got != workers*per {
		t.Fatalf("concurrent total = %v, want %d", got, workers*per)
	}
	if n := m.TaskCount("t"); n != workers*per {
		t.Fatalf("concurrent count = %d, want %d", n, workers*per)
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.Host("manager").Charge("Request A", Cost{10, 5, 0})
	l.Host("collector-1").Charge("Parse A", Cost{15, 0, 0})
	l.Host("manager").Charge("Inference A", Cost{20, 0, 5})

	if hosts := l.Hosts(); len(hosts) != 2 || hosts[0] != "collector-1" || hosts[1] != "manager" {
		t.Fatalf("Hosts = %v", hosts)
	}
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d", len(snap))
	}
	if snap[1].Host != "manager" || snap[1].Units != (Cost{30, 5, 5}) {
		t.Fatalf("manager usage = %+v", snap[1])
	}
	if got := l.GridTotal(); got != (Cost{45, 5, 5}) {
		t.Fatalf("GridTotal = %v", got)
	}
	if got := l.MaxPerResource(); got != (Cost{30, 5, 5}) {
		t.Fatalf("MaxPerResource = %v", got)
	}
}

func TestLedgerSameMeterReturned(t *testing.T) {
	var l Ledger
	a := l.Host("h")
	b := l.Host("h")
	if a != b {
		t.Fatal("Host returned different meters for the same name")
	}
}

func TestRenderUsage(t *testing.T) {
	out := RenderUsage([]HostUsage{
		{Host: "manager", Units: Cost{300, 300, 100}},
		{Host: "collector-1", Units: Cost{250, 50, 0}},
	})
	for _, want := range []string{"Host", "manager", "collector-1", "300", "250"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderUsage missing %q:\n%s", want, out)
		}
	}
}
