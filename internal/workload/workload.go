// Package workload generates the request mixes the evaluation runs. The
// paper's scenario (§4.1) issues requests of three types (A, B, C) that
// stand for different classes of managed objects; Figure 6 uses ten
// requests of each type. The generator also produces collection-goal
// sets for driving the live pipeline across simulated device fleets.
package workload

import (
	"fmt"
	"time"

	"agentgrid/internal/collect"
	"agentgrid/internal/device"
	"agentgrid/internal/metrics"
)

// Request is one management request of a given kind.
type Request struct {
	// Kind is the request type (A, B or C).
	Kind metrics.RequestKind
	// Round groups one request of each kind; cross-kind inference runs
	// once per round.
	Round int
}

// Mix specifies how many requests of each kind to issue.
type Mix struct {
	A int
	B int
	C int
}

// PaperMix is the evaluation scenario of Figure 6: "10 requests of each
// type".
func PaperMix() Mix { return Mix{A: 10, B: 10, C: 10} }

// Scaled multiplies the mix by n (the volume axis of the crossover
// study).
func (m Mix) Scaled(n int) Mix {
	return Mix{A: m.A * n, B: m.B * n, C: m.C * n}
}

// Total returns the request count.
func (m Mix) Total() int { return m.A + m.B + m.C }

// Rounds returns the number of complete A+B+C rounds in the mix — the
// number of cross-kind inferences the evaluation performs.
func (m Mix) Rounds() int {
	r := m.A
	if m.B < r {
		r = m.B
	}
	if m.C < r {
		r = m.C
	}
	return r
}

// Requests expands the mix into a deterministic interleaved sequence:
// A, B, C, A, B, C, ... with leftovers of the larger kinds at the end.
func (m Mix) Requests() []Request {
	out := make([]Request, 0, m.Total())
	remaining := [3]int{m.A, m.B, m.C}
	kinds := metrics.Kinds()
	for round := 0; ; round++ {
		issued := false
		for i, kind := range kinds {
			if remaining[i] > 0 {
				out = append(out, Request{Kind: kind, Round: round})
				remaining[i]--
				issued = true
			}
		}
		if !issued {
			return out
		}
	}
}

// String renders the mix for reports.
func (m Mix) String() string {
	return fmt.Sprintf("A=%d B=%d C=%d", m.A, m.B, m.C)
}

// ---- Live-pipeline workloads ----

// FleetSpec describes a simulated managed network to generate.
type FleetSpec struct {
	// Site names the administrative domain.
	Site string
	// Hosts, Routers, Switches count device types.
	Hosts    int
	Routers  int
	Switches int
	// RouterIfs is interfaces per router (default 4).
	RouterIfs int
	// SwitchPorts is ports per switch (default 8).
	SwitchPorts int
	// Seed derives per-device seeds.
	Seed int64
}

// BuildDevices constructs the spec's device fleet deterministically.
func (s FleetSpec) BuildDevices() []*device.Device {
	ifs := s.RouterIfs
	if ifs <= 0 {
		ifs = 4
	}
	ports := s.SwitchPorts
	if ports <= 0 {
		ports = 8
	}
	var out []*device.Device
	for i := 0; i < s.Hosts; i++ {
		out = append(out, device.NewHost(fmt.Sprintf("host-%02d", i+1), s.Seed+int64(i)))
	}
	for i := 0; i < s.Routers; i++ {
		out = append(out, device.NewRouter(fmt.Sprintf("router-%02d", i+1), ifs, s.Seed+1000+int64(i)))
	}
	for i := 0; i < s.Switches; i++ {
		out = append(out, device.NewSwitch(fmt.Sprintf("switch-%02d", i+1), ports, s.Seed+2000+int64(i)))
	}
	return out
}

// Goals builds one collection goal per device against a running fleet,
// splitting devices across nCollectors collectors round-robin. The
// result is indexed by collector ordinal.
func Goals(spec FleetSpec, fleet *device.Fleet, nCollectors int, interval time.Duration) [][]collect.Goal {
	if nCollectors < 1 {
		nCollectors = 1
	}
	out := make([][]collect.Goal, nCollectors)
	for i, st := range fleet.Stations() {
		d := st.Device
		g := collect.Goal{
			// Site-qualified so goals from different sites can coexist
			// on one collector.
			Name:     "monitor-" + spec.Site + "-" + d.Name(),
			Site:     spec.Site,
			Device:   d.Name(),
			Class:    string(d.Class()),
			Addr:     st.Addr(),
			Interval: interval,
		}
		out[i%nCollectors] = append(out[i%nCollectors], g)
	}
	return out
}
