package workload

import (
	"testing"
	"testing/quick"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/metrics"
)

func TestPaperMix(t *testing.T) {
	m := PaperMix()
	if m.A != 10 || m.B != 10 || m.C != 10 || m.Total() != 30 || m.Rounds() != 10 {
		t.Fatalf("PaperMix = %+v", m)
	}
	if m.String() != "A=10 B=10 C=10" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestScaled(t *testing.T) {
	m := PaperMix().Scaled(3)
	if m.A != 30 || m.Total() != 90 {
		t.Fatalf("Scaled = %+v", m)
	}
}

func TestRequestsInterleaved(t *testing.T) {
	reqs := Mix{A: 2, B: 2, C: 2}.Requests()
	wantKinds := []metrics.RequestKind{
		metrics.KindA, metrics.KindB, metrics.KindC,
		metrics.KindA, metrics.KindB, metrics.KindC,
	}
	if len(reqs) != 6 {
		t.Fatalf("requests = %d", len(reqs))
	}
	for i, r := range reqs {
		if r.Kind != wantKinds[i] {
			t.Fatalf("req[%d] = %v", i, r.Kind)
		}
		if r.Round != i/3 {
			t.Fatalf("req[%d] round = %d", i, r.Round)
		}
	}
}

func TestRequestsUnevenMix(t *testing.T) {
	m := Mix{A: 3, B: 1, C: 0}
	reqs := m.Requests()
	if len(reqs) != 4 {
		t.Fatalf("requests = %d", len(reqs))
	}
	if m.Rounds() != 0 {
		t.Fatalf("Rounds = %d (no complete round without C)", m.Rounds())
	}
	counts := map[metrics.RequestKind]int{}
	for _, r := range reqs {
		counts[r.Kind]++
	}
	if counts[metrics.KindA] != 3 || counts[metrics.KindB] != 1 || counts[metrics.KindC] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRequestsCountProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		m := Mix{A: int(a % 50), B: int(b % 50), C: int(c % 50)}
		reqs := m.Requests()
		if len(reqs) != m.Total() {
			return false
		}
		counts := map[metrics.RequestKind]int{}
		for _, r := range reqs {
			counts[r.Kind]++
		}
		return counts[metrics.KindA] == m.A && counts[metrics.KindB] == m.B && counts[metrics.KindC] == m.C
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFleetSpecBuildDevices(t *testing.T) {
	spec := FleetSpec{Site: "site1", Hosts: 3, Routers: 2, Switches: 1, Seed: 99}
	devs := spec.BuildDevices()
	if len(devs) != 6 {
		t.Fatalf("devices = %d", len(devs))
	}
	classes := map[device.Class]int{}
	for _, d := range devs {
		classes[d.Class()]++
	}
	if classes[device.ClassHost] != 3 || classes[device.ClassRouter] != 2 || classes[device.ClassSwitch] != 1 {
		t.Fatalf("classes = %v", classes)
	}
	// Deterministic for a fixed seed.
	again := spec.BuildDevices()
	devs[0].Advance(10)
	again[0].Advance(10)
	v1, _ := devs[0].Value(device.MetricCPUUtil)
	v2, _ := again[0].Value(device.MetricCPUUtil)
	if v1 != v2 {
		t.Fatal("fleet not deterministic")
	}
}

func TestGoalsSplitAcrossCollectors(t *testing.T) {
	spec := FleetSpec{Site: "site1", Hosts: 5, Seed: 1}
	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	split := Goals(spec, fleet, 2, time.Second)
	if len(split) != 2 {
		t.Fatalf("collectors = %d", len(split))
	}
	if len(split[0])+len(split[1]) != 5 {
		t.Fatalf("goal counts = %d + %d", len(split[0]), len(split[1]))
	}
	if len(split[0])-len(split[1]) > 1 {
		t.Fatalf("unbalanced split: %d vs %d", len(split[0]), len(split[1]))
	}
	for _, goals := range split {
		for _, g := range goals {
			if err := g.Validate(); err != nil {
				t.Fatalf("generated goal invalid: %v", err)
			}
			if g.Addr == "" {
				t.Fatal("goal missing station address")
			}
		}
	}
	// Degenerate collector count clamps to 1.
	one := Goals(spec, fleet, 0, time.Second)
	if len(one) != 1 || len(one[0]) != 5 {
		t.Fatalf("clamped split = %d collectors", len(one))
	}
}
