package acl

import (
	"bytes"
	"io"
	"testing"
)

// benchNotice builds the wire-path benchmark message: the classifier
// grid's "data present" inform to the processor root (Figure 2), with
// a notice-shaped JSON content covering four device clusters — the
// message the grid sends most often under load.
func benchNotice() *Message {
	content := []byte(`{"collector":"cg-3@site1","clusters":[` +
		`{"key":"site1/host-1","site":"site1","device":"host-1","class":"host","categories":["cpu","memory","network"],"records":24,"max_step":480},` +
		`{"key":"site1/host-2","site":"site1","device":"host-2","class":"host","categories":["cpu","memory"],"records":16,"max_step":480},` +
		`{"key":"site1/router-1","site":"site1","device":"router-1","class":"router","categories":["network"],"records":32,"max_step":480},` +
		`{"key":"site1/switch-1","site":"site1","device":"switch-1","class":"switch","categories":["network"],"records":8,"max_step":480}]}`)
	return &Message{
		Performative:   Inform,
		Sender:         NewAID("clg-1", "site1", "tcp://10.0.0.2:7001"),
		Receivers:      []AID{NewAID("pg-root", "site1", "tcp://10.0.0.3:7001")},
		Content:        content,
		Language:       "json",
		Ontology:       OntologyGridManagement,
		Protocol:       ProtocolRequest,
		ConversationID: "clg-1-4242",
		Trace:          &TraceContext{TraceID: "a1b2c3d4e5f60718", SpanID: "0011223344556677", Parent: "8899aabbccddeeff"},
	}
}

// BenchmarkMarshalBinary pins the steady-state binary encode: append
// into a reused buffer, zero allocations.
func BenchmarkMarshalBinary(b *testing.B) {
	m := benchNotice()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := AppendFrame(buf[:0], m, FormatBinary)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkMarshalJSON is the ACL1 baseline for the same message.
func BenchmarkMarshalJSON(b *testing.B) {
	m := benchNotice()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmarshalBinary decodes the binary frame both ways so one
// run shows the delta: "alloc" materializes a fresh message per decode
// (the returned message and its variable-length fields), "into" reuses
// a caller-owned scratch through UnmarshalBinaryInto and — with the
// intern table warm — allocates nothing.
func BenchmarkUnmarshalBinary(b *testing.B) {
	frame, err := MarshalBinary(benchNotice())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alloc", func(b *testing.B) {
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalBinary(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		var m Message
		if err := UnmarshalBinaryInto(frame, &m); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := UnmarshalBinaryInto(frame, &m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUnmarshalJSON is the ACL1 decode baseline.
func BenchmarkUnmarshalJSON(b *testing.B) {
	frame, err := Marshal(benchNotice())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrameReuse pins the pooled frame-read path: raw frames
// drained through one FrameReader buffer, zero allocations per frame.
func BenchmarkReadFrameReuse(b *testing.B) {
	frame, err := MarshalBinary(benchNotice())
	if err != nil {
		b.Fatal(err)
	}
	stream := bytes.Repeat(frame, 64)
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		r.Reset(stream)
		for {
			if _, _, err := fr.Next(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireRoundTrip compares the full encode+decode round trip of
// the classifier notice through each codec — the number BENCH_wire.json
// records. frame-bytes reports the on-wire size per message.
func BenchmarkWireRoundTrip(b *testing.B) {
	run := func(b *testing.B, f Format) {
		m := benchNotice()
		probe, err := AppendFrame(nil, m, f)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame, err := AppendFrame(buf[:0], m, f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Unmarshal(frame); err != nil {
				b.Fatal(err)
			}
			buf = frame[:0]
		}
		b.ReportMetric(float64(len(probe)), "frame-bytes")
	}
	b.Run("json", func(b *testing.B) { run(b, FormatJSON) })
	b.Run("binary", func(b *testing.B) { run(b, FormatBinary) })
}
