package acl

import (
	"bytes"
	"testing"
	"time"
)

// TestUnmarshalBinaryIntoMatchesUnmarshalBinary decodes every fuzz seed
// both ways and requires identical results — the deterministic core of
// the differential fuzz target.
func TestUnmarshalBinaryIntoMatchesUnmarshalBinary(t *testing.T) {
	var scratch Message
	for i, src := range fuzzSeedMessages() {
		frame, err := MarshalBinary(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := UnmarshalBinary(frame)
		if err != nil {
			t.Fatal(err)
		}
		// One shared scratch across all seeds: each decode must fully
		// overwrite the previous message.
		if err := UnmarshalBinaryInto(frame, &scratch); err != nil {
			t.Fatalf("seed %d: UnmarshalBinaryInto: %v", i, err)
		}
		assertEqualMessages(t, "into equivalence", want, &scratch)
	}
}

// TestUnmarshalBinaryIntoOwnership pins the ownership contract: the
// decoded message shares no memory with the input frame, so the frame
// buffer can be reused immediately.
func TestUnmarshalBinaryIntoOwnership(t *testing.T) {
	frame, err := MarshalBinary(binarySample())
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := UnmarshalBinaryInto(frame, &m); err != nil {
		t.Fatal(err)
	}
	sender, conv, content := m.Sender.Name, m.ConversationID, string(m.Content)
	for i := range frame {
		frame[i] = 0xee
	}
	if m.Sender.Name != sender || m.ConversationID != conv || string(m.Content) != content {
		t.Fatal("decoded message aliases the input frame")
	}
}

// TestUnmarshalBinaryIntoResetsOptionalFields decodes a fully-populated
// message and then a minimal one into the same scratch: every optional
// field must come back to its zero value, not linger from the previous
// decode.
func TestUnmarshalBinaryIntoResetsOptionalFields(t *testing.T) {
	full, err := MarshalBinary(binarySample())
	if err != nil {
		t.Fatal(err)
	}
	minimal := &Message{
		Performative: Inform,
		Sender:       AID{Name: "a"},
		Receivers:    []AID{{Name: "b"}},
	}
	minFrame, err := MarshalBinary(minimal)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := UnmarshalBinaryInto(full, &m); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalBinaryInto(minFrame, &m); err != nil {
		t.Fatal(err)
	}
	if m.Content != nil || m.Language != "" || m.Ontology != "" || m.Protocol != "" ||
		m.ConversationID != "" || m.ReplyWith != "" || m.InReplyTo != "" ||
		!m.ReplyBy.IsZero() || m.Trace != nil {
		t.Fatalf("stale fields survived scratch reuse: %+v", m)
	}
	if len(m.Receivers) != 1 || m.Receivers[0].Name != "b" || len(m.Receivers[0].Addresses) != 0 {
		t.Fatalf("receivers not overwritten: %+v", m.Receivers)
	}
	if len(m.ReplyTo) != 0 || len(m.Sender.Addresses) != 0 {
		t.Fatalf("stale slices survived: %+v", m)
	}
}

// TestReadMessageIntoStream drains a mixed binary/JSON stream through
// one scratch, checking each decoded message and that binary content is
// served as a view over the reader's buffer (invalidated — not
// corrupted — by the next read).
func TestReadMessageIntoStream(t *testing.T) {
	first := binarySample()
	second := &Message{
		Performative:   Inform,
		Sender:         NewAID("cg-1", "site1"),
		Receivers:      []AID{NewAID("clg", "site1")},
		Content:        []byte(`{"step":2}`),
		ConversationID: "conv-json",
	}
	var stream bytes.Buffer
	for _, fm := range []struct {
		m *Message
		f Format
	}{{first, FormatBinary}, {second, FormatJSON}} {
		frame, err := AppendFrame(nil, fm.m, fm.f)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}

	fr := NewFrameReader(&stream)
	var m Message
	payload, err := fr.ReadMessageInto(&m)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 {
		t.Fatal("no payload view returned")
	}
	want, err := MarshalBinary(first)
	if err != nil {
		t.Fatal(err)
	}
	wantDecoded, err := UnmarshalBinary(want)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, "stream binary", wantDecoded, &m)
	content := string(m.Content) // copy before the view expires

	// The JSON frame decodes into the same scratch; stale binary
	// fields must not leak through omitempty.
	if _, err := fr.ReadMessageInto(&m); err != nil {
		t.Fatal(err)
	}
	if m.ConversationID != "conv-json" || string(m.Content) != `{"step":2}` {
		t.Fatalf("JSON decode into scratch: %+v", m)
	}
	if m.Ontology == first.Ontology && first.Ontology != "" {
		t.Fatal("stale ontology leaked into JSON decode")
	}
	if content != string(first.Content) {
		t.Fatalf("binary content view was wrong before expiry: %q", content)
	}
}

// TestUnmarshalBinaryIntoErrors mirrors the frame-level error cases of
// UnmarshalBinary.
func TestUnmarshalBinaryIntoErrors(t *testing.T) {
	var m Message
	cases := []struct {
		name string
		data []byte
	}{
		{"short", []byte("ACL2")},
		{"bad magic", append([]byte("ACL3"), 0, 0, 0, 0)},
		{"oversize", []byte{'A', 'C', 'L', '2', 0xff, 0xff, 0xff, 0xff}},
		{"length mismatch", []byte{'A', 'C', 'L', '2', 0, 0, 0, 9, 1}},
		{"bad performative", []byte{'A', 'C', 'L', '2', 0, 0, 0, 1, 0xee}},
	}
	for _, tc := range cases {
		wantErr := func() error { _, err := UnmarshalBinary(tc.data); return err }()
		gotErr := UnmarshalBinaryInto(tc.data, &m)
		if wantErr == nil || gotErr == nil {
			t.Fatalf("%s: expected both decoders to reject (want %v, got %v)", tc.name, wantErr, gotErr)
		}
		if intoErrClass(wantErr) != intoErrClass(gotErr) {
			t.Fatalf("%s: error class mismatch: %v vs %v", tc.name, wantErr, gotErr)
		}
	}
}

// TestUnmarshalBinaryIntoReplyBy exercises the one field with a parse
// step, both fresh and over a scratch that previously held a time.
func TestUnmarshalBinaryIntoReplyBy(t *testing.T) {
	withBy := &Message{
		Performative: Request,
		Sender:       AID{Name: "a"},
		Receivers:    []AID{{Name: "b"}},
		ReplyBy:      time.Date(2026, 8, 8, 12, 30, 0, 123456789, time.UTC),
	}
	frame, err := MarshalBinary(withBy)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := UnmarshalBinaryInto(frame, &m); err != nil {
		t.Fatal(err)
	}
	if !m.ReplyBy.Equal(withBy.ReplyBy) {
		t.Fatalf("reply-by = %v, want %v", m.ReplyBy, withBy.ReplyBy)
	}
	withBy.ReplyBy = time.Time{}
	bare, err := MarshalBinary(withBy)
	if err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalBinaryInto(bare, &m); err != nil {
		t.Fatal(err)
	}
	if !m.ReplyBy.IsZero() {
		t.Fatalf("stale reply-by survived: %v", m.ReplyBy)
	}
}
