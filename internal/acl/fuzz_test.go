package acl

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalFrame feeds arbitrary bytes to the frame decoder. Beyond
// not panicking, it checks the framing invariants: any input the
// decoder accepts must survive a Marshal/Unmarshal round trip (the
// header is derived entirely from the payload, so decode followed by
// encode must re-frame cleanly), and the declared payload length must
// match the bytes actually present.
func FuzzUnmarshalFrame(f *testing.F) {
	// Valid frames, including one carrying trace context.
	seeds := []*Message{
		{Performative: Inform, Sender: NewAID("cg-1", "site1"),
			Receivers: []AID{NewAID("clg", "site1")}, Content: []byte(`{"x":1}`),
			Language: "json", Ontology: OntologyGridManagement, ConversationID: "c1"},
		{Performative: Request, Sender: NewAID("clg", "site1"),
			Receivers: []AID{NewAID("pg-root", "site1")},
			Protocol:  ProtocolRequest, ReplyWith: "r1",
			Trace: &TraceContext{TraceID: "a1b2c3", SpanID: "1", Parent: "2"}},
		{Performative: CFP, Sender: NewAID("pg-root", "site1"),
			Receivers: []AID{NewAID("pg-1", "site1")},
			Protocol:  ProtocolContractNet, ConversationID: "conv-9"},
	}
	for _, m := range seeds {
		data, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Header edge cases: empty, short header, bad magic, truncated
	// payload, oversized declared length, length/body mismatch.
	f.Add([]byte{})
	f.Add([]byte{'A', 'C', 'L'})
	f.Add([]byte{'A', 'C', 'L', '2', 0, 0, 0, 0})
	f.Add([]byte{'A', 'C', 'L', '1', 0, 0, 0, 9, '{', '}'})
	f.Add([]byte{'A', 'C', 'L', '1', 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'A', 'C', 'L', '1', 0x01, 0x00, 0x00, 0x01})
	f.Add([]byte{'A', 'C', 'L', '1', 0, 0, 0, 2, '{', '}', '!'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted frames must be internally consistent with the header.
		if len(data) < 8 || (!bytes.Equal(data[:4], wireMagic[:]) && !bytes.Equal(data[:4], wireMagicBinary[:])) {
			t.Fatalf("decoder accepted a frame with a bad header: % x", data[:min(len(data), 8)])
		}
		if n := getUint32(data[4:8]); int(n) != len(data)-8 {
			t.Fatalf("decoder accepted length mismatch: header %d, payload %d", n, len(data)-8)
		}
		// Round trip: a decoded message re-frames and re-decodes.
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal of accepted message failed: %v", err)
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if m.Performative != m2.Performative || m.ConversationID != m2.ConversationID {
			t.Fatalf("round trip changed message: %+v != %+v", m, m2)
		}
		if (m.Trace == nil) != (m2.Trace == nil) {
			t.Fatalf("round trip changed trace presence")
		}
		if m.Trace != nil && *m.Trace != *m2.Trace {
			t.Fatalf("round trip changed trace context: %+v != %+v", m.Trace, m2.Trace)
		}
	})
}
