package acl

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
	"unicode/utf8"
)

// ACL2 binary wire format. A frame is the same fixed 8-byte header the
// JSON codec uses (4-byte magic + 4-byte big-endian payload length),
// but the magic is "ACL2" and the payload is a compact field-ordered
// binary encoding instead of JSON:
//
//	u8   performative code       (table below; 1-based, 0 is invalid)
//	aid  sender                  (str name, uvarint addr count, addrs)
//	uv   receiver count, aids
//	uv   reply-to count, aids
//	blob content                 (uvarint length + raw bytes)
//	str  language
//	str  encoding
//	str  ontology
//	str  protocol
//	str  conversation id
//	str  reply-with
//	str  in-reply-to
//	str  reply-by                (RFC3339Nano, empty for the zero time)
//	u8   trace flag              (0 none, 1 present)
//	str  trace id, span id, parent id   (only when the flag is 1)
//
// where str/blob are uvarint-length-prefixed byte strings and uv is an
// unsigned varint. Every length and count is validated against the
// bytes actually remaining, so a hostile frame cannot drive a large
// allocation. ReplyBy deliberately uses the same RFC3339Nano rendering
// encoding/json uses for time.Time, so a message round-trips to the
// identical value through either codec (FuzzCodecEquivalence pins
// this).
//
// Readers never negotiate a version: ReadFrame, FrameReader and
// Unmarshal dispatch on the magic of each individual frame, so an ACL1
// peer and an ACL2 peer interoperate on one connection and captured
// logs stay replayable regardless of which codec wrote them.

var wireMagicBinary = [4]byte{'A', 'C', 'L', '2'}

// Format identifies which wire codec framed a message.
type Format byte

// The wire formats a frame can carry.
const (
	FormatJSON   Format = 1 // "ACL1": JSON payload
	FormatBinary Format = 2 // "ACL2": binary payload
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "ACL1"
	case FormatBinary:
		return "ACL2"
	}
	return fmt.Sprintf("Format(%d)", byte(f))
}

// perfCodes maps each performative to its 1-based wire code. The table
// is append-only: codes are wire format, never renumber them.
var perfCodes = map[Performative]byte{
	Inform: 1, Request: 2, Agree: 3, Refuse: 4, Failure: 5,
	NotUnderstood: 6, CFP: 7, Propose: 8, AcceptProposal: 9,
	RejectProposal: 10, Subscribe: 11, Confirm: 12, Cancel: 13,
	QueryRef: 14,
}

// codePerfs is the decode side of perfCodes, index = code.
var codePerfs = [...]Performative{
	0: "", 1: Inform, 2: Request, 3: Agree, 4: Refuse, 5: Failure,
	6: NotUnderstood, 7: CFP, 8: Propose, 9: AcceptProposal,
	10: RejectProposal, 11: Subscribe, 12: Confirm, 13: Cancel,
	14: QueryRef,
}

// encPool recycles encode buffers for the pooled frame writers. The
// pooled value is a *[]byte so Put does not allocate. Ownership rule:
// a buffer belongs to the caller between getEncBuf and putEncBuf and
// must not be referenced afterwards — the framereuse gridlint check
// enforces this shape statically.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledBuf bounds what goes back into the pool: a one-off giant
// frame must not pin megabytes of capacity forever.
const maxPooledBuf = 1 << 20

func getEncBuf() *[]byte { return encPool.Get().(*[]byte) }

func putEncBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	encPool.Put(bp)
}

// MarshalBinary encodes a message into a self-delimiting ACL2 frame.
func MarshalBinary(m *Message) ([]byte, error) {
	return AppendFrame(nil, m, FormatBinary)
}

// AppendFrame appends a complete frame (header + payload) in the given
// format to dst and returns the extended slice. Passing a buffer with
// spare capacity makes the encode allocation-free; dst may be nil.
func AppendFrame(dst []byte, m *Message, f Format) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return dst, err
	}
	switch f {
	case FormatJSON:
		frame, err := Marshal(m)
		if err != nil {
			return dst, err
		}
		return append(dst, frame...), nil
	case FormatBinary:
	default:
		return dst, fmt.Errorf("acl: unknown wire format %d", byte(f))
	}
	base := len(dst)
	dst = append(dst, wireMagicBinary[:]...)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	dst = appendBinaryPayload(dst, m)
	n := len(dst) - base - 8
	if n > MaxFrameSize {
		return dst[:base], ErrFrameSize
	}
	putUint32(dst[base+4:base+8], uint32(n))
	return dst, nil
}

func appendBinaryPayload(dst []byte, m *Message) []byte {
	dst = append(dst, perfCodes[m.Performative])
	dst = appendAID(dst, m.Sender)
	dst = binary.AppendUvarint(dst, uint64(len(m.Receivers)))
	for _, r := range m.Receivers {
		dst = appendAID(dst, r)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.ReplyTo)))
	for _, r := range m.ReplyTo {
		dst = appendAID(dst, r)
	}
	dst = appendBlob(dst, m.Content)
	dst = appendString(dst, m.Language)
	dst = appendString(dst, m.Encoding)
	dst = appendString(dst, m.Ontology)
	dst = appendString(dst, m.Protocol)
	dst = appendString(dst, m.ConversationID)
	dst = appendString(dst, m.ReplyWith)
	dst = appendString(dst, m.InReplyTo)
	if m.ReplyBy.IsZero() {
		dst = appendString(dst, "")
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(time.RFC3339Nano))+8)
		mark := len(dst)
		dst = m.ReplyBy.AppendFormat(dst, time.RFC3339Nano)
		// Patch the provisional length with the rendered size. The
		// uvarint stays single-width because the estimate and the
		// rendering both fit well under 128 bytes.
		dst[mark-1] = byte(len(dst) - mark)
	}
	if m.Trace == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendString(dst, m.Trace.TraceID)
		dst = appendString(dst, m.Trace.SpanID)
		dst = appendString(dst, m.Trace.Parent)
	}
	return dst
}

func appendAID(dst []byte, a AID) []byte {
	dst = appendString(dst, a.Name)
	dst = binary.AppendUvarint(dst, uint64(len(a.Addresses)))
	for _, addr := range a.Addresses {
		dst = appendString(dst, addr)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBlob(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// WriteFrameBinary writes one ACL2-framed message to w using a pooled
// encode buffer: steady-state it performs zero allocations and exactly
// one Write call, so concurrent senders sharing a buffered writer
// coalesce cleanly.
func WriteFrameBinary(w io.Writer, m *Message) error {
	bp := getEncBuf()
	frame, err := AppendFrame((*bp)[:0], m, FormatBinary)
	if err != nil {
		putEncBuf(bp)
		return err
	}
	_, werr := w.Write(frame)
	*bp = frame
	putEncBuf(bp)
	return werr
}

// UnmarshalBinary decodes an ACL2 frame produced by MarshalBinary.
func UnmarshalBinary(data []byte) (*Message, error) {
	if len(data) < 8 {
		return nil, ErrShortFrame
	}
	if string(data[:4]) != string(wireMagicBinary[:]) {
		return nil, ErrBadMagic
	}
	n := getUint32(data[4:8])
	if n > MaxFrameSize {
		return nil, ErrFrameSize
	}
	if len(data) != int(8+n) {
		return nil, fmt.Errorf("%w: header says %d payload bytes, have %d", ErrShortFrame, n, len(data)-8)
	}
	return unmarshalBinaryPayload(data[8:])
}

func unmarshalBinaryPayload(payload []byte) (*Message, error) {
	d := binDecoder{data: payload}
	var m Message
	code := d.u8()
	if int(code) >= len(codePerfs) || code == 0 {
		if d.err == nil {
			return nil, fmt.Errorf("%w: binary code %d", ErrBadPerformative, code)
		}
		return nil, d.err
	}
	m.Performative = codePerfs[code]
	m.Sender = d.aid()
	m.Receivers = d.aids()
	m.ReplyTo = d.aids()
	m.Content = d.blob()
	m.Language = d.str()
	m.Encoding = d.str()
	m.Ontology = d.str()
	m.Protocol = d.str()
	m.ConversationID = d.str()
	m.ReplyWith = d.str()
	m.InReplyTo = d.str()
	if by := d.str(); by != "" && d.err == nil {
		t, err := time.Parse(time.RFC3339Nano, by)
		if err != nil {
			return nil, fmt.Errorf("acl: decode reply-by: %w", err)
		}
		m.ReplyBy = t
	}
	switch d.u8() {
	case 0:
	case 1:
		m.Trace = &TraceContext{TraceID: d.str(), SpanID: d.str(), Parent: d.str()}
	default:
		if d.err == nil {
			return nil, fmt.Errorf("acl: decode: bad trace flag")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrShortFrame, len(d.data)-d.off)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// binDecoder is a bounds-checked cursor over a binary payload. The
// first malformation latches err; subsequent reads return zero values.
type binDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *binDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated binary payload at offset %d", ErrShortFrame, d.off)
	}
}

func (d *binDecoder) u8() byte {
	if d.err != nil || d.off >= len(d.data) {
		d.fail()
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

// length reads a uvarint declaring how many items follow and verifies
// the remaining bytes can hold them at minSize bytes apiece, so a
// hostile count can never drive a large allocation. Byte strings pass
// minSize 1.
func (d *binDecoder) count(minSize int) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 || v > uint64((len(d.data)-d.off-n)/minSize) {
		d.fail()
		return 0
	}
	d.off += n
	return int(v)
}

func (d *binDecoder) length() int { return d.count(1) }

func (d *binDecoder) str() string {
	n := d.length()
	if d.err != nil || n == 0 {
		return ""
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	// String fields are UTF-8 on the wire. The JSON codec cannot
	// represent anything else (encoding/json substitutes U+FFFD), so
	// accepting raw bytes here would make the two codecs disagree on
	// the same message.
	if !utf8.Valid(b) {
		if d.err == nil {
			d.err = fmt.Errorf("%w at offset %d", ErrBadString, d.off-n)
		}
		return ""
	}
	return string(b)
}

func (d *binDecoder) blob() []byte {
	n := d.length()
	if d.err != nil || n == 0 {
		// Zero-length decodes to nil, matching the JSON codec's
		// omitempty round trip.
		return nil
	}
	out := make([]byte, n)
	copy(out, d.data[d.off:])
	d.off += n
	return out
}

func (d *binDecoder) aid() AID {
	var a AID
	a.Name = d.str()
	// Every address costs at least its length byte.
	n := d.count(1)
	if d.err != nil || n == 0 {
		return a
	}
	a.Addresses = make([]string, n)
	for i := range a.Addresses {
		a.Addresses[i] = d.str()
	}
	return a
}

func (d *binDecoder) aids() []AID {
	// Every AID costs at least a name length byte and an address count
	// byte.
	n := d.count(2)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]AID, n)
	for i := range out {
		out[i] = d.aid()
	}
	return out
}
