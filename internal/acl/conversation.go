package acl

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IDSource mints unique conversation and reply-with identifiers. It is a
// process-local counter scoped by an owner name, which keeps identifiers
// unique across agents without global mutable state.
type IDSource struct {
	owner string
	n     atomic.Uint64
}

// NewIDSource returns an identifier source for the named owner.
func NewIDSource(owner string) *IDSource { return &IDSource{owner: owner} }

// Next returns a fresh identifier such as "collector-1#17".
func (s *IDSource) Next() string {
	return fmt.Sprintf("%s#%d", s.owner, s.n.Add(1))
}

// Role distinguishes the two sides of a conversation protocol.
type Role int

// Conversation roles.
const (
	Initiator Role = iota
	Responder
)

// State is a node in a protocol state machine.
type State string

// Conversation states shared by the supported protocols.
const (
	StateStart     State = "start"
	StateRequested State = "requested"
	StateAgreed    State = "agreed"
	StateCFPSent   State = "cfp-sent"
	StateProposed  State = "proposed"
	StateAwarded   State = "awarded"
	StateDone      State = "done"
	StateFailed    State = "failed"
)

// Terminal reports whether the state ends the conversation.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// transition describes one legal (state, performative) -> state edge.
type transition struct {
	from State
	p    Performative
	to   State
}

// requestProto is the fipa-request protocol:
//
//	request -> agree -> inform(done) | failure
//	request -> refuse
//	request -> inform (short form: responder answers immediately)
var requestProto = []transition{
	{StateStart, Request, StateRequested},
	{StateRequested, Agree, StateAgreed},
	{StateRequested, Refuse, StateFailed},
	{StateRequested, NotUnderstood, StateFailed},
	{StateRequested, Inform, StateDone},
	{StateRequested, Failure, StateFailed},
	{StateAgreed, Inform, StateDone},
	{StateAgreed, Failure, StateFailed},
	{StateAgreed, Cancel, StateFailed},
}

// contractNetProto is the fipa-contract-net protocol:
//
//	cfp -> propose|refuse ; propose -> accept-proposal|reject-proposal ;
//	accept-proposal -> inform(result)|failure
var contractNetProto = []transition{
	{StateStart, CFP, StateCFPSent},
	{StateCFPSent, Propose, StateProposed},
	{StateCFPSent, Refuse, StateFailed},
	{StateCFPSent, NotUnderstood, StateFailed},
	{StateProposed, AcceptProposal, StateAwarded},
	{StateProposed, RejectProposal, StateFailed},
	{StateAwarded, Inform, StateDone},
	{StateAwarded, Failure, StateFailed},
}

// subscribeProto is a pragmatic fipa-subscribe: subscribe -> agree|refuse,
// then any number of informs; cancel ends it.
var subscribeProto = []transition{
	{StateStart, Subscribe, StateRequested},
	{StateRequested, Agree, StateAgreed},
	{StateRequested, Refuse, StateFailed},
	{StateAgreed, Inform, StateAgreed},
	{StateAgreed, Cancel, StateDone},
	{StateAgreed, Failure, StateFailed},
}

func protocolTable(name string) ([]transition, bool) {
	switch name {
	case ProtocolRequest:
		return requestProto, true
	case ProtocolContractNet:
		return contractNetProto, true
	case ProtocolSubscribe:
		return subscribeProto, true
	}
	return nil, false
}

// Conversation tracks one protocol instance. It is safe for concurrent
// use: a container may deliver messages from several goroutines.
type Conversation struct {
	ID       string
	Protocol string

	mu    sync.Mutex
	state State
	table []transition
}

// NewConversation starts tracking a conversation under the named FIPA
// protocol. Unknown protocols are rejected.
func NewConversation(id, protocol string) (*Conversation, error) {
	table, ok := protocolTable(protocol)
	if !ok {
		return nil, fmt.Errorf("acl: unknown protocol %q", protocol)
	}
	return &Conversation{ID: id, Protocol: protocol, state: StateStart, table: table}, nil
}

// State returns the current protocol state.
func (c *Conversation) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Advance applies the performative of a sent or received message to the
// state machine. It returns the new state, or an error (leaving the state
// unchanged) when the act is illegal in the current state.
func (c *Conversation) Advance(p Performative) (State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state.Terminal() {
		return c.state, fmt.Errorf("acl: conversation %s already %s", c.ID, c.state)
	}
	for _, t := range c.table {
		if t.from == c.state && t.p == p {
			c.state = t.to
			return c.state, nil
		}
	}
	return c.state, fmt.Errorf("acl: %s not allowed in state %s of %s", p, c.state, c.Protocol)
}

// Tracker indexes live conversations by ID for one agent or container.
// The zero value is ready to use.
type Tracker struct {
	mu    sync.Mutex
	convs map[string]*Conversation
}

// Open creates and registers a conversation. Opening an existing ID
// returns the already-registered conversation.
func (t *Tracker) Open(id, protocol string) (*Conversation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.convs[id]; ok {
		return c, nil
	}
	c, err := NewConversation(id, protocol)
	if err != nil {
		return nil, err
	}
	if t.convs == nil {
		t.convs = make(map[string]*Conversation)
	}
	t.convs[id] = c
	return c, nil
}

// Get returns the conversation with the given ID, if tracked.
func (t *Tracker) Get(id string) (*Conversation, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.convs[id]
	return c, ok
}

// Close removes a conversation from the tracker.
func (t *Tracker) Close(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.convs, id)
}

// Len returns the number of tracked conversations.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.convs)
}

// Sweep removes all conversations in terminal states and returns how many
// were removed.
func (t *Tracker) Sweep() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, c := range t.convs {
		if c.State().Terminal() {
			delete(t.convs, id)
			n++
		}
	}
	return n
}
