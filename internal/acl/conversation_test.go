package acl

import (
	"strings"
	"sync"
	"testing"
)

func TestIDSourceUnique(t *testing.T) {
	s := NewIDSource("pg-root")
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				id := s.Next()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %s", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1000 {
		t.Fatalf("got %d ids, want 1000", len(seen))
	}
	if !strings.HasPrefix(s.Next(), "pg-root#") {
		t.Error("id missing owner prefix")
	}
}

func TestRequestProtocolHappyPath(t *testing.T) {
	c, err := NewConversation("c1", ProtocolRequest)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		p    Performative
		want State
	}{
		{Request, StateRequested},
		{Agree, StateAgreed},
		{Inform, StateDone},
	}
	for _, s := range steps {
		got, err := c.Advance(s.p)
		if err != nil {
			t.Fatalf("%s: %v", s.p, err)
		}
		if got != s.want {
			t.Fatalf("%s -> %s, want %s", s.p, got, s.want)
		}
	}
	if !c.State().Terminal() {
		t.Error("done should be terminal")
	}
	if _, err := c.Advance(Inform); err == nil {
		t.Error("advance past terminal state should fail")
	}
}

func TestRequestProtocolRefuse(t *testing.T) {
	c, _ := NewConversation("c1", ProtocolRequest)
	c.Advance(Request)
	if st, err := c.Advance(Refuse); err != nil || st != StateFailed {
		t.Fatalf("refuse -> %s, %v", st, err)
	}
}

func TestRequestProtocolShortForm(t *testing.T) {
	// Responder may answer inform directly without agree.
	c, _ := NewConversation("c1", ProtocolRequest)
	c.Advance(Request)
	if st, err := c.Advance(Inform); err != nil || st != StateDone {
		t.Fatalf("short inform -> %s, %v", st, err)
	}
}

func TestContractNetHappyPath(t *testing.T) {
	c, _ := NewConversation("cn1", ProtocolContractNet)
	for _, p := range []Performative{CFP, Propose, AcceptProposal, Inform} {
		if _, err := c.Advance(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	if c.State() != StateDone {
		t.Fatalf("state = %s", c.State())
	}
}

func TestContractNetRejectAndFailure(t *testing.T) {
	c, _ := NewConversation("cn2", ProtocolContractNet)
	c.Advance(CFP)
	c.Advance(Propose)
	if st, _ := c.Advance(RejectProposal); st != StateFailed {
		t.Fatalf("reject -> %s", st)
	}

	c2, _ := NewConversation("cn3", ProtocolContractNet)
	c2.Advance(CFP)
	c2.Advance(Propose)
	c2.Advance(AcceptProposal)
	if st, _ := c2.Advance(Failure); st != StateFailed {
		t.Fatalf("failure -> %s", st)
	}
}

func TestIllegalTransitionKeepsState(t *testing.T) {
	c, _ := NewConversation("c1", ProtocolRequest)
	c.Advance(Request)
	if _, err := c.Advance(Propose); err == nil {
		t.Fatal("propose should be illegal in fipa-request")
	}
	if c.State() != StateRequested {
		t.Fatalf("state changed on illegal transition: %s", c.State())
	}
}

func TestSubscribeProtocolStream(t *testing.T) {
	c, _ := NewConversation("s1", ProtocolSubscribe)
	c.Advance(Subscribe)
	c.Advance(Agree)
	for i := 0; i < 5; i++ {
		if st, err := c.Advance(Inform); err != nil || st != StateAgreed {
			t.Fatalf("inform %d -> %s, %v", i, st, err)
		}
	}
	if st, _ := c.Advance(Cancel); st != StateDone {
		t.Fatalf("cancel -> %s", st)
	}
}

func TestUnknownProtocol(t *testing.T) {
	if _, err := NewConversation("x", "fipa-interpretive-dance"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestTracker(t *testing.T) {
	var tr Tracker
	c1, err := tr.Open("a", ProtocolRequest)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := tr.Open("a", ProtocolRequest) // idempotent open
	if err != nil || c1 != c2 {
		t.Fatal("Open not idempotent")
	}
	if _, err := tr.Open("bad", "nope"); err == nil {
		t.Fatal("Open accepted unknown protocol")
	}
	if got, ok := tr.Get("a"); !ok || got != c1 {
		t.Fatal("Get failed")
	}
	if _, ok := tr.Get("zzz"); ok {
		t.Fatal("Get found phantom conversation")
	}
	tr.Open("b", ProtocolContractNet)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}

	// Finish conversation a, then sweep.
	c1.Advance(Request)
	c1.Advance(Inform)
	if n := tr.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after sweep = %d", tr.Len())
	}
	tr.Close("b")
	if tr.Len() != 0 {
		t.Fatalf("Len after close = %d", tr.Len())
	}
}
