package acl

import (
	"errors"
	"testing"
)

// intoErrClass buckets decode errors so the differential target can
// require the Into path to fail the same WAY the allocating path does,
// not merely fail. The two decoders are independent implementations;
// agreeing on the error class for every hostile input is part of the
// contract.
func intoErrClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBadMagic):
		return "magic"
	case errors.Is(err, ErrFrameSize):
		return "size"
	case errors.Is(err, ErrShortFrame):
		return "short"
	case errors.Is(err, ErrBadPerformative):
		return "performative"
	case errors.Is(err, ErrNoPerformative),
		errors.Is(err, ErrNoSender),
		errors.Is(err, ErrNoReceiver):
		return "invalid"
	default:
		// Reply-by parse failures and bad trace flags land here; both
		// decoders produce them at the same walk positions.
		return "malformed"
	}
}

// FuzzUnmarshalBinaryIntoEquivalence differentially fuzzes the two
// binary decoders: for every input — valid, truncated, or hostile —
// UnmarshalBinaryInto must accept exactly when UnmarshalBinary accepts,
// produce a deep-equal message when both accept (even when decoding
// into a scratch already dirty with an unrelated message, which catches
// stale-field reuse), and fail with the same error class when both
// reject.
func FuzzUnmarshalBinaryIntoEquivalence(f *testing.F) {
	var dirtySeed []byte
	for _, m := range fuzzSeedMessages() {
		bf, err := MarshalBinary(m)
		if err != nil {
			f.Fatal(err)
		}
		if dirtySeed == nil {
			dirtySeed = bf
		}
		f.Add(bf)
		f.Add(bf[:len(bf)-1])
		f.Add(bf[:8+len(bf)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{'A', 'C', 'L', '2', 0, 0, 0, 0})
	f.Add([]byte{'A', 'C', 'L', '1', 0, 0, 0, 2, '{', '}'})
	f.Add([]byte{'A', 'C', 'L', '2', 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := UnmarshalBinary(data)

		var fresh Message
		freshErr := UnmarshalBinaryInto(data, &fresh)
		if (wantErr == nil) != (freshErr == nil) {
			t.Fatalf("acceptance disagrees: UnmarshalBinary err=%v, Into err=%v", wantErr, freshErr)
		}
		if wantErr != nil {
			if wc, fc := intoErrClass(wantErr), intoErrClass(freshErr); wc != fc {
				t.Fatalf("error class disagrees: UnmarshalBinary %q (%v), Into %q (%v)", wc, wantErr, fc, freshErr)
			}
			return
		}
		fuzzEqualMessages(t, want, &fresh)

		// Decode again into a scratch pre-filled with an unrelated,
		// fully-populated message: every field must still come out
		// identical, proving the Into path overwrites rather than
		// merges.
		var dirty Message
		if err := UnmarshalBinaryInto(dirtySeed, &dirty); err != nil {
			t.Fatalf("seeding dirty scratch: %v", err)
		}
		if err := UnmarshalBinaryInto(data, &dirty); err != nil {
			t.Fatalf("dirty-scratch decode rejected an accepted frame: %v", err)
		}
		fuzzEqualMessages(t, want, &dirty)
	})
}
