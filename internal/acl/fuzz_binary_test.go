package acl

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedMessages are representative grid messages covering every
// field combination the codecs must agree on.
func fuzzSeedMessages() []*Message {
	return []*Message{
		binarySample(),
		{Performative: Inform, Sender: NewAID("cg-1", "site1"),
			Receivers: []AID{NewAID("clg", "site1")}, Content: []byte(`{"x":1}`),
			Language: "json", Ontology: OntologyGridManagement, ConversationID: "c1"},
		{Performative: Request, Sender: NewAID("clg", "site1"),
			Receivers: []AID{NewAID("pg-root", "site1")},
			Protocol:  ProtocolRequest, ReplyWith: "r1",
			ReplyBy:   time.Date(2026, 8, 5, 9, 0, 0, 0, time.FixedZone("", -3*3600)),
			Trace:     &TraceContext{TraceID: "a1b2c3", SpanID: "1", Parent: "2"}},
		{Performative: CFP, Sender: NewAID("pg-root", "site1"),
			Receivers: []AID{NewAID("pg-1", "site1"), NewAID("pg-2", "site1")},
			ReplyTo:   []AID{NewAID("pg-standby", "site1")},
			Protocol:  ProtocolContractNet, ConversationID: "conv-9"},
	}
}

// FuzzCodecEquivalence is the differential target: any frame either
// decoder accepts must round-trip to the identical message through the
// JSON codec and through the binary codec, in both directions. A field
// one codec preserves and the other drops, or a value the codecs
// normalize differently, fails here.
func FuzzCodecEquivalence(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		jf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(jf)
		bf, err := MarshalBinary(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// JSON direction.
		jframe, err := Marshal(m)
		if err != nil {
			t.Fatalf("JSON re-marshal of accepted message failed: %v", err)
		}
		jm, err := Unmarshal(jframe)
		if err != nil {
			t.Fatalf("JSON round trip failed: %v", err)
		}
		// Binary direction.
		bframe, err := MarshalBinary(m)
		if err != nil {
			t.Fatalf("binary re-marshal of accepted message failed: %v", err)
		}
		bm, err := Unmarshal(bframe)
		if err != nil {
			t.Fatalf("binary round trip failed: %v", err)
		}
		fuzzEqualMessages(t, jm, bm)
		// And vice versa: re-encoding each result through the other
		// codec converges instead of drifting.
		jframe2, err := MarshalBinary(jm)
		if err != nil {
			t.Fatalf("binary re-marshal of JSON result failed: %v", err)
		}
		jm2, err := Unmarshal(jframe2)
		if err != nil {
			t.Fatalf("cross round trip failed: %v", err)
		}
		fuzzEqualMessages(t, bm, jm2)
	})
}

// fuzzEqualMessages is the fatal-on-mismatch variant used inside fuzz
// bodies.
func fuzzEqualMessages(t *testing.T, a, b *Message) {
	t.Helper()
	assertEqualMessages(t, "codec equivalence", a, b)
	if t.Failed() {
		t.FailNow()
	}
}

// FuzzUnmarshalBinaryFrame feeds hostile bytes to the binary decoder:
// truncated fields, oversized declared lengths, bad magic, hostile
// counts. Beyond not panicking and not over-allocating, any accepted
// frame must re-frame and re-decode to the same message.
func FuzzUnmarshalBinaryFrame(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		bf, err := MarshalBinary(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bf)
		// Truncations of a valid frame probe every field boundary.
		f.Add(bf[:len(bf)-1])
		f.Add(bf[:8+len(bf)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{'A', 'C', 'L', '2'})
	f.Add([]byte{'A', 'C', 'L', '2', 0, 0, 0, 0})
	f.Add([]byte{'A', 'C', 'L', '3', 0, 0, 0, 0})
	f.Add([]byte{'A', 'C', 'L', '2', 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'A', 'C', 'L', '2', 0, 0, 0, 1, 1})
	// Huge declared receiver count with no bytes behind it.
	f.Add([]byte{'A', 'C', 'L', '2', 0, 0, 0, 9, 1, 1, 'a', 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		if len(data) < 8 || !bytes.Equal(data[:4], wireMagicBinary[:]) {
			t.Fatalf("binary decoder accepted a frame with a bad header: % x", data[:min(len(data), 8)])
		}
		if n := getUint32(data[4:8]); int(n) != len(data)-8 {
			t.Fatalf("binary decoder accepted length mismatch: header %d, payload %d", n, len(data)-8)
		}
		out, err := MarshalBinary(m)
		if err != nil {
			t.Fatalf("re-marshal of accepted message failed: %v", err)
		}
		m2, err := UnmarshalBinary(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		fuzzEqualMessages(t, m, m2)
	})
}
