package acl

import "sync"

// String interning for the decode hot path. The header strings of grid
// traffic — ontology, protocol, language, site-derived agent names,
// per-connection conversation ids — draw from a small working set, yet
// the allocating decoder materializes a fresh copy of each per message.
// An Intern table deduplicates them: the first decode of a distinct
// string allocates once, every later decode returns the shared copy for
// free.
//
// The table is bounded with two generations (cur and old, each at most
// maxPerGen entries). Inserts go to cur; when cur fills, it becomes old
// and a fresh cur starts, dropping the previous old generation. A
// lookup that hits old re-inserts the string into cur, so strings that
// stay hot survive flips indefinitely while a churn of distinct strings
// (say, hostile conversation ids) can never grow the table past
// 2×maxPerGen entries of at most maxInternLen bytes each.

// maxInternLen caps the length of strings worth interning. Longer
// strings are almost certainly unique (payload-sized values, not header
// vocabulary) and would waste table space, so they are copied instead.
const maxInternLen = 256

// Intern is a bounded, concurrency-safe string intern table. The zero
// value is not usable; construct with NewIntern. A nil *Intern is valid
// and simply copies every string.
type Intern struct {
	max int // per-generation entry cap

	mu sync.RWMutex
	// cur and old are guarded by mu. Values equal their keys; the map
	// exists so a []byte probe compiles to the no-alloc
	// map[string(b)] lookup form.
	cur map[string]string
	old map[string]string
}

// NewIntern returns an intern table holding at most maxPerGen entries
// per generation (two generations are live at once).
func NewIntern(maxPerGen int) *Intern {
	if maxPerGen < 1 {
		maxPerGen = 1
	}
	return &Intern{max: maxPerGen, cur: make(map[string]string, maxPerGen)}
}

// Intern returns a string equal to b that never aliases b's backing
// array: hits return the table's shared copy, misses allocate a fresh
// copy and remember it. Empty and oversized inputs are never tabled.
func (t *Intern) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if t == nil || len(b) > maxInternLen {
		return string(b)
	}
	t.mu.RLock()
	s, ok := t.cur[string(b)]
	var stale bool
	if !ok {
		s, ok = t.old[string(b)]
		stale = ok
	}
	t.mu.RUnlock()
	if ok {
		if stale {
			// Promote so the string survives the next generation flip.
			t.insert(s)
		}
		return s
	}
	// string(b) here is the single allocation a cold string costs; the
	// copy also guarantees the interned value cannot alias a reused
	// frame buffer.
	s = string(b)
	t.insert(s)
	return s
}

func (t *Intern) insert(s string) {
	t.mu.Lock()
	if _, dup := t.cur[s]; !dup {
		if len(t.cur) >= t.max {
			t.old = t.cur
			t.cur = make(map[string]string, t.max)
		}
		t.cur[s] = s
	}
	t.mu.Unlock()
}

// Len reports the number of live table entries across both generations
// (a promoted string present in both counts twice). It exists for the
// boundedness tests: Len never exceeds 2×maxPerGen.
func (t *Intern) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.cur) + len(t.old)
}

// hotStrings is the package-level table the Into decode path routes
// header strings through. 4096 entries per generation comfortably holds
// the header vocabulary of a large grid (performatives, ontologies,
// protocols, agent names, live conversation ids) in under ~2 MiB worst
// case.
var hotStrings = NewIntern(4096)
