package acl

// TraceContext is the causal-tracing context a message carries in-band
// across grid boundaries. IDs are opaque strings minted by
// internal/trace (hex-encoded 64-bit values); acl only transports them.
// The envelope lives here rather than in internal/trace so the wire
// codec, Reply and Clone can propagate it without acl depending on the
// tracing subsystem.
type TraceContext struct {
	// TraceID names the end-to-end trace every span of one causal
	// chain shares (one SNMP poll and everything it triggers).
	TraceID string `json:"trace_id,omitempty"`
	// SpanID names the span that emitted the message. The receiver
	// parents its own span under it.
	SpanID string `json:"span_id,omitempty"`
	// Parent names the emitting span's own parent. Kept so a hop whose
	// receiver is uninstrumented still reconstructs into the tree.
	Parent string `json:"parent_id,omitempty"`
}

// IsZero reports whether the context carries no trace.
func (tc TraceContext) IsZero() bool { return tc.TraceID == "" }

// ParentSpan returns the span ID a receiver should parent under: the
// emitting span when known, else that span's own parent.
func (tc TraceContext) ParentSpan() string {
	if tc.SpanID != "" {
		return tc.SpanID
	}
	return tc.Parent
}

// Child derives the context a causally-dependent message should carry
// when the forwarding stage opens no span of its own: same trace,
// parented at the emitting span. Instrumented stages overwrite this by
// stamping their own span onto the message instead. Nil-safe: a nil or
// traceless receiver yields nil, so untraced replies stay untraced.
func (tc *TraceContext) Child() *TraceContext {
	if tc == nil || tc.IsZero() {
		return nil
	}
	return &TraceContext{TraceID: tc.TraceID, Parent: tc.ParentSpan()}
}
