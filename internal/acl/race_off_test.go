//go:build !race

package acl

const raceEnabled = false
