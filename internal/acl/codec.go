package acl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire format: a fixed 8-byte header (4-byte magic + 4-byte big-endian
// payload length) followed by the payload. The magic selects the
// payload codec — "ACL1" is the JSON encoding of the Message, "ACL2"
// the binary encoding (see binary.go) — and guards against
// cross-protocol connections; the length bound guards against hostile
// or corrupt frames. Readers dispatch per frame, so mixed-version
// peers share one connection.

var wireMagic = [4]byte{'A', 'C', 'L', '1'}

// MaxFrameSize bounds a single encoded message. Batches of collected data
// are chunked below this by the collector grid.
const MaxFrameSize = 16 << 20

// Codec errors.
var (
	ErrBadMagic   = errors.New("acl: bad frame magic")
	ErrFrameSize  = errors.New("acl: frame exceeds maximum size")
	ErrShortFrame = errors.New("acl: short frame")
	ErrBadString  = errors.New("acl: string field is not valid UTF-8")
)

// Marshal encodes a message into a self-delimiting frame.
func Marshal(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("acl: encode: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return nil, ErrFrameSize
	}
	buf := make([]byte, 8+len(payload))
	copy(buf, wireMagic[:])
	putUint32(buf[4:8], uint32(len(payload)))
	copy(buf[8:], payload)
	return buf, nil
}

// Unmarshal decodes a frame produced by Marshal or MarshalBinary,
// dispatching on the frame magic.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 8 {
		return nil, ErrShortFrame
	}
	if bytes.Equal(data[:4], wireMagicBinary[:]) {
		return UnmarshalBinary(data)
	}
	if !bytes.Equal(data[:4], wireMagic[:]) {
		return nil, ErrBadMagic
	}
	n := getUint32(data[4:8])
	if n > MaxFrameSize {
		return nil, ErrFrameSize
	}
	if len(data) != int(8+n) {
		return nil, fmt.Errorf("%w: header says %d payload bytes, have %d", ErrShortFrame, n, len(data)-8)
	}
	var m Message
	if err := json.Unmarshal(data[8:], &m); err != nil {
		return nil, fmt.Errorf("acl: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteFrame writes one framed message to w.
func WriteFrame(w io.Writer, m *Message) error {
	buf, err := Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one framed message from r, dispatching on the frame
// magic (ACL1 JSON or ACL2 binary). It returns io.EOF when the stream
// ends cleanly at a frame boundary. Each call allocates a fresh payload
// buffer; loops that drain a connection should use a FrameReader, which
// reuses one buffer across frames.
func ReadFrame(r io.Reader) (*Message, error) {
	fr := FrameReader{r: r}
	return fr.ReadMessage()
}

// FrameReader reads framed messages from a stream through one reusable
// payload buffer, so the steady-state frame read performs zero
// allocations beyond the decoded message itself. Not safe for
// concurrent use; a connection's read loop owns its FrameReader.
type FrameReader struct {
	r   io.Reader
	buf []byte
	hdr [8]byte // header scratch; a field so it does not escape per call
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads one frame and returns its format and raw payload bytes.
// The payload slice aliases the reader's internal buffer and is valid
// only until the following Next call; callers that keep it must copy.
// It returns io.EOF when the stream ends cleanly at a frame boundary.
func (fr *FrameReader) Next() (Format, []byte, error) {
	hdr := fr.hdr[:]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("acl: read header: %w", err)
	}
	var f Format
	switch {
	case bytes.Equal(hdr[:4], wireMagic[:]):
		f = FormatJSON
	case bytes.Equal(hdr[:4], wireMagicBinary[:]):
		f = FormatBinary
	default:
		return 0, nil, ErrBadMagic
	}
	n := getUint32(hdr[4:8])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameSize
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("acl: read payload: %w", err)
	}
	return f, payload, nil
}

// ReadMessage reads and decodes the next message, whichever codec
// framed it.
func (fr *FrameReader) ReadMessage() (*Message, error) {
	f, payload, err := fr.Next()
	if err != nil {
		return nil, err
	}
	if f == FormatBinary {
		return unmarshalBinaryPayload(payload)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("acl: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
