package acl

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMarshalRoundtrip(t *testing.T) {
	m := testMsg()
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	m := testMsg()
	m.Sender = AID{}
	if _, err := Marshal(m); !errors.Is(err, ErrNoSender) {
		t.Fatalf("Marshal = %v, want ErrNoSender", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Marshal(testMsg())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", []byte{1, 2, 3}, ErrShortFrame},
		{"bad magic", append([]byte("XXXX"), good[4:]...), ErrBadMagic},
		{"truncated payload", good[:len(good)-3], ErrShortFrame},
		{"oversize header", func() []byte {
			b := append([]byte(nil), good...)
			putUint32(b[4:8], MaxFrameSize+1)
			return b
		}(), ErrFrameSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("Unmarshal = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestUnmarshalCorruptJSON(t *testing.T) {
	payload := []byte("{not json")
	buf := make([]byte, 8+len(payload))
	copy(buf, wireMagic[:])
	putUint32(buf[4:8], uint32(len(payload)))
	copy(buf[8:], payload)
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("Unmarshal accepted corrupt JSON")
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{testMsg(), testMsg(), testMsg()}
	msgs[1].Performative = Request
	msgs[2].Content = nil
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Performative != want.Performative {
			t.Fatalf("frame %d: performative %s, want %s", i, got.Performative, want.Performative)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF at end of stream, got %v", err)
	}
}

func TestReadFramePartialHeader(t *testing.T) {
	r := bytes.NewReader(wireMagic[:2])
	if _, err := ReadFrame(r); err == nil || err == io.EOF {
		t.Fatalf("partial header should be a real error, got %v", err)
	}
}

// genMessage builds a random-but-valid message for property testing.
func genMessage(r *rand.Rand) *Message {
	perf := []Performative{Inform, Request, Agree, Refuse, Failure, CFP,
		Propose, AcceptProposal, RejectProposal, Subscribe, Confirm}
	rndStr := func(n int) string {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
		b := make([]byte, 1+r.Intn(n))
		for i := range b {
			b[i] = alpha[r.Intn(len(alpha))]
		}
		return string(b)
	}
	m := &Message{
		Performative:   perf[r.Intn(len(perf))],
		Sender:         NewAID(rndStr(8), rndStr(6)),
		ConversationID: rndStr(10),
		Language:       rndStr(4),
		Ontology:       rndStr(12),
	}
	for i := 0; i <= r.Intn(3); i++ {
		m.Receivers = append(m.Receivers, NewAID(rndStr(8), rndStr(6)))
	}
	if r.Intn(2) == 0 {
		content := make([]byte, r.Intn(256))
		r.Read(content)
		m.Content = content
	}
	return m
}

func TestCodecRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := genMessage(rand.New(rand.NewSource(seed)))
		buf, err := Marshal(m)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		// Normalize empty-vs-nil content for comparison.
		if len(m.Content) == 0 {
			m.Content = nil
		}
		if len(got.Content) == 0 {
			got.Content = nil
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUint32Roundtrip(t *testing.T) {
	f := func(v uint32) bool {
		var b [4]byte
		putUint32(b[:], v)
		return getUint32(b[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
