package acl

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// allPerformatives enumerates every supported communicative act, so the
// round-trip property provably covers each one.
var allPerformatives = []Performative{
	Inform, Request, Agree, Refuse, Failure, NotUnderstood, CFP,
	Propose, AcceptProposal, RejectProposal, Subscribe, Confirm,
	Cancel, QueryRef,
}

func TestAllPerformativesEnumerated(t *testing.T) {
	for _, p := range allPerformatives {
		if !p.Valid() {
			t.Fatalf("%q not valid", p)
		}
	}
	// Guard against the production set growing without this test noticing:
	// an unlisted-but-valid performative can't exist, but a miscount can.
	if len(allPerformatives) != 14 {
		t.Fatalf("performative count = %d, want 14", len(allPerformatives))
	}
}

// randString draws a short string from a charset that exercises JSON
// escaping: quotes, backslashes, control characters and multi-byte runes.
func randString(rng *rand.Rand, minLen int) string {
	alphabet := []rune(`abcXYZ059 -_./:"\{}[]` + "\n\tüλ網")
	n := minLen + rng.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

func randAID(rng *rand.Rand) AID {
	var addrs []string
	for i := rng.Intn(3); i > 0; i-- {
		addrs = append(addrs, fmt.Sprintf("inproc://n%d", rng.Intn(100)))
	}
	return AID{Name: randString(rng, 1) + "@" + randString(rng, 1), Addresses: addrs}
}

// randMessage builds a valid message with every field randomized. The
// performative is passed in so callers can guarantee full coverage.
func randMessage(rng *rand.Rand, p Performative) *Message {
	m := &Message{
		Performative: p,
		Sender:       randAID(rng),
		Receivers:    []AID{randAID(rng)},
	}
	for i := rng.Intn(3); i > 0; i-- {
		m.Receivers = append(m.Receivers, randAID(rng))
	}
	for i := rng.Intn(2); i > 0; i-- {
		m.ReplyTo = append(m.ReplyTo, randAID(rng))
	}
	if rng.Intn(4) > 0 {
		m.Content = []byte(randString(rng, 1))
	}
	if rng.Intn(2) == 0 {
		m.Language = randString(rng, 1)
	}
	if rng.Intn(2) == 0 {
		m.Encoding = randString(rng, 1)
	}
	if rng.Intn(2) == 0 {
		m.Ontology = randString(rng, 1)
	}
	switch rng.Intn(4) {
	case 0:
		m.Protocol = ProtocolRequest
	case 1:
		m.Protocol = ProtocolContractNet
	case 2:
		m.Protocol = ProtocolSubscribe
	}
	if rng.Intn(2) == 0 {
		m.ConversationID = randString(rng, 1)
	}
	if rng.Intn(2) == 0 {
		m.ReplyWith = randString(rng, 1)
	}
	if rng.Intn(2) == 0 {
		m.InReplyTo = randString(rng, 1)
	}
	if rng.Intn(2) == 0 {
		// UTC without monotonic clock, as a decoded time comes back.
		m.ReplyBy = time.Unix(rng.Int63n(1<<32), rng.Int63n(1e9)).UTC()
	}
	return m
}

// equalMessages compares two messages, treating ReplyBy by instant
// (time.Time's internal representation is not canonical across a
// JSON round trip).
func equalMessages(a, b *Message) bool {
	if !a.ReplyBy.Equal(b.ReplyBy) {
		return false
	}
	ac, bc := *a, *b
	ac.ReplyBy, bc.ReplyBy = time.Time{}, time.Time{}
	return reflect.DeepEqual(ac, bc)
}

// TestMessageRoundTripProperty checks, over seeded random messages
// covering every performative and all conversation fields, that
// Marshal/Unmarshal is lossless and re-encoding is byte-stable.
func TestMessageRoundTripProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				m := randMessage(rng, allPerformatives[i%len(allPerformatives)])
				frame, err := Marshal(m)
				if err != nil {
					t.Fatalf("marshal %s: %v", m, err)
				}
				got, err := Unmarshal(frame)
				if err != nil {
					t.Fatalf("unmarshal %s: %v", m, err)
				}
				if !equalMessages(m, got) {
					t.Fatalf("round trip changed message:\n in  %#v\n out %#v", m, got)
				}
				again, err := Marshal(got)
				if err != nil {
					t.Fatalf("re-marshal: %v", err)
				}
				if !bytes.Equal(frame, again) {
					t.Fatalf("re-encoding not byte-stable for %s", m)
				}
			}
		})
	}
}

// TestFrameStreamRoundTrip streams a seeded batch of random messages
// through WriteFrame/ReadFrame over one buffer and checks order,
// content and the clean io.EOF at the end.
func TestFrameStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var in []*Message
	var buf bytes.Buffer
	for i := 0; i < 2*len(allPerformatives); i++ {
		m := randMessage(rng, allPerformatives[i%len(allPerformatives)])
		in = append(in, m)
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
	}
	for i, want := range in {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !equalMessages(want, got) {
			t.Fatalf("frame %d changed:\n in  %#v\n out %#v", i, want, got)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}
