package acl

import (
	"encoding/json"
	"fmt"
	"time"
	"unicode/utf8"
)

// Zero-alloc decode path. UnmarshalBinary materializes a fresh Message
// (17 allocs on the classifier-notice shape); the Into variants below
// decode into a caller-owned Message, reusing its slice capacity
// element-by-element and routing header strings through the hotStrings
// intern table, so a warm scratch decodes repeat-vocabulary traffic
// with zero allocations.
//
// Ownership contract:
//
//   - The caller owns *m before and after the call. On error the
//     scratch's contents are unspecified; reuse it freely (every field
//     is unconditionally reassigned by the next successful decode).
//   - Header strings (performative is a table constant; language,
//     encoding, ontology, protocol, conversation/reply ids, AID names
//     and addresses, trace ids) may be shared with other messages via
//     the intern table. They are immutable Go strings and never alias
//     the input buffer.
//   - UnmarshalBinaryInto copies Content into m's own buffer (reusing
//     its capacity). FrameReader.ReadMessageInto instead leaves
//     m.Content aliasing the reader's internal buffer — a zero-copy
//     view, valid only until the next call on that reader. A Message
//     filled by ReadMessageInto must not be passed to
//     UnmarshalBinaryInto later without first setting m.Content = nil,
//     or the copy path would append into the reader's buffer.
//
// The decode walk is deliberately written out again rather than shared
// with unmarshalBinaryPayload: FuzzUnmarshalBinaryIntoEquivalence
// compares the two implementations differentially, which only has power
// while they remain independent.

// UnmarshalBinaryInto decodes an ACL2 frame produced by MarshalBinary
// into the caller-owned m, overwriting every field. It returns the same
// errors as UnmarshalBinary on the same inputs. See the ownership
// contract above; on success m shares no memory with data.
func UnmarshalBinaryInto(data []byte, m *Message) error {
	if len(data) < 8 {
		return ErrShortFrame
	}
	if string(data[:4]) != string(wireMagicBinary[:]) {
		return ErrBadMagic
	}
	n := getUint32(data[4:8])
	if n > MaxFrameSize {
		return ErrFrameSize
	}
	if len(data) != int(8+n) {
		return fmt.Errorf("%w: header says %d payload bytes, have %d", ErrShortFrame, n, len(data)-8)
	}
	return unmarshalBinaryPayloadInto(data[8:], m, false)
}

// unmarshalBinaryPayloadInto is the Into-path decode walk. With
// viewContent set, m.Content is pointed at the payload's bytes in place
// (the FrameReader view path); otherwise the content is copied into
// m.Content's reused capacity.
func unmarshalBinaryPayloadInto(payload []byte, m *Message, viewContent bool) error {
	d := binDecoder{data: payload}
	code := d.u8()
	if int(code) >= len(codePerfs) || code == 0 {
		if d.err == nil {
			return fmt.Errorf("%w: binary code %d", ErrBadPerformative, code)
		}
		return d.err
	}
	m.Performative = codePerfs[code]
	d.aidInto(&m.Sender)
	m.Receivers = d.aidsInto(m.Receivers)
	m.ReplyTo = d.aidsInto(m.ReplyTo)
	if viewContent {
		m.Content = d.blobView()
	} else {
		m.Content = d.blobInto(m.Content)
	}
	m.Language = d.internedStr()
	m.Encoding = d.internedStr()
	m.Ontology = d.internedStr()
	m.Protocol = d.internedStr()
	m.ConversationID = d.internedStr()
	m.ReplyWith = d.internedStr()
	m.InReplyTo = d.internedStr()
	m.ReplyBy = time.Time{}
	if by := d.strBytes(); len(by) != 0 && d.err == nil {
		t, err := time.Parse(time.RFC3339Nano, string(by))
		if err != nil {
			return fmt.Errorf("acl: decode reply-by: %w", err)
		}
		m.ReplyBy = t
	}
	switch d.u8() {
	case 0:
		m.Trace = nil
	case 1:
		if m.Trace == nil {
			m.Trace = &TraceContext{}
		}
		m.Trace.TraceID = d.internedStr()
		m.Trace.SpanID = d.internedStr()
		m.Trace.Parent = d.internedStr()
	default:
		if d.err == nil {
			return fmt.Errorf("acl: decode: bad trace flag")
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrShortFrame, len(d.data)-d.off)
	}
	return m.Validate()
}

// ReadMessageInto reads and decodes the next frame into the caller's
// scratch m, whichever codec framed it, and returns the raw payload
// bytes. For binary frames m.Content is a zero-copy view over the
// reader's internal buffer — as is the returned payload — valid only
// until the next call on fr; retaining either past that point requires
// a copy (append, string conversion, or m.Clone). The typed viewlifetime
// analyzer enforces this for callers that hold the returned slice.
//
//gridlint:view
func (fr *FrameReader) ReadMessageInto(m *Message) ([]byte, error) {
	f, payload, err := fr.Next()
	if err != nil {
		return nil, err
	}
	if f == FormatBinary {
		if err := unmarshalBinaryPayloadInto(payload, m, true); err != nil {
			return nil, err
		}
		return payload, nil
	}
	// JSON decodes merge into existing fields (omitempty keeps stale
	// values), so the scratch must be zeroed first. The JSON path is
	// the slow legacy codec; dropping the reused capacity here is fine.
	*m = Message{}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("acl: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return payload, nil
}

// strBytes reads a length-prefixed string field without copying it out
// of the payload. The returned slice aliases d.data.
func (d *binDecoder) strBytes() []byte {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	// Same UTF-8 wire contract as str(): both decode paths must
	// reject what the JSON codec cannot round-trip.
	if !utf8.Valid(b) {
		if d.err == nil {
			d.err = fmt.Errorf("%w at offset %d", ErrBadString, d.off-n)
		}
		return nil
	}
	return b
}

// internedStr reads a string field through the intern table: hot
// vocabulary costs zero allocations after the first sighting.
func (d *binDecoder) internedStr() string {
	return hotStrings.Intern(d.strBytes())
}

// blobInto reads a length-prefixed blob into dst's reused capacity.
// Zero-length decodes to nil, matching UnmarshalBinary.
func (d *binDecoder) blobInto(dst []byte) []byte {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	dst = append(dst[:0], d.data[d.off:d.off+n]...)
	d.off += n
	return dst
}

// blobView reads a length-prefixed blob as an aliasing subslice of the
// payload — no copy. Zero-length decodes to nil.
func (d *binDecoder) blobView() []byte {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// aidInto decodes an AID into *a, reusing its Addresses capacity.
func (d *binDecoder) aidInto(a *AID) {
	a.Name = d.internedStr()
	n := d.count(1)
	if d.err != nil || n == 0 {
		// Keep capacity for the next decode; equality semantics treat
		// nil and empty alike.
		if a.Addresses != nil {
			a.Addresses = a.Addresses[:0]
		}
		return
	}
	if cap(a.Addresses) >= n {
		a.Addresses = a.Addresses[:n]
	} else {
		a.Addresses = make([]string, n)
	}
	for i := range a.Addresses {
		a.Addresses[i] = d.internedStr()
	}
}

// aidsInto decodes an AID list into dst, reusing both the outer slice
// and each element's Addresses capacity.
func (d *binDecoder) aidsInto(dst []AID) []AID {
	n := d.count(2)
	if d.err != nil || n == 0 {
		if dst != nil {
			dst = dst[:0]
		}
		return dst
	}
	if cap(dst) >= n {
		// Elements beyond the previous length still carry their old
		// Addresses backing arrays — exactly the capacity aidInto
		// wants to reuse.
		dst = dst[:n]
	} else {
		dst = make([]AID, n)
	}
	for i := range dst {
		d.aidInto(&dst[i])
	}
	return dst
}
