package acl

import (
	"errors"
	"strings"
	"testing"
)

func testMsg() *Message {
	return &Message{
		Performative:   Inform,
		Sender:         NewAID("collector-1", "site1"),
		Receivers:      []AID{NewAID("classifier-1", "site1")},
		Content:        []byte(`<records/>`),
		Language:       "xml",
		Ontology:       OntologyNetworkManagement,
		Protocol:       ProtocolRequest,
		ConversationID: "c-1",
		ReplyWith:      "rw-1",
	}
}

func TestAIDParts(t *testing.T) {
	a := NewAID("pg-root", "site2", "tcp://10.0.0.1:7000")
	if a.Name != "pg-root@site2" {
		t.Errorf("Name = %q", a.Name)
	}
	if a.Local() != "pg-root" || a.Platform() != "site2" {
		t.Errorf("Local/Platform = %q/%q", a.Local(), a.Platform())
	}
	if len(a.Addresses) != 1 {
		t.Errorf("Addresses = %v", a.Addresses)
	}
	bare := AID{Name: "solo"}
	if bare.Local() != "solo" || bare.Platform() != "" {
		t.Errorf("bare Local/Platform = %q/%q", bare.Local(), bare.Platform())
	}
	if (AID{}).IsZero() != true || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if !a.Equal(AID{Name: "pg-root@site2"}) || a.Equal(bare) {
		t.Error("Equal wrong")
	}
	if a.String() != "pg-root@site2" {
		t.Errorf("String = %q", a.String())
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Message)
		want error
	}{
		{"valid", func(m *Message) {}, nil},
		{"no performative", func(m *Message) { m.Performative = "" }, ErrNoPerformative},
		{"bad performative", func(m *Message) { m.Performative = "shout" }, ErrBadPerformative},
		{"no sender", func(m *Message) { m.Sender = AID{} }, ErrNoSender},
		{"no receivers", func(m *Message) { m.Receivers = nil }, ErrNoReceiver},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testMsg()
			tc.mod(m)
			err := m.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateEmptyReceiverName(t *testing.T) {
	m := testMsg()
	m.Receivers = append(m.Receivers, AID{})
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted empty receiver name")
	}
}

func TestPerformativeValid(t *testing.T) {
	for _, p := range []Performative{Inform, Request, Agree, Refuse, Failure,
		NotUnderstood, CFP, Propose, AcceptProposal, RejectProposal,
		Subscribe, Confirm, Cancel, QueryRef} {
		if !p.Valid() {
			t.Errorf("%s should be valid", p)
		}
	}
	if Performative("yodel").Valid() {
		t.Error("yodel should not be valid")
	}
}

func TestReply(t *testing.T) {
	m := testMsg()
	me := NewAID("classifier-1", "site1")
	r := m.Reply(me, Agree)
	if r.Performative != Agree {
		t.Errorf("performative = %s", r.Performative)
	}
	if len(r.Receivers) != 1 || !r.Receivers[0].Equal(m.Sender) {
		t.Errorf("receivers = %v", r.Receivers)
	}
	if r.ConversationID != m.ConversationID || r.Protocol != m.Protocol || r.Ontology != m.Ontology {
		t.Error("conversation metadata not preserved")
	}
	if r.InReplyTo != m.ReplyWith {
		t.Errorf("InReplyTo = %q, want %q", r.InReplyTo, m.ReplyWith)
	}
}

func TestReplyHonorsReplyTo(t *testing.T) {
	m := testMsg()
	alt := NewAID("pg-root", "site1")
	m.ReplyTo = []AID{alt}
	r := m.Reply(NewAID("x", "site1"), Inform)
	if len(r.Receivers) != 1 || !r.Receivers[0].Equal(alt) {
		t.Fatalf("reply receivers = %v, want [%s]", r.Receivers, alt)
	}
	// Mutating the reply's receivers must not alias the original.
	r.Receivers[0] = AID{Name: "mutated"}
	if m.ReplyTo[0].Name != "pg-root@site1" {
		t.Fatal("Reply aliased ReplyTo slice")
	}
}

func TestClone(t *testing.T) {
	m := testMsg()
	c := m.Clone()
	c.Receivers[0] = AID{Name: "other"}
	c.Content[0] = 'X'
	if m.Receivers[0].Name == "other" || m.Content[0] == 'X' {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestStringRendering(t *testing.T) {
	m := testMsg()
	s := m.String()
	for _, want := range []string{"(inform", ":sender collector-1@site1",
		":receiver classifier-1@site1", ":protocol fipa-request",
		":conversation-id c-1", ":ontology network-management"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in %q", want, s)
		}
	}
	m.Content = []byte(strings.Repeat("z", 100))
	if s := m.String(); !strings.Contains(s, "...") {
		t.Error("long content not truncated")
	}
}
