package acl

import (
	"bytes"
	"io"
	"testing"
)

// TestWireHotPathAllocFree pins the wire cost contract (the codec-side
// half of telemetry's TestHotPathAllocFree): steady-state binary
// encode — both the caller-buffer and the pooled variants — and the
// raw frame read must not allocate. Decode allocates exactly the
// returned message, which BenchmarkUnmarshalBinary pins instead.
func TestWireHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m := binarySample()

	// Encode into a caller-owned buffer with spare capacity.
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(1000, func() {
		out, err := AppendFrame(buf[:0], m, FormatBinary)
		if err != nil || len(out) == 0 {
			t.Fatal("encode failed")
		}
	}); n != 0 {
		t.Fatalf("AppendFrame into reused buffer allocates %v per run", n)
	}

	// Pooled encode + single write: the sync.Pool round trip is free
	// once warm.
	if n := testing.AllocsPerRun(1000, func() {
		if err := WriteFrameBinary(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("WriteFrameBinary allocates %v per run", n)
	}

	// Raw frame read through a FrameReader reuses one payload buffer.
	frame, err := MarshalBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	stream := bytes.Repeat(frame, 4)
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r)
	if n := testing.AllocsPerRun(1000, func() {
		r.Reset(stream)
		for {
			_, _, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Fatalf("FrameReader.Next allocates %v per run", n)
	}
}

// TestDecodeHotPathAllocFree pins the Into decode contract: with a warm
// scratch and a warm intern table, decoding the classifier-notice-
// shaped message — the grid's most frequent frame — allocates nothing,
// on both the standalone UnmarshalBinaryInto path and the zero-copy
// FrameReader.ReadMessageInto path. AllocsPerRun's warm-up invocation
// seeds the intern table and the scratch capacity, so the measured runs
// are true steady state.
func TestDecodeHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	frame, err := MarshalBinary(benchNotice())
	if err != nil {
		t.Fatal(err)
	}

	var m Message
	if n := testing.AllocsPerRun(1000, func() {
		if err := UnmarshalBinaryInto(frame, &m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("UnmarshalBinaryInto allocates %v per run with a warm scratch", n)
	}
	if m.Performative != Inform || m.ConversationID != "clg-1-4242" {
		t.Fatalf("scratch decode corrupted: %+v", m)
	}

	// The streaming path: frames drained through one FrameReader into
	// one scratch, content served as views over the reader's buffer.
	stream := bytes.Repeat(frame, 4)
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r)
	var sm Message
	if n := testing.AllocsPerRun(1000, func() {
		r.Reset(stream)
		for {
			_, err := fr.ReadMessageInto(&sm)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Fatalf("FrameReader.ReadMessageInto allocates %v per run", n)
	}
}
