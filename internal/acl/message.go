// Package acl implements the subset of the FIPA Agent Communication
// Language the paper's grids use to talk to each other: typed
// performatives, agent identifiers, message envelopes, a wire codec and
// conversation-protocol state machines (fipa-request and
// fipa-contract-net).
package acl

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Performative is a FIPA ACL communicative act.
type Performative string

// The performatives used by the grid. The set follows FIPA ACL; acts the
// system never emits are omitted.
const (
	Inform         Performative = "inform"
	Request        Performative = "request"
	Agree          Performative = "agree"
	Refuse         Performative = "refuse"
	Failure        Performative = "failure"
	NotUnderstood  Performative = "not-understood"
	CFP            Performative = "cfp"
	Propose        Performative = "propose"
	AcceptProposal Performative = "accept-proposal"
	RejectProposal Performative = "reject-proposal"
	Subscribe      Performative = "subscribe"
	Confirm        Performative = "confirm"
	Cancel         Performative = "cancel"
	QueryRef       Performative = "query-ref"
)

// Valid reports whether p is one of the supported performatives.
func (p Performative) Valid() bool {
	switch p {
	case Inform, Request, Agree, Refuse, Failure, NotUnderstood, CFP,
		Propose, AcceptProposal, RejectProposal, Subscribe, Confirm,
		Cancel, QueryRef:
		return true
	}
	return false
}

// AID is a FIPA agent identifier: a globally unique name plus the
// transport addresses at which the agent's container can be reached.
type AID struct {
	// Name is "localname@platform", e.g. "collector-3@site1".
	Name string `json:"name"`
	// Addresses are transport endpoints in "scheme://host:port" form.
	// Empty for agents reachable only through the local platform.
	Addresses []string `json:"addresses,omitempty"`
}

// NewAID builds an AID from a local name and platform name.
func NewAID(local, platform string, addrs ...string) AID {
	return AID{Name: local + "@" + platform, Addresses: addrs}
}

// Local returns the part of the name before '@'.
func (a AID) Local() string {
	if i := strings.IndexByte(a.Name, '@'); i >= 0 {
		return a.Name[:i]
	}
	return a.Name
}

// Platform returns the part of the name after '@', or "" if absent.
func (a AID) Platform() string {
	if i := strings.IndexByte(a.Name, '@'); i >= 0 {
		return a.Name[i+1:]
	}
	return ""
}

// IsZero reports whether the AID carries no name.
func (a AID) IsZero() bool { return a.Name == "" }

// Equal reports whether two AIDs denote the same agent (by name).
func (a AID) Equal(b AID) bool { return a.Name == b.Name }

// String implements fmt.Stringer.
func (a AID) String() string { return a.Name }

// Message is a FIPA ACL message. Content is an opaque byte payload whose
// interpretation is fixed by Language and Ontology, mirroring FIPA's
// content-language / ontology split.
type Message struct {
	Performative Performative `json:"performative"`
	Sender       AID          `json:"sender"`
	Receivers    []AID        `json:"receivers"`
	ReplyTo      []AID        `json:"reply_to,omitempty"`

	Content  []byte `json:"content,omitempty"`
	Language string `json:"language,omitempty"` // e.g. "xml", "json", "text"
	Encoding string `json:"encoding,omitempty"`
	Ontology string `json:"ontology,omitempty"` // e.g. "network-management"

	Protocol       string    `json:"protocol,omitempty"` // e.g. "fipa-request"
	ConversationID string    `json:"conversation_id,omitempty"`
	ReplyWith      string    `json:"reply_with,omitempty"`
	InReplyTo      string    `json:"in_reply_to,omitempty"`
	ReplyBy        time.Time `json:"reply_by,omitempty"`

	// Trace is the causal-tracing context propagated in-band across
	// hops. Nil on untraced messages; never interpreted by acl itself.
	Trace *TraceContext `json:"trace,omitempty"`
}

// Well-known ontology and protocol names used by the grid.
const (
	OntologyNetworkManagement = "network-management"
	OntologyGridManagement    = "grid-management"

	ProtocolRequest     = "fipa-request"
	ProtocolContractNet = "fipa-contract-net"
	ProtocolSubscribe   = "fipa-subscribe"
)

// Validation errors.
var (
	ErrNoPerformative  = errors.New("acl: message has no performative")
	ErrBadPerformative = errors.New("acl: unknown performative")
	ErrNoSender        = errors.New("acl: message has no sender")
	ErrNoReceiver      = errors.New("acl: message has no receivers")
)

// Validate checks the structural invariants every grid message must hold.
func (m *Message) Validate() error {
	switch {
	case m.Performative == "":
		return ErrNoPerformative
	case !m.Performative.Valid():
		return fmt.Errorf("%w: %q", ErrBadPerformative, m.Performative)
	case m.Sender.IsZero():
		return ErrNoSender
	case len(m.Receivers) == 0:
		return ErrNoReceiver
	}
	for i, r := range m.Receivers {
		if r.IsZero() {
			return fmt.Errorf("acl: receiver %d has no name", i)
		}
	}
	return nil
}

// Reply builds a reply skeleton addressed back to the sender (or the
// reply-to agents, when present), preserving conversation metadata and
// swapping ReplyWith into InReplyTo per FIPA semantics.
func (m *Message) Reply(from AID, p Performative) *Message {
	to := m.ReplyTo
	if len(to) == 0 {
		to = []AID{m.Sender}
	}
	rcv := make([]AID, len(to))
	copy(rcv, to)
	return &Message{
		Performative:   p,
		Sender:         from,
		Receivers:      rcv,
		Language:       m.Language,
		Ontology:       m.Ontology,
		Protocol:       m.Protocol,
		ConversationID: m.ConversationID,
		InReplyTo:      m.ReplyWith,
		Trace:          m.Trace.Child(),
	}
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	out := *m
	out.Receivers = append([]AID(nil), m.Receivers...)
	out.ReplyTo = append([]AID(nil), m.ReplyTo...)
	out.Content = append([]byte(nil), m.Content...)
	if m.Trace != nil {
		tc := *m.Trace
		out.Trace = &tc
	}
	return &out
}

// String renders the message in a FIPA-SL-flavoured single line for logs.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s :sender %s :receiver", m.Performative, m.Sender)
	for _, r := range m.Receivers {
		fmt.Fprintf(&b, " %s", r)
	}
	if m.Protocol != "" {
		fmt.Fprintf(&b, " :protocol %s", m.Protocol)
	}
	if m.ConversationID != "" {
		fmt.Fprintf(&b, " :conversation-id %s", m.ConversationID)
	}
	if m.Ontology != "" {
		fmt.Fprintf(&b, " :ontology %s", m.Ontology)
	}
	if len(m.Content) > 0 {
		const max = 48
		c := string(m.Content)
		if len(c) > max {
			c = c[:max] + "..."
		}
		fmt.Fprintf(&b, " :content %q", c)
	}
	b.WriteByte(')')
	return b.String()
}
