package acl

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// binarySample builds a message exercising every encoded field.
func binarySample() *Message {
	return &Message{
		Performative: Inform,
		Sender:       NewAID("clg-1", "site1", "tcp://10.0.0.1:7001", "tcp://10.0.0.2:7001"),
		Receivers:    []AID{NewAID("pg-root", "site1", "tcp://10.0.0.3:7001"), NewAID("ig", "site2")},
		ReplyTo:      []AID{NewAID("clg-standby", "site1")},
		Content:      []byte(`{"collector":"cg-3@site1","clusters":[{"key":"site1/host-1"}]}`),
		Language:     "json",
		Encoding:     "utf-8",
		Ontology:     OntologyGridManagement,
		Protocol:     ProtocolRequest,

		ConversationID: "clg-1-42",
		ReplyWith:      "rw-7",
		InReplyTo:      "rq-3",
		ReplyBy:        time.Date(2026, 8, 5, 12, 30, 45, 123456789, time.UTC),
		Trace:          &TraceContext{TraceID: "a1b2c3d4e5f60718", SpanID: "0011223344556677", Parent: "8899aabbccddeeff"},
	}
}

// assertEqualMessages compares every field of two messages, with times
// compared by instant and rendering rather than struct identity.
func assertEqualMessages(t *testing.T, ctx string, a, b *Message) {
	t.Helper()
	if a.Performative != b.Performative {
		t.Errorf("%s: performative %q != %q", ctx, a.Performative, b.Performative)
	}
	equalAID := func(what string, x, y AID) {
		t.Helper()
		if x.Name != y.Name || len(x.Addresses) != len(y.Addresses) {
			t.Errorf("%s: %s %+v != %+v", ctx, what, x, y)
			return
		}
		for i := range x.Addresses {
			if x.Addresses[i] != y.Addresses[i] {
				t.Errorf("%s: %s address %d %q != %q", ctx, what, i, x.Addresses[i], y.Addresses[i])
			}
		}
	}
	equalAID("sender", a.Sender, b.Sender)
	if len(a.Receivers) != len(b.Receivers) {
		t.Fatalf("%s: receiver count %d != %d", ctx, len(a.Receivers), len(b.Receivers))
	}
	for i := range a.Receivers {
		equalAID("receiver", a.Receivers[i], b.Receivers[i])
	}
	if len(a.ReplyTo) != len(b.ReplyTo) {
		t.Fatalf("%s: reply-to count %d != %d", ctx, len(a.ReplyTo), len(b.ReplyTo))
	}
	for i := range a.ReplyTo {
		equalAID("reply-to", a.ReplyTo[i], b.ReplyTo[i])
	}
	if !bytes.Equal(a.Content, b.Content) || (a.Content == nil) != (b.Content == nil) {
		t.Errorf("%s: content %q != %q", ctx, a.Content, b.Content)
	}
	if a.Language != b.Language || a.Encoding != b.Encoding || a.Ontology != b.Ontology {
		t.Errorf("%s: language/encoding/ontology mismatch", ctx)
	}
	if a.Protocol != b.Protocol || a.ConversationID != b.ConversationID ||
		a.ReplyWith != b.ReplyWith || a.InReplyTo != b.InReplyTo {
		t.Errorf("%s: protocol/conversation metadata mismatch", ctx)
	}
	if !a.ReplyBy.Equal(b.ReplyBy) ||
		a.ReplyBy.Format(time.RFC3339Nano) != b.ReplyBy.Format(time.RFC3339Nano) {
		t.Errorf("%s: reply-by %v != %v", ctx, a.ReplyBy, b.ReplyBy)
	}
	if (a.Trace == nil) != (b.Trace == nil) {
		t.Fatalf("%s: trace presence mismatch", ctx)
	}
	if a.Trace != nil && *a.Trace != *b.Trace {
		t.Errorf("%s: trace %+v != %+v", ctx, a.Trace, b.Trace)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := binarySample()
	frame, err := MarshalBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame[:4], wireMagicBinary[:]) {
		t.Fatalf("frame magic = %q", frame[:4])
	}
	got, err := UnmarshalBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, "binary round trip", m, got)

	// The generic Unmarshal dispatches on the magic.
	got2, err := Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal dispatch: %v", err)
	}
	assertEqualMessages(t, "dispatched round trip", m, got2)
}

func TestBinaryRoundTripMinimal(t *testing.T) {
	m := &Message{
		Performative: Request,
		Sender:       NewAID("a", "p"),
		Receivers:    []AID{NewAID("b", "p")},
	}
	frame, err := MarshalBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, "minimal round trip", m, got)
	if got.Content != nil || got.ReplyTo != nil || got.Trace != nil {
		t.Errorf("empty fields decoded non-nil: %+v", got)
	}
	if !got.ReplyBy.IsZero() {
		t.Errorf("zero reply-by decoded as %v", got.ReplyBy)
	}
}

func TestBinaryTraceSurvival(t *testing.T) {
	// All performatives and a trace context survive the binary trip.
	for p := range perfCodes {
		m := binarySample()
		m.Performative = p
		frame, err := MarshalBinary(m)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		got, err := UnmarshalBinary(frame)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got.Performative != p {
			t.Errorf("performative %q decoded as %q", p, got.Performative)
		}
		if got.Trace == nil || *got.Trace != *m.Trace {
			t.Errorf("%s: trace context did not survive: %+v", p, got.Trace)
		}
	}
}

func TestBinaryJSONEquivalence(t *testing.T) {
	// The same message decodes identically through both codecs.
	m := binarySample()
	jframe, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	bframe, err := MarshalBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	jm, err := Unmarshal(jframe)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := Unmarshal(bframe)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMessages(t, "json vs binary", jm, bm)
	if len(bframe) >= len(jframe) {
		t.Errorf("binary frame (%d bytes) not smaller than JSON (%d bytes)", len(bframe), len(jframe))
	}
}

func TestBinaryRejectsHostileFrames(t *testing.T) {
	valid, err := MarshalBinary(binarySample())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":              {},
		"short header":       valid[:6],
		"empty payload":      {'A', 'C', 'L', '2', 0, 0, 0, 0},
		"truncated payload":  valid[:len(valid)-3],
		"length mismatch":    append(append([]byte{}, valid...), 0xEE),
		"oversized declared": {'A', 'C', 'L', '2', 0xff, 0xff, 0xff, 0xff},
		"bad performative":   {'A', 'C', 'L', '2', 0, 0, 0, 1, 0x7f},
		"hostile aid count": {'A', 'C', 'L', '2', 0, 0, 0, 7,
			1, 1, 'a', 0, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		if _, err := UnmarshalBinary(data); err == nil {
			t.Errorf("%s: hostile frame accepted", name)
		}
	}
	// Trailing garbage inside the declared payload length must also be
	// rejected: re-frame the valid payload with one extra byte counted.
	padded := append(append([]byte{}, valid...), 0)
	putUint32(padded[4:8], uint32(len(padded)-8))
	if _, err := UnmarshalBinary(padded); err == nil {
		t.Error("payload with trailing bytes accepted")
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	m := binarySample()
	buf := make([]byte, 0, 4096)
	first, err := AppendFrame(buf, m, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &buf[:1][0] {
		t.Error("AppendFrame reallocated despite spare capacity")
	}
	// Both formats produce decodable frames through AppendFrame.
	jf, err := AppendFrame(nil, m, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(jf); err != nil {
		t.Fatalf("JSON AppendFrame frame: %v", err)
	}
	if _, err := AppendFrame(nil, m, Format(9)); err == nil {
		t.Error("unknown format accepted")
	}
	if FormatJSON.String() != "ACL1" || FormatBinary.String() != "ACL2" {
		t.Errorf("format names = %s/%s", FormatJSON, FormatBinary)
	}
}

func TestWriteFrameBinary(t *testing.T) {
	var buf bytes.Buffer
	m := binarySample()
	for i := 0; i < 3; i++ {
		if err := WriteFrameBinary(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid messages are rejected before touching the writer.
	bad := binarySample()
	bad.Receivers = nil
	if err := WriteFrameBinary(&buf, bad); !errors.Is(err, ErrNoReceiver) {
		t.Fatalf("WriteFrameBinary invalid = %v", err)
	}
	for i := 0; i < 3; i++ {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMessages(t, "written frame", m, got)
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

func TestFrameReaderMixedFormats(t *testing.T) {
	// One stream carrying alternating ACL1 and ACL2 frames decodes in
	// order through a single FrameReader — the mixed-version wire.
	var buf bytes.Buffer
	want := make([]*Message, 0, 6)
	for i := 0; i < 6; i++ {
		m := binarySample()
		m.ConversationID = string(rune('a' + i))
		f := FormatBinary
		if i%2 == 1 {
			f = FormatJSON
		}
		frame, err := AppendFrame(nil, m, f)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
		want = append(want, m)
	}
	fr := NewFrameReader(&buf)
	for i, w := range want {
		got, err := fr.ReadMessage()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		assertEqualMessages(t, "mixed stream", w, got)
	}
	if _, err := fr.ReadMessage(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameReaderNextPayloadReuse(t *testing.T) {
	var buf bytes.Buffer
	m := binarySample()
	for i := 0; i < 2; i++ {
		if err := WriteFrameBinary(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	f1, p1, err := fr.Next()
	if err != nil || f1 != FormatBinary {
		t.Fatalf("Next = %v %v", f1, err)
	}
	first := append([]byte(nil), p1...)
	_, p2, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) > 0 && len(p2) > 0 && &p1[0] != &p2[0] {
		t.Error("FrameReader did not reuse its payload buffer")
	}
	if !bytes.Equal(first, p2) {
		t.Error("reused buffer decoded different payloads for identical frames")
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v, want io.EOF", err)
	}
}
