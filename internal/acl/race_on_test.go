//go:build race

package acl

// raceEnabled gates allocation assertions: the race detector
// instruments the codec hot path and defeats AllocsPerRun, so
// alloc-free checks only run in normal builds.
const raceEnabled = true
