package acl

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternBounded feeds an adversarial stream of distinct strings —
// the shape of hostile per-message conversation ids — and asserts the
// table never grows past its two live generations.
func TestInternBounded(t *testing.T) {
	in := NewIntern(64)
	buf := make([]byte, 0, 32)
	for i := 0; i < 10000; i++ {
		buf = fmt.Appendf(buf[:0], "churn-%d", i)
		if got, want := in.Intern(buf), string(buf); got != want {
			t.Fatalf("Intern(%q) = %q", want, got)
		}
		if n := in.Len(); n > 128 {
			t.Fatalf("table grew to %d entries after %d distinct strings; cap is 2x64", n, i+1)
		}
	}
}

// TestInternHotSurvivesFlips pins the generational promotion: a string
// interned on every pass stays resident (and therefore allocation-free
// to intern) no matter how much churn flips the generations around it.
func TestInternHotSurvivesFlips(t *testing.T) {
	in := NewIntern(32)
	hot := []byte("fipa-request")
	in.Intern(hot)
	buf := make([]byte, 0, 32)
	for i := 0; i < 500; i++ {
		buf = fmt.Appendf(buf[:0], "churn-%d", i)
		in.Intern(buf)
		in.Intern(hot) // touch every pass so promotion keeps it live
	}
	if raceEnabled {
		return // race instrumentation allocates; value checks above suffice
	}
	if n := testing.AllocsPerRun(100, func() {
		if s := in.Intern(hot); s != "fipa-request" {
			t.Fatal("wrong value")
		}
	}); n != 0 {
		t.Fatalf("hot string costs %v allocs per intern; want 0 (resident)", n)
	}
}

// TestInternNeverAliasesInput mutates the probe buffer after interning:
// the returned string must be a private copy, never a view over the
// (reusable) frame buffer it was decoded from.
func TestInternNeverAliasesInput(t *testing.T) {
	in := NewIntern(8)
	buf := []byte("grid-management")
	s := in.Intern(buf)
	buf[0] = 'X'
	if s != "grid-management" {
		t.Fatalf("interned string aliases the input buffer: %q", s)
	}
	// Same for the table hit path.
	buf2 := []byte("grid-management")
	s2 := in.Intern(buf2)
	buf2[0] = 'Y'
	if s2 != "grid-management" {
		t.Fatalf("interned hit aliases the probe buffer: %q", s2)
	}
}

// TestInternConcurrent hammers one table from many goroutines mixing
// hot hits, cold misses, and generation flips; run under -race this is
// the data-race proof for the RWMutex protocol.
func TestInternConcurrent(t *testing.T) {
	in := NewIntern(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 32)
			for i := 0; i < 2000; i++ {
				buf = fmt.Appendf(buf[:0], "g%d-%d", g, i%100)
				if got, want := in.Intern(buf), string(buf); got != want {
					t.Errorf("Intern(%q) = %q", want, got)
					return
				}
				if s := in.Intern([]byte("hot")); s != "hot" {
					t.Errorf("hot intern = %q", s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := in.Len(); n > 64 {
		t.Fatalf("table grew to %d entries; cap is 2x32", n)
	}
}

// TestInternEdgeCases covers the non-tabled paths: empty input, a nil
// table, and oversized strings that skip the table entirely.
func TestInternEdgeCases(t *testing.T) {
	if s := NewIntern(4).Intern(nil); s != "" {
		t.Fatalf("Intern(nil) = %q", s)
	}
	var nilTable *Intern
	if s := nilTable.Intern([]byte("x")); s != "x" {
		t.Fatalf("nil table Intern = %q", s)
	}
	in := NewIntern(4)
	big := make([]byte, maxInternLen+1)
	for i := range big {
		big[i] = 'a'
	}
	if s := in.Intern(big); s != string(big) {
		t.Fatal("oversized intern mangled the value")
	}
	if n := in.Len(); n != 0 {
		t.Fatalf("oversized string was tabled: Len = %d", n)
	}
}
