package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestRenderTextGolden pins the exposition format: stable family and
// series ordering, HELP/TYPE headers, label escaping and the
// _bucket/_sum/_count histogram expansion.
func TestRenderTextGolden(t *testing.T) {
	r := NewRegistry("agentgrid")
	r.Counter("collect_polls_total", "device polls completed", Labels{"container": "cg-1"}).Add(3)
	r.Counter("collect_polls_total", "device polls completed", Labels{"container": "cg-2"}).Add(1)
	r.Gauge("platform_load_ratio", "measured load", Labels{"container": `we"ird\na`+"\n"+"me`"}).Set(0.75)
	h := r.Histogram("agent_handle_seconds", "message handle latency", Labels{"container": "pg-1"})
	h.Observe(500 * time.Nanosecond) // first bucket
	h.Observe(3 * time.Microsecond)  // le=4.096µs
	h.Observe(20 * time.Second)      // overflow: only +Inf

	got := RenderText(r.Snapshot())

	wantPrefix := strings.Join([]string{
		`# HELP agentgrid_agent_handle_seconds message handle latency`,
		`# TYPE agentgrid_agent_handle_seconds histogram`,
		`agentgrid_agent_handle_seconds_bucket{container="pg-1",le="1.024e-06"} 1`,
		`agentgrid_agent_handle_seconds_bucket{container="pg-1",le="2.048e-06"} 1`,
		`agentgrid_agent_handle_seconds_bucket{container="pg-1",le="4.096e-06"} 2`,
	}, "\n") + "\n"
	if !strings.HasPrefix(got, wantPrefix) {
		t.Fatalf("exposition prefix mismatch:\n got: %q\nwant: %q", got[:min(len(got), len(wantPrefix)+80)], wantPrefix)
	}
	for _, line := range []string{
		`agentgrid_agent_handle_seconds_bucket{container="pg-1",le="+Inf"} 3`,
		`agentgrid_agent_handle_seconds_sum{container="pg-1"} 20.0000035`,
		`agentgrid_agent_handle_seconds_count{container="pg-1"} 3`,
		`# HELP agentgrid_collect_polls_total device polls completed`,
		`# TYPE agentgrid_collect_polls_total counter`,
		`agentgrid_collect_polls_total{container="cg-1"} 3`,
		`agentgrid_collect_polls_total{container="cg-2"} 1`,
		`# TYPE agentgrid_platform_load_ratio gauge`,
		`agentgrid_platform_load_ratio{container="we\"ird\\na\nme` + "`" + `"} 0.75`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("exposition missing line %q in:\n%s", line, got)
		}
	}

	// Families render in sorted name order.
	histIdx := strings.Index(got, "agentgrid_agent_handle_seconds")
	cntIdx := strings.Index(got, "agentgrid_collect_polls_total")
	gaugeIdx := strings.Index(got, "agentgrid_platform_load_ratio")
	if !(histIdx < cntIdx && cntIdx < gaugeIdx) {
		t.Fatalf("families out of order: hist=%d counter=%d gauge=%d", histIdx, cntIdx, gaugeIdx)
	}

	// Rendering is deterministic.
	if again := RenderText(r.Snapshot()); again != got {
		t.Fatal("two renders of the same state differ")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
