package telemetry

import "sync"

// CheckResult is one health check's outcome at evaluation time.
type CheckResult struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Detail  string `json:"detail,omitempty"`
}

// Health is a set of named component health checks. Subsystems
// register a func returning nil when healthy (or an error naming
// what's wrong), and the report server evaluates them on /healthz and
// /readyz. A nil *Health is valid: Register no-ops and Check reports
// healthy with no results, so a grid without health wiring serves the
// pre-telemetry unconditional 200.
type Health struct {
	mu     sync.Mutex
	names  []string                // guarded by mu; registration order
	checks map[string]func() error // guarded by mu

	hook        func(healthy bool, failing []string) // guarded by mu
	prevKnown   bool                                 // guarded by mu
	prevHealthy bool                                 // guarded by mu
}

// NewHealth returns an empty health check set.
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// Register adds (or replaces) a named check. fn must be safe to call
// from any goroutine and should return quickly; it is invoked on every
// health probe.
func (h *Health) Register(name string, fn func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.checks[name]; !ok {
		h.names = append(h.names, name)
	}
	h.checks[name] = fn
}

// SetTransitionHook installs fn, invoked from Check whenever the
// overall health state changes (and on the first Check if it comes up
// unhealthy — a grid is presumed healthy until proven otherwise).
// failing lists the names of failing checks; empty on recovery. The
// hook runs outside the lock, on the Check caller's goroutine, so it
// may do real work (the grid wires a flight-recorder dump here) but
// must not call back into Check.
func (h *Health) SetTransitionHook(fn func(healthy bool, failing []string)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.hook = fn
	h.mu.Unlock()
}

// Check evaluates every registered check in registration order and
// reports whether all passed. Checks run outside the lock so a slow
// check cannot block Register.
func (h *Health) Check() (bool, []CheckResult) {
	if h == nil {
		return true, nil
	}
	h.mu.Lock()
	names := make([]string, len(h.names))
	copy(names, h.names)
	fns := make([]func() error, 0, len(names))
	for _, name := range names {
		fns = append(fns, h.checks[name])
	}
	h.mu.Unlock()

	ok := true
	results := make([]CheckResult, 0, len(names))
	var failing []string
	for i, name := range names {
		res := CheckResult{Name: name, Healthy: true}
		if err := fns[i](); err != nil {
			res.Healthy = false
			res.Detail = err.Error()
			ok = false
			failing = append(failing, name)
		}
		results = append(results, res)
	}

	h.mu.Lock()
	hook := h.hook
	fire := (h.prevKnown && ok != h.prevHealthy) || (!h.prevKnown && !ok)
	h.prevKnown, h.prevHealthy = true, ok
	h.mu.Unlock()
	if fire && hook != nil {
		hook(ok, failing)
	}
	return ok, results
}
