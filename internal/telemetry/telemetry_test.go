package telemetry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("acl_sent_frames_total", "frames sent", Labels{"container": "cg-1"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if again := r.Counter("acl_sent_frames_total", "frames sent", Labels{"container": "cg-1"}); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels is a distinct series.
	other := r.Counter("acl_sent_frames_total", "frames sent", Labels{"container": "cg-2"})
	if other == c {
		t.Fatal("different labels returned the same counter")
	}
	if got := other.Value(); got != 0 {
		t.Fatalf("fresh series Value = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := newCounter()
	const goroutines, each = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Fatalf("Value = %d, want %d", got, goroutines*each)
	}
}

func TestGauge(t *testing.T) {
	g := newGauge()
	g.Add(2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 2.5 {
		t.Fatalf("Value = %v, want 2.5", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("after Set, Value = %v, want 7", got)
	}
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("after Set+Add, Value = %v, want 4", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	g := newGauge()
	const goroutines, each = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				g.Inc()
				g.Dec()
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines*each*2 {
		t.Fatalf("Value = %v, want %d", got, goroutines*each*2)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	h.Observe(500 * time.Nanosecond)  // below the first bound
	h.Observe(100 * time.Microsecond) // mid-range
	h.Observe(time.Hour)              // overflow
	h.Observe(-time.Second)           // clamps to zero
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Buckets[0].Count != 2 {
		t.Fatalf("first bucket = %d, want 2 (the sub-µs and clamped observations)", s.Buckets[0].Count)
	}
	// Cumulative counts never decrease and the last finite bucket
	// excludes only the overflow observation.
	last := s.Buckets[len(s.Buckets)-1]
	if last.Count != 3 {
		t.Fatalf("last finite bucket = %d, want 3", last.Count)
	}
	prev := uint64(0)
	for i, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket %d count %d < previous %d: not cumulative", i, b.Count, prev)
		}
		prev = b.Count
	}
	wantSum := (500*time.Nanosecond + 100*time.Microsecond + time.Hour).Seconds()
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramBucketInvariant pins every observation into the bucket
// whose bound is the smallest one at or above the duration.
func TestHistogramBucketInvariant(t *testing.T) {
	for _, d := range []time.Duration{
		1, 1023, 1024, 1025, 2048, 1 << 20, (1 << 20) + 1, 1 << 34, (1 << 34) + 1,
	} {
		h := newHistogram()
		h.Observe(d)
		s := h.Snapshot()
		sec := d.Seconds()
		for _, b := range s.Buckets {
			want := uint64(0)
			if sec <= b.LE {
				want = 1
			}
			if b.Count != want {
				t.Fatalf("d=%v: bucket le=%v count=%d, want %d", d, b.LE, b.Count, want)
			}
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const goroutines, each = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				h.Observe(time.Duration(n+1) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*each {
		t.Fatalf("Count = %d, want %d", got, goroutines*each)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := newHistogram(), newHistogram()
	a.Observe(time.Millisecond)
	b.Observe(time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged Count = %d, want 3", sa.Count)
	}
	want := (2*time.Millisecond + time.Second).Seconds()
	if diff := sa.Sum - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("merged Sum = %v, want %v", sa.Sum, want)
	}
	for i := range sa.Buckets {
		if sa.Buckets[i].LE != sb.Buckets[i].LE {
			t.Fatal("merge changed bucket bounds")
		}
	}
}

func TestEWMA(t *testing.T) {
	var e EWMA
	if e.Value() != 0 {
		t.Fatal("zero EWMA should read 0")
	}
	e.Observe(100 * time.Millisecond)
	if got := e.Value(); got != 0.1 {
		t.Fatalf("first observation should seed directly: got %v", got)
	}
	e.Observe(200 * time.Millisecond)
	want := 0.8*0.1 + 0.2*0.2
	if diff := e.Value() - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Value = %v, want %v", e.Value(), want)
	}
}

func TestNilSafety(t *testing.T) {
	var (
		r *Registry
		c *Counter
		g *Gauge
		h *Histogram
		e *EWMA
		l *Health
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	e.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 || e.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("a_b_total", "", nil) != nil || r.Gauge("a_b_ratio", "", nil) != nil || r.Histogram("a_b_seconds", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("a_b_count", "", nil, func() float64 { return 1 })
	r.CounterFunc("a_b_total", "", nil, func() uint64 { return 1 })
	if len(r.Snapshot().Metrics) != 0 || r.Namespace() != "" {
		t.Fatal("nil registry snapshot must be empty")
	}
	l.Register("x", func() error { return errors.New("boom") })
	if ok, res := l.Check(); !ok || res != nil {
		t.Fatal("nil health must report healthy")
	}
}

func TestNameValidation(t *testing.T) {
	r := NewRegistry("test")
	for _, bad := range []string{
		"short_total",        // two segments
		"collect_Polls_total", // uppercase
		"collect_polls_items", // unapproved unit
		"collect_polls",       // no unit
		"_collect_polls_total",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
	// Type conflicts panic too.
	r.Counter("a_b_total", "", nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type conflict should panic")
			}
		}()
		r.Gauge("a_b_total", "", nil)
	}()
}

func TestSnapshotOrderingAndFuncs(t *testing.T) {
	r := NewRegistry("agentgrid")
	r.Counter("z_last_total", "", nil)
	r.Counter("a_first_total", "", nil).Add(2)
	r.GaugeFunc("m_mid_ratio", "", Labels{"container": "b"}, func() float64 { return 0.5 })
	r.GaugeFunc("m_mid_ratio", "", Labels{"container": "a"}, func() float64 { return 0.25 })
	r.CounterFunc("m_fn_total", "", nil, func() uint64 { return 42 })

	s := r.Snapshot()
	var names []string
	for _, m := range s.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"agentgrid_a_first_total", "agentgrid_m_fn_total", "agentgrid_m_mid_ratio", "agentgrid_z_last_total"}
	if len(names) != len(want) {
		t.Fatalf("got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
	mid := s.Metrics[2]
	if len(mid.Series) != 2 || mid.Series[0].Labels["container"] != "a" || mid.Series[0].Value != 0.25 {
		t.Fatalf("series ordering/funcs wrong: %+v", mid.Series)
	}
	if s.Metrics[1].Series[0].Value != 42 {
		t.Fatalf("CounterFunc value = %v, want 42", s.Metrics[1].Series[0].Value)
	}
}

func TestHealthCheck(t *testing.T) {
	h := NewHealth()
	if ok, res := h.Check(); !ok || len(res) != 0 {
		t.Fatal("empty health must be healthy")
	}
	broken := errors.New("store unreachable")
	h.Register("store", func() error { return broken })
	h.Register("collect", func() error { return nil })
	ok, res := h.Check()
	if ok {
		t.Fatal("failing check must flip overall health")
	}
	if len(res) != 2 || res[0].Name != "store" || res[0].Healthy || res[0].Detail != "store unreachable" {
		t.Fatalf("unexpected results: %+v", res)
	}
	if !res[1].Healthy {
		t.Fatal("passing check reported unhealthy")
	}
	// Replacing a check keeps registration order and heals.
	h.Register("store", func() error { return nil })
	if ok, _ := h.Check(); !ok {
		t.Fatal("replaced check should heal")
	}
}
