package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket k counts observations whose duration
// in nanoseconds has bit length minShift+k, i.e. durations up to
// 2^(minShift+k) ns. The range spans ~1µs to ~17s in powers of two —
// wide enough for a mailbox dispatch and a full negotiation round —
// with a final overflow bucket for anything slower.
const (
	histMinShift = 10 // first bucket upper bound: 2^10 ns = 1.024µs
	histMaxShift = 34 // last finite bound: 2^34 ns ≈ 17.2s
	histBuckets  = histMaxShift - histMinShift + 1
)

// histBounds are the finite bucket upper bounds in seconds, shared by
// every histogram (fixed boundaries make snapshots mergeable).
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := 0; i < histBuckets; i++ {
		b[i] = float64(uint64(1)<<(histMinShift+i)) / 1e9
	}
	return b
}()

// Histogram is a log-bucketed latency histogram with fixed power-of-two
// bucket boundaries. Observe is lock-free and allocation-free: one
// atomic add into the bucket for the duration's bit length plus one
// into the nanosecond sum. Snapshots are mergeable because every
// histogram shares the same bounds. All methods no-op on a nil
// receiver.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // +1: overflow (> 2^histMaxShift ns)
	sumNS  atomic.Uint64
	// exemplars holds the most recent nonzero trace ID observed into
	// each bucket (ObserveTrace), linking a hot bucket to a span tree.
	// Last-write-wins racing is fine: any exemplar from the bucket is
	// a valid representative.
	exemplars [histBuckets + 1]atomic.Uint64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIdx maps a nanosecond duration to its bucket: ceil(log2(ns))
// via Len64(ns-1) so an exact power of two lands in the bucket whose
// bound equals it.
func bucketIdx(ns uint64) int {
	idx := 0
	if ns > 1 {
		idx = bits.Len64(ns-1) - histMinShift
		if idx < 0 {
			idx = 0
		} else if idx > histBuckets {
			idx = histBuckets
		}
	}
	return idx
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	idx := bucketIdx(ns)
	h.counts[idx].Add(1)
	h.sumNS.Add(ns)
}

// ObserveTrace records one duration and, when traceID is nonzero,
// retains it as the bucket's exemplar — the breadcrumb that lets an
// operator jump from a hot latency bucket to the trace subsystem's
// span tree for a request that landed there. Same cost profile as
// Observe plus one atomic store; zero traceID degrades to Observe.
func (h *Histogram) ObserveTrace(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	idx := bucketIdx(ns)
	h.counts[idx].Add(1)
	h.sumNS.Add(ns)
	if traceID != 0 {
		h.exemplars[idx].Store(traceID)
	}
}

// Bucket is one cumulative histogram bucket: Count observations were
// at or below LE seconds. The final bucket has LE = +Inf semantics and
// is rendered as such; its Count equals the total.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Exemplar links one histogram bucket to a trace: TraceID is the
// zero-padded hex spelling `gridctl trace` accepts. LE is the bucket's
// upper bound in seconds; LE < 0 marks the +Inf overflow bucket.
type Exemplar struct {
	LE      float64 `json:"le"`
	TraceID string  `json:"trace_id"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with
// cumulative bucket counts, suitable for merging and for Prometheus
// rendering (_bucket/_sum/_count). Exemplars lists the buckets that
// retained a trace ID; text exposition ignores them (the 0.0.4 format
// has no exemplar syntax) but the JSON endpoint and gridctl carry
// them through.
type HistogramSnapshot struct {
	Buckets   []Bucket   `json:"buckets"` // cumulative; excludes the +Inf bucket
	Sum       float64    `json:"sum"`     // seconds
	Count     uint64     `json:"count"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot copies the histogram's current state. Under concurrent
// Observe the bucket counts and sum are each atomically read but not
// mutually consistent — the usual scrape-time property.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Buckets: make([]Bucket, histBuckets)}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		s.Buckets[i] = Bucket{LE: histBounds[i], Count: cum}
	}
	s.Count = cum + h.counts[histBuckets].Load()
	s.Sum = float64(h.sumNS.Load()) / 1e9
	for i := 0; i <= histBuckets; i++ {
		id := h.exemplars[i].Load()
		if id == 0 {
			continue
		}
		le := -1.0 // +Inf overflow bucket
		if i < histBuckets {
			le = histBounds[i]
		}
		s.Exemplars = append(s.Exemplars, Exemplar{LE: le, TraceID: formatTraceID(id)})
	}
	return s
}

// formatTraceID renders a trace ID in the 16-digit hex spelling the
// trace subsystem's parseID accepts.
func formatTraceID(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Merge adds other into s bucket-by-bucket. Both snapshots must come
// from this package's histograms (identical bounds); mismatched bucket
// counts merge over the shorter prefix.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if len(s.Buckets) == 0 {
		s.Buckets = append(s.Buckets, other.Buckets...)
	} else {
		n := len(s.Buckets)
		if len(other.Buckets) < n {
			n = len(other.Buckets)
		}
		for i := 0; i < n; i++ {
			s.Buckets[i].Count += other.Buckets[i].Count
		}
	}
	s.Sum += other.Sum
	s.Count += other.Count
	// Keep one exemplar per bucket; s's own win so a merge is stable.
	for _, ex := range other.Exemplars {
		seen := false
		for _, have := range s.Exemplars {
			if have.LE == ex.LE {
				seen = true
				break
			}
		}
		if !seen {
			s.Exemplars = append(s.Exemplars, ex)
		}
	}
}
