package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket k counts observations whose duration
// in nanoseconds has bit length minShift+k, i.e. durations up to
// 2^(minShift+k) ns. The range spans ~1µs to ~17s in powers of two —
// wide enough for a mailbox dispatch and a full negotiation round —
// with a final overflow bucket for anything slower.
const (
	histMinShift = 10 // first bucket upper bound: 2^10 ns = 1.024µs
	histMaxShift = 34 // last finite bound: 2^34 ns ≈ 17.2s
	histBuckets  = histMaxShift - histMinShift + 1
)

// histBounds are the finite bucket upper bounds in seconds, shared by
// every histogram (fixed boundaries make snapshots mergeable).
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := 0; i < histBuckets; i++ {
		b[i] = float64(uint64(1)<<(histMinShift+i)) / 1e9
	}
	return b
}()

// Histogram is a log-bucketed latency histogram with fixed power-of-two
// bucket boundaries. Observe is lock-free and allocation-free: one
// atomic add into the bucket for the duration's bit length plus one
// into the nanosecond sum. Snapshots are mergeable because every
// histogram shares the same bounds. All methods no-op on a nil
// receiver.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // +1: overflow (> 2^histMaxShift ns)
	sumNS  atomic.Uint64
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	// ceil(log2(ns)) via Len64(ns-1) so an exact power of two lands in
	// the bucket whose bound equals it.
	idx := 0
	if ns > 1 {
		idx = bits.Len64(ns-1) - histMinShift
		if idx < 0 {
			idx = 0
		} else if idx > histBuckets {
			idx = histBuckets
		}
	}
	h.counts[idx].Add(1)
	h.sumNS.Add(ns)
}

// Bucket is one cumulative histogram bucket: Count observations were
// at or below LE seconds. The final bucket has LE = +Inf semantics and
// is rendered as such; its Count equals the total.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with
// cumulative bucket counts, suitable for merging and for Prometheus
// rendering (_bucket/_sum/_count).
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"` // cumulative; excludes the +Inf bucket
	Sum     float64  `json:"sum"`     // seconds
	Count   uint64   `json:"count"`
}

// Snapshot copies the histogram's current state. Under concurrent
// Observe the bucket counts and sum are each atomically read but not
// mutually consistent — the usual scrape-time property.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Buckets: make([]Bucket, histBuckets)}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		s.Buckets[i] = Bucket{LE: histBounds[i], Count: cum}
	}
	s.Count = cum + h.counts[histBuckets].Load()
	s.Sum = float64(h.sumNS.Load()) / 1e9
	return s
}

// Merge adds other into s bucket-by-bucket. Both snapshots must come
// from this package's histograms (identical bounds); mismatched bucket
// counts merge over the shorter prefix.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if len(s.Buckets) == 0 {
		s.Buckets = append(s.Buckets, other.Buckets...)
	} else {
		n := len(s.Buckets)
		if len(other.Buckets) < n {
			n = len(other.Buckets)
		}
		for i := 0; i < n; i++ {
			s.Buckets[i].Count += other.Buckets[i].Count
		}
	}
	s.Sum += other.Sum
	s.Count += other.Count
}
