package telemetry

import (
	"testing"
	"time"
)

// TestHotPathAllocFree pins the instrumentation cost contract: the
// operations that sit on the ACL send/receive and message-handle hot
// paths must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c := newCounter()
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Inc/Add allocates %v per run", n)
	}
	h := newHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per run", n)
	}
	g := newGauge()
	if n := testing.AllocsPerRun(1000, func() { g.Inc(); g.Dec() }); n != 0 {
		t.Fatalf("Gauge.Inc/Dec allocates %v per run", n)
	}
	var e EWMA
	if n := testing.AllocsPerRun(1000, func() { e.Observe(time.Millisecond) }); n != 0 {
		t.Fatalf("EWMA.Observe allocates %v per run", n)
	}
	// Nil instruments — the unwired case — are free too.
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() { nc.Inc(); nh.Observe(time.Second) }); n != 0 {
		t.Fatalf("nil instruments allocate %v per run", n)
	}
}
