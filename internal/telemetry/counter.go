package telemetry

import "sync/atomic"

// counterShard is one stripe of a Counter, padded out to a 64-byte
// cache line so adjacent shards never false-share.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter striped across padded
// per-CPU shards. Inc and Add are lock-free and allocation-free; Value
// sums the stripes. All methods no-op on a nil receiver.
type Counter struct {
	shards []counterShard
}

func newCounter() *Counter {
	return &Counter{shards: make([]counterShard, nShards)}
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.shards[stripe()].n.Add(1)
}

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.shards[stripe()].n.Add(delta)
}

// Value returns the current total across all stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}
