package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestObserveTraceRetainsExemplar(t *testing.T) {
	h := newHistogram()
	h.ObserveTrace(3*time.Microsecond, 0xabcdef) // bucket for 2^12ns bound
	h.ObserveTrace(2*time.Millisecond, 0x123456)
	h.Observe(time.Second) // no exemplar

	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if len(s.Exemplars) != 2 {
		t.Fatalf("got %d exemplars, want 2: %+v", len(s.Exemplars), s.Exemplars)
	}
	if s.Exemplars[0].TraceID != "0000000000abcdef" {
		t.Fatalf("exemplar 0 trace = %q", s.Exemplars[0].TraceID)
	}
	if s.Exemplars[0].LE >= s.Exemplars[1].LE {
		t.Fatalf("exemplars not in bucket order: %+v", s.Exemplars)
	}
	// The exemplar's bucket bound must cover the observation that set it.
	if le := s.Exemplars[1].LE; le < 0.002 || le > 0.005 {
		t.Fatalf("2ms exemplar landed at le=%v", le)
	}
}

func TestObserveTraceZeroIDDegradesToObserve(t *testing.T) {
	h := newHistogram()
	h.ObserveTrace(time.Millisecond, 0)
	s := h.Snapshot()
	if s.Count != 1 || len(s.Exemplars) != 0 {
		t.Fatalf("zero trace ID left exemplars: %+v", s.Exemplars)
	}
}

func TestObserveTraceOverflowBucket(t *testing.T) {
	h := newHistogram()
	h.ObserveTrace(30*time.Second, 0xff) // past histMaxShift ≈ 17.2s
	s := h.Snapshot()
	if len(s.Exemplars) != 1 || s.Exemplars[0].LE >= 0 {
		t.Fatalf("overflow exemplar should carry LE<0: %+v", s.Exemplars)
	}
}

func TestObserveTraceLastWriteWins(t *testing.T) {
	h := newHistogram()
	h.ObserveTrace(time.Millisecond, 0xaaa)
	h.ObserveTrace(time.Millisecond, 0xbbb)
	s := h.Snapshot()
	if len(s.Exemplars) != 1 || s.Exemplars[0].TraceID != "0000000000000bbb" {
		t.Fatalf("exemplar = %+v, want latest 0xbbb", s.Exemplars)
	}
}

func TestNilHistogramObserveTrace(t *testing.T) {
	var h *Histogram
	h.ObserveTrace(time.Millisecond, 1) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
}

func TestSnapshotMergeKeepsExemplars(t *testing.T) {
	a, b := newHistogram(), newHistogram()
	a.ObserveTrace(time.Millisecond, 0x1)
	b.ObserveTrace(time.Millisecond, 0x2) // same bucket: a's wins
	b.ObserveTrace(time.Second, 0x3)      // new bucket: adopted

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if len(sa.Exemplars) != 2 {
		t.Fatalf("merged exemplars = %+v", sa.Exemplars)
	}
	byLE := map[float64]string{}
	for _, ex := range sa.Exemplars {
		byLE[ex.LE] = ex.TraceID
	}
	for _, id := range byLE {
		if id == "0000000000000002" {
			t.Fatalf("merge overwrote receiver's exemplar: %+v", sa.Exemplars)
		}
	}
}

// TestConcurrentSnapshotMerge hammers a pair of histograms with
// ObserveTrace while snapshotting and merging them — the race-detector
// companion for the aggregation path the report server runs at scrape
// time while the pipeline keeps observing.
func TestConcurrentSnapshotMerge(t *testing.T) {
	hists := []*Histogram{newHistogram(), newHistogram(), newHistogram()}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g, h := range hists {
		wg.Add(1)
		go func(h *Histogram, g int) {
			defer wg.Done()
			d := time.Duration(g+1) * time.Microsecond
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveTrace(d, i)
				h.Observe(d * 1000)
			}
		}(h, g)
	}

	for round := 0; round < 200; round++ {
		var merged HistogramSnapshot
		for _, h := range hists {
			merged.Merge(h.Snapshot())
		}
		// Cumulative bucket counts must be monotone within a snapshot
		// even while observations land concurrently.
		for i := 1; i < len(merged.Buckets); i++ {
			if merged.Buckets[i].Count < merged.Buckets[i-1].Count {
				t.Fatalf("round %d: cumulative counts regressed at bucket %d: %+v",
					round, i, merged.Buckets[i-1:i+1])
			}
		}
		if merged.Count > 0 && len(merged.Exemplars) == 0 {
			t.Fatalf("round %d: observations recorded but no exemplars surfaced", round)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHealthTransitionHook(t *testing.T) {
	h := NewHealth()
	var healthy bool = true
	h.Register("store", func() error {
		if healthy {
			return nil
		}
		return errFailing
	})

	var calls []bool
	var lastFailing []string
	h.SetTransitionHook(func(ok bool, failing []string) {
		calls = append(calls, ok)
		lastFailing = failing
	})

	h.Check() // healthy, no transition: presumed healthy at start
	if len(calls) != 0 {
		t.Fatalf("hook fired on initial healthy check: %v", calls)
	}
	healthy = false
	h.Check() // healthy → unhealthy
	if len(calls) != 1 || calls[0] != false {
		t.Fatalf("hook calls after degradation: %v", calls)
	}
	if len(lastFailing) != 1 || lastFailing[0] != "store" {
		t.Fatalf("failing names = %v", lastFailing)
	}
	h.Check() // still unhealthy: no refire
	if len(calls) != 1 {
		t.Fatalf("hook refired without a transition: %v", calls)
	}
	healthy = true
	h.Check() // recovery
	if len(calls) != 2 || calls[1] != true {
		t.Fatalf("hook calls after recovery: %v", calls)
	}
	if len(lastFailing) != 0 {
		t.Fatalf("recovery reported failing checks: %v", lastFailing)
	}
}

func TestHealthFirstCheckUnhealthyFires(t *testing.T) {
	h := NewHealth()
	h.Register("dead", func() error { return errFailing })
	fired := 0
	h.SetTransitionHook(func(ok bool, _ []string) {
		if !ok {
			fired++
		}
	})
	h.Check()
	if fired != 1 {
		t.Fatalf("first unhealthy check fired %d times, want 1", fired)
	}
}

var errFailing = errorString("check failing")

type errorString string

func (e errorString) Error() string { return string(e) }
