//go:build race

package telemetry

// raceEnabled gates allocation assertions: the race detector
// instruments atomics and defeats AllocsPerRun, so alloc-free checks
// only run in normal builds.
const raceEnabled = true
