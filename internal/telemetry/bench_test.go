package telemetry

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkCounterContended hammers one counter from every CPU — the
// ACL-send hot-path shape. The striped shards keep contention off a
// single cache line.
func BenchmarkCounterContended(b *testing.B) {
	c := newCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter never moved")
	}
}

// BenchmarkHistogramRecord measures a single-goroutine Observe — the
// per-message handle-latency record.
func BenchmarkHistogramRecord(b *testing.B) {
	h := newHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xfffff) * time.Nanosecond)
	}
}

// BenchmarkSnapshot walks a realistically sized registry: 30 families
// with a handful of container-labeled series each, a quarter of them
// histograms — about what a running grid exposes.
func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry("agentgrid")
	containers := []string{"cg-1", "cg-2", "cg-3", "clg", "pg-root", "pg-1", "pg-2", "ig"}
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("bench_metric%d", i)
		for _, c := range containers {
			l := Labels{"container": c}
			if i%4 == 0 {
				r.Histogram(name+"_seconds", "bench", l).Observe(time.Millisecond)
			} else {
				r.Counter(name+"_total", "bench", l).Add(uint64(i))
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Snapshot(); len(s.Metrics) != 30 {
			b.Fatalf("families = %d", len(s.Metrics))
		}
	}
}
