package telemetry

import (
	"sort"
	"strconv"
	"strings"
)

// RenderText renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one line per
// series, histograms expanded to _bucket/_sum/_count. Output order is
// deterministic — families sorted by name, series by label signature —
// so the rendering is golden-testable and diffs cleanly between
// scrapes.
func RenderText(snap Snapshot) string {
	var b strings.Builder
	for _, m := range snap.Metrics {
		if m.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(m.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(m.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(m.Name)
		b.WriteByte(' ')
		b.WriteString(m.Type)
		b.WriteByte('\n')
		for _, s := range m.Series {
			if s.Hist != nil {
				renderHistogram(&b, m.Name, s)
				continue
			}
			b.WriteString(m.Name)
			writeLabels(&b, s.Labels, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func renderHistogram(b *strings.Builder, name string, s SeriesSnapshot) {
	for _, bk := range s.Hist.Buckets {
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.Labels, "le", bk.LE)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(bk.Count, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabelsInf(b, s.Labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.Hist.Count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.Labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Hist.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.Labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.Hist.Count, 10))
	b.WriteByte('\n')
}

// writeLabels renders {k="v",...} with keys sorted, appending an le
// bucket bound when leKey is non-empty. Nothing is written when there
// are no labels at all.
func writeLabels(b *strings.Builder, labels Labels, leKey string, le float64) {
	if len(labels) == 0 && leKey == "" {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func writeLabelsInf(b *strings.Builder, labels Labels) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if len(keys) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// escapeHelp escapes help text: backslash and newline (quotes are
// legal in help).
func escapeHelp(v string) string {
	return helpEscaper.Replace(v)
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)
