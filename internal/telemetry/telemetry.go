// Package telemetry is the grid's dependency-free metrics subsystem:
// sharded counters and gauges, a log-bucketed latency histogram, and a
// registry that renders Prometheus text exposition and JSON snapshots.
//
// The design goals mirror internal/trace: instrumentation is always-on
// and pays only for what it uses. Every instrument is nil-safe — a nil
// *Counter, *Gauge or *Histogram no-ops on every method — so call
// sites never branch on whether metrics are wired. Hot-path operations
// (Counter.Inc, Histogram.Observe) are lock-free, allocation-free
// atomics striped across padded per-CPU shards to avoid cache-line
// ping-pong under contention.
//
// Metric names follow the namespace_subsystem_name_unit convention:
// the registry prepends its namespace, and registered names must be
// lowercase snake_case with at least three segments whose last segment
// is an approved unit (total, seconds, bytes, ratio, count). The
// metricname gridlint analyzer enforces the same rule statically.
package telemetry

import (
	"math/bits"
	"runtime"
	"unsafe"
)

// Labels are constant labels attached to a metric series at
// registration time. They identify the emitting container or a fixed
// dimension such as an analysis level — never unbounded values.
type Labels map[string]string

// nShards is the stripe count for sharded instruments: the next power
// of two at or above GOMAXPROCS, fixed at package init. Power-of-two
// lets stripe selection mask instead of mod.
var nShards = nextPow2(runtime.GOMAXPROCS(0))

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// stripe picks a shard index for the calling goroutine. Goroutine
// stacks are spread across the address space, so hashing the address
// of a stack variable distributes concurrent callers across shards
// without any runtime-internal dependency or allocation. The pointer
// is converted to uintptr immediately and never stored, so the
// variable does not escape.
func stripe() int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	// splitmix64-style finalizer: stack addresses share high bits, so
	// mix before masking.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h) & (nShards - 1)
}
