package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// metricNameRe matches subsystem_name_unit: lowercase snake_case with
// at least three segments. The unit (last segment) is checked against
// approvedUnits separately so the two rules give distinct panics.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+){2,}$`)

// approvedUnits are the allowed trailing name segments. "total" marks
// counters, "seconds"/"bytes" measured quantities, "ratio" 0..1
// fractions and "count" instantaneous quantities of discrete things.
var approvedUnits = map[string]bool{
	"total":   true,
	"seconds": true,
	"bytes":   true,
	"ratio":   true,
	"count":   true,
}

// Registry holds metric families under a common namespace. Instruments
// are registered once with constant labels and then updated lock-free;
// the registry itself is only locked at registration and snapshot
// time. A nil *Registry is valid: every registration method returns a
// nil instrument (which no-ops) and Snapshot returns an empty
// snapshot, so wiring telemetry is strictly pay-for-what-you-use.
type Registry struct {
	namespace string

	mu       sync.Mutex
	families map[string]*family // guarded by mu
	names    []string           // guarded by mu; sorted family names
}

type family struct {
	name string // without namespace
	help string
	typ  string // "counter", "gauge", "histogram"

	series map[string]*series // keyed by label signature
	sigs   []string           // sorted signatures
}

type series struct {
	labels    Labels
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	gaugeFn   func() float64
	counterFn func() uint64
}

// NewRegistry returns a registry whose exposed metric names are all
// prefixed namespace_.
func NewRegistry(namespace string) *Registry {
	if !regexp.MustCompile(`^[a-z][a-z0-9]*$`).MatchString(namespace) {
		panic(fmt.Sprintf("telemetry: invalid namespace %q", namespace))
	}
	return &Registry{namespace: namespace, families: make(map[string]*family)}
}

// Namespace returns the registry's namespace ("" on nil).
func (r *Registry) Namespace() string {
	if r == nil {
		return ""
	}
	return r.namespace
}

// mustName panics unless name follows subsystem_name_unit with an
// approved unit. Metric names are compile-time constants in practice,
// so a bad one is a programming error surfaced at startup.
func mustName(name string) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q must be lowercase subsystem_name_unit with at least three segments", name))
	}
	unit := name[strings.LastIndexByte(name, '_')+1:]
	if !approvedUnits[unit] {
		panic(fmt.Sprintf("telemetry: metric name %q must end in an approved unit (total, seconds, bytes, ratio, count)", unit))
	}
}

// signature is the canonical sorted label rendering used both as the
// series key and for stable exposition ordering.
func signature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

func cloneLabels(labels Labels) Labels {
	if len(labels) == 0 {
		return nil
	}
	out := make(Labels, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// register returns the series for (name, labels), creating family and
// series as needed, and runs init on it while still holding the
// registry lock (so concurrent registrations of the same series see a
// fully built instrument). Re-registering the same name+labels returns
// the existing series; re-registering a name with a different type
// panics.
func (r *Registry) register(name, help, typ string, labels Labels, init func(*series)) *series {
	mustName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
		r.names = append(r.names, name)
		sort.Strings(r.names)
	} else if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q already registered as %s, not %s", name, fam.typ, typ))
	}
	sig := signature(labels)
	s := fam.series[sig]
	if s == nil {
		s = &series{labels: cloneLabels(labels)}
		fam.series[sig] = s
		fam.sigs = append(fam.sigs, sig)
		sort.Strings(fam.sigs)
	}
	init(s)
	return s
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "counter", labels, func(s *series) {
		if s.counter == nil && s.counterFn == nil {
			s.counter = newCounter()
		}
	})
	return s.counter
}

// CounterFunc registers a counter series whose value is read from fn
// at snapshot time — for totals another subsystem already tracks
// (store appends, dropped spans). No-op on nil registry.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", labels, func(s *series) { s.counterFn = fn })
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "gauge", labels, func(s *series) {
		if s.gauge == nil && s.gaugeFn == nil {
			s.gauge = newGauge()
		}
	})
	return s.gauge
}

// GaugeFunc registers a gauge series read from fn at snapshot time —
// for instantaneous values owned elsewhere (mailbox depth, measured
// load). No-op on nil registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", labels, func(s *series) { s.gaugeFn = fn })
}

// Histogram registers (or fetches) a histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "histogram", labels, func(s *series) {
		if s.hist == nil {
			s.hist = newHistogram()
		}
	})
	return s.hist
}

// SeriesSnapshot is one (labels, value) pair inside a metric family.
// Value carries counter and gauge readings; Hist is set for
// histograms.
type SeriesSnapshot struct {
	Labels Labels             `json:"labels,omitempty"`
	Value  float64            `json:"value"`
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

// MetricSnapshot is one metric family: fully qualified name, type,
// help and every series.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time copy of every registered metric, ordered
// by name then label signature. It is the payload of the JSON metrics
// endpoint and the input to RenderText.
type Snapshot struct {
	Namespace string           `json:"namespace"`
	Metrics   []MetricSnapshot `json:"metrics"`
}

// Snapshot captures every family and series. Callback metrics
// (GaugeFunc/CounterFunc) are evaluated here, outside any instrument
// lock but under the registry mutex — callbacks must not register new
// metrics.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Snapshot{Namespace: r.namespace, Metrics: make([]MetricSnapshot, 0, len(r.names))}
	for _, name := range r.names {
		fam := r.families[name]
		ms := MetricSnapshot{
			Name:   r.namespace + "_" + fam.name,
			Type:   fam.typ,
			Help:   fam.help,
			Series: make([]SeriesSnapshot, 0, len(fam.sigs)),
		}
		for _, sig := range fam.sigs {
			s := fam.series[sig]
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.hist != nil:
				h := s.hist.Snapshot()
				ss.Hist = &h
			case s.counterFn != nil:
				ss.Value = float64(s.counterFn())
			case s.gaugeFn != nil:
				ss.Value = s.gaugeFn()
			case s.counter != nil:
				ss.Value = float64(s.counter.Value())
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			}
			ms.Series = append(ms.Series, ss)
		}
		out.Metrics = append(out.Metrics, ms)
	}
	return out
}
