package telemetry

import (
	"math"
	"sync/atomic"
)

// gaugeShard is one stripe of a Gauge: a float64 stored as bits,
// padded to a cache line.
type gaugeShard struct {
	bits atomic.Uint64
	_    [56]byte
}

// Gauge is a float64 value that can go up and down. Add/Inc/Dec are
// lock-free CAS loops striped across padded shards; Set collapses the
// stripes to a single base value. All methods no-op on a nil receiver.
type Gauge struct {
	base   atomic.Uint64 // float64 bits
	shards []gaugeShard
}

func newGauge() *Gauge {
	return &Gauge{shards: make([]gaugeShard, nShards)}
}

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	s := &g.shards[stripe()]
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Set replaces the gauge's value. Concurrent Adds racing a Set may
// land before or after it; both orders are valid gauge histories.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	for i := range g.shards {
		g.shards[i].bits.Store(0)
	}
	g.base.Store(math.Float64bits(v))
}

// Value returns the gauge's current value: base plus the stripe sum.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	v := math.Float64frombits(g.base.Load())
	for i := range g.shards {
		v += math.Float64frombits(g.shards[i].bits.Load())
	}
	return v
}
