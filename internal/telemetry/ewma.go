package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// EWMA is an exponentially weighted moving average of durations,
// updated lock-free via CAS on the float64 bit pattern. The zero value
// is ready to use; a zero bit pattern means "no observations yet", so
// the first Observe seeds the average directly. Methods no-op (or
// return zero) on a nil receiver.
//
// The fixed smoothing factor weights the newest sample at 20%: heavy
// enough to track a latency regression within a handful of messages,
// light enough not to whipsaw on one slow dispatch.
type EWMA struct {
	bits atomic.Uint64 // float64 bits of the average, in seconds
}

const ewmaAlpha = 0.2

// Observe folds one duration into the average.
func (e *EWMA) Observe(d time.Duration) {
	if e == nil {
		return
	}
	sample := d.Seconds()
	if sample < 0 {
		sample = 0
	}
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 {
			next = sample
		} else {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*sample
		}
		nb := math.Float64bits(next)
		if nb == 0 {
			nb = math.Float64bits(math.SmallestNonzeroFloat64) // keep the seeded sentinel distinct
		}
		if e.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current average in seconds, zero before the first
// observation.
func (e *EWMA) Value() float64 {
	if e == nil {
		return 0
	}
	return math.Float64frombits(e.bits.Load())
}
