package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// AnalyzerMetricName enforces the telemetry naming convention at lint
// time instead of at process startup. The registry panics on a bad
// metric name, but only when the registration actually runs — a metric
// behind a rarely-taken branch or a new binary can ship a bad name
// unnoticed. This analyzer checks every string literal passed as the
// first argument to a Counter/Gauge/Histogram/GaugeFunc/CounterFunc
// registration call against the same rule the registry applies:
// lowercase subsystem_name_unit with at least three segments, ending
// in an approved unit.
//
// The rule is mirrored from internal/telemetry's mustName; the two
// must stay in sync (the registry is the source of truth).
var AnalyzerMetricName = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric names must be subsystem_name_unit with an approved unit (total, seconds, bytes, ratio, count)",
	Run:  runMetricName,
}

// metricNameRe and metricUnits mirror telemetry.metricNameRe and
// telemetry.approvedUnits.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+){2,}$`)

var metricUnits = map[string]bool{
	"total":   true,
	"seconds": true,
	"bytes":   true,
	"ratio":   true,
	"count":   true,
}

// metricRegisterMethods are the registry's registration entry points.
// The check is syntactic: any method call with one of these names and
// a string-literal first argument is treated as a metric registration.
var metricRegisterMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"GaugeFunc":   true,
	"CounterFunc": true,
}

func runMetricName(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricRegisterMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if msg := checkMetricName(name); msg != "" {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(lit.Pos()),
					Analyzer: "metricname",
					Message:  msg,
				})
			}
			return true
		})
	}
	return out
}

// checkMetricName returns a diagnostic message for an invalid metric
// name, or "" if the name is acceptable.
func checkMetricName(name string) string {
	if !metricNameRe.MatchString(name) {
		return "metric name " + strconv.Quote(name) + " must be lowercase subsystem_name_unit with at least three segments"
	}
	unit := name[strings.LastIndexByte(name, '_')+1:]
	if !metricUnits[unit] {
		return "metric name " + strconv.Quote(name) + " must end in an approved unit (total, seconds, bytes, ratio, count)"
	}
	return ""
}
