package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenTyped mirrors TestGolden for the type-aware tier: each
// typed analyzer has a self-contained fixture package (stdlib imports
// only, type-checked via LoadTypedDir) with true positives in bad.go,
// safe idioms in clean.go, and the exact findings pinned in golden.txt.
func TestGoldenTyped(t *testing.T) {
	for _, a := range TypedAnalyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			m, err := LoadTypedDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := RunTyped(m, []*TypedAnalyzer{a})
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(filepath.ToSlash(d.String()))
				b.WriteByte('\n')
			}
			got := b.String()
			goldenPath := filepath.Join(dir, "golden.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if !strings.Contains(got, "bad.go") {
				t.Errorf("analyzer %s found no true positive in bad.go", a.Name)
			}
			if strings.Contains(got, "clean.go") {
				t.Errorf("analyzer %s flagged the clean fixture", a.Name)
			}
		})
	}
}

// TestTypedSuppression checks that //gridlint:ignore reaches the typed
// tier, including the multi-line statement case: the comment's line
// range must cover every line of the suppressed statement.
func TestTypedSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import (
	"net"
	"sync"
)

type S struct {
	mu   sync.Mutex
	conn net.Conn
}

func suppressed(s *S, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gridlint:ignore heldlockio intentional: lock serializes this writer
	_, err := s.conn.Write(
		b,
	)
	return err
}

func unsuppressed(s *S, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b)
	return err
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadTypedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunTyped(m, []*TypedAnalyzer{AnalyzerHeldLockIO})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only unsuppressed): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 26 {
		t.Errorf("surviving diagnostic at line %d, want 26", diags[0].Pos.Line)
	}
}

// TestSelectTyped pins the cross-tier flag semantics: one -enable list
// names analyzers of both tiers and each Select picks out its own.
func TestSelectTyped(t *testing.T) {
	all := SelectTyped("", "")
	if len(all) != len(TypedAnalyzers()) {
		t.Fatalf("SelectTyped all = %d", len(all))
	}
	one := SelectTyped("lockorder, sleepsync", "")
	if len(one) != 1 || one[0].Name != "lockorder" {
		t.Fatalf("SelectTyped enable = %v", one)
	}
	rest := SelectTyped("", "lockorder")
	if len(rest) != len(TypedAnalyzers())-1 {
		t.Fatalf("SelectTyped disable = %d", len(rest))
	}
	// The syntactic Select must tolerate typed names in the same lists.
	syn, err := Select("lockorder, sleepsync", "")
	if err != nil || len(syn) != 1 || syn[0].Name != "sleepsync" {
		t.Fatalf("Select with typed name = %v, err %v", syn, err)
	}
	if _, err := Select("", "heldlockio"); err != nil {
		t.Fatalf("Select disable with typed name: %v", err)
	}
	if !IsTypedName("viewlifetime") || IsTypedName("sleepsync") {
		t.Error("IsTypedName misclassifies")
	}
}
