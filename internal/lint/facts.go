package lint

// The facts layer sits between the typed loader (typed.go) and the
// type-aware analyzers. For every function in the module it extracts a
// FuncFact: which locks the function acquires (and what was already
// held at each acquisition), which calls it makes (static calls
// resolved through go/types, interface calls resolved to every module
// type implementing the interface), which channel sends and direct
// blocking-I/O operations it performs, and which goroutines it spawns.
// A fixed-point pass then propagates two transitive facts over the
// callgraph: the set of locks a function may acquire (directly or
// through any callee — this is how a `withLock`-style wrapper's
// acquisition reaches its callers) and whether it may block on I/O.
//
// The held-lock tracking is a linear abstract walk, not a full CFG
// dataflow: statements are visited in source order, branches run on a
// copy of the held set and non-terminating branch results are
// intersected back in, loops run once. That model is exact for the
// lock/unlock shapes this codebase uses (lock; early-return unlock;
// unlock — and defer unlock) and documented-approximate for exotic
// ones. Function literals run inline when immediately invoked, as
// fresh goroutine-facts when spawned with `go`, and as independent
// anonymous facts otherwise; deferred calls are walked with an empty
// held set (they run at exit, after the body's releases).

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"strings"
	"sync"
)

// HeldLock is one lock held at some program point.
type HeldLock struct {
	ID   string // canonical lock identity, e.g. "store.Store.mu"
	Read bool   // held via RLock
}

// AcquireEvent records one lock acquisition and what was held already.
type AcquireEvent struct {
	Lock string
	Read bool
	Held []HeldLock
	Pos  token.Pos
}

// CallEvent records one resolved call site and the held set at it.
type CallEvent struct {
	Callees  []*types.Func // ≥1; >1 when an interface call fans out
	ViaIface bool
	Held     []HeldLock
	Pos      token.Pos
}

// SendEvent records a channel send that can block (not escaped by a
// select with a default or receive alternative).
type SendEvent struct {
	Held []HeldLock
	Pos  token.Pos
}

// IOEvent records a direct blocking operation: network or file I/O, a
// bufio flush, time.Sleep, a WaitGroup/Cond wait.
type IOEvent struct {
	What string
	Held []HeldLock
	Pos  token.Pos
}

// FuncFact is everything the facts layer knows about one function.
type FuncFact struct {
	Fn   *types.Func // nil for anonymous (function-literal) facts
	Pkg  *TypedPackage
	Name string // display name, e.g. "transport.sendConn.writeFrame"

	Acquires []AcquireEvent
	Calls    []CallEvent
	Sends    []SendEvent
	IO       []IOEvent
	Spawns   []token.Pos // `go` statements

	// Fixed-point results over the callgraph.
	TransAcquires map[string]bool // locks possibly acquired, transitively
	TransIO       bool            // may block on I/O, transitively
	IOPath        []string        // call chain from here to the direct I/O
}

// Facts is the module-wide fact table.
type Facts struct {
	Mod   *Module
	Funcs map[*types.Func]*FuncFact
	Anon  []*FuncFact // function literals: goroutine bodies, stored closures
}

// Facts builds (once) and returns the module's fact table.
func (m *Module) Facts() *Facts {
	m.factsOnce.Do(func() { m.facts = buildFacts(m) })
	return m.facts
}

// All iterates every fact, declared and anonymous.
func (f *Facts) All() []*FuncFact {
	out := make([]*FuncFact, 0, len(f.Funcs)+len(f.Anon))
	for _, ff := range f.Funcs {
		out = append(out, ff)
	}
	out = append(out, f.Anon...)
	return out
}

// FuncByName finds a fact by display name — a test and debugging hook.
func (f *Facts) FuncByName(name string) *FuncFact {
	for _, ff := range f.Funcs {
		if ff.Name == name {
			return ff
		}
	}
	return nil
}

func buildFacts(m *Module) *Facts {
	f := &Facts{Mod: m, Funcs: make(map[*types.Func]*FuncFact)}
	fb := &factsBuilder{facts: f, ifaceImpls: make(map[*types.Func][]*types.Func)}
	fb.collectNamedTypes()

	// Extract per-function events, packages in parallel: each package's
	// walker only writes its own result slot.
	type pkgFacts struct {
		funcs map[*types.Func]*FuncFact
		anon  []*FuncFact
	}
	results := make([]pkgFacts, len(m.Pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range m.Pkgs {
		wg.Add(1)
		go func(i int, pkg *TypedPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pf := pkgFacts{funcs: make(map[*types.Func]*FuncFact)}
			for _, file := range pkg.Files {
				for _, decl := range file.AST.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					if obj == nil {
						continue
					}
					ff := &FuncFact{Fn: obj, Pkg: pkg, Name: funcDisplay(obj)}
					w := &regionWalker{fb: fb, pkg: pkg, ff: ff, anon: &pf.anon}
					w.walkStmtList(fd.Body.List)
					pf.funcs[obj] = ff
				}
			}
			results[i] = pf
		}(i, pkg)
	}
	wg.Wait()
	for _, pf := range results {
		for obj, ff := range pf.funcs {
			f.Funcs[obj] = ff
		}
		f.Anon = append(f.Anon, pf.anon...)
	}
	f.propagate()
	return f
}

// propagate runs the fixed point for TransAcquires and TransIO.
func (f *Facts) propagate() {
	all := f.All()
	for _, ff := range all {
		ff.TransAcquires = make(map[string]bool, len(ff.Acquires))
		for _, a := range ff.Acquires {
			ff.TransAcquires[a.Lock] = true
		}
		if len(ff.IO) > 0 {
			ff.TransIO = true
			ff.IOPath = []string{ff.IO[0].What}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range all {
			for _, ce := range ff.Calls {
				for _, callee := range ce.Callees {
					cf := f.Funcs[callee]
					if cf == nil || cf == ff {
						continue
					}
					for l := range cf.TransAcquires {
						if !ff.TransAcquires[l] {
							ff.TransAcquires[l] = true
							changed = true
						}
					}
					if cf.TransIO && !ff.TransIO {
						ff.TransIO = true
						ff.IOPath = append([]string{cf.Name}, cf.IOPath...)
						if len(ff.IOPath) > 4 {
							ff.IOPath = ff.IOPath[:4]
						}
						changed = true
					}
				}
			}
		}
	}
}

// IODescription renders the chain from this function to its direct I/O
// ("net.Conn.Write" or "transport.sendConn.writeFrame → bufio.Writer.Flush").
func (ff *FuncFact) IODescription() string {
	if len(ff.IOPath) == 0 {
		return "blocking I/O"
	}
	return strings.Join(ff.IOPath, " → ")
}

// factsBuilder holds the module-wide state the per-function walkers
// share read-only: the named-type inventory for interface resolution.
type factsBuilder struct {
	facts      *Facts
	named      []*types.Named
	implMu     sync.Mutex
	ifaceImpls map[*types.Func][]*types.Func // interface method -> concrete methods
}

func (fb *factsBuilder) collectNamedTypes() {
	for _, pkg := range fb.facts.Mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				fb.named = append(fb.named, n)
			}
		}
	}
}

// resolveIface maps one interface method to every concrete method on a
// module type implementing the interface. Memoized: the named-type scan
// is O(module types) per distinct interface method.
func (fb *factsBuilder) resolveIface(iface *types.Interface, method *types.Func) []*types.Func {
	fb.implMu.Lock()
	defer fb.implMu.Unlock()
	if impls, ok := fb.ifaceImpls[method]; ok {
		return impls
	}
	var impls []*types.Func
	for _, n := range fb.named {
		if types.IsInterface(n) {
			continue
		}
		var recv types.Type = n
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(n)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, method.Pkg(), method.Name())
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn)
		}
	}
	fb.ifaceImpls[method] = impls
	return impls
}

// walkAnon analyzes a function literal as an independent fact with an
// empty held set.
func (fb *factsBuilder) walkAnon(pkg *TypedPackage, name string, body *ast.BlockStmt, anon *[]*FuncFact) {
	ff := &FuncFact{Pkg: pkg, Name: name}
	w := &regionWalker{fb: fb, pkg: pkg, ff: ff, anon: anon}
	w.walkStmtList(body.List)
	*anon = append(*anon, ff)
}

// regionWalker performs the linear abstract walk of one function body,
// tracking the ordered set of held locks.
type regionWalker struct {
	fb   *factsBuilder
	pkg  *TypedPackage
	ff   *FuncFact
	held []HeldLock
	anon *[]*FuncFact
}

func (w *regionWalker) snapshot() []HeldLock {
	if len(w.held) == 0 {
		return nil
	}
	out := make([]HeldLock, len(w.held))
	copy(out, w.held)
	return out
}

// intersect keeps only locks present in both sets (by identity+mode),
// preserving a's order — the merge rule after a branch.
func intersectHeld(a, b []HeldLock) []HeldLock {
	var out []HeldLock
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func (w *regionWalker) walkStmtList(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *regionWalker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt)
	case *ast.SendStmt:
		w.walkExpr(x.Chan)
		w.walkExpr(x.Value)
		if len(w.held) > 0 {
			w.ff.Sends = append(w.ff.Sends, SendEvent{Held: w.snapshot(), Pos: x.Pos()})
		}
	case *ast.IncDecStmt:
		w.walkExpr(x.X)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.walkExpr(e)
		}
		for _, e := range x.Lhs {
			w.walkExpr(e)
		}
	case *ast.GoStmt:
		w.ff.Spawns = append(w.ff.Spawns, x.Pos())
		for _, a := range x.Call.Args {
			w.walkExpr(a)
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.fb.walkAnon(w.pkg, w.ff.Name+".go-func", fl.Body, w.anon)
		}
	case *ast.DeferStmt:
		for _, a := range x.Call.Args {
			w.walkExpr(a)
		}
		if name, ok := w.lockMethod(x.Call); ok && (name == "Unlock" || name == "RUnlock") {
			// Deferred release: the lock stays held to the end of the
			// function, which is exactly what the held set models.
			return
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.fb.walkAnon(w.pkg, w.ff.Name+".defer-func", fl.Body, w.anon)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.walkExpr(e)
		}
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.BadStmt:
	case *ast.BlockStmt:
		w.walkStmtList(x.List)
	case *ast.IfStmt:
		w.walkStmt(x.Init)
		w.walkExpr(x.Cond)
		entry := w.snapshot()
		w.walkStmtList(x.Body.List)
		thenExit, thenTerm := w.snapshot(), terminates(x.Body.List)
		var elseExit []HeldLock
		elseTerm := false
		hasElse := x.Else != nil
		if hasElse {
			w.held = append(w.held[:0], entry...)
			w.walkStmt(x.Else)
			elseExit = w.snapshot()
			if b, ok := x.Else.(*ast.BlockStmt); ok {
				elseTerm = terminates(b.List)
			}
		}
		// Continue with the intersection of every branch that falls
		// through; a terminating branch contributes nothing.
		switch {
		case thenTerm && hasElse && elseTerm:
			w.held = entry // unreachable fall-through; keep entry state
		case thenTerm && hasElse:
			w.held = elseExit
		case thenTerm:
			w.held = entry
		case hasElse && elseTerm:
			w.held = thenExit
		case hasElse:
			w.held = intersectHeld(thenExit, elseExit)
		default:
			w.held = intersectHeld(thenExit, entry)
		}
	case *ast.ForStmt:
		w.walkStmt(x.Init)
		w.walkExpr(x.Cond)
		entry := w.snapshot()
		w.walkStmtList(x.Body.List)
		w.walkStmt(x.Post)
		w.held = intersectHeld(w.snapshot(), entry)
	case *ast.RangeStmt:
		w.walkExpr(x.X)
		entry := w.snapshot()
		w.walkStmtList(x.Body.List)
		w.held = intersectHeld(w.snapshot(), entry)
	case *ast.SwitchStmt:
		w.walkStmt(x.Init)
		w.walkExpr(x.Tag)
		w.walkCases(x.Body.List)
	case *ast.TypeSwitchStmt:
		w.walkStmt(x.Init)
		w.walkCases(x.Body.List)
	case *ast.SelectStmt:
		w.walkSelect(x)
	}
}

// walkCases runs every case body on a copy of the held set and
// continues with the intersection of the non-terminating exits.
func (w *regionWalker) walkCases(clauses []ast.Stmt) {
	entry := w.snapshot()
	exit := entry
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.walkExpr(e)
		}
		w.held = append(w.held[:0:0], entry...)
		w.walkStmtList(cc.Body)
		if !terminates(cc.Body) {
			exit = intersectHeld(exit, w.snapshot())
		}
	}
	w.held = exit
}

// walkSelect walks a select statement. Sends that sit in a select with
// a default clause or a receive alternative have an escape hatch and
// are not recorded as blocking sends.
func (w *regionWalker) walkSelect(sel *ast.SelectStmt) {
	hasEscape := false
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasEscape = true
			continue
		}
		if _, ok := cc.Comm.(*ast.SendStmt); !ok {
			hasEscape = true
		}
	}
	entry := w.snapshot()
	exit := entry
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		w.held = append(w.held[:0:0], entry...)
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			w.walkExpr(send.Chan)
			w.walkExpr(send.Value)
			if !hasEscape && len(w.held) > 0 {
				w.ff.Sends = append(w.ff.Sends, SendEvent{Held: w.snapshot(), Pos: send.Pos()})
			}
		} else if cc.Comm != nil {
			w.walkStmt(cc.Comm)
		}
		w.walkStmtList(cc.Body)
		if !terminates(cc.Body) {
			exit = intersectHeld(exit, w.snapshot())
		}
	}
	w.held = exit
}

// terminates reports whether a statement list certainly transfers
// control away at its end (return, branch, panic, os.Exit, select{}).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// walkExpr descends an expression, dispatching calls to handleCall and
// free-standing function literals to independent anonymous facts.
func (w *regionWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			w.handleCall(x)
			return false
		case *ast.FuncLit:
			w.fb.walkAnon(w.pkg, w.ff.Name+".func", x.Body, w.anon)
			return false
		}
		return true
	})
}

// lockMethod reports the sync.Mutex/RWMutex/Locker method name a call
// targets, if any.
func (w *regionWalker) lockMethod(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	obj, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	return sel.Sel.Name, true
}

func (w *regionWalker) handleCall(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.walkExpr(a)
	}
	// An immediately-invoked function literal runs inline, under
	// whatever is held right now.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkStmtList(fl.Body.List)
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X)
	}

	if name, ok := w.lockMethod(call); ok {
		w.handleLock(call, name)
		return
	}

	callee := w.staticCallee(call)
	if callee == nil {
		return
	}
	if what, ok := classifyIO(callee); ok {
		w.ff.IO = append(w.ff.IO, IOEvent{What: what, Held: w.snapshot(), Pos: call.Pos()})
		return
	}
	// Interface method call on a module interface: fan out to every
	// implementing module type.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			if impls := w.fb.resolveIface(iface, callee); len(impls) > 0 {
				w.ff.Calls = append(w.ff.Calls, CallEvent{Callees: impls, ViaIface: true, Held: w.snapshot(), Pos: call.Pos()})
			}
			return
		}
	}
	if w.fb.facts.Mod.IsModulePackage(callee.Pkg()) {
		w.ff.Calls = append(w.ff.Calls, CallEvent{Callees: []*types.Func{callee}, Held: w.snapshot(), Pos: call.Pos()})
	}
}

// staticCallee resolves the called function object, if the call target
// is a plain function, method value or qualified name.
func (w *regionWalker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := w.pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := w.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func (w *regionWalker) handleLock(call *ast.CallExpr, method string) {
	sel := call.Fun.(*ast.SelectorExpr)
	id := w.lockIdentity(sel)
	if id == "" {
		return
	}
	switch method {
	case "Lock", "RLock":
		read := method == "RLock"
		w.ff.Acquires = append(w.ff.Acquires, AcquireEvent{Lock: id, Read: read, Held: w.snapshot(), Pos: call.Pos()})
		w.held = append(w.held, HeldLock{ID: id, Read: read})
	case "Unlock", "RUnlock":
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i].ID == id {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
	}
}

// lockIdentity derives the canonical identity of the mutex a
// Lock/Unlock call targets. Identities are per-declaration, not
// per-instance: every instance of store.Store shares "store.Store.mu".
// That is the right granularity for a global acquisition-order graph —
// two instances of one type locked in both orders is exactly the
// deadlock the graph must surface.
func (w *regionWalker) lockIdentity(sel *ast.SelectorExpr) string {
	info := w.pkg.Info
	s := info.Selections[sel]
	if s == nil {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
			// Mutex embedded in a named type: type + embedded field path.
			name := typeDisplay(named)
			if idx := s.Index(); len(idx) > 1 {
				if fld := fieldAt(named, idx[:len(idx)-1]); fld != "" {
					return name + "." + fld
				}
			}
			return name + ".(embedded)"
		}
	}
	// Plain sync.Mutex/RWMutex (or sync.Locker) value: identity from
	// the receiver expression.
	return w.exprIdentity(sel.X)
}

// exprIdentity reduces a mutex-valued expression to an identity.
func (w *regionWalker) exprIdentity(e ast.Expr) string {
	info := w.pkg.Info
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name() // package-level var
			}
			return w.ff.Name + "." + v.Name() // function-local var
		}
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return typeDisplay(named) + "." + x.Sel.Name
			}
			return "struct." + x.Sel.Name
		}
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.ParenExpr:
		return w.exprIdentity(x.X)
	case *ast.StarExpr:
		return w.exprIdentity(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.exprIdentity(x.X)
		}
	case *ast.IndexExpr:
		if base := w.exprIdentity(x.X); base != "" {
			return base + "[]" // one identity per striped-lock array
		}
	}
	return ""
}

func typeDisplay(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// fieldAt resolves a selection index path to the final field name.
func fieldAt(t types.Type, idx []int) string {
	name := ""
	for _, i := range idx {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			t = n.Underlying()
		}
		st, ok := t.(*types.Struct)
		if !ok || i >= st.NumFields() {
			return ""
		}
		f := st.Field(i)
		name = f.Name()
		t = f.Type()
	}
	return name
}

func funcDisplay(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkgName + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkgName + fn.Name()
}

// renderHeld prints a held set for diagnostics.
func renderHeld(held []HeldLock) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = h.ID
		if h.Read {
			parts[i] += " (read)"
		}
	}
	return strings.Join(parts, ", ")
}

// classifyIO decides whether a call target is a direct blocking
// operation: network/file I/O, a bufio flush, a call through an io
// interface, time.Sleep, a WaitGroup/Cond wait, a subprocess wait.
// The lists are deliberately explicit — each entry is an operation
// that can park the goroutine for an unbounded time.
func classifyIO(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recvName := recvTypeName(sig.Recv().Type())
		key := path + "." + recvName + "." + name
		if blockingMethods[key] {
			return shortIOLabel(path, recvName, name), true
		}
		return "", false
	}
	if blockingFuncs[path+"."+name] {
		return path + "." + name, true
	}
	return "", false
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func shortIOLabel(path, recv, name string) string {
	return path + "." + recv + "." + name
}

// blockingMethods: "pkgpath.RecvType.Method".
var blockingMethods = map[string]bool{
	// net: connection and listener operations.
	"net.TCPConn.Read": true, "net.TCPConn.Write": true, "net.TCPConn.Close": true, "net.TCPConn.ReadFrom": true,
	"net.UDPConn.Read": true, "net.UDPConn.Write": true, "net.UDPConn.Close": true,
	"net.UnixConn.Read": true, "net.UnixConn.Write": true, "net.UnixConn.Close": true,
	"net.Conn.Read": true, "net.Conn.Write": true, "net.Conn.Close": true,
	"net.Listener.Accept": true, "net.Listener.Close": true,
	"net.TCPListener.Accept": true, "net.TCPListener.AcceptTCP": true, "net.TCPListener.Close": true,
	"net.Dialer.Dial": true, "net.Dialer.DialContext": true,
	"net.Resolver.LookupHost": true, "net.Resolver.LookupAddr": true,
	// bufio: every operation that may touch the underlying stream.
	"bufio.Writer.Flush": true, "bufio.Writer.Write": true, "bufio.Writer.WriteByte": true,
	"bufio.Writer.WriteRune": true, "bufio.Writer.WriteString": true, "bufio.Writer.ReadFrom": true,
	"bufio.Reader.Read": true, "bufio.Reader.ReadByte": true, "bufio.Reader.ReadRune": true,
	"bufio.Reader.ReadString": true, "bufio.Reader.ReadBytes": true, "bufio.Reader.ReadSlice": true,
	"bufio.Reader.ReadLine": true, "bufio.Reader.Peek": true, "bufio.Reader.Discard": true,
	"bufio.Reader.WriteTo": true, "bufio.Scanner.Scan": true,
	// io: calls through the io interfaces — the sink behind the
	// interface is unknown, so a lock-held call must assume a socket.
	"io.Reader.Read": true, "io.Writer.Write": true, "io.Closer.Close": true,
	"io.ReadWriter.Read": true, "io.ReadWriter.Write": true,
	"io.ReadCloser.Read": true, "io.ReadCloser.Close": true,
	"io.WriteCloser.Write": true, "io.WriteCloser.Close": true,
	"io.ReadWriteCloser.Read": true, "io.ReadWriteCloser.Write": true, "io.ReadWriteCloser.Close": true,
	"io.ReaderFrom.ReadFrom": true, "io.WriterTo.WriteTo": true, "io.StringWriter.WriteString": true,
	// os: file I/O.
	"os.File.Read": true, "os.File.ReadAt": true, "os.File.ReadFrom": true,
	"os.File.Write": true, "os.File.WriteAt": true, "os.File.WriteString": true, "os.File.Sync": true,
	// net/http: round trips and server lifecycles.
	"net/http.Client.Do": true, "net/http.Client.Get": true, "net/http.Client.Post": true,
	"net/http.Client.PostForm": true, "net/http.Client.Head": true,
	"net/http.Server.ListenAndServe": true, "net/http.Server.ListenAndServeTLS": true,
	"net/http.Server.Serve": true, "net/http.Server.Shutdown": true, "net/http.Server.Close": true,
	// os/exec: subprocess lifecycles.
	"os/exec.Cmd.Run": true, "os/exec.Cmd.Output": true, "os/exec.Cmd.CombinedOutput": true,
	"os/exec.Cmd.Start": true, "os/exec.Cmd.Wait": true,
	// sync: unbounded waits.
	"sync.WaitGroup.Wait": true, "sync.Cond.Wait": true,
}

// blockingFuncs: "pkgpath.Func".
var blockingFuncs = map[string]bool{
	"time.Sleep":      true,
	"net.Dial":        true,
	"net.DialTimeout": true, "net.Listen": true, "net.ListenPacket": true,
	"net.DialTCP": true, "net.DialUDP": true, "net.ListenTCP": true, "net.ListenUDP": true,
	"net.LookupHost": true, "net.LookupAddr": true, "net.LookupIP": true,
	"io.Copy": true, "io.CopyN": true, "io.CopyBuffer": true,
	"io.ReadAll": true, "io.ReadFull": true, "io.ReadAtLeast": true, "io.WriteString": true,
	"os.ReadFile": true, "os.WriteFile": true,
	"net/http.Get": true, "net/http.Post": true, "net/http.Head": true, "net/http.PostForm": true,
	"net/http.ListenAndServe": true, "net/http.ListenAndServeTLS": true, "net/http.Serve": true,
}
