package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerUnboundedSend flags channel sends that can block forever.
// Agent behaviours (message handlers, goal actions) run on scheduling
// goroutines the whole container shares; one send to a full unbuffered
// channel wedges the MTS and, transitively, every agent behind it.
//
// A send is considered bounded when any of these hold:
//   - it is a case of a select statement that also has a default
//     clause or a receive case (timeout, ctx.Done) — the behaviour has
//     an escape hatch;
//   - the channel is provably buffered within the enclosing function
//     (a `ch := make(chan T, n)` with nonzero capacity is in scope).
//
// Anything else is flagged. Sends that are bounded for reasons the
// heuristic cannot see (capacity established elsewhere, receiver
// guaranteed live) should carry a //gridlint:ignore unboundedsend
// comment explaining why.
var AnalyzerUnboundedSend = &Analyzer{
	Name: "unboundedsend",
	Doc:  "channel sends must sit in a select with default/timeout or target a provably buffered channel",
	Run:  runUnboundedSend,
}

func runUnboundedSend(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			buffered := bufferedChans(fn.Body)
			bounded := boundedSelectSends(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				send, ok := n.(*ast.SendStmt)
				if !ok {
					return true
				}
				if bounded[send] {
					return true
				}
				if id, ok := send.Chan.(*ast.Ident); ok && buffered[id.Name] {
					return true
				}
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(send.Pos()),
					Analyzer: "unboundedsend",
					Message:  "potentially blocking channel send: wrap in a select with default/timeout or use a buffered channel",
				})
				return true
			})
		}
	}
	return out
}

// bufferedChans collects identifiers assigned `make(chan T, n)` with a
// nonzero capacity anywhere in the function (including nested
// literals).
func bufferedChans(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isBufferedMake(rhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// isBufferedMake matches make(chan T, n) where n is not the literal 0.
func isBufferedMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" {
		return false
	}
	if _, ok := call.Args[0].(*ast.ChanType); !ok {
		return false
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
		return false
	}
	return true
}

// boundedSelectSends marks send statements that appear as select cases
// in a select offering an alternative path (default clause or any
// receive case).
func boundedSelectSends(body *ast.BlockStmt) map[*ast.SendStmt]bool {
	out := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasEscape := false
		var sends []*ast.SendStmt
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil { // default clause
				hasEscape = true
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				sends = append(sends, send)
				continue
			}
			if commReceiveExpr(cc.Comm) != nil {
				hasEscape = true
			}
		}
		if hasEscape {
			for _, send := range sends {
				out[send] = true
			}
		}
		return true
	})
	return out
}
