package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestGolden runs every analyzer over its fixture directory and
// compares the rendered diagnostics against testdata/<name>/golden.txt.
// Each fixture holds at least one true positive (bad.go) and one clean
// case (clean.go); the golden file pins exactly what is flagged.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if pkg == nil {
				t.Fatalf("no fixture package in %s", dir)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{a})
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(filepath.ToSlash(d.String()))
				b.WriteByte('\n')
			}
			got := b.String()
			goldenPath := filepath.Join(dir, "golden.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if !strings.Contains(got, "bad.go") {
				t.Errorf("analyzer %s found no true positive in bad.go", a.Name)
			}
			if strings.Contains(got, "clean.go") {
				t.Errorf("analyzer %s flagged the clean fixture", a.Name)
			}
		})
	}
}

func TestLoadSkipsTestdataAndTests(t *testing.T) {
	pkgs, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(.) found %d packages, want 1 (testdata must be skipped)", len(pkgs))
	}
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(f.Path, "_test.go") {
			t.Errorf("test file loaded: %s", f.Path)
		}
		if strings.Contains(f.Path, "testdata") {
			t.Errorf("testdata file loaded: %s", f.Path)
		}
	}
}

func TestSelfClean(t *testing.T) {
	// The lint package must pass its own analyzers.
	pkg, err := LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, Analyzers()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("self-lint: %s", d)
		}
	}
}

// TestChaosPackagesClean pins the chaos harness and the tracing
// subsystem to a clean bill from the concurrency analyzers: the
// packages that inject faults, drive virtual time and collect spans
// from every hot path must themselves be free of real sleeps, leaked
// goroutines, unbounded sends and trace-context drops. The golden file
// is empty and must stay that way; -update rewrites it so a regression
// shows up as a golden diff in review.
func TestChaosPackagesClean(t *testing.T) {
	analyzers, err := Select("sleepsync, goroutineleak, unboundedsend, tracectx", "")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, dir := range []string{"../chaos", "../chaos/scenarios", "../trace"} {
		pkg, err := LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if pkg == nil {
			t.Fatalf("no package in %s", dir)
		}
		for _, d := range Run([]*Package{pkg}, analyzers) {
			b.WriteString(filepath.ToSlash(d.String()))
			b.WriteByte('\n')
		}
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", "chaos", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("chaos lint diagnostics changed\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if len(want) != 0 {
		t.Errorf("golden file is non-empty: the chaos packages must lint clean")
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select all = %d analyzers, err %v", len(all), err)
	}
	one, err := Select("sleepsync", "")
	if err != nil || len(one) != 1 || one[0].Name != "sleepsync" {
		t.Fatalf("Select enable = %v, err %v", one, err)
	}
	rest, err := Select("", "sleepsync, guardedfield")
	if err != nil || len(rest) != len(Analyzers())-2 {
		t.Fatalf("Select disable = %d analyzers, err %v", len(rest), err)
	}
	for _, a := range rest {
		if a.Name == "sleepsync" || a.Name == "guardedfield" {
			t.Errorf("disabled analyzer %s still selected", a.Name)
		}
	}
	if _, err := Select("nope", ""); err == nil {
		t.Error("unknown enable name accepted")
	}
	if _, err := Select("", "nope"); err == nil {
		t.Error("unknown disable name accepted")
	}
}

func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func a() {
	time.Sleep(time.Second) //gridlint:ignore sleepsync trailing comment
}

func b() {
	//gridlint:ignore sleepsync comment on the line above
	time.Sleep(time.Second)
}

func c() {
	//gridlint:ignore all blanket suppression
	time.Sleep(time.Second)
}

func d() {
	time.Sleep(time.Second) // unsuppressed
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerSleepSync})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only func d): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 20 {
		t.Errorf("surviving diagnostic at line %d, want 20", diags[0].Pos.Line)
	}
}

func TestDiagnosticString(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "sleepsync"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerSleepSync})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "bad.go:") || !strings.Contains(s, "[sleepsync]") {
		t.Errorf("String = %q", s)
	}
}
