package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// AnalyzerACLPerformative flags raw string literals used where FIPA ACL
// performatives, protocol names or ontology names belong. The grid's
// wire protocol is only well-formed when every message carries one of
// the constants declared in internal/acl (acl.Inform, acl.ProtocolRequest,
// acl.OntologyGridManagement, ...); a typo'd literal compiles fine but
// produces messages no handler selector ever matches — the classic
// silent protocol-misuse failure of distributed manager grids.
//
// Heuristic (syntactic, no type information):
//   - composite-literal entries keyed Performative:, Protocol: or
//     Ontology: whose value is a string literal;
//   - conversions Performative("...") / acl.Performative("...");
//   - comparisons and switch cases matching a .Performative, .Protocol
//     or .Ontology selector against a non-empty string literal.
//
// The internal/acl package itself — where the constants live — is
// exempt.
var AnalyzerACLPerformative = &Analyzer{
	Name: "aclperformative",
	Doc:  "ACL performatives, protocols and ontologies must use the internal/acl constants, never raw string literals",
	Run:  runACLPerformative,
}

// aclFields are the message/selector field names whose values must come
// from internal/acl constants.
var aclFields = map[string]bool{
	"Performative": true,
	"Protocol":     true,
	"Ontology":     true,
}

func runACLPerformative(p *Package) []Diagnostic {
	if p.Name == "acl" {
		return nil // the constants' own home
	}
	var out []Diagnostic
	report := func(pos token.Pos, field, lit string) {
		out = append(out, Diagnostic{
			Pos:      p.Fset.Position(pos),
			Analyzer: "aclperformative",
			Message:  fmt.Sprintf("raw string %s for ACL %s; use the internal/acl constants", lit, strings.ToLower(field)),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				key, ok := n.Key.(*ast.Ident)
				if !ok || !aclFields[key.Name] {
					return true
				}
				if lit, ok := stringLit(n.Value); ok && lit != `""` {
					report(n.Value.Pos(), key.Name, lit)
				}
			case *ast.CallExpr:
				// Conversion acl.Performative("...") or Performative("...").
				if len(n.Args) != 1 {
					return true
				}
				name := typeName(n.Fun)
				if name != "Performative" {
					return true
				}
				if lit, ok := stringLit(n.Args[0]); ok {
					report(n.Args[0].Pos(), name, lit)
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				field, litExpr := aclComparison(n.X, n.Y)
				if field == "" {
					field, litExpr = aclComparison(n.Y, n.X)
				}
				if field == "" {
					return true
				}
				if lit, ok := stringLit(litExpr); ok && lit != `""` {
					report(litExpr.Pos(), field, lit)
				}
			case *ast.SwitchStmt:
				sel, ok := n.Tag.(*ast.SelectorExpr)
				if !ok || !aclFields[sel.Sel.Name] {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if lit, ok := stringLit(e); ok && lit != `""` {
							report(e.Pos(), sel.Sel.Name, lit)
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// aclComparison reports the ACL field name when selExpr is a selector
// on an ACL field and litSide is a plausible literal side.
func aclComparison(selExpr, litSide ast.Expr) (string, ast.Expr) {
	sel, ok := selExpr.(*ast.SelectorExpr)
	if !ok || !aclFields[sel.Sel.Name] {
		return "", nil
	}
	return sel.Sel.Name, litSide
}

// stringLit returns the quoted text of a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	if _, err := strconv.Unquote(lit.Value); err != nil {
		return "", false
	}
	return lit.Value, true
}

// typeName extracts the bare name of a (possibly package-qualified)
// type expression used as a conversion target.
func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return typeName(e.X)
	}
	return ""
}
