package lint

// AnalyzerHeldLockIO flags operations that can park a goroutine for an
// unbounded time while a mutex is held: direct network/file I/O, bufio
// flushes, calls through io interfaces, time.Sleep, WaitGroup/Cond
// waits, blocking channel sends, and calls to module functions that may
// (transitively, via the callgraph — including interface dispatch)
// reach such an operation. Holding a lock across a blocking operation
// turns one slow peer into latency for every contender of that lock,
// and — when the blocked operation needs another lock — into deadlock.
// This is the hazard class of the grid's hot packages: store ingest,
// directory routing and the transport's coalesced write path.
//
// Intentional designs (a per-connection write lock that exists exactly
// to serialize the staged writes it covers) are suppressed in place
// with a reasoned //gridlint:ignore heldlockio comment.

import (
	"fmt"
	"go/token"
)

var AnalyzerHeldLockIO = &TypedAnalyzer{
	Name: "heldlockio",
	Doc:  "no network I/O, blocking channel send or blocking call while holding a mutex",
	Run:  runHeldLockIO,
}

func runHeldLockIO(m *Module) []Diagnostic {
	f := m.Facts()
	var out []Diagnostic
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Diagnostic{Pos: m.Fset.Position(pos), Analyzer: "heldlockio", Message: msg})
	}
	for _, ff := range f.All() {
		for _, ev := range ff.IO {
			if len(ev.Held) == 0 {
				continue
			}
			report(ev.Pos, fmt.Sprintf("blocking operation (%s) while holding %s", ev.What, renderHeld(ev.Held)))
		}
		for _, ev := range ff.Sends {
			report(ev.Pos, fmt.Sprintf("blocking channel send while holding %s; a full channel wedges every contender for the lock", renderHeld(ev.Held)))
		}
		for _, ce := range ff.Calls {
			if len(ce.Held) == 0 {
				continue
			}
			for _, callee := range ce.Callees {
				cf := f.Funcs[callee]
				if cf == nil || !cf.TransIO {
					continue
				}
				via := ""
				if ce.ViaIface {
					via = " (resolved via interface)"
				}
				report(ce.Pos, fmt.Sprintf("call to %s%s, which may block (%s), while holding %s",
					cf.Name, via, cf.IODescription(), renderHeld(ce.Held)))
				break
			}
		}
	}
	return out
}
