package lint

// The type-aware tier. The syntactic tier (lint.go) parses one package
// at a time and never resolves a name; that caps it at single-file
// heuristics. This file adds a whole-module loader built on go/types:
// every package in the module is parsed and type-checked in dependency
// order, identifiers resolve to objects, and the analyzers in
// lockorder.go / heldlockio.go / viewlifetime.go / errdrop.go consume
// per-function facts (facts.go) derived from the typed ASTs.
//
// The loader is still stdlib-only: module-internal imports are resolved
// by recursively type-checking the imported directory, and standard
// library imports fall through to go/importer's source importer, which
// type-checks the stdlib from GOROOT source. Cgo is disabled for the
// stdlib importer (the pure-Go net path type-checks fine), so the whole
// tier runs with zero module dependencies and no build cache.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// TypedPackage is one type-checked package of the module.
type TypedPackage struct {
	Dir   string  // directory on disk
	Path  string  // import path ("agentgrid/internal/store")
	Files []*File // parsed non-test sources, sharing the module Fset
	Types *types.Package
	Info  *types.Info
}

// Module is the whole-module result of LoadTypedModule: every package
// under the module root, type-checked against one FileSet.
type Module struct {
	Root string // module root directory
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*TypedPackage // sorted by import path

	pkgSet map[*types.Package]bool

	factsOnce sync.Once
	facts     *Facts
}

// IsModulePackage reports whether p is one of the module's own
// type-checked packages. Membership is pointer identity, not path
// prefixing, so fixture modules loaded from arbitrary directories
// (LoadTypedDir) behave exactly like the real module.
func (m *Module) IsModulePackage(p *types.Package) bool {
	return p != nil && m.pkgSet[p]
}

func (m *Module) indexPkgs() {
	m.pkgSet = make(map[*types.Package]bool, len(m.Pkgs))
	for _, tp := range m.Pkgs {
		m.pkgSet[tp.Types] = true
	}
}

// TypedAnalyzer is one named check over the typed module. Unlike the
// syntactic Analyzer it sees the whole program at once, so it can
// reason across package boundaries (a lock acquired in store while a
// directory lock is held, an interface call that lands on a method
// doing network I/O).
type TypedAnalyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Diagnostic
}

// TypedAnalyzers returns every registered type-aware analyzer, in
// stable order.
func TypedAnalyzers() []*TypedAnalyzer {
	return []*TypedAnalyzer{
		AnalyzerLockOrder,
		AnalyzerHeldLockIO,
		AnalyzerViewLifetime,
		AnalyzerErrDrop,
	}
}

// SelectTyped resolves -enable/-disable comma lists against the typed
// analyzers. Empty enable means "all". Names belonging to the syntactic
// tier are ignored here (Select owns them), so one flag pair can span
// both tiers.
func SelectTyped(enable, disable string) []*TypedAnalyzer {
	all := TypedAnalyzers()
	byName := make(map[string]*TypedAnalyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	picked := all
	if enable != "" {
		picked = nil
		for _, name := range strings.Split(enable, ",") {
			if a, ok := byName[strings.TrimSpace(name)]; ok {
				picked = append(picked, a)
			}
		}
	}
	if disable != "" {
		drop := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			drop[strings.TrimSpace(name)] = true
		}
		kept := picked[:0:len(picked)]
		for _, a := range picked {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	return picked
}

// IsTypedName reports whether name belongs to the typed tier (used by
// the CLI to validate -enable/-disable lists spanning both tiers).
func IsTypedName(name string) bool {
	for _, a := range TypedAnalyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// disableCgo turns cgo off for the stdlib source importer, once per
// process. go/importer's source importer reads build.Default; with cgo
// enabled it would try to run cgo on package net. The pure-Go variants
// type-check identically for our purposes.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

var modulePathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadTypedModule parses and type-checks every package under root
// (which must contain go.mod). Test files are skipped, matching the
// syntactic tier: the analyzers target production behaviour.
func LoadTypedModule(root string) (*Module, error) {
	disableCgo()
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: typed load: %w", err)
	}
	m := modulePathRe.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("lint: typed load: no module line in %s", filepath.Join(root, "go.mod"))
	}
	modPath := string(m[1])

	pkgs, err := Load(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}
	ld := &typedLoader{
		mod:  mod,
		std:  importer.ForCompiler(mod.Fset, "source", nil),
		dirs: make(map[string]string, len(pkgs)),
		done: make(map[string]*TypedPackage),
	}
	for _, p := range pkgs {
		rel, err := filepath.Rel(root, p.Dir)
		if err != nil {
			return nil, fmt.Errorf("lint: typed load: %w", err)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		ld.dirs[ip] = p.Dir
	}
	paths := make([]string, 0, len(ld.dirs))
	for ip := range ld.dirs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if _, err := ld.check(ip); err != nil {
			return nil, err
		}
	}
	for _, ip := range paths {
		mod.Pkgs = append(mod.Pkgs, ld.done[ip])
	}
	mod.indexPkgs()
	return mod, nil
}

// LoadTypedDir type-checks the single package in dir against the
// standard library only — the fixture and unit-test entry point. The
// returned Module has exactly one package whose import path is the
// package name.
func LoadTypedDir(dir string) (*Module, error) {
	disableCgo()
	mod := &Module{Root: dir, Fset: token.NewFileSet()}
	ld := &typedLoader{
		mod:  mod,
		std:  importer.ForCompiler(mod.Fset, "source", nil),
		dirs: map[string]string{},
		done: make(map[string]*TypedPackage),
	}
	tp, err := ld.checkDir(dir, filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	mod.Path = tp.Types.Name()
	tp.Path = tp.Types.Name()
	mod.Pkgs = []*TypedPackage{tp}
	mod.indexPkgs()
	return mod, nil
}

// typedLoader type-checks module packages on demand, memoized by
// import path, delegating non-module imports to the stdlib source
// importer.
type typedLoader struct {
	mod  *Module
	std  types.Importer
	dirs map[string]string // module import path -> directory
	done map[string]*TypedPackage
	path []string // in-progress chain, for cycle reporting
}

// Import implements types.Importer over the two-level scheme.
func (ld *typedLoader) Import(path string) (*types.Package, error) {
	if _, ok := ld.dirs[path]; ok {
		tp, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return tp.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *typedLoader) check(ip string) (*TypedPackage, error) {
	if tp, ok := ld.done[ip]; ok {
		if tp == nil {
			return nil, fmt.Errorf("lint: import cycle through %s (%s)", ip, strings.Join(ld.path, " -> "))
		}
		return tp, nil
	}
	ld.done[ip] = nil // in progress; a re-entrant check is a cycle
	ld.path = append(ld.path, ip)
	tp, err := ld.checkDir(ld.dirs[ip], ip)
	ld.path = ld.path[:len(ld.path)-1]
	if err != nil {
		delete(ld.done, ip)
		return nil, err
	}
	tp.Path = ip
	ld.done[ip] = tp
	return tp, nil
}

func (ld *typedLoader) checkDir(dir, ip string) (*TypedPackage, error) {
	pkg, err := loadDirFset(dir, ld.mod.Fset)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go package in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	files := make([]*ast.File, len(pkg.Files))
	for i, f := range pkg.Files {
		files[i] = f.AST
	}
	tpkg, err := conf.Check(ip, ld.mod.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", ip, err)
	}
	return &TypedPackage{Dir: dir, Files: pkg.Files, Types: tpkg, Info: info}, nil
}

// RunTyped builds the module facts once, applies the typed analyzers —
// analyzers in parallel, they only read the shared facts — filters
// //gridlint:ignore suppressions and returns diagnostics sorted by
// position.
func RunTyped(m *Module, analyzers []*TypedAnalyzer) []Diagnostic {
	results := make([][]Diagnostic, len(analyzers))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *TypedAnalyzer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = a.Run(m)
		}(i, a)
	}
	wg.Wait()
	var out []Diagnostic
	for i, a := range analyzers {
		diags := results[i]
		if len(diags) == 0 {
			continue
		}
		sup := make(map[string]map[int]bool)
		for _, pkg := range m.Pkgs {
			astFiles := make([]*ast.File, len(pkg.Files))
			for j, f := range pkg.Files {
				astFiles[j] = f.AST
			}
			for file, lines := range suppressedLines(m.Fset, astFiles, a.Name) {
				sup[file] = lines
			}
		}
		for _, d := range diags {
			if sup[d.Pos.Filename][d.Pos.Line] {
				continue
			}
			out = append(out, d)
		}
	}
	SortDiagnostics(out)
	return out
}
