package lint

import (
	"go/ast"
)

// AnalyzerTraceCtx flags grid-boundary sends that lose causal trace
// context. A handler that receives a traced message (or a context that
// may carry a span) and builds a fresh acl.Message without forwarding
// the trace breaks the causal chain: everything downstream of the hop
// becomes a new, disconnected trace and gridctl trace shows the
// pipeline ending early.
//
// The heuristic is syntactic. A composite literal `acl.Message{...}`
// with a Receivers field (i.e. a message built to be sent) is flagged
// when all of these hold:
//   - the enclosing function has an inbound trace source — a
//     context.Context or *acl.Message parameter;
//   - the literal has no Trace field;
//   - the enclosing function never calls a .Stamp(...) method and
//     never assigns a .Trace field (either one shows trace context is
//     being forwarded on some path).
//
// Nested function literals are analyzed independently against their own
// parameter lists. Package acl itself is exempt: it defines the
// envelope and legitimately builds untraced messages (Reply propagates
// trace context internally). Intentionally untraced sends should carry
// //gridlint:ignore tracectx with a reason.
var AnalyzerTraceCtx = &Analyzer{
	Name: "tracectx",
	Doc:  "messages built in traced handlers must forward inbound trace context (Stamp a span, set Trace, or propagate via Reply)",
	Run:  runTraceCtx,
}

func runTraceCtx(p *Package) []Diagnostic {
	if p.Name == "acl" {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var typ *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				typ, body = fn.Type, fn.Body
			case *ast.FuncLit:
				typ, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasTraceSource(typ) || forwardsTrace(body) {
				return true
			}
			for _, lit := range ownMessageLiterals(body) {
				if hasField(lit, "Trace") || !hasField(lit, "Receivers") {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(lit.Pos()),
					Analyzer: "tracectx",
					Message:  "acl.Message built without forwarding inbound trace context: Stamp a span on it, set Trace, or build it with Reply",
				})
			}
			return true
		})
	}
	return out
}

// hasTraceSource reports whether the function signature includes a
// context.Context or *acl.Message parameter — something an inbound
// trace could arrive through.
func hasTraceSource(typ *ast.FuncType) bool {
	if typ.Params == nil {
		return false
	}
	for _, field := range typ.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if isSelector(t, "context", "Context") || isSelector(t, "acl", "Message") {
			return true
		}
	}
	return false
}

// forwardsTrace reports whether the function body (excluding nested
// function literals, which are analyzed on their own) forwards trace
// context somewhere: a .Stamp(...) call or a .Trace = assignment.
func forwardsTrace(body *ast.BlockStmt) bool {
	found := false
	inspectOwn(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stamp" {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Trace" {
					found = true
				}
			}
		}
	})
	return found
}

// ownMessageLiterals collects acl.Message composite literals in the
// body, excluding those inside nested function literals.
func ownMessageLiterals(body *ast.BlockStmt) []*ast.CompositeLit {
	var out []*ast.CompositeLit
	inspectOwn(body, func(n ast.Node) {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return
		}
		if isSelector(lit.Type, "acl", "Message") {
			out = append(out, lit)
		}
	})
	return out
}

// inspectOwn walks the body like ast.Inspect but does not descend into
// nested function literals.
func inspectOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// hasField reports whether a composite literal sets the named field.
func hasField(lit *ast.CompositeLit, name string) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// isSelector matches a pkg.Name selector expression.
func isSelector(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}
