package lint

import (
	"testing"
)

// TestTypedModuleClean is the in-tree mirror of the verify.sh
// lint-typed gate: the typed analyzers must report nothing on the
// module itself (every intentional pattern carries a reasoned
// //gridlint:ignore). Skipped under -short — it type-checks the whole
// module plus its stdlib closure from source (~3s).
func TestTypedModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check; skipped under -short")
	}
	m, err := LoadTypedModule("../..")
	if err != nil {
		t.Fatalf("LoadTypedModule: %v", err)
	}
	if len(m.Pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(m.Pkgs))
	}
	diags := RunTyped(m, TypedAnalyzers())
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}

// TestTypedLoaderSharedFset checks the property everything downstream
// relies on: every package of the module resolves positions through the
// one module FileSet.
func TestTypedLoaderSharedFset(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check; skipped under -short")
	}
	m, err := LoadTypedModule("../..")
	if err != nil {
		t.Fatalf("LoadTypedModule: %v", err)
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			pos := m.Fset.Position(f.AST.Package)
			if pos.Filename == "" {
				t.Fatalf("%s: file position does not resolve through the module FileSet", pkg.Path)
			}
		}
	}
}
