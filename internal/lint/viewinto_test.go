package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestViewEscapeViaBatchSinkFlagged is the regression pin for the Into
// decode path: a payload view produced by a //gridlint:view-annotated
// reader (the acl.FrameReader.ReadMessageInto shape) that is parked in
// a batch handed to a retaining BatchSink — the classify ingest shape —
// must be flagged, while the copying consumer and the scratch-reuse
// drain loop must stay clean.
func TestViewEscapeViaBatchSinkFlagged(t *testing.T) {
	m, err := LoadTypedDir(filepath.Join("testdata", "viewlifetime"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunTyped(m, []*TypedAnalyzer{AnalyzerViewLifetime})

	var escape, forward bool
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if base == "clean.go" {
			t.Errorf("clean consumer flagged: %s", d.String())
		}
		if base != "bad.go" {
			continue
		}
		if strings.Contains(d.Message, "Reader.ReadInto") && strings.Contains(d.Message, "stored beyond its reuse window") {
			escape = true
		}
		// The annotated producer's own forwarding return must NOT be
		// reported; a "returned" diagnostic naming Reader.Next inside
		// ReadInto would be that false positive.
		if strings.Contains(d.Message, "Reader.Next returned") && d.Pos.Line > 80 {
			forward = true
		}
	}
	if !escape {
		t.Error("view escaping via the BatchSink was not flagged")
	}
	if forward {
		t.Error("the annotated producer's forwarding return was flagged as an escape")
	}
}
