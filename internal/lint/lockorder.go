package lint

// AnalyzerLockOrder builds the global mutex-acquisition-order graph of
// the whole module and reports every cycle. Nodes are canonical lock
// identities (facts.go): "store.Store.mu" stands for that field on
// every instance. Edges come from two sources:
//
//   - a direct nested acquisition: locking B while A is held adds A→B;
//   - a call-mediated acquisition: calling g while A is held, where g
//     may (transitively) acquire B, also adds A→B — this is how a
//     cross-package order inversion (directory locked, then a store
//     method that locks the store) is caught without either package
//     seeing the other's source.
//
// Any cycle — including the length-1 cycle of re-acquiring an identity
// already held, which is how two instances of one type locked in both
// orders deadlocks — is a potential deadlock and is reported once per
// strongly connected component. Read-read self edges (RLock while the
// same identity is read-held) are not reported.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

var AnalyzerLockOrder = &TypedAnalyzer{
	Name: "lockorder",
	Doc:  "the global mutex acquisition-order graph must be cycle-free; a cycle is a potential deadlock",
	Run:  runLockOrder,
}

// LockEdge is one acquisition-order edge: to was (possibly) acquired
// while from was held.
type LockEdge struct {
	From, To string
	Pos      token.Pos
	Via      string // callee chain for call-mediated edges, "" for direct
	ReadRead bool   // both endpoints are read locks (direct edges only)
}

// LockOrderEdges derives every acquisition-order edge from the module
// facts. Exported for the facts-layer tests.
func LockOrderEdges(f *Facts) []LockEdge {
	var edges []LockEdge
	for _, ff := range f.All() {
		for _, ev := range ff.Acquires {
			for _, h := range ev.Held {
				edges = append(edges, LockEdge{
					From: h.ID, To: ev.Lock, Pos: ev.Pos,
					ReadRead: h.Read && ev.Read,
				})
			}
		}
		for _, ce := range ff.Calls {
			if len(ce.Held) == 0 {
				continue
			}
			for _, callee := range ce.Callees {
				cf := f.Funcs[callee]
				if cf == nil {
					continue
				}
				for lock := range cf.TransAcquires {
					for _, h := range ce.Held {
						edges = append(edges, LockEdge{From: h.ID, To: lock, Pos: ce.Pos, Via: cf.Name})
					}
				}
			}
		}
	}
	return edges
}

func runLockOrder(m *Module) []Diagnostic {
	f := m.Facts()
	// Adjacency with one representative (earliest-position) edge per
	// directed pair; read-read self edges are benign.
	adj := make(map[string]map[string]LockEdge)
	for _, e := range LockOrderEdges(f) {
		if e.From == e.To && e.ReadRead {
			continue
		}
		row := adj[e.From]
		if row == nil {
			row = make(map[string]LockEdge)
			adj[e.From] = row
		}
		if old, ok := row[e.To]; !ok || e.Pos < old.Pos || (e.Pos == old.Pos && e.Via < old.Via) {
			row[e.To] = e
		}
	}

	var out []Diagnostic
	for _, scc := range stronglyConnected(adj) {
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		// Collect the intra-component edges; a single node is a cycle
		// only if it has a self edge.
		var cyc []LockEdge
		for _, from := range scc {
			for to, e := range adj[from] {
				if inSCC[to] {
					cyc = append(cyc, e)
				}
			}
		}
		if len(scc) == 1 && len(cyc) == 0 {
			continue
		}
		sort.Slice(cyc, func(i, j int) bool {
			if cyc[i].From != cyc[j].From {
				return cyc[i].From < cyc[j].From
			}
			return cyc[i].To < cyc[j].To
		})
		minPos := cyc[0].Pos
		for _, e := range cyc {
			if e.Pos < minPos {
				minPos = e.Pos
			}
		}
		parts := make([]string, len(cyc))
		for i, e := range cyc {
			p := m.Fset.Position(e.Pos)
			loc := fmt.Sprintf("%s:%d", p.Filename, p.Line)
			if e.Via != "" {
				parts[i] = fmt.Sprintf("%s → %s (at %s via %s)", e.From, e.To, loc, e.Via)
			} else {
				parts[i] = fmt.Sprintf("%s → %s (at %s)", e.From, e.To, loc)
			}
		}
		msg := "lock-order cycle (potential deadlock): " + strings.Join(parts, "; ") +
			" — acquire these locks in one canonical order"
		if len(scc) == 1 {
			msg = "lock " + scc[0] + " may be re-acquired while held: " + strings.Join(parts, "; ") +
				" — recursive locking (or two instances locked in both orders) deadlocks"
		}
		out = append(out, Diagnostic{
			Pos:      m.Fset.Position(minPos),
			Analyzer: "lockorder",
			Message:  msg,
		})
	}
	return out
}

// stronglyConnected returns Tarjan's strongly connected components of
// the lock graph, deterministically ordered (nodes visited in sorted
// order, components sorted by their smallest node).
func stronglyConnected(adj map[string]map[string]LockEdge) [][]string {
	nodes := make(map[string]bool)
	for from, row := range adj {
		nodes[from] = true
		for to := range row {
			nodes[to] = true
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	next := 0
	var comps [][]string

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succs := make([]string, 0, len(adj[v]))
		for to := range adj[v] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}
