package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AnalyzerGoroutineLeak flags `go func() { ... }()` literals that loop
// forever consuming channels with no cancellation path. Every
// long-running worker a container spawns must die when the container
// shuts down; a receive loop with no ctx.Done/quit-channel case runs
// until process exit, stranding the goroutine and whatever it holds.
//
// Heuristic: inside a goroutine func literal, an infinite `for { ... }`
// loop that performs a channel receive must contain a select case
// receiving from a cancellation source — a Done()-style call
// (ctx.Done()) or a channel whose name says it is a lifecycle signal
// (done, quit, stop, stopc, stopCh, closing, cancel) — whose body
// leaves the loop (return or break). Loops shaped `for v := range ch`
// are accepted: closing the channel is their cancellation path.
var AnalyzerGoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "goroutine channel-receive loops need a cancellation path (ctx.Done / quit channel / range over closable channel)",
	Run:  runGoroutineLeak,
}

// cancelNames are identifier spellings accepted as lifecycle channels.
var cancelNames = map[string]bool{
	"done": true, "quit": true, "stop": true, "stopc": true,
	"stopch": true, "closing": true, "closed": true, "cancel": true,
}

func runGoroutineLeak(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				loop, ok := inner.(*ast.ForStmt)
				if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
					return true
				}
				if !containsReceive(loop.Body) {
					return true
				}
				if hasCancellationCase(loop.Body) {
					return true
				}
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(loop.Pos()),
					Analyzer: "goroutineleak",
					Message:  "infinite receive loop in goroutine has no cancellation path (no ctx.Done/quit-channel select case)",
				})
				return true
			})
			return true
		})
	}
	return out
}

// containsReceive reports whether the block performs any channel
// receive (<-ch), including as a select communication.
func containsReceive(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
			return false
		}
		return !found
	})
	return found
}

// hasCancellationCase reports whether some select inside the block has
// a case receiving from a cancellation source whose body escapes the
// loop.
func hasCancellationCase(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return !found
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			recv := commReceiveExpr(cc.Comm)
			if recv == nil || !isCancellationSource(recv) {
				continue
			}
			if escapesLoop(cc.Body) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// commReceiveExpr extracts the channel expression of a receive
// communication (case <-ch: / case v := <-ch:), nil for sends.
func commReceiveExpr(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// isCancellationSource recognizes Done()-style calls and
// lifecycle-named channel identifiers/selectors.
func isCancellationSource(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return cancelNames[strings.ToLower(e.Name)]
	case *ast.SelectorExpr:
		return cancelNames[strings.ToLower(e.Sel.Name)]
	}
	return false
}

// escapesLoop reports whether the case body leaves the enclosing loop:
// a return or break at its top level (or trivially nested in an if).
func escapesLoop(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				return true
			}
		case *ast.IfStmt:
			if escapesLoop(s.Body.List) {
				return true
			}
		}
	}
	return false
}
