// Package lint is gridlint's analysis framework: a small, stdlib-only
// static-analysis harness with project-specific analyzers for the agent
// grid. The grid is inherently concurrent — containers, the AMS/DF/MTS
// services, contract-net negotiation and the L1–L3 processor pipeline
// all run as goroutines exchanging ACL messages — and the analyzers
// here target the bug classes such systems die from in production:
// malformed FIPA protocol constants, unguarded shared state, leaked
// worker goroutines, unbounded channel sends and sleep-based
// synchronization.
//
// The framework has two tiers, both stdlib-only with zero build state.
// The syntactic tier (this file and the analyzers it registers) is
// go/ast + go/parser, one package at a time: fast, heuristic, each
// analyzer documenting the pattern it matches. The typed tier
// (typed.go, facts.go) loads the whole module through go/types — the
// standard library is type-checked from GOROOT source via go/importer,
// so there is still no dependency on module tooling — and checks
// global properties: a cycle-free lock-acquisition order across
// packages, no blocking I/O while holding a mutex, zero-copy views
// kept inside their reuse window, and no silently dropped wire-path
// errors.
//
// Diagnostics can be suppressed per line with
//
//	//gridlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it; a comment
// above a multi-line statement covers every line the statement spans.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional path:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// File is one parsed source file inside a package.
type File struct {
	Path string
	AST  *ast.File
}

// Package is one directory's worth of parsed (non-test) Go files,
// sharing a FileSet.
type Package struct {
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*File
}

// Analyzer is one named check run over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -enable/-disable
	// flags and //gridlint:ignore comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects a package and reports findings. The framework owns
	// suppression and ordering; Run just reports.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerACLPerformative,
		AnalyzerGuardedField,
		AnalyzerGoroutineLeak,
		AnalyzerUnboundedSend,
		AnalyzerSleepSync,
		AnalyzerTraceCtx,
		AnalyzerMetricName,
		AnalyzerEventName,
		AnalyzerFrameReuse,
	}
}

// skipDirs are directory basenames never descended into.
var skipDirs = map[string]bool{
	"testdata": true,
	"vendor":   true,
	".git":     true,
}

// Load walks root recursively and parses every package directory found.
// Test files (_test.go) are skipped: the analyzers target production
// behaviour, and tests legitimately use patterns (sleeps, raw strings)
// the analyzers forbid.
func Load(root string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && (skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".") || strings.HasPrefix(d.Name(), "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses the single package in dir (non-recursive). It returns
// (nil, nil) when the directory holds no non-test Go files.
func LoadDir(dir string) (*Package, error) {
	return loadDirFset(dir, token.NewFileSet())
}

// loadDirFset is LoadDir parsing into a caller-owned FileSet, so the
// typed tier can share one position table across the module.
func loadDirFset(dir string, fset *token.FileSet) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Name = f.Name.Name
		pkg.Files = append(pkg.Files, &File{Path: path, AST: f})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

var ignoreRe = regexp.MustCompile(`^//\s*gridlint:ignore\s+(\S+)`)

// suppressedLines collects, per file, the line numbers covered by a
// //gridlint:ignore comment for the named analyzer. A comment covers
// its own line and the following line, and when it sits on (or directly
// above) the first line of a multi-line statement or declaration it
// covers the whole node — so a suppression above a wrapped call applies
// to diagnostics anywhere inside that call's span, not just its first
// line.
func suppressedLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		// Lines bearing an ignore comment for this analyzer.
		ignore := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil || (m[1] != analyzer && m[1] != "all") {
					continue
				}
				ignore[fset.Position(c.Pos()).Line] = true
			}
		}
		if len(ignore) == 0 {
			continue
		}
		lines := make(map[int]bool)
		for l := range ignore {
			lines[l] = true
			lines[l+1] = true
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case ast.Stmt, ast.Decl, *ast.Field:
			default:
				return true
			}
			start := fset.Position(n.Pos()).Line
			end := fset.Position(n.End()).Line
			if end > start && (ignore[start] || ignore[start-1]) {
				for l := start; l <= end; l++ {
					lines[l] = true
				}
			}
			return true
		})
		out[fset.Position(f.Pos()).Filename] = lines
	}
	return out
}

// Run applies the analyzers to every package — packages in parallel,
// one worker per CPU — filters suppressed findings and returns the
// remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	results := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runPackage(pkg, analyzers)
		}(i, pkg)
	}
	wg.Wait()
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r...)
	}
	SortDiagnostics(out)
	return out
}

// runPackage applies the analyzers to one package and filters
// suppressed findings.
func runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	astFiles := make([]*ast.File, len(pkg.Files))
	for i, f := range pkg.Files {
		astFiles[i] = f.AST
	}
	for _, a := range analyzers {
		diags := a.Run(pkg)
		if len(diags) == 0 {
			continue
		}
		sup := suppressedLines(pkg.Fset, astFiles, a.Name)
		for _, d := range diags {
			if sup[d.Pos.Filename][d.Pos.Line] {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Select resolves -enable/-disable style comma lists against the
// registered analyzers. Empty enable means "all".
func Select(enable, disable string) ([]*Analyzer, error) {
	all := Analyzers()
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	picked := all
	if enable != "" {
		picked = nil
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				if IsTypedName(name) {
					continue // belongs to the typed tier; SelectTyped owns it
				}
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
	}
	if disable != "" {
		drop := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				if IsTypedName(name) {
					continue
				}
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			drop[name] = true
		}
		kept := picked[:0:len(picked)]
		for _, a := range picked {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	return picked, nil
}
