package lint

// The baseline is the checked-in ratchet for the typed tier: a JSON
// list of known findings that are accepted for now. A finding matches a
// baseline entry on (file, analyzer, message) — line numbers are
// deliberately excluded so unrelated edits above a finding don't count
// as drift. Two failure directions, both fatal in CI:
//
//   - a finding NOT in the baseline: new debt, fix it or justify it;
//   - a baseline entry with NO matching finding: stale debt, the entry
//     must be deleted so the ratchet only ever tightens.
//
// The intended steady state is an empty baseline — the module's real
// findings were fixed or carry in-source //gridlint:ignore reasons, and
// the file exists only to catch drift.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"` // why it is accepted, for humans
}

func (e BaselineEntry) key() string {
	return filepath.ToSlash(e.File) + "\x00" + e.Analyzer + "\x00" + e.Message
}

func diagKey(d Diagnostic) string {
	return filepath.ToSlash(d.Pos.Filename) + "\x00" + d.Analyzer + "\x00" + d.Message
}

// Baseline is the decoded baseline file.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so a clean repo needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the current findings as a baseline file,
// deduplicated and sorted so the output is diff-stable.
func WriteBaseline(path string, diags []Diagnostic) error {
	seen := make(map[string]bool, len(diags))
	var entries []BaselineEntry
	for _, d := range diags {
		e := BaselineEntry{
			File:     filepath.ToSlash(d.Pos.Filename),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key() < entries[j].key() })
	if entries == nil {
		entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(Baseline{Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline splits findings against the baseline: fresh findings
// not covered by any entry, and stale entries matching no finding. One
// entry covers any number of identical findings (same file, analyzer
// and message — e.g. the same dropped call repeated in a file).
func ApplyBaseline(b *Baseline, diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	covered := make(map[string]bool, len(b.Entries))
	used := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		covered[e.key()] = true
	}
	for _, d := range diags {
		k := diagKey(d)
		if covered[k] {
			used[k] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		if !used[e.key()] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
