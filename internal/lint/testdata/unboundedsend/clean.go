// Fixture: bounded channel sends.
package fixture

import (
	"context"
	"time"
)

func clean(ctx context.Context, ch chan int) {
	// Provably buffered in this function.
	buf := make(chan int, 8)
	buf <- 1

	// Select with a default: drop rather than block.
	select {
	case ch <- 1:
	default:
	}

	// Select with a cancellation receive.
	select {
	case ch <- 2:
	case <-ctx.Done():
	}

	// Select with a timeout receive.
	select {
	case ch <- 3:
	case <-time.After(time.Second):
	}
}
