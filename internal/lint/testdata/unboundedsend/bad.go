// Fixture: channel sends that can block forever.
package fixture

func bad(ch chan int, out chan string) {
	ch <- 1

	// A single-clause select is no better than a bare send.
	select {
	case out <- "x":
	}

	unbuf := make(chan int)
	unbuf <- 2

	zero := make(chan int, 0)
	zero <- 3
}
