// Fixture: pooled wire buffers used or leaked after their Put.
package fixture

import "sync"

var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getEncBuf() *[]byte  { return framePool.Get().(*[]byte) }
func putEncBuf(b *[]byte) { framePool.Put(b) }

// useAfterPut touches the buffer after handing it back: a concurrent
// sender may already be writing into the same backing array.
func useAfterPut() int {
	bp := framePool.Get().(*[]byte)
	*bp = append(*bp, 1, 2, 3)
	framePool.Put(bp)
	return len(*bp)
}

// leakOnBranch returns the buffer on one path while pooling it on the
// other; the caller cannot know who owns the memory.
func leakOnBranch(keep bool) *[]byte {
	bp := getEncBuf()
	if keep {
		return bp
	}
	putEncBuf(bp)
	return nil
}

// returnPooled gives the caller an alias to recycled memory.
func returnPooled() *[]byte {
	bp := getEncBuf()
	*bp = append(*bp, 9)
	putEncBuf(bp)
	return bp
}
