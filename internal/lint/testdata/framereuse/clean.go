// Fixture: the pooled-buffer ownership idioms the wire path uses.
package fixture

import "io"

// cleanWrite follows the contract: the Put is the last use of the
// buffer on every path, including the early-return branch.
func cleanWrite(w io.Writer) error {
	bp := getEncBuf()
	frame := append((*bp)[:0], 'A', 'C', 'L', '2')
	if len(frame) == 0 {
		putEncBuf(bp)
		return nil
	}
	_, err := w.Write(frame)
	*bp = frame
	putEncBuf(bp)
	return err
}

// deferredPut runs at function exit, so every use in the body happens
// before the buffer goes back to the pool.
func deferredPut() int {
	bp := getEncBuf()
	defer putEncBuf(bp)
	*bp = append(*bp, 1)
	return len(*bp)
}

// noPool is ordinary code with no pooled buffers at all.
func noPool(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// shadowAfterPut redeclares the pooled variable's name in inner scopes
// after the Put. The shadowed variables are fresh declarations, not the
// recycled buffer — regression fixture for the false positive where any
// later mention of the name was flagged.
func shadowAfterPut(parts [][]byte) int {
	bp := getEncBuf()
	*bp = append((*bp)[:0], 'A')
	n := len(*bp)
	putEncBuf(bp)
	if n > 0 {
		bp := make([]byte, n) // shadows; not the pooled buffer
		n += len(bp)
	}
	for _, bp := range parts { // range clause shadows too
		n += len(bp)
	}
	switch n {
	case 0:
		var bp []byte // var declaration shadows as well
		n -= len(bp)
	}
	return n
}
