// Fixture: the pooled-buffer ownership idioms the wire path uses.
package fixture

import "io"

// cleanWrite follows the contract: the Put is the last use of the
// buffer on every path, including the early-return branch.
func cleanWrite(w io.Writer) error {
	bp := getEncBuf()
	frame := append((*bp)[:0], 'A', 'C', 'L', '2')
	if len(frame) == 0 {
		putEncBuf(bp)
		return nil
	}
	_, err := w.Write(frame)
	*bp = frame
	putEncBuf(bp)
	return err
}

// deferredPut runs at function exit, so every use in the body happens
// before the buffer goes back to the pool.
func deferredPut() int {
	bp := getEncBuf()
	defer putEncBuf(bp)
	*bp = append(*bp, 1)
	return len(*bp)
}

// noPool is ordinary code with no pooled buffers at all.
func noPool(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}
