// Fixture: accepted guarded-field usage.
package fixture

func NewBox() *Box {
	return &Box{items: make(map[string]int)} // composite literal: construction-time init
}

func (b *Box) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

func (b *Box) Reset() {
	b.mu.Lock()
	b.items = make(map[string]int)
	b.count = 0
	b.mu.Unlock()
	_ = b.loose // unannotated field needs no lock
}

// bumpLocked documents that the caller holds b.mu.
func (b *Box) bumpLocked(k string) {
	b.items[k]++
	b.count++
}
