// Fixture: guarded-field accesses without the guarding lock.
package fixture

import "sync"

type Box struct {
	mu    sync.Mutex
	other sync.Mutex

	items map[string]int // guarded by mu
	// count tracks insertions.
	// guarded by mu
	count int
	loose int // unannotated: never flagged
}

func (b *Box) Count() int {
	return b.count
}

func (b *Box) Add(k string) {
	b.items[k]++
	b.count++
}

func (b *Box) WrongMutex() int {
	b.other.Lock()
	defer b.other.Unlock()
	return b.count
}
