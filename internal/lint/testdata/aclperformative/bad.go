// Fixture: raw ACL string literals the analyzer must flag.
package fixture

type Message struct {
	Performative string
	Protocol     string
	Ontology     string
}

type Performative string

func bad(m Message) {
	out := Message{
		Performative: "inform",
		Protocol:     "fipa-request",
		Ontology:     "network-management",
	}
	_ = Performative("cfp")
	if m.Performative == "request" {
		return
	}
	if "fipa-subscribe" == m.Protocol {
		return
	}
	switch m.Ontology {
	case "grid-management":
		return
	}
	_ = out
}
