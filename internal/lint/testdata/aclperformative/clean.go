// Fixture: accepted ACL usage — constants and zero checks.
package fixture

const (
	inform          = "im-a-constant-decl-not-a-field"
	protocolRequest = "constants-are-declared-in-internal-acl"
)

func clean(m Message) {
	out := Message{
		Performative: inform,
		Protocol:     protocolRequest,
	}
	if m.Performative == "" { // zero check is not a protocol literal
		return
	}
	if m.Protocol != "" {
		return
	}
	_ = Performative(inform) // conversion from a named constant
	_ = out
}
