// Fixture: accepted metric names — three or more snake_case segments
// ending in an approved unit — plus shapes the analyzer must ignore
// (non-literal names, unrelated methods with the same arity).
package fixture

func metricName(i int) string { return "dynamic_name_total" }

type other struct{}

func (other) Counter(n int) {}

func clean(reg registry, o other) {
	reg.Counter("collect_polls_total", "counter unit", nil)
	reg.Gauge("platform_load_ratio", "ratio unit", nil)
	reg.Histogram("analyze_task_seconds", "seconds unit", nil)
	reg.GaugeFunc("store_series_count", "count unit", nil, func() float64 { return 0 })
	reg.CounterFunc("acl_sent_bytes_total", "four segments", nil, func() uint64 { return 0 })
	reg.Counter(metricName(1), "non-literal names are not checked", nil)
	o.Counter(7)
}
