// Fixture: metric names that break the subsystem_name_unit rule.
package fixture

type registry struct{}

func (registry) Counter(name, help string, labels map[string]string) *int   { return nil }
func (registry) Gauge(name, help string, labels map[string]string) *int     { return nil }
func (registry) Histogram(name, help string, labels map[string]string) *int { return nil }
func (registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
}
func (registry) CounterFunc(name, help string, labels map[string]string, fn func() uint64) {
}

func bad(reg registry) {
	reg.Counter("Collect_polls_total", "uppercase", nil)
	reg.Counter("polls_total", "too few segments", nil)
	reg.Gauge("platform_load", "missing unit segment", nil)
	reg.Histogram("analyze_task_duration", "unapproved unit", nil)
	reg.GaugeFunc("store_series_gauge", "unapproved unit", nil, func() float64 { return 0 })
	reg.CounterFunc("acl__sent_total", "empty segment", nil, func() uint64 { return 0 })
}
