package errdrop

// Conn stands in for a transport connection: every staged-write
// operation reports failure through its error.
type Conn struct{ failed bool }

func (c *Conn) Flush() error              { return nil }
func (c *Conn) Sync() error               { return nil }
func (c *Conn) Close() error              { return nil }
func (c *Conn) Send(b []byte) error       { return nil }
func (c *Conn) SendFrame(b []byte) error  { return nil }
func (c *Conn) WriteFrame(b []byte) error { return nil }

// dropAll silently discards every wire-path error.
func dropAll(c *Conn, b []byte) {
	c.Flush()
	c.Sync()
	c.Send(b)
	c.SendFrame(b)
	c.WriteFrame(b)
	c.Close()
}

// dropInGoroutine loses the error on another goroutine, where nobody
// can ever see it.
func dropInGoroutine(c *Conn) {
	go c.Flush()
}

// dropDeferredFlush defers a flush whose failure means frames never
// left the process; unlike Close, a deferred Flush is still a drop.
func dropDeferredFlush(c *Conn) {
	defer c.Flush()
}
