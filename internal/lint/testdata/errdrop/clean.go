package errdrop

import "os"

// handled checks every error; explicit discard says the author chose.
func handled(c *Conn, b []byte) error {
	if err := c.Flush(); err != nil {
		return err
	}
	if err := c.Send(b); err != nil {
		return err
	}
	_ = c.Sync() // explicit discard is a decision, not a drop
	return c.Close()
}

// deferredClose is conventional teardown and stays quiet.
func deferredClose(c *Conn) error {
	defer c.Close()
	return c.Flush()
}

// stdlibClose: Close on a non-module type is outside the wire path.
func stdlibClose(f *os.File) {
	f.Close()
}

// NopFlusher has a Flush with no error to drop.
type NopFlusher struct{}

func (NopFlusher) Flush() {}

func noError(n NopFlusher) {
	n.Flush()
}
