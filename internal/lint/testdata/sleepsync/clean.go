// Fixture: accepted waits — channels, timers, contexts, and an
// explicitly suppressed pacing sleep.
package fixture

import (
	"context"
	"time"
)

func clean(ctx context.Context, done chan struct{}) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-done:
	case <-t.C:
	}

	//gridlint:ignore sleepsync deliberate demo pacing, not synchronization
	time.Sleep(time.Millisecond)
}
