// Fixture: sleep-based synchronization.
package fixture

import "time"

func bad(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(time.Second)
}
