// Fixture: flight stage names that break the lowercase dot-separated
// rule.
package fixture

type event struct{}

type recorder struct{}

func (recorder) Emit(name string, e event) {}
func (recorder) Journal(name string) *int  { return nil }

func bad(rec recorder) {
	rec.Emit("Transport.Serve", event{})
	rec.Emit("collect", event{})
	rec.Emit("analyze..task", event{})
	rec.Emit("report.Alert", event{})
	_ = rec.Journal("classify ingest")
	_ = rec.Journal("1transport.serve")
}
