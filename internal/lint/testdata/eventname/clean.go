// Fixture: accepted stage names — lowercase dot-separated, two or more
// segments — plus shapes the analyzer must ignore (non-literal names,
// the Event-only Journal.Emit form, unrelated Emit methods without a
// string first argument).
package fixture

func stageName() string { return "dynamic.name" }

type journal struct{}

func (journal) Emit(e event) {}

func clean(rec recorder, j journal) {
	rec.Emit("transport.serve", event{})
	rec.Emit("analyze.l1", event{})
	rec.Emit("health.check_failed", event{})
	rec.Emit("chaos.fault", event{})
	_ = rec.Journal("collect.poll")
	rec.Emit(stageName(), event{})
	j.Emit(event{})
}
