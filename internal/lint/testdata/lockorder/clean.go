package lockorder

import "sync"

type D struct{ mu sync.Mutex }

type E struct{ mu sync.Mutex }

// Every path takes D.mu before E.mu — a consistent canonical order is
// exactly what the analyzer asks for.
func first(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

func second(d *D, e *E) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockE(e)
}

func lockE(e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
}

// sequential reacquisition of one lock is not nesting: D.mu is free
// again before the second Lock.
func sequential(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

type F struct{ mu sync.RWMutex }

// Read-read self nesting on an RWMutex is benign and must stay quiet.
func readers(f1, f2 *F) int {
	f1.mu.RLock()
	defer f1.mu.RUnlock()
	f2.mu.RLock()
	defer f2.mu.RUnlock()
	return 0
}
