package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// inOrder and reversed acquire the same pair in opposite orders: the
// classic two-lock deadlock.
func inOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func reversed(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

// transfer locks two instances of one type: any two goroutines calling
// transfer(x, y) and transfer(y, x) deadlock.
func transfer(from, to *C) {
	from.mu.Lock()
	to.mu.Lock()
	to.mu.Unlock()
	from.mu.Unlock()
}

type X struct{ mu sync.Mutex }

type Y struct{ mu sync.Mutex }

// lockY acquires Y behind a call, so the inversion spans the callgraph:
// viaCall holds X.mu while lockY takes Y.mu, and direct takes them the
// other way around.
func lockY(y *Y) {
	y.mu.Lock()
	defer y.mu.Unlock()
}

func viaCall(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	lockY(y)
}

func direct(x *X, y *Y) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}
