// Fixture: messages that forward trace context (or never had any).
package fixture

// Stamping a span onto the outbound message forwards the trace.
func cleanStamp(ctx context.Context, a *agent.Agent, m *acl.Message) {
	sp := a.Tracer().ContinueFromMessage("fixture.forward", m)
	out := &acl.Message{
		Performative: acl.Request,
		Receivers:    []acl.AID{{Name: "clg"}},
	}
	sp.Stamp(out)
	a.Send(ctx, out)
}

// Setting the Trace field in the literal forwards the trace.
func cleanTraceField(ctx context.Context, m *acl.Message) *acl.Message {
	return &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{m.Sender},
		Trace:        m.Trace.Child(),
	}
}

// Assigning .Trace after construction forwards the trace.
func cleanTraceAssign(ctx context.Context, a *agent.Agent, m *acl.Message) {
	out := &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{m.Sender},
	}
	out.Trace = m.Trace.Child()
	a.Send(ctx, out)
}

// Reply propagates trace context internally; no literal, nothing to
// flag.
func cleanReply(ctx context.Context, a *agent.Agent, m *acl.Message) {
	a.Send(ctx, m.Reply(a.ID(), acl.Inform))
}

// No context or message parameter: there is no inbound trace to lose.
func cleanNoSource(a *agent.Agent) *acl.Message {
	return &acl.Message{
		Performative: acl.Request,
		Receivers:    []acl.AID{{Name: "df"}},
	}
}

// No Receivers: a template or partial envelope, not a send.
func cleanNoReceivers(ctx context.Context) acl.Message {
	return acl.Message{Performative: acl.Inform}
}

// Suppressed: deliberately untraced control-plane noise.
func cleanSuppressed(ctx context.Context, a *agent.Agent, m *acl.Message) {
	a.Send(ctx, &acl.Message{ //gridlint:ignore tracectx heartbeat is not part of any pipeline trace
		Performative: acl.Inform,
		Receivers:    []acl.AID{m.Sender},
	})
}
