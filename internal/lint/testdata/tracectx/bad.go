// Fixture: grid-boundary sends that lose inbound trace context.
package fixture

// A handler receives a traced message and forwards work in a fresh
// envelope without carrying the trace over: the causal chain breaks at
// this hop.
func badHandler(ctx context.Context, a *agent.Agent, m *acl.Message) {
	out := &acl.Message{
		Performative: acl.Request,
		Receivers:    []acl.AID{{Name: "clg"}},
		Content:      m.Content,
	}
	a.Send(ctx, out)
}

// A context parameter may carry a span; building an untraced message
// here silently drops it.
func badFromContext(ctx context.Context, a *agent.Agent) {
	a.Send(ctx, &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{{Name: "ig"}},
	})
}

// Nested function literals are checked against their own parameters.
func badNested(a *agent.Agent) {
	a.HandleFunc(sel, func(ctx context.Context, a *agent.Agent, m *acl.Message) {
		a.Send(ctx, &acl.Message{
			Performative: acl.Inform,
			Receivers:    []acl.AID{m.Sender},
		})
	})
}
