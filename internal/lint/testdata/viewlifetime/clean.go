package viewlifetime

// The safe idioms: copy before the window closes, or stay inside it.

type Sink struct {
	text string
	data []byte
}

// copyOut materializes the view with every sanctioned copy.
func copyOut(r *Reader, s *Sink, dst []byte) {
	v, _ := r.Next()
	s.text = string(v)
	s.data = append(s.data[:0], v...)
	copy(dst, v)
}

// synchronous use inside the window: handing the view to a call is
// fine, the callee runs before the next Next.
func handleEach(r *Reader) {
	for i := 0; i < 3; i++ {
		v, _ := r.Next()
		process(v)
	}
}

func process(b []byte) int {
	return len(b)
}

// reassignment re-opens the window; using the fresh view afterwards is
// the normal decode loop.
func loopReuse(r *Reader) int {
	v, _ := r.Next()
	n := len(v)
	v, _ = r.Next()
	return n + len(v)
}

// peek reads single bytes and lengths; neither aliases the buffer
// beyond the statement.
func peek(r *Reader) (byte, int) {
	v, _ := r.Next()
	if len(v) == 0 {
		return 0, 0
	}
	return v[0], len(v)
}

// ingestCopies consumes the annotated producer correctly: the bytes
// are appended (copied) into the batch before the sink retains it.
func ingestCopies(r *Reader, s BatchSink) error {
	var m Msg
	view, _ := r.ReadInto(&m)
	b := &Batch{}
	b.Raw = append(b.Raw[:0], view...)
	return s.AppendBatch(b)
}

// drainInto is the serveConn shape: the scratch is reused each
// iteration and the view result is discarded; the handler gets the
// message synchronously.
func drainInto(r *Reader, n int) int {
	var m Msg
	total := 0
	for i := 0; i < n; i++ {
		if _, err := r.ReadInto(&m); err != nil {
			break
		}
		total += process(m.Content)
	}
	return total
}
