package viewlifetime

// Reader mimics acl.FrameReader: Next returns a payload aliasing an
// internal buffer that the following Next overwrites.
type Reader struct {
	buf []byte
}

func (r *Reader) Next() ([]byte, error) {
	return r.buf, nil
}

type Holder struct {
	last []byte
}

// storeField parks the view in a struct field that outlives the call.
func storeField(r *Reader, h *Holder) {
	v, _ := r.Next()
	h.last = v
}

// sendView hands the alias to another goroutine via a channel.
func sendView(r *Reader, ch chan []byte) {
	v, _ := r.Next()
	ch <- v
}

// spawnView captures the alias in a goroutine that runs after the
// window closes.
func spawnView(r *Reader) {
	v, _ := r.Next()
	go func() {
		_ = v[0]
	}()
}

// returnView leaks the alias to a caller who cannot see the window.
func returnView(r *Reader) []byte {
	v, _ := r.Next()
	return v
}

// useAfterAdvance touches the view after the producer moved on.
func useAfterAdvance(r *Reader) byte {
	v, _ := r.Next()
	r.Next()
	return v[0]
}

// subsliceEscape stores an alias derived from the view; slicing does
// not copy.
func subsliceEscape(r *Reader, h *Holder) {
	v, _ := r.Next()
	head := v[:2]
	h.last = head
}

// Msg mimics acl.Message on the Into decode path; ReadInto mirrors
// acl.FrameReader.ReadMessageInto.
type Msg struct {
	Content []byte
}

// ReadInto decodes the next frame into m and returns the payload as a
// zero-copy view over the reader's buffer. The directive makes the
// result a view source at every caller, and exempts the forwarding
// return inside this body.
//
//gridlint:view
func (r *Reader) ReadInto(m *Msg) ([]byte, error) {
	v, _ := r.Next()
	fill(m, v)
	return v, nil
}

// fill receives the payload as a plain argument (synchronous use); the
// store happens where the slice is an ordinary parameter, exactly like
// the real decode walk.
func fill(m *Msg, payload []byte) {
	m.Content = payload
}

// Batch mimics obs.Batch: a container a BatchSink retains past the
// call.
type Batch struct {
	Raw []byte
}

// BatchSink mimics the classify sink interface.
type BatchSink interface {
	AppendBatch(b *Batch) error
}

// ingestEscape parks the directive-produced view in a batch handed to
// the sink — the classify BatchSink escape shape.
func ingestEscape(r *Reader, s BatchSink) error {
	var m Msg
	view, _ := r.ReadInto(&m)
	b := &Batch{}
	b.Raw = view
	return s.AppendBatch(b)
}

// directiveUseAfterAdvance reads the view returned by the annotated
// producer after the next ReadInto recycled the buffer.
func directiveUseAfterAdvance(r *Reader) byte {
	var m Msg
	view, _ := r.ReadInto(&m)
	r.ReadInto(&m)
	return view[0]
}
