package viewlifetime

// Reader mimics acl.FrameReader: Next returns a payload aliasing an
// internal buffer that the following Next overwrites.
type Reader struct {
	buf []byte
}

func (r *Reader) Next() ([]byte, error) {
	return r.buf, nil
}

type Holder struct {
	last []byte
}

// storeField parks the view in a struct field that outlives the call.
func storeField(r *Reader, h *Holder) {
	v, _ := r.Next()
	h.last = v
}

// sendView hands the alias to another goroutine via a channel.
func sendView(r *Reader, ch chan []byte) {
	v, _ := r.Next()
	ch <- v
}

// spawnView captures the alias in a goroutine that runs after the
// window closes.
func spawnView(r *Reader) {
	v, _ := r.Next()
	go func() {
		_ = v[0]
	}()
}

// returnView leaks the alias to a caller who cannot see the window.
func returnView(r *Reader) []byte {
	v, _ := r.Next()
	return v
}

// useAfterAdvance touches the view after the producer moved on.
func useAfterAdvance(r *Reader) byte {
	v, _ := r.Next()
	r.Next()
	return v[0]
}

// subsliceEscape stores an alias derived from the view; slicing does
// not copy.
func subsliceEscape(r *Reader, h *Holder) {
	v, _ := r.Next()
	head := v[:2]
	h.last = head
}
