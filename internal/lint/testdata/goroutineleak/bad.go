// Fixture: goroutine receive loops with no cancellation path.
package fixture

func bad(ch chan int, res chan int) {
	go func() {
		for {
			v := <-ch
			res <- v * 2 //gridlint:ignore unboundedsend fixture targets goroutineleak only
		}
	}()

	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}
