// Fixture: goroutine loops with proper cancellation paths.
package fixture

import "context"

func clean(ctx context.Context, ch chan int) {
	// ctx.Done case.
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()

	// Quit-channel case.
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()

	// Range over a channel: close(ch) is the cancellation path.
	go func() {
		for v := range ch {
			_ = v
		}
	}()

	// Not a loop at all.
	go func() {
		v := <-ch
		_ = v
	}()
	close(quit)
}
