package heldlockio

import (
	"net"
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	conn net.Conn
	ch   chan int
	last int
}

// writeHeld does network I/O while holding the struct lock: one slow
// peer stalls every other goroutine touching S.
func writeHeld(s *S, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.conn.Write(b)
	return err
}

// sendHeld performs an unconditional channel send under the lock; a
// full channel parks the goroutine with the lock still held.
func sendHeld(s *S, v int) {
	s.mu.Lock()
	s.ch <- v
	s.mu.Unlock()
}

// sleepHeld reaches time.Sleep through a helper call, so only the
// callgraph shows the block.
func sleepHeld(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pause()
}

func pause() {
	time.Sleep(10 * time.Millisecond)
}
