package heldlockio

// The clean patterns: snapshot under the lock, operate outside it.

func writeAfter(s *S, b []byte) error {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	_, err := conn.Write(b)
	return err
}

// A select with a default is a non-blocking send attempt, fine to make
// with the lock held.
func trySend(s *S, v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

func sleepAfter(s *S) {
	s.mu.Lock()
	s.last++
	s.mu.Unlock()
	pause()
}
