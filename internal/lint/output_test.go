package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/transport/tcp.go", Line: 10, Column: 3},
			Analyzer: "heldlockio",
			Message:  "blocking operation while holding transport.sendConn.mu",
		},
		{
			Pos:      token.Position{Filename: "internal/store/store.go", Line: 4, Column: 1},
			Analyzer: "errdrop",
			Message:  "store.Store.Flush discards its error",
		},
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty run = %q, want []", b.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0]["analyzer"] != "heldlockio" || got[0]["line"] != float64(10) {
		t.Errorf("unexpected JSON: %v", got)
	}
}

func TestWriteSARIFDedupesRules(t *testing.T) {
	var b strings.Builder
	// A diagnostic whose analyzer is missing from the rule list must
	// still get a rule entry; duplicates in the list collapse.
	rules := []Rule{{Name: "heldlockio", Doc: "doc"}, {Name: "heldlockio", Doc: "doc"}}
	if err := WriteSARIF(&b, sampleDiags(), rules); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]int)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids[r.ID]++
	}
	if ids["heldlockio"] != 1 || ids["errdrop"] != 1 {
		t.Errorf("rule ids = %v, want exactly one of each", ids)
	}
	if len(log.Runs[0].Results) != 2 {
		t.Errorf("results = %d, want 2", len(log.Runs[0].Results))
	}
}

func TestAllRulesCoversBothTiers(t *testing.T) {
	rules := AllRules()
	want := len(Analyzers()) + len(TypedAnalyzers())
	if len(rules) != want {
		t.Fatalf("AllRules = %d, want %d", len(rules), want)
	}
	names := make(map[string]bool)
	for _, r := range rules {
		if r.Doc == "" {
			t.Errorf("rule %s has no doc", r.Name)
		}
		names[r.Name] = true
	}
	if !names["framereuse"] || !names["viewlifetime"] {
		t.Errorf("AllRules missing a tier: %v", names)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(b.Entries))
	}
	fresh, stale := ApplyBaseline(b, sampleDiags())
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round trip: fresh=%v stale=%v", fresh, stale)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("missing file yields %d entries", len(b.Entries))
	}
}

func TestBaselineIgnoresLineNumbers(t *testing.T) {
	diags := sampleDiags()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The same findings on different lines still match: edits above a
	// finding are not drift.
	moved := make([]Diagnostic, len(diags))
	copy(moved, diags)
	for i := range moved {
		moved[i].Pos.Line += 100
	}
	fresh, stale := ApplyBaseline(b, moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("line move counted as drift: fresh=%v stale=%v", fresh, stale)
	}
}

func TestBaselineDriftBothWays(t *testing.T) {
	diags := sampleDiags()
	b := &Baseline{Entries: []BaselineEntry{{
		File:     diags[0].Pos.Filename,
		Analyzer: diags[0].Analyzer,
		Message:  diags[0].Message,
	}, {
		File:     "internal/gone/gone.go",
		Analyzer: "errdrop",
		Message:  "was fixed long ago",
	}}}
	fresh, stale := ApplyBaseline(b, diags)
	if len(fresh) != 1 || fresh[0].Analyzer != "errdrop" {
		t.Errorf("fresh = %v, want the uncovered errdrop finding", fresh)
	}
	if len(stale) != 1 || stale[0].File != "internal/gone/gone.go" {
		t.Errorf("stale = %v, want the fixed entry", stale)
	}
}

func TestBaselineOneEntryCoversRepeats(t *testing.T) {
	d := sampleDiags()[0]
	d2 := d
	d2.Pos.Line = 99
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, []Diagnostic{d, d2}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 1 {
		t.Fatalf("entries = %d, want 1 (deduplicated)", len(b.Entries))
	}
	fresh, stale := ApplyBaseline(b, []Diagnostic{d, d2})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("repeat coverage: fresh=%v stale=%v", fresh, stale)
	}
}
