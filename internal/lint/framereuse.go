package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// AnalyzerFrameReuse polices the pooled-buffer ownership contract of
// the wire hot path: a buffer obtained from a sync.Pool (or a
// get*Buf helper wrapping one) belongs to the caller only between the
// get and the Put. Using the variable after the Put — or returning it
// from a function that also Puts it — aliases memory the pool may
// already have handed to a concurrent sender, which corrupts frames
// under load and is close to undebuggable after the fact.
//
// Heuristics, purely syntactic like the rest of gridlint:
//   - pool get: `x := p.Get()` (optionally through a type assertion)
//     where the receiver's name contains "ool", or `x := getFooBuf()`
//     where the callee matches (?i)^get.*buf.
//   - put: a call whose function name or method name starts with
//     Put/put and takes x as an argument. Deferred puts are the
//     end-of-function idiom and never start the forbidden region.
//   - rule 1 (use after put): a later statement in the same statement
//     list mentions x after the statement that put it.
//   - rule 2 (escape): a return statement mentions x in a function
//     that also puts x.
var AnalyzerFrameReuse = &Analyzer{
	Name: "framereuse",
	Doc:  "pooled wire buffers must not be used or returned after being Put back in the pool",
	Run:  runFrameReuse,
}

var getBufRe = regexp.MustCompile(`(?i)^get.*buf`)
var putNameRe = regexp.MustCompile(`^(Put|put)`)

func runFrameReuse(p *Package) []Diagnostic {
	var out []Diagnostic
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Diagnostic{
			Pos:      p.Fset.Position(pos),
			Analyzer: "framereuse",
			Message:  msg,
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			pooled := pooledVars(body)
			if len(pooled) == 0 {
				return true
			}
			checkFrameReuse(body, pooled, report)
			return true
		})
	}
	return out
}

// pooledVars collects names assigned from a pool get inside the body.
func pooledVars(body *ast.BlockStmt) map[string]bool {
	pooled := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		if !isPoolGet(as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			pooled[id.Name] = true
		}
		return true
	})
	return pooled
}

// isPoolGet recognizes `p.Get()` (receiver name containing "ool"),
// optionally wrapped in a type assertion, and `getFooBuf()` helpers.
func isPoolGet(e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Get" {
			return false
		}
		return strings.Contains(strings.ToLower(exprName(fun.X)), "ool")
	case *ast.Ident:
		return getBufRe.MatchString(fun.Name)
	}
	return false
}

// exprName reduces an expression to its trailing identifier name.
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// checkFrameReuse applies both rules to every statement list in body.
func checkFrameReuse(body *ast.BlockStmt, pooled map[string]bool, report func(token.Pos, string)) {
	// Rule 2 precondition: which pooled vars does the function put
	// (ignoring deferred puts)?
	putVars := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		for name := range pooled {
			if isPutOf(n, name) {
				putVars[name] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		// Rule 2: returns that leak a pooled-and-put variable.
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for name := range putVars {
				for _, res := range ret.Results {
					if usesIdent(res, name) {
						report(ret.Pos(), "pooled buffer "+name+" returned from a function that also Puts it; the caller would alias recycled memory")
					}
				}
			}
			return true
		}
		// Rule 1: scan each statement list for use-after-put.
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for name := range pooled {
			putIdx := -1
			for i, stmt := range list {
				if putIdx >= 0 && usesIdent(stmt, name) {
					report(stmt.Pos(), "pooled buffer "+name+" used after being Put back in the pool")
					break
				}
				if putIdx < 0 && stmtPuts(stmt, name) {
					putIdx = i
				}
			}
		}
		return true
	})
}

// stmtPuts reports whether the statement performs a non-deferred put
// of name at its own nesting level. Puts inside nested blocks (an
// early-return branch like `if err != nil { putEncBuf(bp); return err }`)
// do not end the outer list's ownership — those lists are scanned on
// their own.
func stmtPuts(stmt ast.Stmt, name string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if n != stmt {
				return false
			}
		}
		if isPutOf(n, name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isPutOf reports whether n is a call Put*(…, name, …) / put*(…).
func isPutOf(n ast.Node, name string) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	}
	if !putNameRe.MatchString(callee) {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// usesIdent reports whether the subtree mentions the identifier,
// ignoring nested function literals (they capture by reference but run
// on their own schedule; the deferred-put idiom lives there) and
// shadowed redeclarations: once an inner scope redeclares the name
// (`name := …`, `var name …`, a range or if/for init clause), later
// mentions in that scope refer to the new variable, not the pooled
// buffer, and do not count as uses.
func usesIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(in ast.Node) bool {
		if found {
			return false
		}
		switch x := in.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			scanShadowList(x.List, name, &found)
			return false
		case *ast.CaseClause:
			for _, e := range x.List {
				if usesIdent(e, name) {
					found = true
				}
			}
			scanShadowList(x.Body, name, &found)
			return false
		case *ast.CommClause:
			if x.Comm != nil && usesIdent(x.Comm, name) {
				found = true
			}
			scanShadowList(x.Body, name, &found)
			return false
		case *ast.RangeStmt:
			if usesIdent(x.X, name) {
				found = true
			} else if !rangeDeclares(x, name) {
				if x.Key != nil && usesIdent(x.Key, name) {
					found = true
				}
				if x.Value != nil && usesIdent(x.Value, name) {
					found = true
				}
				if !found {
					scanShadowList(x.Body.List, name, &found)
				}
			}
			return false
		case *ast.IfStmt:
			if x.Init != nil && stmtDeclares(x.Init, name) {
				if usesIdent(x.Init, name) {
					found = true
				}
				return false
			}
		case *ast.ForStmt:
			if x.Init != nil && stmtDeclares(x.Init, name) {
				if usesIdent(x.Init, name) {
					found = true
				}
				return false
			}
		case *ast.Ident:
			if x.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// scanShadowList walks a statement list in order; a statement that
// redeclares name shadows it for the rest of the list (only that
// statement's right-hand side is still checked as a use).
func scanShadowList(list []ast.Stmt, name string, found *bool) {
	for _, stmt := range list {
		if stmtDeclares(stmt, name) {
			// The declaring statement's RHS is evaluated in the outer
			// scope for `:=`, so a self-referential redeclaration like
			// `buf := append(buf, …)` still counts as a use.
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, rhs := range as.Rhs {
					if usesIdent(rhs, name) {
						*found = true
					}
				}
			}
			return
		}
		if usesIdent(stmt, name) {
			*found = true
			return
		}
	}
}

// stmtDeclares reports whether the statement introduces a new variable
// with the given name at its own level (`name := …` or `var name …`).
func stmtDeclares(stmt ast.Stmt, name string) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.DEFINE {
			return false
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
				return true
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				if id.Name == name {
					return true
				}
			}
		}
	}
	return false
}

// rangeDeclares reports whether the range clause redeclares name as its
// key or value (`for _, name := range …`).
func rangeDeclares(r *ast.RangeStmt, name string) bool {
	if r.Tok != token.DEFINE {
		return false
	}
	if id, ok := r.Key.(*ast.Ident); ok && id.Name == name {
		return true
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name == name {
		return true
	}
	return false
}
