package lint

import (
	"go/ast"
)

// AnalyzerSleepSync forbids time.Sleep as a synchronization primitive.
// Sleeping "long enough" for another goroutine or grid to finish is
// the signature of flaky coordination: it either wastes the whole
// interval or races under load. Production code waits on a channel, a
// context or a condition instead.
//
// Test files are never analyzed (the loader skips them), and the
// simulation package — where virtual time advances by design — is
// exempt. A genuinely intentional pacing sleep elsewhere must carry a
// //gridlint:ignore sleepsync comment stating why it is not
// synchronization.
var AnalyzerSleepSync = &Analyzer{
	Name: "sleepsync",
	Doc:  "time.Sleep must not be used for synchronization outside tests and internal/sim",
	Run:  runSleepSync,
}

func runSleepSync(p *Package) []Diagnostic {
	if p.Name == "sim" {
		return nil // simulated time is the package's whole point
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "time" {
				return true
			}
			out = append(out, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Analyzer: "sleepsync",
				Message:  "time.Sleep used as synchronization; wait on a channel, context or condition instead",
			})
			return true
		})
	}
	return out
}
