package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
)

// AnalyzerGuardedField enforces "// guarded by <mu>" annotations on
// struct fields. A field so annotated may only be touched inside
// methods of its struct that visibly acquire that mutex (a call to
// <recv>.<mu>.Lock or <recv>.<mu>.RLock anywhere in the method), or
// inside methods following the repo convention of a "...Locked" name
// suffix, which documents that the caller already holds the lock.
//
// The check is an intra-function heuristic: it does not trace helper
// calls or prove the lock is held at the access point, it proves the
// method participates in the locking discipline at all. That is the
// bug class that matters here — a method added later that reads the
// agents map or pending-task table with no locking whatsoever.
// Construction-time initialization through composite literals is
// naturally exempt (no selector access is involved).
var AnalyzerGuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "fields annotated '// guarded by <mu>' must only be accessed in methods that lock that mutex (or '...Locked' methods)",
	Run:  runGuardedField,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedFields maps struct name -> field name -> mutex field name.
type guardedFields map[string]map[string]string

func runGuardedField(p *Package) []Diagnostic {
	guarded := collectGuarded(p)
	if len(guarded) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || fn.Body == nil {
				continue
			}
			recvType := receiverTypeName(fn.Recv.List[0].Type)
			fields := guarded[recvType]
			if len(fields) == 0 {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // documented caller-holds-lock convention
			}
			recvName := ""
			if len(fn.Recv.List[0].Names) > 0 {
				recvName = fn.Recv.List[0].Names[0].Name
			}
			if recvName == "" || recvName == "_" {
				continue
			}
			locked := lockedMutexes(fn.Body, recvName)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok || base.Name != recvName {
					return true
				}
				mu, isGuarded := fields[sel.Sel.Name]
				if !isGuarded || locked[mu] {
					return true
				}
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(sel.Sel.Pos()),
					Analyzer: "guardedfield",
					Message: fmt.Sprintf("%s.%s is guarded by %s.%s but method %s never locks it",
						recvName, sel.Sel.Name, recvName, mu, fn.Name.Name),
				})
				return true
			})
		}
	}
	return out
}

// collectGuarded finds every '// guarded by <mu>' field annotation in
// the package's struct declarations.
func collectGuarded(p *Package) guardedFields {
	out := make(guardedFields)
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationMutex(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if out[ts.Name.Name] == nil {
						out[ts.Name.Name] = make(map[string]string)
					}
					out[ts.Name.Name][name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

// annotationMutex extracts the mutex name from a field's doc or line
// comment, "" when unannotated.
func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes finds every mutex the function body locks through the
// receiver: calls shaped <recv>.<mu>.Lock() or <recv>.<mu>.RLock().
func lockedMutexes(body *ast.BlockStmt, recvName string) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := muSel.X.(*ast.Ident)
		if !ok || base.Name != recvName {
			return true
		}
		out[muSel.Sel.Name] = true
		return true
	})
	return out
}

// receiverTypeName strips pointers and type parameters off a method
// receiver type expression.
func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	case *ast.ParenExpr:
		return receiverTypeName(e.X)
	}
	return ""
}
