package lint

// AnalyzerErrDrop flags silently discarded errors on the calls where a
// dropped error loses data on the wire path: Flush (a bufio flush that
// fails means frames never left the process), Sync, Send, SendFrame,
// WriteFrame, and Close on module-defined types (a transport or store
// Close that fails mid-teardown can strand buffered frames). The check
// is typed: only calls whose final result actually implements error are
// candidates, so a Flush() with no results is never flagged.
//
// Deliberate discards stay quiet: `_ = bw.Flush()` says the author saw
// the error and chose to drop it; `defer f.Close()` is conventional
// teardown; Close on stdlib types (response bodies, listeners in
// shutdown paths) is outside the module's data-loss surface.

import (
	"fmt"
	"go/ast"
	"go/types"
)

var AnalyzerErrDrop = &TypedAnalyzer{
	Name: "errdrop",
	Doc:  "errors from Flush/Sync/Send/SendFrame/WriteFrame/Close on the wire path must not be silently discarded",
	Run:  runErrDrop,
}

// errDropAlways are call names checked on every receiver/package;
// errDropModuleClose marks the Close special case.
var errDropAlways = map[string]bool{
	"Flush":      true,
	"Sync":       true,
	"Send":       true,
	"SendFrame":  true,
	"WriteFrame": true,
}

func runErrDrop(m *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Pkgs {
		c := &errDropChecker{m: m, pkg: pkg}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ExprStmt:
					out = append(out, c.checkBare(x.X, false)...)
				case *ast.GoStmt:
					out = append(out, c.checkBare(x.Call, false)...)
				case *ast.DeferStmt:
					out = append(out, c.checkBare(x.Call, true)...)
				}
				return true
			})
		}
	}
	return out
}

type errDropChecker struct {
	m   *Module
	pkg *TypedPackage
}

// checkBare inspects a statement-position call whose results are all
// discarded.
func (c *errDropChecker) checkBare(e ast.Expr, deferred bool) []Diagnostic {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, recv := c.calleeName(call)
	if name == "" {
		return nil
	}
	isClose := name == "Close"
	if !errDropAlways[name] && !isClose {
		return nil
	}
	if isClose {
		// defer x.Close() is conventional teardown; Close only matters
		// non-deferred and on module-defined types, where it can fail
		// with buffered frames still in flight.
		if deferred || recv == nil || !c.moduleType(recv) {
			return nil
		}
	}
	if !c.lastResultIsError(call) {
		return nil
	}
	what := name
	if recv != nil {
		what = recvDisplay(recv) + "." + name
	}
	verb := "discards its error"
	if deferred {
		verb = "discards its error (deferred)"
	}
	return []Diagnostic{{
		Pos:      c.m.Fset.Position(call.Pos()),
		Analyzer: "errdrop",
		Message:  fmt.Sprintf("%s %s; on the wire path a dropped error is silent data loss — handle it or discard explicitly with _ =", what, verb),
	}}
}

// calleeName resolves the called function's name and, for methods, the
// receiver type.
func (c *errDropChecker) calleeName(call *ast.CallExpr) (string, types.Type) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := c.pkg.Info.Uses[fun].(*types.Func); ok {
			return fn.Name(), nil
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				return fn.Name(), sig.Recv().Type()
			}
			return fn.Name(), nil
		}
	}
	return "", nil
}

// moduleType reports whether t (or its pointee) is a named type defined
// in this module — including interfaces like transport.Conn, whose
// implementations are module-owned.
func (c *errDropChecker) moduleType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return c.m.IsModulePackage(named.Obj().Pkg())
}

// lastResultIsError reports whether the call's final result implements
// the error interface.
func (c *errDropChecker) lastResultIsError(call *ast.CallExpr) bool {
	tv, ok := c.pkg.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Implements(last, errorIface) || types.Identical(last, errorIface)
}

// recvDisplay renders a receiver type for messages: "pkg.Type".
func recvDisplay(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return typeDisplay(named)
	}
	return t.String()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
