package lint

// Machine-readable output. Text (Diagnostic.String) stays the terminal
// default; JSON is the stable interchange form for scripts; SARIF 2.1.0
// is what code-review tooling (GitHub code scanning, VS Code SARIF
// viewers) ingests. Both renderings are deterministic for a given
// diagnostic list, so verify.sh can diff them.

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Rule describes one analyzer for the output renderers, independent of
// which tier it lives in.
type Rule struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// AllRules returns every analyzer of both tiers as output rules, in
// registration order (syntactic tier first).
func AllRules() []Rule {
	var out []Rule
	for _, a := range Analyzers() {
		out = append(out, Rule{Name: a.Name, Doc: a.Doc})
	}
	for _, a := range TypedAnalyzers() {
		out = append(out, Rule{Name: a.Name, Doc: a.Doc})
	}
	return out
}

// jsonDiagnostic is the stable JSON shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as a JSON array (never null; an empty
// run emits []).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, minimal profile: one run, one tool, one result per
// diagnostic, rule metadata for every analyzer that produced at least
// one rule entry.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. rules should be
// AllRules() (or the enabled subset); every diagnostic's analyzer is
// added to the driver rules even if missing from the list, so the log
// always validates.
func WriteSARIF(w io.Writer, diags []Diagnostic, rules []Rule) error {
	haveRule := make(map[string]bool, len(rules))
	var sr []sarifRule
	for _, r := range rules {
		if haveRule[r.Name] {
			continue
		}
		haveRule[r.Name] = true
		sr = append(sr, sarifRule{ID: r.Name, ShortDescription: sarifMessage{Text: r.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !haveRule[d.Analyzer] {
			haveRule[d.Analyzer] = true
			sr = append(sr, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: d.Analyzer}})
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gridlint", Rules: sr}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
