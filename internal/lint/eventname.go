package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// AnalyzerEventName enforces the flight-recorder stage naming
// convention at lint time, the way metricname does for telemetry. A
// flight event's Name is the triage key — gridctl flight groups the
// journal by it and the per-stage stats table is keyed on it — so a
// misspelled or ad-hoc name fragments the very view the recorder
// exists to provide, and nothing at runtime would complain. This
// analyzer checks every string literal passed as the first argument to
// an Emit or Journal method call against the stage-name rule:
// lowercase dot-separated with at least two segments
// ("transport.serve", "analyze.l1", "chaos.fault").
//
// The check is syntactic, mirroring metricname: any method call named
// Emit or Journal whose first argument is a string literal is treated
// as a flight call site. Journal.Emit(Event{...}) passes a composite
// literal and is therefore never matched; dynamic names are trusted.
var AnalyzerEventName = &Analyzer{
	Name: "eventname",
	Doc:  "flight recorder stage names must be lowercase dot-separated with at least two segments (e.g. transport.serve)",
	Run:  runEventName,
}

// eventNameRe is the stage-name rule: a lowercase alphanumeric first
// segment, then one or more dot-separated lowercase segments that may
// use underscores ("analyze.l1", "health.check_failed").
var eventNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// eventEmitMethods are the flight recorder's name-bearing entry
// points: Recorder.Emit(name, Event) and Recorder.Journal(name).
var eventEmitMethods = map[string]bool{
	"Emit":    true,
	"Journal": true,
}

func runEventName(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !eventEmitMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !eventNameRe.MatchString(name) {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(lit.Pos()),
					Analyzer: "eventname",
					Message: "flight event name " + strconv.Quote(name) +
						" must be lowercase dot-separated with at least two segments (e.g. transport.serve)",
				})
			}
			return true
		})
	}
	return out
}
