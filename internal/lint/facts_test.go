package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func loadFixture(t *testing.T, src string) *Module {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadTypedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFactsInterfaceCalls: a call through an interface must fan out to
// every module implementation, so transitive properties (here: I/O)
// flow through dynamic dispatch.
func TestFactsInterfaceCalls(t *testing.T) {
	m := loadFixture(t, `package p

import "time"

type Worker interface {
	Work()
}

type Fast struct{}

func (Fast) Work() {}

type Slow struct{}

func (Slow) Work() { time.Sleep(time.Second) }

func drive(w Worker) {
	w.Work()
}
`)
	facts := m.Facts()
	drive := facts.FuncByName("p.drive")
	if drive == nil {
		t.Fatal("no fact for p.drive")
	}
	var iface *CallEvent
	for i := range drive.Calls {
		if drive.Calls[i].ViaIface {
			iface = &drive.Calls[i]
		}
	}
	if iface == nil {
		t.Fatalf("no interface call recorded in p.drive: %+v", drive.Calls)
	}
	names := make(map[string]bool)
	for _, c := range iface.Callees {
		names[funcDisplay(c)] = true
	}
	if !names["p.Fast.Work"] || !names["p.Slow.Work"] {
		t.Errorf("interface call resolved to %v, want both p.Fast.Work and p.Slow.Work", names)
	}
	// The blocking implementation must make the caller transitively
	// blocking; that is what heldlockio keys off.
	if !drive.TransIO {
		t.Error("p.drive not marked TransIO despite a blocking implementation")
	}
}

// TestFactsWithLockPropagation: a withLock-style wrapper acquires the
// lock, so callers holding another lock pick up a cross-function
// acquisition-order edge.
func TestFactsWithLockPropagation(t *testing.T) {
	m := loadFixture(t, `package p

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) withLock(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

type T struct {
	mu sync.Mutex
	s  *S
}

func (t *T) bump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.s.withLock(func() {
		t.s.n++
	})
}
`)
	facts := m.Facts()
	wl := facts.FuncByName("p.S.withLock")
	if wl == nil {
		t.Fatal("no fact for p.S.withLock")
	}
	if !wl.TransAcquires["p.S.mu"] {
		t.Errorf("withLock TransAcquires = %v, want p.S.mu", wl.TransAcquires)
	}
	bump := facts.FuncByName("p.T.bump")
	if bump == nil {
		t.Fatal("no fact for p.T.bump")
	}
	if !bump.TransAcquires["p.T.mu"] || !bump.TransAcquires["p.S.mu"] {
		t.Errorf("bump TransAcquires = %v, want both p.T.mu and p.S.mu", bump.TransAcquires)
	}
	var found bool
	for _, e := range LockOrderEdges(facts) {
		if e.From == "p.T.mu" && e.To == "p.S.mu" && e.Via != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no call-mediated lock edge p.T.mu -> p.S.mu in %v", LockOrderEdges(facts))
	}
}

// TestFactsDeferredUnlockHeld: a deferred Unlock keeps the lock held to
// the end of the function, so later acquisitions nest under it.
func TestFactsDeferredUnlockHeld(t *testing.T) {
	m := loadFixture(t, `package p

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func nested(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func released(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
`)
	facts := m.Facts()
	nested := facts.FuncByName("p.nested")
	var heldAtB []HeldLock
	for _, acq := range nested.Acquires {
		if acq.Lock == "p.B.mu" {
			heldAtB = acq.Held
		}
	}
	if len(heldAtB) != 1 || heldAtB[0].ID != "p.A.mu" {
		t.Errorf("nested: held at B.mu acquisition = %v, want [p.A.mu]", heldAtB)
	}
	released := facts.FuncByName("p.released")
	for _, acq := range released.Acquires {
		if acq.Lock == "p.B.mu" && len(acq.Held) != 0 {
			t.Errorf("released: B.mu acquired with %v held, want nothing", acq.Held)
		}
	}
}

// TestFactsGoroutineNotHeld: a `go` function literal runs on its own
// goroutine — the spawner's locks are not held there.
func TestFactsGoroutineNotHeld(t *testing.T) {
	m := loadFixture(t, `package p

import (
	"sync"
	"time"
)

type S struct{ mu sync.Mutex }

func spawn(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Second)
	}()
}
`)
	facts := m.Facts()
	for _, ff := range facts.Anon {
		for _, ev := range ff.IO {
			if len(ev.Held) != 0 {
				t.Errorf("goroutine body inherits held locks %v", ev.Held)
			}
		}
	}
	// And the typed analyzer built on these facts stays quiet.
	if diags := RunTyped(m, []*TypedAnalyzer{AnalyzerHeldLockIO}); len(diags) != 0 {
		t.Errorf("heldlockio flagged goroutine spawn: %v", diags)
	}
}
