package lint

// AnalyzerViewLifetime enforces the reuse window of zero-copy views.
// A view is a []byte that aliases a buffer its producer will overwrite:
// the payload returned by acl.FrameReader.Next (valid only until the
// next Next/ReadMessage call), and any value returned by a function
// whose doc comment carries a //gridlint:view directive — the opt-in
// for future pooled APIs like the planned UnmarshalBinaryInto.
//
// View sources are recognized typed, not by name matching alone: a
// method on a module type named "Next" or ending in "View" whose
// results include a []byte, or any function carrying the directive.
//
// Inside the function that obtains a view v (aliases of v — `w := v`,
// `w := v[a:b]` — inherit its obligations), four escapes are flagged:
//
//  1. storing v (or a subslice) into a struct field, array/map/slice
//     element, dereference or package-level variable;
//  2. sending v on a channel;
//  3. capturing v in a goroutine (`go func() { … v … }`);
//  4. returning v — except inside a function that itself carries the
//     //gridlint:view directive: an annotated producer's contract IS to
//     forward the view, and its callers are checked in turn because the
//     directive makes its []byte results view sources there.
//
// And one overrun: using v after the producer advanced (a later
// Next/Read*/Reset call on the same receiver) — at that point the
// bytes may already be the next frame's.
//
// Copies are safe and not flagged: string(v), append(dst, v...),
// copy(dst, v), bytes.Clone(v), and passing v as a plain call argument
// (synchronous use; the callee is analyzed on its own).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var AnalyzerViewLifetime = &TypedAnalyzer{
	Name: "viewlifetime",
	Doc:  "zero-copy views over reusable buffers must not escape their reuse window",
	Run:  runViewLifetime,
}

func runViewLifetime(m *Module) []Diagnostic {
	var out []Diagnostic
	directive := collectViewDirectives(m)
	for _, pkg := range m.Pkgs {
		v := &viewChecker{m: m, pkg: pkg, directive: directive}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				var body *ast.BlockStmt
				producer := false
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
					// An annotated producer forwards views by contract;
					// returns inside it are the contract, not an escape.
					if tf, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
						producer = directive[tf]
					}
				case *ast.FuncLit:
					body = fn.Body
				}
				if body == nil {
					return true
				}
				out = append(out, v.checkFunc(body, producer)...)
				return true
			})
		}
	}
	return out
}

// collectViewDirectives finds every function whose doc comment carries
// //gridlint:view — their []byte results are views by declaration.
func collectViewDirectives(m *Module) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(strings.TrimSpace(c.Text), "//gridlint:view") {
						if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
							out[fn] = true
						}
						break
					}
				}
			}
		}
	}
	return out
}

type viewInfo struct {
	src  string     // producer display name, for messages
	recv *types.Var // receiver variable whose next advance invalidates the view
	def  token.Pos  // definition position
}

type viewChecker struct {
	m         *Module
	pkg       *TypedPackage
	directive map[*types.Func]bool
	views     map[*types.Var]*viewInfo
	// producer marks the body of a //gridlint:view-annotated function:
	// returning a view there is the forwarding contract, not an escape.
	producer bool
}

func (v *viewChecker) checkFunc(body *ast.BlockStmt, producer bool) []Diagnostic {
	v.producer = producer
	v.views = make(map[*types.Var]*viewInfo)
	// Pass 1: collect view variables and their aliases. Aliases may be
	// declared after the view, so iterate to a fixed point (bounded by
	// the number of assignments).
	for {
		before := len(v.views)
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			v.collectFromAssign(as)
			return true
		})
		if len(v.views) == before {
			break
		}
	}
	if len(v.views) == 0 {
		return nil
	}

	var out []Diagnostic
	out = append(out, v.checkEscapes(body)...)
	out = append(out, v.checkWindow(body)...)
	return out
}

// collectFromAssign records view definitions (assignment from a view
// source call) and aliases (assignment from an existing view or its
// subslice).
func (v *viewChecker) collectFromAssign(as *ast.AssignStmt) {
	info := v.pkg.Info
	// Single-call RHS with multiple results: find which results are
	// views ([]byte results of a view source).
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if src, recv := v.viewSource(call); src != "" {
				sig := v.callSignature(call)
				if sig != nil && len(as.Lhs) == sig.Results().Len() {
					for i := 0; i < sig.Results().Len(); i++ {
						if !isByteSlice(sig.Results().At(i).Type()) {
							continue
						}
						v.recordView(as.Lhs[i], src, recv, as.Pos())
					}
					return
				}
				// Single-result view call assigned to one LHS.
				if len(as.Lhs) == 1 && sig != nil && sig.Results().Len() == 1 && isByteSlice(sig.Results().At(0).Type()) {
					v.recordView(as.Lhs[0], src, recv, as.Pos())
					return
				}
			}
		}
	}
	// Aliases: lhs := view, lhs := view[a:b].
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			if vi := v.aliasOf(rhs); vi != nil {
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj, ok := objOf(info, id).(*types.Var); ok {
						if _, exists := v.views[obj]; !exists {
							v.views[obj] = &viewInfo{src: vi.src, recv: vi.recv, def: as.Pos()}
						}
					}
				}
			}
		}
	}
}

func (v *viewChecker) recordView(lhs ast.Expr, src string, recv *types.Var, pos token.Pos) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj, ok := objOf(v.pkg.Info, id).(*types.Var); ok {
		v.views[obj] = &viewInfo{src: src, recv: recv, def: pos}
	}
}

// viewSource reports whether the call produces a view, returning the
// producer name and (when resolvable) the receiver variable.
func (v *viewChecker) viewSource(call *ast.CallExpr) (string, *types.Var) {
	info := v.pkg.Info
	var fn *types.Func
	var recvVar *types.Var
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			recvVar, _ = objOf(info, id).(*types.Var)
		}
	}
	if fn == nil {
		return "", nil
	}
	if v.directive[fn] {
		return funcDisplay(fn), recvVar
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	// Module method named Next or *View with a []byte result.
	if !v.m.IsModulePackage(fn.Pkg()) {
		return "", nil
	}
	if fn.Name() != "Next" && !strings.HasSuffix(fn.Name(), "View") {
		return "", nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isByteSlice(sig.Results().At(i).Type()) {
			return funcDisplay(fn), recvVar
		}
	}
	return "", nil
}

func (v *viewChecker) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := v.pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// aliasOf reports the view a pure aliasing expression refers to:
// the view identifier itself, a subslice, or parentheses over either.
func (v *viewChecker) aliasOf(e ast.Expr) *viewInfo {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := objOf(v.pkg.Info, x).(*types.Var); ok {
			return v.views[obj]
		}
	case *ast.SliceExpr:
		return v.aliasOf(x.X)
	}
	return nil
}

// checkEscapes flags stores, sends, goroutine captures and returns.
func (v *viewChecker) checkEscapes(body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	diag := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{Pos: v.m.Fset.Position(pos), Analyzer: "viewlifetime", Message: msg})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				vi := v.unsafeMention(rhs)
				if vi == nil {
					continue
				}
				if i < len(x.Lhs) && v.escapingLHS(x.Lhs[i]) {
					diag(x.Pos(), fmt.Sprintf("zero-copy view from %s stored beyond its reuse window; copy it first (string(v), append, bytes.Clone)", vi.src))
				}
			}
		case *ast.SendStmt:
			if vi := v.unsafeMention(x.Value); vi != nil {
				diag(x.Pos(), fmt.Sprintf("zero-copy view from %s sent on a channel; the receiver would read a recycled buffer — copy it first", vi.src))
			}
		case *ast.GoStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				if vi := v.capturedView(fl); vi != nil {
					diag(x.Pos(), fmt.Sprintf("zero-copy view from %s captured by a goroutine; it runs outside the reuse window — copy it first", vi.src))
				}
			}
			for _, arg := range x.Call.Args {
				if vi := v.unsafeMention(arg); vi != nil {
					diag(x.Pos(), fmt.Sprintf("zero-copy view from %s passed to a goroutine; it runs outside the reuse window — copy it first", vi.src))
				}
			}
		case *ast.ReturnStmt:
			if v.producer {
				break
			}
			for _, res := range x.Results {
				if vi := v.unsafeMention(res); vi != nil {
					diag(x.Pos(), fmt.Sprintf("zero-copy view from %s returned; the caller cannot see the reuse window — copy it first", vi.src))
				}
			}
		}
		return true
	})
	return out
}

// escapingLHS reports whether an assignment target outlives the
// function body: a field, an element, a dereference, or a package-level
// variable. A plain local identifier is not an escape (it becomes an
// alias, tracked separately).
func (v *viewChecker) escapingLHS(lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if obj, ok := objOf(v.pkg.Info, x).(*types.Var); ok {
			return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
		}
	}
	return false
}

// unsafeMention reports the view an expression aliases, ignoring
// copying constructs: string(v) conversions, append(dst, v...) spreads,
// and view mentions inside ordinary call arguments (synchronous use).
func (v *viewChecker) unsafeMention(e ast.Expr) *viewInfo {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := objOf(v.pkg.Info, x).(*types.Var); ok {
			return v.views[obj]
		}
	case *ast.SliceExpr:
		return v.unsafeMention(x.X)
	case *ast.CallExpr:
		if tv, ok := v.pkg.Info.Types[x.Fun]; ok && tv.IsType() {
			// Conversion: string(v) copies; []byte(v) of a view is the
			// view itself.
			if len(x.Args) == 1 {
				if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Kind() == types.String {
					return nil
				}
				return v.unsafeMention(x.Args[0])
			}
			return nil
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			// append(dst, v...) copies v's bytes; append(dst, v) would
			// store the alias itself as an element.
			if x.Ellipsis != token.NoPos {
				return nil
			}
			for _, a := range x.Args[1:] {
				if vi := v.unsafeMention(a); vi != nil {
					return vi
				}
			}
			return nil
		}
		return nil // plain call argument: synchronous use
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if vi := v.unsafeMention(el); vi != nil {
				return vi
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return v.unsafeMention(x.X)
		}
	}
	return nil
}

// capturedView finds a view identifier referenced inside a function
// literal (resolved by object, so shadowing cannot fool it).
func (v *viewChecker) capturedView(fl *ast.FuncLit) *viewInfo {
	var found *viewInfo
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := objOf(v.pkg.Info, id).(*types.Var); ok {
				if vi := v.views[obj]; vi != nil {
					found = vi
				}
			}
		}
		return true
	})
	return found
}

// checkWindow flags uses of a view after its producer advanced: a
// later Next/Read*/Reset call on the same receiver overwrites the
// aliased buffer.
func (v *viewChecker) checkWindow(body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		// advancedAt[v] = index of the statement that invalidated v.
		advancedAt := make(map[*types.Var]int)
		for i, stmt := range list {
			for obj, idx := range advancedAt {
				if i > idx && v.mentionsVar(stmt, obj) {
					vi := v.views[obj]
					out = append(out, Diagnostic{
						Pos:      v.m.Fset.Position(stmt.Pos()),
						Analyzer: "viewlifetime",
						Message:  fmt.Sprintf("zero-copy view from %s used after the producer advanced (line %d); the buffer may already hold the next frame", vi.src, v.m.Fset.Position(list[idx].Pos()).Line),
					})
				}
			}
			advancers := v.advancersIn(stmt)
			for obj, vi := range v.views {
				// Reassigning the view re-opens its window (typically
				// the next `payload, err := fr.Next()` of the loop).
				if v.assignsVar(stmt, obj) {
					delete(advancedAt, obj)
					continue
				}
				if vi.recv != nil && vi.def < stmt.Pos() && advancers[vi.recv] {
					if _, done := advancedAt[obj]; !done {
						advancedAt[obj] = i
					}
				}
			}
		}
		return true
	})
	return out
}

// advancersIn collects receiver variables on which the statement calls
// an advancing method (Next, Read*, Reset).
func (v *viewChecker) advancersIn(stmt ast.Stmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Next" && name != "Reset" && !strings.HasPrefix(name, "Read") {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj, ok := objOf(v.pkg.Info, id).(*types.Var); ok {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func (v *viewChecker) mentionsVar(n ast.Node, target *types.Var) bool {
	found := false
	ast.Inspect(n, func(in ast.Node) bool {
		if found {
			return false
		}
		if id, ok := in.(*ast.Ident); ok {
			if obj, ok := objOf(v.pkg.Info, id).(*types.Var); ok && obj == target {
				found = true
			}
		}
		return !found
	})
	return found
}

func (v *viewChecker) assignsVar(stmt ast.Stmt, target *types.Var) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj, ok := objOf(v.pkg.Info, id).(*types.Var); ok && obj == target {
				return true
			}
		}
	}
	return false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
