package mobility

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
	"agentgrid/internal/platform"
	"agentgrid/internal/transport"
)

var profile = directory.ResourceProfile{CPUCapacity: 10, NetCapacity: 10, DiscCapacity: 10}

func buildSites(t *testing.T) (*Manager, *Manager, *platform.Container, *platform.Container) {
	t.Helper()
	n := transport.NewInProcNetwork()
	mk := func(name string) *platform.Container {
		c, err := platform.New(platform.Config{Name: name, Platform: name, Profile: profile})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachInProc(n, "inproc://"+name); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Stop() })
		return c
	}
	c1, c2 := mk("site1"), mk("site2")
	m1, err := NewManager(c1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(c2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := c1.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return m1, m2, c1, c2
}

// counterFactory wires a trivial mobile agent kind: it counts pings in a
// belief.
func counterFactory(a *agent.Agent, _ *State) error {
	a.HandleFunc(agent.Selector{Performative: acl.Inform}, func(_ context.Context, a *agent.Agent, _ *acl.Message) {
		n, _ := a.Beliefs().GetFloat("count")
		a.Beliefs().Set("count", n+1)
	})
	return nil
}

func TestSpawnKind(t *testing.T) {
	m1, _, c1, _ := buildSites(t)
	if err := m1.Register("counter", counterFactory); err != nil {
		t.Fatal(err)
	}
	st := &State{Kind: "counter", Name: "roamer", Beliefs: map[string]any{"count": 3.0}}
	a, err := m1.Spawn(st)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Beliefs().GetFloat("count"); v != 3 {
		t.Fatalf("belief = %v", v)
	}
	if _, ok := c1.Agent("roamer"); !ok {
		t.Fatal("agent not hosted")
	}
	if _, err := m1.Spawn(&State{Kind: "ghost", Name: "x"}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	m1, _, _, _ := buildSites(t)
	if err := m1.Register("", counterFactory); err == nil {
		t.Error("empty kind accepted")
	}
	if err := m1.Register("k", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := m1.Register("k", counterFactory); err != nil {
		t.Fatal(err)
	}
	if err := m1.Register("k", counterFactory); err == nil {
		t.Error("duplicate kind accepted")
	}
}

func TestMigrateEndToEnd(t *testing.T) {
	m1, m2, c1, c2 := buildSites(t)
	m1.Register("counter", counterFactory)
	m2.Register("counter", counterFactory)

	// Born on site1 with some accumulated state.
	_, err := m1.Spawn(&State{Kind: "counter", Name: "roamer", Beliefs: map[string]any{"count": 7.0}})
	if err != nil {
		t.Fatal(err)
	}

	st, err := m1.CaptureState("counter", "roamer", []byte("extra"))
	if err != nil {
		t.Fatal(err)
	}
	dest := m2.AID(c2.Addr())
	if err := m1.Migrate(context.Background(), st, dest, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Gone from site1, alive on site2 with state intact.
	if _, ok := c1.Agent("roamer"); ok {
		t.Fatal("agent still on source")
	}
	moved, ok := c2.Agent("roamer")
	if !ok {
		t.Fatal("agent not on destination")
	}
	if v, _ := moved.Beliefs().GetFloat("count"); v != 7 {
		t.Fatalf("belief after move = %v", v)
	}
	arrived, _ := m2.Stats()
	_, departed := m1.Stats()
	if arrived != 1 || departed != 1 {
		t.Fatalf("stats: arrived=%d departed=%d", arrived, departed)
	}

	// The moved agent still behaves (handlers rewired by the factory).
	err = moved.Deliver(&acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("x", "site2"),
		Receivers:    []acl.AID{moved.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if v, _ := moved.Beliefs().GetFloat("count"); v == 8 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("moved agent not processing messages")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestMigrateRefusedUnknownKind(t *testing.T) {
	m1, m2, c1, c2 := buildSites(t)
	m1.Register("counter", counterFactory)
	// site2 does NOT know "counter".
	_ = m2

	m1.Spawn(&State{Kind: "counter", Name: "roamer"})
	st, _ := m1.CaptureState("counter", "roamer", nil)
	err := m1.Migrate(context.Background(), st, m2.AID(c2.Addr()), 5*time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
	// Source copy survives a refused migration.
	if _, ok := c1.Agent("roamer"); !ok {
		t.Fatal("agent lost on refusal")
	}
}

func TestMigrateNameCollision(t *testing.T) {
	m1, m2, _, c2 := buildSites(t)
	m1.Register("counter", counterFactory)
	m2.Register("counter", counterFactory)
	// Destination already hosts an agent with the same name.
	m2.Spawn(&State{Kind: "counter", Name: "roamer"})

	m1.Spawn(&State{Kind: "counter", Name: "roamer"})
	st, _ := m1.CaptureState("counter", "roamer", nil)
	err := m1.Migrate(context.Background(), st, m2.AID(c2.Addr()), 5*time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestMigrateTimeout(t *testing.T) {
	m1, _, _, _ := buildSites(t)
	m1.Register("counter", counterFactory)
	m1.Spawn(&State{Kind: "counter", Name: "roamer"})
	st, _ := m1.CaptureState("counter", "roamer", nil)
	// Destination that will never answer: a valid AID on an
	// unregistered address. Send fails -> error surfaces immediately.
	ghost := acl.NewAID(ManagerAgentName, "nowhere", "inproc://nowhere")
	err := m1.Migrate(context.Background(), st, ghost, 200*time.Millisecond)
	if err == nil {
		t.Fatal("migration to ghost succeeded")
	}
}

func TestCaptureStateMissingAgent(t *testing.T) {
	m1, _, _, _ := buildSites(t)
	if _, err := m1.CaptureState("counter", "nobody", nil); err == nil {
		t.Fatal("captured missing agent")
	}
}

func TestFactoryErrorCleansUp(t *testing.T) {
	m1, _, c1, _ := buildSites(t)
	m1.Register("broken", func(*agent.Agent, *State) error {
		return fmt.Errorf("wiring failed")
	})
	if _, err := m1.Spawn(&State{Kind: "broken", Name: "x"}); err == nil {
		t.Fatal("broken factory succeeded")
	}
	if _, ok := c1.Agent("x"); ok {
		t.Fatal("half-built agent left behind")
	}
}
