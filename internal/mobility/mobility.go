// Package mobility implements mobile agents — the paper's future-work
// item on "the utilization of mobile agents in data analysis and in load
// balancing: agent mobility allows for a migration of analysis
// activities, improving the utilization of resources" (§5).
//
// Go code cannot ship closures across containers, so mobility follows
// the classic weak-migration model: agent *kinds* register a factory on
// every container, and migration moves an agent's serialized state
// (beliefs, goals metadata and a kind-specific payload such as rule DSL
// source). The destination reconstructs the agent from its kind factory
// plus state; the source then retires its copy.
package mobility

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/platform"
)

// ManagerAgentName is the local name of the mobility manager agent every
// participating container hosts.
const ManagerAgentName = "mobility"

// migrationOntology tags mobility protocol messages.
const migrationOntology = "agent-mobility"

// State is the serialized form of a migrating agent.
type State struct {
	// Kind selects the factory that reconstructs behaviour.
	Kind string `json:"kind"`
	// Name is the agent's local name, preserved across the move.
	Name string `json:"name"`
	// Beliefs is the belief-base snapshot. Values must be JSON-encodable
	// primitives.
	Beliefs map[string]any `json:"beliefs,omitempty"`
	// Payload carries kind-specific state (e.g. rule DSL source for a
	// migrating analysis agent).
	Payload []byte `json:"payload,omitempty"`
}

// Factory reconstructs a kind's behaviour on a freshly spawned agent.
type Factory func(a *agent.Agent, st *State) error

// Mobility errors.
var (
	ErrUnknownKind = errors.New("mobility: unknown agent kind")
	ErrRefused     = errors.New("mobility: destination refused migration")
	ErrTimeout     = errors.New("mobility: migration timed out")
)

// Manager hosts the mobility protocol on one container.
type Manager struct {
	c *platform.Container
	a *agent.Agent

	mu        sync.Mutex
	factories map[string]Factory
	waits     map[string]chan *acl.Message
	arrived   uint64
	departed  uint64
}

// NewManager spawns the mobility manager agent on a container.
func NewManager(c *platform.Container) (*Manager, error) {
	a, err := c.SpawnAgent(ManagerAgentName)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		c:         c,
		a:         a,
		factories: make(map[string]Factory),
		waits:     make(map[string]chan *acl.Message),
	}
	a.HandleFunc(agent.Selector{
		Performative: acl.Request,
		Ontology:     migrationOntology,
	}, m.handleArrival)
	a.HandleFunc(agent.Selector{Ontology: migrationOntology}, m.handleReply)
	return m, nil
}

// AID returns the manager agent's identifier; give it the container's
// transport address when crossing containers.
func (m *Manager) AID(addr string) acl.AID {
	id := m.a.ID()
	if addr != "" {
		id.Addresses = []string{addr}
	}
	return id
}

// Register installs the factory for an agent kind. Every container that
// may receive such agents must register the same kind.
func (m *Manager) Register(kind string, f Factory) error {
	if kind == "" || f == nil {
		return errors.New("mobility: kind and factory required")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.factories[kind]; dup {
		return fmt.Errorf("mobility: kind %q already registered", kind)
	}
	m.factories[kind] = f
	return nil
}

// Stats returns (agents arrived, agents departed).
func (m *Manager) Stats() (arrived, departed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.arrived, m.departed
}

// Spawn creates a local agent of a registered kind directly (how mobile
// agents are born before their first hop).
func (m *Manager) Spawn(st *State) (*agent.Agent, error) {
	m.mu.Lock()
	factory, ok := m.factories[st.Kind]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, st.Kind)
	}
	a, err := m.c.SpawnAgent(st.Name)
	if err != nil {
		return nil, err
	}
	for k, v := range st.Beliefs {
		a.Beliefs().Set(k, v)
	}
	if err := factory(a, st); err != nil {
		m.c.KillAgent(st.Name)
		return nil, err
	}
	return a, nil
}

// CaptureState snapshots a local agent into a migratable state. The
// payload argument carries kind-specific state the caller extracts.
func (m *Manager) CaptureState(kind, localName string, payload []byte) (*State, error) {
	a, ok := m.c.Agent(localName)
	if !ok {
		return nil, fmt.Errorf("mobility: no local agent %q", localName)
	}
	return &State{
		Kind:    kind,
		Name:    localName,
		Beliefs: a.Beliefs().Snapshot(),
		Payload: payload,
	}, nil
}

// Migrate moves a local agent to the container whose mobility manager is
// dest: it ships the state, waits for acceptance, then kills the local
// copy. On refusal or timeout the local agent keeps running.
func (m *Manager) Migrate(ctx context.Context, st *State, dest acl.AID, timeout time.Duration) error {
	content, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("mobility: encode state: %w", err)
	}
	replyWith := m.a.NewConversationID()
	replies := make(chan *acl.Message, 1)
	m.mu.Lock()
	m.waits[replyWith] = replies
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.waits, replyWith)
		m.mu.Unlock()
	}()

	msg := &acl.Message{
		Performative: acl.Request,
		// The sender carries this container's address so the
		// destination can route its agree/refuse back.
		Sender:         m.AID(m.c.Addr()),
		Receivers:      []acl.AID{dest},
		Content:        content,
		Language:       "json",
		Ontology:       migrationOntology,
		ConversationID: replyWith,
		ReplyWith:      replyWith,
	}
	sp := m.a.Tracer().ChildFromContext(ctx, "mobility.migrate")
	sp.SetAttr("agent", st.Name)
	sp.SetAttr("dest", dest.Name)
	sp.SetConversation(replyWith)
	sp.Stamp(msg)
	defer sp.End()
	if err := m.a.Send(ctx, msg); err != nil {
		sp.SetError(err)
		return fmt.Errorf("mobility: send state: %w", err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return ErrTimeout
	case reply := <-replies:
		switch reply.Performative {
		case acl.Agree:
			// Destination accepted: retire the local copy.
			if err := m.c.KillAgent(st.Name); err != nil {
				return fmt.Errorf("mobility: retire local agent: %w", err)
			}
			m.mu.Lock()
			m.departed++
			m.mu.Unlock()
			return nil
		default:
			return fmt.Errorf("%w: %s (%s)", ErrRefused, reply.Performative, reply.Content)
		}
	}
}

// handleArrival reconstructs an inbound agent.
func (m *Manager) handleArrival(ctx context.Context, a *agent.Agent, msg *acl.Message) {
	var st State
	if err := json.Unmarshal(msg.Content, &st); err != nil {
		reply := msg.Reply(a.ID(), acl.Refuse)
		reply.Content = []byte("malformed state")
		_ = a.Send(ctx, reply)
		return
	}
	if _, err := m.Spawn(&st); err != nil {
		reply := msg.Reply(a.ID(), acl.Refuse)
		reply.Content = []byte(err.Error())
		_ = a.Send(ctx, reply)
		return
	}
	m.mu.Lock()
	m.arrived++
	m.mu.Unlock()
	_ = a.Send(ctx, msg.Reply(a.ID(), acl.Agree))
}

// handleReply routes agree/refuse answers back to waiting migrations.
func (m *Manager) handleReply(_ context.Context, _ *agent.Agent, msg *acl.Message) {
	if msg.Performative != acl.Agree && msg.Performative != acl.Refuse {
		return
	}
	m.mu.Lock()
	ch, ok := m.waits[msg.InReplyTo]
	m.mu.Unlock()
	if ok {
		select {
		case ch <- msg:
		default:
		}
	}
}
