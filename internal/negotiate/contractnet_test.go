package negotiate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/directory"
	"agentgrid/internal/platform"
	"agentgrid/internal/transport"
)

// rig is one container with an initiator agent and n participant agents.
type rig struct {
	container *platform.Container
	initiator *Initiator
	agents    []acl.AID
}

func buildRig(t *testing.T, participants []Participant) *rig {
	t.Helper()
	n := transport.NewInProcNetwork()
	c, err := platform.New(platform.Config{
		Name: "c1", Platform: "test",
		Profile: directory.ResourceProfile{CPUCapacity: 1, NetCapacity: 1, DiscCapacity: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInProc(n, "inproc://c1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop() })

	initAgent, err := c.SpawnAgent("root")
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{container: c, initiator: NewInitiator(initAgent)}
	for i, p := range participants {
		a, err := c.SpawnAgent(fmt.Sprintf("worker-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		RegisterParticipant(a, p)
		r.agents = append(r.agents, a.ID())
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return r
}

func bidder(bid float64) Participant {
	return ParticipantFuncs{
		BidFunc: func(Task) (float64, bool) { return bid, true },
		ExecuteFunc: func(_ context.Context, task Task) (Result, error) {
			return Result{Output: []byte(fmt.Sprintf("done-by-%.0f", bid))}, nil
		},
	}
}

func refuser() Participant {
	return ParticipantFuncs{
		BidFunc:     func(Task) (float64, bool) { return 0, false },
		ExecuteFunc: func(context.Context, Task) (Result, error) { return Result{}, nil },
	}
}

func TestNegotiateLowestBidWins(t *testing.T) {
	r := buildRig(t, []Participant{bidder(30), bidder(10), bidder(20)})
	out, err := r.initiator.Negotiate(context.Background(), r.agents,
		Task{ID: "t1", Kind: "analysis"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner.Local() != "worker-1" || out.Bid != 10 {
		t.Fatalf("Outcome = %+v", out)
	}
	if string(out.Output) != "done-by-10" {
		t.Fatalf("Output = %q", out.Output)
	}
	if out.Proposals != 3 || out.Refused != 0 {
		t.Fatalf("counts = %+v", out)
	}
}

func TestNegotiateWithRefusals(t *testing.T) {
	r := buildRig(t, []Participant{refuser(), bidder(5), refuser()})
	out, err := r.initiator.Negotiate(context.Background(), r.agents,
		Task{ID: "t2"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner.Local() != "worker-1" || out.Refused != 2 || out.Proposals != 1 {
		t.Fatalf("Outcome = %+v", out)
	}
}

func TestNegotiateAllRefuse(t *testing.T) {
	r := buildRig(t, []Participant{refuser(), refuser()})
	_, err := r.initiator.Negotiate(context.Background(), r.agents,
		Task{ID: "t3"}, 2*time.Second)
	if !errors.Is(err, ErrNoProposals) {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiateNoParticipants(t *testing.T) {
	r := buildRig(t, nil)
	_, err := r.initiator.Negotiate(context.Background(), nil, Task{ID: "t"}, time.Second)
	if !errors.Is(err, ErrNoParticipants) {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiateWinnerFails(t *testing.T) {
	failing := ParticipantFuncs{
		BidFunc: func(Task) (float64, bool) { return 1, true },
		ExecuteFunc: func(context.Context, Task) (Result, error) {
			return Result{}, errors.New("disk caught fire")
		},
	}
	r := buildRig(t, []Participant{failing})
	_, err := r.initiator.Negotiate(context.Background(), r.agents, Task{ID: "t"}, 2*time.Second)
	if !errors.Is(err, ErrAwardFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiateTieBreaksDeterministically(t *testing.T) {
	r := buildRig(t, []Participant{bidder(7), bidder(7), bidder(7)})
	for i := 0; i < 3; i++ {
		out, err := r.initiator.Negotiate(context.Background(), r.agents, Task{ID: "t"}, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if out.Winner.Local() != "worker-0" {
			t.Fatalf("tie broke to %s", out.Winner)
		}
	}
}

func TestNegotiateTaskPayloadDelivered(t *testing.T) {
	got := make(chan []byte, 1)
	p := ParticipantFuncs{
		BidFunc: func(Task) (float64, bool) { return 1, true },
		ExecuteFunc: func(_ context.Context, task Task) (Result, error) {
			got <- task.Payload
			return Result{Output: []byte("ok")}, nil
		},
	}
	r := buildRig(t, []Participant{p})
	_, err := r.initiator.Negotiate(context.Background(), r.agents,
		Task{ID: "t", Payload: []byte("the data")}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(<-got) != "the data" {
		t.Fatal("payload lost")
	}
}

func TestNegotiateContextCancelled(t *testing.T) {
	// Participant that never answers the award: execution blocks.
	stuck := ParticipantFuncs{
		BidFunc: func(Task) (float64, bool) { return 1, true },
		ExecuteFunc: func(ctx context.Context, _ Task) (Result, error) {
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
	}
	r := buildRig(t, []Participant{stuck})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := r.initiator.Negotiate(ctx, r.agents, Task{ID: "t"}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("cancelled negotiation succeeded")
	}
}

func TestNegotiateBidWindowExpiresWithPartialBids(t *testing.T) {
	// One fast bidder plus one that never answers at all: the window
	// must close and the fast bid win.
	r := buildRig(t, []Participant{bidder(3)})
	ghost := acl.NewAID("ghost", "nowhere", "inproc://nowhere")
	participants := append([]acl.AID{ghost}, r.agents...)
	start := time.Now()
	out, err := r.initiator.Negotiate(context.Background(), participants, Task{ID: "t"}, 500*time.Millisecond)
	// The cfp to the ghost fails at send time (unroutable), which is
	// fine — the negotiation proceeds on the answers it can get.
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if out.Winner.Local() != "worker-0" {
		t.Fatalf("winner = %s", out.Winner)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("negotiation hung")
	}
}

func TestParticipantIgnoresGarbageCFP(t *testing.T) {
	r := buildRig(t, []Participant{bidder(1)})
	// Hand-roll a cfp with non-JSON content; participant must reply
	// not-understood, which counts as refusal.
	initAgent, _ := r.container.Agent("root")
	convID := initAgent.NewConversationID()
	replies := make(chan *acl.Message, 2)
	r.initiator.mu.Lock()
	r.initiator.waits[convID] = replies
	r.initiator.mu.Unlock()

	err := initAgent.Send(context.Background(), &acl.Message{
		Performative:   acl.CFP,
		Receivers:      r.agents,
		Content:        []byte("{{{{not json"),
		Protocol:       acl.ProtocolContractNet,
		ConversationID: convID,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-replies:
		if m.Performative != acl.NotUnderstood {
			t.Fatalf("reply = %s", m.Performative)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply to garbage cfp")
	}
}

func TestConcurrentNegotiationsIsolated(t *testing.T) {
	// Three negotiations run from one initiator at once; each must see
	// only its own conversation's proposals and results.
	r := buildRig(t, []Participant{bidder(1), bidder(2), bidder(3)})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := r.initiator.Negotiate(context.Background(), r.agents,
				Task{ID: fmt.Sprintf("parallel-%d", i)}, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if out.Winner.Local() != "worker-0" || out.Proposals != 3 {
				errs <- fmt.Errorf("negotiation %d outcome %+v", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
