// Package negotiate implements the FIPA contract-net protocol the paper
// cites for load distribution (§3.5: the root "could ... negotiate with
// containers concerning the possibility of sending information to be
// processed by them ... using negotiation protocols established by
// FIPA"). An initiator announces a task, participants bid their estimated
// cost, the initiator awards the cheapest bid and collects the result.
package negotiate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/flight"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// Task is the content of a call for proposals.
type Task struct {
	// ID names the task (unique per initiator).
	ID string `json:"id"`
	// Kind describes the work, e.g. "analysis-l2".
	Kind string `json:"kind"`
	// Payload is the task input, opaque to the protocol.
	Payload []byte `json:"payload,omitempty"`
}

// Proposal is a participant's bid.
type Proposal struct {
	// Bid is the estimated cost; lower wins.
	Bid float64 `json:"bid"`
}

// Result is the winner's final answer.
type Result struct {
	// Output is the task's product, opaque to the protocol.
	Output []byte `json:"output,omitempty"`
	// Err is a failure description ("" on success).
	Err string `json:"err,omitempty"`
}

// Negotiation errors.
var (
	ErrNoParticipants = errors.New("negotiate: no participants")
	ErrNoProposals    = errors.New("negotiate: every participant refused")
	ErrAwardFailed    = errors.New("negotiate: winner reported failure")
	ErrTimeout        = errors.New("negotiate: negotiation timed out")
)

// Participant decides bids and executes awarded tasks.
type Participant interface {
	// Bid estimates the cost of a task. Returning ok=false refuses it.
	Bid(task Task) (bid float64, ok bool)
	// Execute performs an awarded task.
	Execute(ctx context.Context, task Task) (Result, error)
}

// ParticipantFuncs adapts two functions to the Participant interface.
type ParticipantFuncs struct {
	BidFunc     func(task Task) (float64, bool)
	ExecuteFunc func(ctx context.Context, task Task) (Result, error)
}

// Bid implements Participant.
func (p ParticipantFuncs) Bid(task Task) (float64, bool) { return p.BidFunc(task) }

// Execute implements Participant.
func (p ParticipantFuncs) Execute(ctx context.Context, task Task) (Result, error) {
	return p.ExecuteFunc(ctx, task)
}

// RegisterParticipant wires contract-net participant behaviour into an
// agent: it answers cfp with propose/refuse and accept-proposal with
// inform/failure.
func RegisterParticipant(a *agent.Agent, p Participant) {
	// Remember tasks between cfp and award.
	var mu sync.Mutex
	pending := make(map[string]Task) // conversation id -> task

	a.HandleFunc(agent.Selector{Performative: acl.CFP, Protocol: acl.ProtocolContractNet},
		func(ctx context.Context, a *agent.Agent, m *acl.Message) {
			var task Task
			if err := json.Unmarshal(m.Content, &task); err != nil {
				reply := m.Reply(a.ID(), acl.NotUnderstood)
				_ = a.Send(ctx, reply)
				return
			}
			sp := a.Tracer().ContinueFromMessage("negotiate.bid", m)
			sp.SetAttr("agent", a.ID().Name)
			defer sp.End()
			bid, ok := p.Bid(task)
			if !ok {
				sp.SetAttr("refused", "true")
				refusal := m.Reply(a.ID(), acl.Refuse)
				sp.Stamp(refusal)
				_ = a.Send(ctx, refusal)
				return
			}
			sp.SetAttr("bid", fmt.Sprintf("%.3g", bid))
			mu.Lock()
			pending[m.ConversationID] = task
			mu.Unlock()
			reply := m.Reply(a.ID(), acl.Propose)
			reply.Content, _ = json.Marshal(Proposal{Bid: bid})
			sp.Stamp(reply)
			_ = a.Send(ctx, reply)
		})

	a.HandleFunc(agent.Selector{Performative: acl.AcceptProposal, Protocol: acl.ProtocolContractNet},
		func(ctx context.Context, a *agent.Agent, m *acl.Message) {
			mu.Lock()
			task, ok := pending[m.ConversationID]
			delete(pending, m.ConversationID)
			mu.Unlock()
			if !ok {
				_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
				return
			}
			sp := a.Tracer().ContinueFromMessage("negotiate.execute", m)
			sp.SetAttr("agent", a.ID().Name)
			ctx = trace.NewContext(ctx, sp)
			defer sp.End()
			res, err := p.Execute(ctx, task)
			if err != nil {
				sp.SetError(err)
				reply := m.Reply(a.ID(), acl.Failure)
				reply.Content, _ = json.Marshal(Result{Err: err.Error()})
				sp.Stamp(reply)
				_ = a.Send(ctx, reply)
				return
			}
			reply := m.Reply(a.ID(), acl.Inform)
			reply.Content, _ = json.Marshal(res)
			sp.Stamp(reply)
			_ = a.Send(ctx, reply)
		})

	a.HandleFunc(agent.Selector{Performative: acl.RejectProposal, Protocol: acl.ProtocolContractNet},
		func(_ context.Context, _ *agent.Agent, m *acl.Message) {
			mu.Lock()
			delete(pending, m.ConversationID)
			mu.Unlock()
		})
}

// Metrics counts contract-net activity from the initiator's side.
// Every instrument is nil-safe, so a zero Metrics costs nothing.
type Metrics struct {
	CFPs      *telemetry.Counter   // calls for proposals sent
	Proposals *telemetry.Counter   // bids received
	Refusals  *telemetry.Counter   // refusals (explicit or unreachable)
	Awards    *telemetry.Counter   // tasks awarded and completed
	Rounds    *telemetry.Histogram // full negotiation round wall time
}

// Initiator runs contract-net negotiations from one agent. Register it
// once per agent; it installs the reply handlers it needs.
type Initiator struct {
	a       *agent.Agent
	metrics Metrics
	flight  *flight.Journal

	mu    sync.Mutex
	waits map[string]chan *acl.Message // conversation id -> reply stream
}

// SetMetrics installs negotiation counters. Call before the agent
// starts negotiating.
func (ini *Initiator) SetMetrics(m Metrics) { ini.metrics = m }

// SetFlight journals one negotiate.round event per negotiation to the
// flight recorder. Call before the agent starts negotiating.
func (ini *Initiator) SetFlight(r *flight.Recorder) { ini.flight = r.Journal("negotiate.round") }

// NewInitiator wires contract-net initiator behaviour into an agent.
func NewInitiator(a *agent.Agent) *Initiator {
	ini := &Initiator{a: a, waits: make(map[string]chan *acl.Message)}
	sel := agent.Selector{Protocol: acl.ProtocolContractNet}
	a.HandleFunc(sel, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		switch m.Performative {
		case acl.Propose, acl.Refuse, acl.Inform, acl.Failure, acl.NotUnderstood:
			ini.mu.Lock()
			ch, ok := ini.waits[m.ConversationID]
			ini.mu.Unlock()
			if ok {
				select {
				case ch <- m:
				default: // negotiation gave up; drop
				}
			}
		}
	})
	return ini
}

// Outcome describes a completed negotiation.
type Outcome struct {
	// Winner is the participant that was awarded the task.
	Winner acl.AID
	// Bid is the winning bid.
	Bid float64
	// Output is the winner's result payload.
	Output []byte
	// Refused counts participants that declined to bid.
	Refused int
	// Proposals counts the bids received.
	Proposals int
}

// Negotiate announces the task to the participants, waits up to
// bidWindow for proposals, awards the lowest bid and waits for the
// result. It must be called from outside the agent's handler goroutine.
func (ini *Initiator) Negotiate(ctx context.Context, participants []acl.AID, task Task, bidWindow time.Duration) (out *Outcome, retErr error) {
	if len(participants) == 0 {
		return nil, ErrNoParticipants
	}
	convID := ini.a.NewConversationID()
	replies := make(chan *acl.Message, len(participants)*2)
	ini.mu.Lock()
	ini.waits[convID] = replies
	ini.mu.Unlock()
	defer func() {
		ini.mu.Lock()
		delete(ini.waits, convID)
		ini.mu.Unlock()
	}()

	start := time.Now()
	var sp *trace.Span
	defer func() {
		d := time.Since(start)
		ini.metrics.Rounds.ObserveTrace(d, sp.TID())
		if ini.flight != nil {
			e := flight.Event{
				Container:    ini.a.ID().Platform(),
				Conversation: convID,
				TraceID:      sp.TID(),
				Dur:          d,
			}
			if retErr != nil {
				e.Outcome = flight.OutcomeError
				e.Err = retErr.Error()
			}
			if out != nil {
				e.Size = out.Proposals
			}
			ini.flight.Emit(e)
		}
	}()
	payload, err := json.Marshal(task)
	if err != nil {
		return nil, fmt.Errorf("negotiate: encode task: %w", err)
	}
	sp = ini.a.Tracer().ChildFromContext(ctx, "negotiate")
	sp.SetAttr("agent", ini.a.ID().Name)
	sp.SetAttrInt("participants", len(participants))
	sp.SetConversation(convID)
	defer sp.End()
	// The cfp goes to each participant individually so an unreachable
	// container counts as a refusal instead of aborting the negotiation.
	reachable := 0
	refused := 0
	for _, p := range participants {
		cfp := &acl.Message{
			Performative:   acl.CFP,
			Sender:         ini.a.ID(),
			Receivers:      []acl.AID{p},
			Content:        payload,
			Language:       "json",
			Ontology:       acl.OntologyGridManagement,
			Protocol:       acl.ProtocolContractNet,
			ConversationID: convID,
		}
		sp.Stamp(cfp)
		ini.metrics.CFPs.Inc()
		if err := ini.a.Send(ctx, cfp); err != nil {
			refused++
			continue
		}
		reachable++
	}
	if reachable == 0 {
		err := fmt.Errorf("%w (task %s, no participant reachable)", ErrNoProposals, task.ID)
		sp.SetError(err)
		return nil, err
	}

	// Collect proposals until every reachable participant answered or
	// the window closes.
	type bid struct {
		from acl.AID
		bid  float64
	}
	var bids []bid
	timer := time.NewTimer(bidWindow)
	defer timer.Stop()
collect:
	for answered := 0; answered < reachable; {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			break collect
		case m := <-replies:
			switch m.Performative {
			case acl.Propose:
				var p Proposal
				if err := json.Unmarshal(m.Content, &p); err == nil {
					bids = append(bids, bid{from: m.Sender, bid: p.Bid})
				}
				answered++
			case acl.Refuse, acl.NotUnderstood:
				refused++
				answered++
			}
		}
	}
	ini.metrics.Proposals.Add(uint64(len(bids)))
	ini.metrics.Refusals.Add(uint64(refused))
	if len(bids) == 0 {
		err := fmt.Errorf("%w (task %s, %d refusals)", ErrNoProposals, task.ID, refused)
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttrInt("bids", len(bids))
	sp.SetAttrInt("refusals", refused)

	// Lowest bid wins; ties break on AID name for determinism.
	best := bids[0]
	for _, b := range bids[1:] {
		if b.bid < best.bid || (b.bid == best.bid && b.from.Name < best.from.Name) {
			best = b
		}
	}

	// Reject the losers.
	for _, b := range bids {
		if b.from.Equal(best.from) {
			continue
		}
		reject := &acl.Message{
			Performative:   acl.RejectProposal,
			Sender:         ini.a.ID(),
			Receivers:      []acl.AID{b.from},
			Protocol:       acl.ProtocolContractNet,
			ConversationID: convID,
		}
		sp.Stamp(reject)
		_ = ini.a.Send(ctx, reject)
	}

	// Award the winner and wait for its result. The award is its own
	// span so the trace separates bid collection from execution time.
	aw := sp.Child("negotiate.award")
	aw.SetAttr("winner", best.from.Name)
	aw.SetConversation(convID)
	defer aw.End()
	accept := &acl.Message{
		Performative:   acl.AcceptProposal,
		Sender:         ini.a.ID(),
		Receivers:      []acl.AID{best.from},
		Protocol:       acl.ProtocolContractNet,
		ConversationID: convID,
	}
	aw.Stamp(accept)
	if err := ini.a.Send(ctx, accept); err != nil {
		aw.SetError(err)
		return nil, fmt.Errorf("negotiate: award: %w", err)
	}
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case m := <-replies:
			switch m.Performative {
			case acl.Inform:
				var res Result
				if err := json.Unmarshal(m.Content, &res); err != nil {
					return nil, fmt.Errorf("negotiate: decode result: %w", err)
				}
				ini.metrics.Awards.Inc()
				return &Outcome{
					Winner:    best.from,
					Bid:       best.bid,
					Output:    res.Output,
					Refused:   refused,
					Proposals: len(bids),
				}, nil
			case acl.Failure:
				var res Result
				json.Unmarshal(m.Content, &res)
				err := fmt.Errorf("%w: %s", ErrAwardFailed, res.Err)
				aw.SetError(err)
				return nil, err
			}
			// Late proposals from slow losers are ignored.
		}
	}
}
