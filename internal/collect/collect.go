// Package collect implements the collector agent grid (CG, §3.1): agents
// whose goals extract managed-object values from network equipment at
// intervals, through a protocol "interface" (SNMP or a command-line
// utility), normalize them into the common representation and ship them
// to the classifier grid. Collectors can also run local pre-analysis
// rules so obvious problems raise alerts without waiting for the
// processor grid.
package collect

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/device"
	"agentgrid/internal/flight"
	"agentgrid/internal/obs"
	"agentgrid/internal/rules"
	"agentgrid/internal/snmp"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// Goal describes one recurring collection intention (§3.1: "goals that
// consist of extracting managed object values from one or more pieces of
// equipment in the network between time intervals").
type Goal struct {
	// Name identifies the goal on its collector.
	Name string
	// Site and Device identify the equipment.
	Site   string
	Device string
	// Class is the device class, carried into records.
	Class string
	// Addr is the device's management endpoint (interface-specific).
	Addr string
	// Metrics restricts collection to these metric names; empty collects
	// everything the device exposes.
	Metrics []string
	// Interval between collections.
	Interval time.Duration
}

// Validate checks the goal's required fields.
func (g *Goal) Validate() error {
	switch {
	case g.Name == "":
		return errors.New("collect: goal needs a name")
	case g.Site == "":
		return errors.New("collect: goal needs a site")
	case g.Device == "":
		return errors.New("collect: goal needs a device")
	case g.Interval <= 0:
		return errors.New("collect: goal needs a positive interval")
	}
	return nil
}

// Interface is one collection mechanism — the paper's term for an
// agent's ability to collect through a given protocol.
type Interface interface {
	// Name identifies the mechanism ("snmp", "exec").
	Name() string
	// Collect pulls the goal's metrics from the device.
	Collect(ctx context.Context, goal Goal) ([]obs.Record, error)
}

// ---- SNMP interface ----

// SNMPInterface collects through the management protocol in
// internal/snmp: it walks the device's metric-name and metric tables and
// pairs them up.
type SNMPInterface struct {
	Client *snmp.Client
}

// Name implements Interface.
func (s *SNMPInterface) Name() string { return "snmp" }

// Collect implements Interface.
func (s *SNMPInterface) Collect(ctx context.Context, goal Goal) ([]obs.Record, error) {
	if goal.Addr == "" {
		return nil, errors.New("collect: snmp goal needs an address")
	}
	names, err := s.Client.Walk(ctx, goal.Addr, device.OIDMetricNameBase)
	if err != nil {
		return nil, fmt.Errorf("collect: walk names on %s: %w", goal.Device, err)
	}
	values, err := s.Client.Walk(ctx, goal.Addr, device.OIDMetricBase)
	if err != nil {
		return nil, fmt.Errorf("collect: walk values on %s: %w", goal.Device, err)
	}
	stepVB, err := s.Client.Get(ctx, goal.Addr, device.OIDStep)
	if err != nil {
		return nil, fmt.Errorf("collect: read step on %s: %w", goal.Device, err)
	}
	step := int(stepVB[0].Value.Int)

	// Index metric names by table index (last OID component).
	nameByIdx := make(map[uint32]string, len(names))
	for _, vb := range names {
		nameByIdx[vb.OID[len(vb.OID)-1]] = vb.Value.Str
	}
	want := metricFilter(goal.Metrics)
	now := time.Now().UTC()
	var out []obs.Record
	for _, vb := range values {
		name, ok := nameByIdx[vb.OID[len(vb.OID)-1]]
		if !ok {
			continue // value without a name row; skip
		}
		if want != nil && !want[name] {
			continue
		}
		v, ok := vb.Value.AsFloat()
		if !ok {
			continue
		}
		out = append(out, obs.Record{
			Site:   goal.Site,
			Device: goal.Device,
			Class:  goal.Class,
			Metric: name,
			Value:  v,
			Step:   step,
			Time:   now,
		})
	}
	return out, nil
}

// ---- Exec interface ----

// ExecInterface simulates collection via a command-line utility (the
// paper's alternative to SNMP): it reads the device object directly, the
// way parsing `ps`/`df` output would on a real host.
type ExecInterface struct {
	// Lookup resolves a device name to its simulated device.
	Lookup func(name string) (*device.Device, bool)
}

// Name implements Interface.
func (e *ExecInterface) Name() string { return "exec" }

// Collect implements Interface.
func (e *ExecInterface) Collect(_ context.Context, goal Goal) ([]obs.Record, error) {
	d, ok := e.Lookup(goal.Device)
	if !ok {
		return nil, fmt.Errorf("collect: exec cannot reach device %q", goal.Device)
	}
	want := metricFilter(goal.Metrics)
	now := time.Now().UTC()
	step := d.Step()
	var out []obs.Record
	for _, name := range d.MetricNames() {
		if want != nil && !want[name] {
			continue
		}
		v, ok := d.Value(name)
		if !ok {
			continue
		}
		out = append(out, obs.Record{
			Site:   goal.Site,
			Device: goal.Device,
			Class:  string(d.Class()),
			Metric: name,
			Value:  v,
			Step:   step,
			Time:   now,
		})
	}
	return out, nil
}

func metricFilter(metrics []string) map[string]bool {
	if len(metrics) == 0 {
		return nil
	}
	m := make(map[string]bool, len(metrics))
	for _, name := range metrics {
		m[name] = true
	}
	return m
}

// ---- Collector ----

// Config configures a Collector.
type Config struct {
	// Site is the collector's administrative domain.
	Site string
	// Classifier is where batches go.
	Classifier acl.AID
	// Route, when set, picks the classifier partition owning a batch's
	// device (partitioned classifier grids route by management domain).
	// A false return falls back to Classifier.
	Route func(site, device string) (acl.AID, bool)
	// Iface is the collection mechanism.
	Iface Interface
	// Ontology annotates records with units. Optional.
	Ontology *obs.Ontology
	// LocalRules, when set, run level-1 pre-analysis on each batch
	// before it ships (§3.1: "agents that execute some local
	// information analyses").
	LocalRules *rules.RuleBase
	// AlertSink receives local pre-analysis alerts. Optional.
	AlertSink func(rules.Alert)
	// ErrorLog receives collection/ship errors. Optional.
	ErrorLog func(error)
	// Metrics, when set, registers the collector's counters and poll
	// latency histogram labeled with the hosting container. Optional.
	Metrics *telemetry.Registry
	// Flight, when set, journals poll cycles (collect.poll) and batch
	// shipments (collect.ship) with their trace links. Optional.
	Flight *flight.Recorder
}

// Stats counts collector activity.
type Stats struct {
	Collections uint64
	Records     uint64
	ShipErrors  uint64
	LocalAlerts uint64
}

// Collector is a collector-grid agent. Build it over a spawned
// agent.Agent with New.
type Collector struct {
	a   *agent.Agent
	cfg Config

	mu    sync.Mutex
	goals map[string]Goal // guarded by mu
	stats Stats           // guarded by mu

	mPolls       *telemetry.Counter
	mPollErrors  *telemetry.Counter
	mRecords     *telemetry.Counter
	mShipErrors  *telemetry.Counter
	mLocalAlerts *telemetry.Counter
	mPollSec     *telemetry.Histogram

	fPoll *flight.Journal
	fShip *flight.Journal
}

// New wires collector behaviour onto an agent.
func New(a *agent.Agent, cfg Config) (*Collector, error) {
	if cfg.Iface == nil {
		return nil, errors.New("collect: config needs an interface")
	}
	if cfg.Classifier.IsZero() {
		return nil, errors.New("collect: config needs a classifier AID")
	}
	if cfg.Site == "" {
		return nil, errors.New("collect: config needs a site")
	}
	c := &Collector{a: a, cfg: cfg, goals: make(map[string]Goal)}
	r := cfg.Metrics
	l := telemetry.Labels{"container": a.ID().Platform()}
	c.mPolls = r.Counter("collect_polls_total", "device polls completed", l)
	c.mPollErrors = r.Counter("collect_poll_errors_total", "device polls that failed", l)
	c.mRecords = r.Counter("collect_records_total", "records collected", l)
	c.mShipErrors = r.Counter("collect_ship_errors_total", "batches that failed to ship to the classifier", l)
	c.mLocalAlerts = r.Counter("collect_alerts_local_total", "alerts raised by local level-1 pre-analysis", l)
	c.mPollSec = r.Histogram("collect_poll_seconds", "full poll cycle wall time", l)
	c.fPoll = cfg.Flight.Journal("collect.poll")
	c.fShip = cfg.Flight.Journal("collect.ship")
	// The interface grid can push new goals at runtime via request
	// messages carrying a goal description.
	a.HandleFunc(agent.Selector{Performative: acl.Request, Ontology: acl.OntologyGridManagement},
		c.handleGoalRequest)
	return c, nil
}

// Agent returns the underlying agent.
func (c *Collector) Agent() *agent.Agent { return c.a }

// Stats returns activity counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AddGoal installs a collection goal and schedules it.
func (c *Collector) AddGoal(g Goal) error {
	if err := g.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	if _, dup := c.goals[g.Name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("collect: duplicate goal %q", g.Name)
	}
	c.goals[g.Name] = g
	c.mu.Unlock()

	err := c.a.AddGoal(agent.Goal{
		Name:     "collect/" + g.Name,
		Interval: g.Interval,
		Action: func(ctx context.Context, _ *agent.Agent) error {
			return c.collectAndShip(ctx, g.Name)
		},
	})
	if err != nil {
		c.mu.Lock()
		delete(c.goals, g.Name)
		c.mu.Unlock()
		return err
	}
	return nil
}

// RemoveGoal cancels a goal.
func (c *Collector) RemoveGoal(name string) error {
	c.mu.Lock()
	_, ok := c.goals[name]
	delete(c.goals, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("collect: no goal %q", name)
	}
	return c.a.RemoveGoal("collect/" + name)
}

// UpdateGoalInterval reschedules an existing goal — the paper's §3.4
// "modify existing goals" feedback. Collection continuity is preserved:
// the goal keeps its identity and device, only the cadence changes.
func (c *Collector) UpdateGoalInterval(name string, interval time.Duration) error {
	if interval <= 0 {
		return errors.New("collect: interval must be positive")
	}
	c.mu.Lock()
	g, ok := c.goals[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("collect: no goal %q", name)
	}
	g.Interval = interval
	c.goals[name] = g
	c.mu.Unlock()

	// Replace the agent-side schedule.
	if err := c.a.RemoveGoal("collect/" + name); err != nil {
		return err
	}
	return c.a.AddGoal(agent.Goal{
		Name:     "collect/" + name,
		Interval: interval,
		Action: func(ctx context.Context, _ *agent.Agent) error {
			return c.collectAndShip(ctx, name)
		},
	})
}

// Goals lists goal names, sorted.
func (c *Collector) Goals() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.goals))
	for name := range c.goals {
		out = append(out, name)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// CollectNow runs one goal immediately (deterministic trigger for tests
// and the interface grid's "refresh now").
func (c *Collector) CollectNow(ctx context.Context, goalName string) error {
	return c.collectAndShip(ctx, goalName)
}

// collectAndShip performs one collection cycle for the named goal.
func (c *Collector) collectAndShip(ctx context.Context, goalName string) error {
	c.mu.Lock()
	g, ok := c.goals[goalName]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("collect: no goal %q", goalName)
	}
	start := time.Now()
	// The poll is where a trace is born: everything downstream — ship,
	// classify, analyze, alerting — descends from this root span.
	sp := c.a.Tracer().StartRoot("collect.poll")
	var (
		polled  int
		pollErr error
	)
	defer func() {
		d := time.Since(start)
		c.mPollSec.ObserveTrace(d, sp.TID())
		if c.fPoll != nil {
			e := flight.Event{
				Container: c.a.ID().Platform(),
				TraceID:   sp.TID(),
				Dur:       d,
				Size:      polled,
			}
			if pollErr != nil {
				e.Outcome = flight.OutcomeError
				e.Err = pollErr.Error()
			}
			c.fPoll.Emit(e)
		}
	}()
	sp.SetAttr("agent", c.a.ID().Name)
	sp.SetAttr("goal", goalName)
	sp.SetAttr("device", g.Device)
	ctx = trace.NewContext(ctx, sp)
	defer sp.End()
	records, err := c.cfg.Iface.Collect(ctx, g)
	if err != nil {
		pollErr = err
		sp.SetError(err)
		c.mPollErrors.Inc()
		c.logErr(err)
		return err
	}
	polled = len(records)
	sp.SetAttrInt("records", len(records))
	c.mu.Lock()
	c.stats.Collections++
	c.stats.Records += uint64(len(records))
	c.mu.Unlock()
	c.mPolls.Inc()
	c.mRecords.Add(uint64(len(records)))
	if len(records) == 0 {
		return nil
	}
	if c.cfg.Ontology != nil {
		for i := range records {
			c.cfg.Ontology.Annotate(&records[i])
		}
	}
	c.preAnalyze(records)
	return c.ship(ctx, records)
}

// preAnalyze runs the local level-1 rules over the fresh records.
func (c *Collector) preAnalyze(records []obs.Record) {
	if c.cfg.LocalRules == nil || c.cfg.AlertSink == nil {
		return
	}
	values := make(map[string]float64, len(records))
	var step int
	for _, r := range records {
		values[r.Metric] = r.Value
		step = r.Step
	}
	env := &rules.MapEnv{Values: values}
	scope := rules.Scope{Site: c.cfg.Site, Device: records[0].Device, Step: step}
	alerts, _ := rules.Evaluate(c.cfg.LocalRules, 1, env, scope)
	for _, a := range alerts {
		c.cfg.AlertSink(a)
	}
	c.mu.Lock()
	c.stats.LocalAlerts += uint64(len(alerts))
	c.mu.Unlock()
	c.mLocalAlerts.Add(uint64(len(alerts)))
}

// ship sends the batch to the classifier grid in the common XML
// representation.
func (c *Collector) ship(ctx context.Context, records []obs.Record) error {
	batch := &obs.Batch{Collector: c.a.ID().Name, Records: records}
	content, err := obs.MarshalBatch(batch)
	if err != nil {
		return err
	}
	// A goal collects one device, so the batch has one owning partition.
	receiver := c.cfg.Classifier
	if c.cfg.Route != nil && len(records) > 0 {
		if aid, ok := c.cfg.Route(records[0].Site, records[0].Device); ok {
			receiver = aid
		}
	}
	msg := &acl.Message{
		Performative:   acl.Inform,
		Receivers:      []acl.AID{receiver},
		Content:        content,
		Language:       "xml",
		Ontology:       acl.OntologyNetworkManagement,
		ConversationID: c.a.NewConversationID(),
	}
	sp := c.a.Tracer().ChildFromContext(ctx, "collect.ship")
	sp.SetAttrInt("batch", len(records))
	sp.SetConversation(msg.ConversationID)
	sp.Stamp(msg)
	defer sp.End()
	if err := c.a.Send(ctx, msg); err != nil {
		sp.SetError(err)
		c.mu.Lock()
		c.stats.ShipErrors++
		c.mu.Unlock()
		c.mShipErrors.Inc()
		if c.fShip != nil {
			c.fShip.Emit(flight.Event{
				Container:    c.a.ID().Platform(),
				Conversation: msg.ConversationID,
				TraceID:      sp.TID(),
				Size:         len(content),
				Outcome:      flight.OutcomeError,
				Err:          err.Error(),
			})
		}
		c.logErr(fmt.Errorf("collect: ship batch: %w", err))
		return err
	}
	if c.fShip != nil {
		c.fShip.Emit(flight.Event{
			Container:    c.a.ID().Platform(),
			Conversation: msg.ConversationID,
			TraceID:      sp.TID(),
			Size:         len(content),
		})
	}
	return nil
}

// handleGoalRequest lets the interface grid add goals remotely. The
// request content is "goal <name> <site> <device> <class> <addr> <interval> [metrics...]".
func (c *Collector) handleGoalRequest(ctx context.Context, a *agent.Agent, m *acl.Message) {
	fields := strings.Fields(string(m.Content))
	if len(fields) < 7 || fields[0] != "goal" {
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
		return
	}
	interval, err := time.ParseDuration(fields[6])
	if err != nil {
		_ = a.Send(ctx, m.Reply(a.ID(), acl.Refuse))
		return
	}
	g := Goal{
		Name: fields[1], Site: fields[2], Device: fields[3],
		Class: fields[4], Addr: fields[5], Interval: interval,
		Metrics: fields[7:],
	}
	if err := c.AddGoal(g); err != nil {
		reply := m.Reply(a.ID(), acl.Refuse)
		reply.Content = []byte(err.Error())
		_ = a.Send(ctx, reply)
		return
	}
	_ = a.Send(ctx, m.Reply(a.ID(), acl.Agree))
}

func (c *Collector) logErr(err error) {
	if c.cfg.ErrorLog != nil {
		c.cfg.ErrorLog(err)
	}
}
