package collect

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/device"
	"agentgrid/internal/obs"
	"agentgrid/internal/rules"
	"agentgrid/internal/snmp"
)

// outbox captures messages a collector agent sends.
type outbox struct {
	mu   sync.Mutex
	msgs []*acl.Message
}

func (o *outbox) send(_ context.Context, m *acl.Message) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.msgs = append(o.msgs, m.Clone())
	return nil
}

func (o *outbox) batches(t *testing.T) []*obs.Batch {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*obs.Batch
	for _, m := range o.msgs {
		if m.Performative != acl.Inform || m.Language != "xml" {
			continue
		}
		b, err := obs.UnmarshalBatch(m.Content)
		if err != nil {
			t.Fatalf("bad batch content: %v", err)
		}
		out = append(out, b)
	}
	return out
}

func classifierAID() acl.AID { return acl.NewAID("classifier", "site1") }

func newExecCollector(t *testing.T, d *device.Device, cfgMod func(*Config)) (*Collector, *outbox) {
	t.Helper()
	out := &outbox{}
	a := agent.New(acl.NewAID("collector-1", "site1"), out.send)
	cfg := Config{
		Site:       "site1",
		Classifier: classifierAID(),
		Iface: &ExecInterface{Lookup: func(name string) (*device.Device, bool) {
			if name == d.Name() {
				return d, true
			}
			return nil, false
		}},
		Ontology: obs.NewOntology(),
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	c, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, out
}

func hostGoal(name, dev string) Goal {
	return Goal{
		Name: name, Site: "site1", Device: dev, Class: "host",
		Interval: time.Hour, // tests trigger manually
	}
}

func TestConfigValidation(t *testing.T) {
	a := agent.New(acl.NewAID("c", "s"), (&outbox{}).send)
	iface := &ExecInterface{Lookup: func(string) (*device.Device, bool) { return nil, false }}
	if _, err := New(a, Config{Site: "s", Classifier: classifierAID()}); err == nil {
		t.Error("missing interface accepted")
	}
	if _, err := New(a, Config{Site: "s", Iface: iface}); err == nil {
		t.Error("missing classifier accepted")
	}
	if _, err := New(a, Config{Classifier: classifierAID(), Iface: iface}); err == nil {
		t.Error("missing site accepted")
	}
}

func TestGoalValidation(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, _ := newExecCollector(t, d, nil)
	cases := []Goal{
		{Site: "s", Device: "d", Interval: time.Second}, // no name
		{Name: "g", Device: "d", Interval: time.Second}, // no site
		{Name: "g", Site: "s", Interval: time.Second},   // no device
		{Name: "g", Site: "s", Device: "d"},             // no interval
	}
	for i, g := range cases {
		if err := c.AddGoal(g); err == nil {
			t.Errorf("case %d accepted: %+v", i, g)
		}
	}
	if err := c.AddGoal(hostGoal("g", "h1")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddGoal(hostGoal("g", "h1")); err == nil {
		t.Error("duplicate goal accepted")
	}
	if goals := c.Goals(); len(goals) != 1 || goals[0] != "g" {
		t.Errorf("Goals = %v", goals)
	}
}

func TestExecCollectAndShip(t *testing.T) {
	d := device.NewHost("h1", 42)
	d.Advance(3)
	c, out := newExecCollector(t, d, nil)
	if err := c.AddGoal(hostGoal("g", "h1")); err != nil {
		t.Fatal(err)
	}
	if err := c.CollectNow(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	batches := out.batches(t)
	if len(batches) != 1 {
		t.Fatalf("batches = %d", len(batches))
	}
	b := batches[0]
	if b.Collector != "collector-1@site1" {
		t.Fatalf("collector = %q", b.Collector)
	}
	if len(b.Records) != 4 {
		t.Fatalf("records = %d", len(b.Records))
	}
	for _, r := range b.Records {
		if r.Site != "site1" || r.Device != "h1" || r.Class != "host" || r.Step != 3 {
			t.Fatalf("record = %+v", r)
		}
		if r.Unit == "" {
			t.Fatalf("ontology did not annotate %s", r.Metric)
		}
		want, _ := d.Value(r.Metric)
		if r.Value != want {
			t.Fatalf("%s = %v, device has %v", r.Metric, r.Value, want)
		}
	}
	stats := c.Stats()
	if stats.Collections != 1 || stats.Records != 4 {
		t.Fatalf("Stats = %+v", stats)
	}
}

func TestMetricFilter(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, out := newExecCollector(t, d, nil)
	g := hostGoal("g", "h1")
	g.Metrics = []string{device.MetricCPUUtil, device.MetricMemFree}
	c.AddGoal(g)
	c.CollectNow(context.Background(), "g")
	b := out.batches(t)[0]
	if len(b.Records) != 2 {
		t.Fatalf("filtered records = %d", len(b.Records))
	}
}

func TestCollectUnknownDevice(t *testing.T) {
	d := device.NewHost("h1", 1)
	var logged []error
	c, _ := newExecCollector(t, d, func(cfg *Config) {
		cfg.ErrorLog = func(err error) { logged = append(logged, err) }
	})
	c.AddGoal(hostGoal("g", "ghost"))
	if err := c.CollectNow(context.Background(), "g"); err == nil {
		t.Fatal("ghost device succeeded")
	}
	if len(logged) == 0 {
		t.Fatal("error not logged")
	}
	if err := c.CollectNow(context.Background(), "nope"); err == nil {
		t.Fatal("unknown goal succeeded")
	}
}

func TestLocalPreAnalysis(t *testing.T) {
	d := device.NewHost("h1", 1)
	d.InjectFault(device.FaultCPUPegged)
	rb := rules.NewRuleBase()
	rb.AddSource(`rule "hot" severity critical { when latest(cpu.util) >= 100 then alert "pegged on {device}" }`)
	var alerts []rules.Alert
	c, out := newExecCollector(t, d, func(cfg *Config) {
		cfg.LocalRules = rb
		cfg.AlertSink = func(a rules.Alert) { alerts = append(alerts, a) }
	})
	c.AddGoal(hostGoal("g", "h1"))
	c.CollectNow(context.Background(), "g")

	if len(alerts) != 1 || alerts[0].Device != "h1" || alerts[0].Message != "pegged on h1" {
		t.Fatalf("alerts = %+v", alerts)
	}
	if c.Stats().LocalAlerts != 1 {
		t.Fatalf("Stats = %+v", c.Stats())
	}
	// The batch still ships.
	if len(out.batches(t)) != 1 {
		t.Fatal("batch not shipped")
	}
}

func TestRemoveGoal(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, _ := newExecCollector(t, d, nil)
	c.AddGoal(hostGoal("g", "h1"))
	if err := c.RemoveGoal("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveGoal("g"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if len(c.Goals()) != 0 {
		t.Fatal("goal still listed")
	}
	if err := c.CollectNow(context.Background(), "g"); err == nil {
		t.Fatal("removed goal still collectable")
	}
}

func TestSNMPInterfaceEndToEnd(t *testing.T) {
	d := device.NewHost("web-1", 9)
	d.Advance(5)
	st, err := device.StartStation(d, "127.0.0.1:0", "public")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	out := &outbox{}
	a := agent.New(acl.NewAID("collector-1", "site1"), out.send)
	c, err := New(a, Config{
		Site:       "site1",
		Classifier: classifierAID(),
		Iface:      &SNMPInterface{Client: snmp.NewClient("public", snmp.WithTimeout(2*time.Second))},
		Ontology:   obs.NewOntology(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := Goal{
		Name: "g", Site: "site1", Device: "web-1", Class: "host",
		Addr: st.Addr(), Interval: time.Hour,
		Metrics: []string{device.MetricCPUUtil, device.MetricDiskFree},
	}
	if err := c.AddGoal(g); err != nil {
		t.Fatal(err)
	}
	if err := c.CollectNow(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	b := out.batches(t)[0]
	if len(b.Records) != 2 {
		t.Fatalf("snmp records = %+v", b.Records)
	}
	for _, r := range b.Records {
		if r.Step != 5 {
			t.Fatalf("step = %d", r.Step)
		}
		want, _ := d.Value(r.Metric)
		if r.Value != want {
			t.Fatalf("%s over snmp = %v, device %v", r.Metric, r.Value, want)
		}
	}
}

func TestSNMPInterfaceNeedsAddr(t *testing.T) {
	iface := &SNMPInterface{Client: snmp.NewClient("public")}
	_, err := iface.Collect(context.Background(), Goal{Name: "g", Site: "s", Device: "d", Interval: time.Second})
	if err == nil {
		t.Fatal("missing addr accepted")
	}
}

func TestGoalRequestOverACL(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, out := newExecCollector(t, d, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); c.Agent().Run(ctx) }()

	req := &acl.Message{
		Performative: acl.Request,
		Sender:       acl.NewAID("ig", "site1"),
		Receivers:    []acl.AID{c.Agent().ID()},
		Ontology:     acl.OntologyGridManagement,
		Content:      []byte("goal remote site1 h1 host - 1h cpu.util"),
	}
	if err := c.Agent().Deliver(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for len(c.Goals()) == 0 {
		select {
		case <-deadline:
			t.Fatal("goal never added")
		case <-time.After(time.Millisecond):
		}
	}
	if goals := c.Goals(); goals[0] != "remote" {
		t.Fatalf("Goals = %v", goals)
	}
	// Agent replied agree.
	out.mu.Lock()
	var sawAgree bool
	for _, m := range out.msgs {
		if m.Performative == acl.Agree {
			sawAgree = true
		}
	}
	out.mu.Unlock()
	if !sawAgree {
		t.Fatal("no agree reply")
	}
	cancel()
	<-done
}

func TestGoalRequestMalformed(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, out := newExecCollector(t, d, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Agent().Run(ctx)

	for _, content := range []string{"nonsense", "goal x s d", "goal n s d c addr notaduration"} {
		req := &acl.Message{
			Performative: acl.Request,
			Sender:       acl.NewAID("ig", "site1"),
			Receivers:    []acl.AID{c.Agent().ID()},
			Ontology:     acl.OntologyGridManagement,
			Content:      []byte(content),
		}
		c.Agent().Deliver(req)
	}
	deadline := time.After(5 * time.Second)
	for {
		out.mu.Lock()
		rejections := 0
		for _, m := range out.msgs {
			if m.Performative == acl.NotUnderstood || m.Performative == acl.Refuse {
				rejections++
			}
		}
		out.mu.Unlock()
		if rejections == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("rejections = %d, want 3", rejections)
		case <-time.After(time.Millisecond):
		}
	}
	if len(c.Goals()) != 0 {
		t.Fatal("malformed request added a goal")
	}
}

func TestInterfaceNames(t *testing.T) {
	if (&SNMPInterface{}).Name() != "snmp" || (&ExecInterface{}).Name() != "exec" {
		t.Fatal("interface names wrong")
	}
}

func TestScheduledCollection(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, out := newExecCollector(t, d, nil)
	g := hostGoal("fast", "h1")
	g.Interval = 10 * time.Millisecond
	c.AddGoal(g)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Agent().Run(ctx)

	deadline := time.After(5 * time.Second)
	for {
		if len(out.batches(t)) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("scheduled collection never ran twice")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := strings.Join(c.Goals(), ","); got != "fast" {
		t.Fatalf("Goals = %v", got)
	}
}

func TestUpdateGoalInterval(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, out := newExecCollector(t, d, nil)
	g := hostGoal("g", "h1")
	g.Interval = time.Hour
	if err := c.AddGoal(g); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Agent().Run(ctx)

	// Speed the goal up to 10ms; collections must start flowing.
	if err := c.UpdateGoalInterval("g", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for len(out.batches(t)) < 2 {
		select {
		case <-deadline:
			t.Fatal("rescheduled goal never ran")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Validation and error paths.
	if err := c.UpdateGoalInterval("g", 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := c.UpdateGoalInterval("ghost", time.Second); err == nil {
		t.Fatal("unknown goal accepted")
	}
	// Goal identity preserved.
	if goals := c.Goals(); len(goals) != 1 || goals[0] != "g" {
		t.Fatalf("Goals = %v", goals)
	}
}
