package collect

import (
	"context"
	"sync"
	"sync/atomic"

	"agentgrid/internal/device"
	"agentgrid/internal/snmp"
)

// TrapWatcher reacts to device traps by collecting the affected
// device's goals immediately, outside their schedule — the paper's
// "collecting data through a management protocol *or in some other
// way*" (§3.1): polling finds problems at the next interval; traps find
// them now.
type TrapWatcher struct {
	listener  *snmp.TrapListener
	collector *Collector

	traps       atomic.Uint64
	collections atomic.Uint64
	unknown     atomic.Uint64

	closeOnce sync.Once
	done      chan struct{}
}

// NewTrapWatcher starts a trap listener on addr ("host:port", port 0
// for ephemeral) feeding the collector. Point device trap destinations
// at Addr().
func NewTrapWatcher(addr string, c *Collector) (*TrapWatcher, error) {
	listener, err := snmp.NewTrapListener(addr, 64)
	if err != nil {
		return nil, err
	}
	w := &TrapWatcher{listener: listener, collector: c, done: make(chan struct{})}
	go w.loop()
	return w, nil
}

// Addr returns the trap listener's UDP address.
func (w *TrapWatcher) Addr() string { return w.listener.Addr() }

// Stats returns (traps received, collections triggered, traps for
// unknown devices).
func (w *TrapWatcher) Stats() (traps, collections, unknown uint64) {
	return w.traps.Load(), w.collections.Load(), w.unknown.Load()
}

// Close stops the watcher.
func (w *TrapWatcher) Close() error {
	var err error
	w.closeOnce.Do(func() {
		err = w.listener.Close()
		<-w.done
	})
	return err
}

func (w *TrapWatcher) loop() {
	defer close(w.done)
	for pdu := range w.listener.Traps() {
		w.traps.Add(1)
		deviceName := trapDevice(pdu)
		if deviceName == "" {
			w.unknown.Add(1)
			continue
		}
		if n := w.collectFor(deviceName); n == 0 {
			w.unknown.Add(1)
		} else {
			w.collections.Add(uint64(n))
		}
	}
}

// trapDevice extracts the device name from the trap's sysName varbind.
func trapDevice(pdu *snmp.PDU) string {
	for _, vb := range pdu.VarBinds {
		if vb.OID.Equal(device.OIDSysName) && vb.Value.Type == snmp.TypeOctetString {
			return vb.Value.Str
		}
	}
	return ""
}

// collectFor triggers every goal of the collector that targets the
// device, returning how many ran.
func (w *TrapWatcher) collectFor(deviceName string) int {
	n := 0
	for _, name := range w.collector.Goals() {
		w.collector.mu.Lock()
		g, ok := w.collector.goals[name]
		w.collector.mu.Unlock()
		if !ok || g.Device != deviceName {
			continue
		}
		if err := w.collector.CollectNow(context.Background(), name); err == nil {
			n++
		}
	}
	return n
}
