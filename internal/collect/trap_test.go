package collect

import (
	"testing"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/snmp"
)

func TestTrapTriggersImmediateCollection(t *testing.T) {
	d := device.NewHost("h1", 4)
	c, out := newExecCollector(t, d, nil)
	g := hostGoal("g", "h1")
	g.Interval = time.Hour // schedule would never fire during the test
	if err := c.AddGoal(g); err != nil {
		t.Fatal(err)
	}

	w, err := NewTrapWatcher("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Station whose traps target the watcher.
	st, err := device.StartStation(d, "127.0.0.1:0", "public",
		snmp.WithTrapDestination(w.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	d.InjectFault(device.FaultCPUPegged)
	if err := st.SendFaultTrap(device.FaultCPUPegged); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for len(out.batches(t)) == 0 {
		select {
		case <-deadline:
			traps, colls, unknown := w.Stats()
			t.Fatalf("no collection after trap (traps=%d colls=%d unknown=%d)", traps, colls, unknown)
		case <-time.After(5 * time.Millisecond):
		}
	}
	traps, colls, _ := w.Stats()
	if traps != 1 || colls != 1 {
		t.Fatalf("stats: traps=%d colls=%d", traps, colls)
	}
	// The batch carries the faulty value.
	b := out.batches(t)[0]
	var sawPegged bool
	for _, r := range b.Records {
		if r.Metric == device.MetricCPUUtil && r.Value == 100 {
			sawPegged = true
		}
	}
	if !sawPegged {
		t.Fatalf("trap-triggered batch missing fault value: %+v", b.Records)
	}
}

func TestTrapForUnknownDeviceCounted(t *testing.T) {
	d := device.NewHost("known", 1)
	c, _ := newExecCollector(t, d, nil)
	c.AddGoal(hostGoal("g", "known"))

	w, err := NewTrapWatcher("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	stranger := device.NewHost("stranger", 2)
	st, err := device.StartStation(stranger, "127.0.0.1:0", "public",
		snmp.WithTrapDestination(w.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.SendFaultTrap(device.FaultDiskFull); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		traps, colls, unknown := w.Stats()
		if traps == 1 {
			if colls != 0 || unknown != 1 {
				t.Fatalf("stats: traps=%d colls=%d unknown=%d", traps, colls, unknown)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("trap never seen")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestTrapWithoutSysNameIgnored(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, _ := newExecCollector(t, d, nil)
	c.AddGoal(hostGoal("g", "h1"))
	w, err := NewTrapWatcher("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// A raw server emitting a trap with no identity varbind.
	mib := snmp.NewMIB()
	mib.RegisterScalar(snmp.MustParseOID("1.1"), snmp.IntegerValue(1))
	srv, err := snmp.NewServer("127.0.0.1:0", "public", mib, snmp.WithTrapDestination(w.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.SendTrap([]snmp.VarBind{{OID: snmp.MustParseOID("9.9"), Value: snmp.IntegerValue(1)}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		traps, colls, unknown := w.Stats()
		if traps == 1 {
			if colls != 0 || unknown != 1 {
				t.Fatalf("stats: colls=%d unknown=%d", colls, unknown)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("trap never seen")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestTrapWatcherDoubleClose(t *testing.T) {
	d := device.NewHost("h1", 1)
	c, _ := newExecCollector(t, d, nil)
	w, err := NewTrapWatcher("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close errored")
	}
}
