package sim

import (
	"fmt"

	"agentgrid/internal/directory"
	"agentgrid/internal/loadbalance"
	"agentgrid/internal/metrics"
	"agentgrid/internal/workload"
)

// ---- (a) Centralized management ----

// Centralized is Figure 6(a): one management station issues the raw
// requests, parses, stores and runs every inference itself.
type Centralized struct {
	Params Params
}

// Name implements Architecture.
func (Centralized) Name() string { return "centralized" }

// Run implements Architecture.
func (c Centralized) Run(mix workload.Mix) *Outcome {
	p := c.Params.withDefaults()
	r := &run{params: p}
	const manager = "Manager"
	for _, req := range mix.Requests() {
		k := req.Kind
		// Raw data crosses the wire to the manager, which does all the
		// work itself.
		r.charge(manager, "Request "+k.String(), p.Model.Request(k))
		r.charge(manager, "Parse "+k.String(), p.Model.Parse(k))
		r.charge(manager, "Storing", p.Model.Storing())
		r.charge(manager, "Inference "+k.String(), p.Model.Inference(k))
	}
	for i := 0; i < mix.Rounds(); i++ {
		r.charge(manager, "Inference AxBxC", p.Model.CrossInference())
	}
	return r.outcome(c.Name(), mix)
}

// ---- (b) Multi-agent system ----

// MultiAgent is Figure 6(b): collector hosts gather and parse locally
// (shrinking the transfer to the manager), but analysis stays
// centralized on the manager.
type MultiAgent struct {
	Params Params
	// Collectors is the collector host count (paper uses 2).
	Collectors int
}

// Name implements Architecture.
func (MultiAgent) Name() string { return "multi-agent" }

// Run implements Architecture.
func (m MultiAgent) Run(mix workload.Mix) *Outcome {
	p := m.Params.withDefaults()
	n := m.Collectors
	if n < 1 {
		n = 2
	}
	r := &run{params: p}
	const manager = "Manager"
	for i, req := range mix.Requests() {
		k := req.Kind
		collector := fmt.Sprintf("Collector %d", i%n+1)
		// Collector pulls raw data from the device and parses it there.
		r.charge(collector, "Request "+k.String(), p.Model.Request(k))
		r.charge(collector, "Parse "+k.String(), p.Model.Parse(k))
		// Only the parsed extract travels to the manager.
		r.transfer(collector, manager, "Transfer parsed "+k.String(),
			p.ParsedFraction*reqNet(p, k))
		r.charge(manager, "Storing", p.Model.Storing())
		r.charge(manager, "Inference "+k.String(), p.Model.Inference(k))
	}
	for i := 0; i < mix.Rounds(); i++ {
		r.charge(manager, "Inference AxBxC", p.Model.CrossInference())
	}
	return r.outcome(m.Name(), mix)
}

// ---- (c) Agent grid ----

// AgentGrid is Figure 6(c): collectors gather and parse, a storage host
// stores, and analysis hosts run the inference tasks, placed by a
// load-balancing strategy. Coordination (dispatch messages, membership
// heartbeats) is charged as overhead.
type AgentGrid struct {
	Params Params
	// Collectors is the collection host count (paper uses 3).
	Collectors int
	// Analyzers is the inference host count (paper uses 2).
	Analyzers int
	// Scheduler places inference tasks (default: the paper's
	// capability/least-loaded placement; ablated in experiment X3).
	Scheduler loadbalance.Scheduler
	// DisableOverhead turns off dispatch/heartbeat charging (used to
	// isolate the overhead contribution in ablations).
	DisableOverhead bool
}

// Name implements Architecture.
func (AgentGrid) Name() string { return "agent-grid" }

// Run implements Architecture.
func (g AgentGrid) Run(mix workload.Mix) *Outcome {
	p := g.Params.withDefaults()
	nc := g.Collectors
	if nc < 1 {
		nc = 3
	}
	na := g.Analyzers
	if na < 1 {
		na = 2
	}
	sched := g.Scheduler
	if sched == nil {
		sched = loadbalance.NewLeastLoaded()
	}
	r := &run{params: p}
	const storage = "Storing"

	analyzerName := func(i int) string { return fmt.Sprintf("Manager %d", i+1) }

	// Synthetic directory registrations reflecting live analyzer load,
	// so the real scheduler implementations drive placement.
	candidates := func() []directory.Registration {
		out := make([]directory.Registration, na)
		for i := 0; i < na; i++ {
			name := analyzerName(i)
			units := r.ledger.Host(name).Totals()
			peak := 0.0
			for _, res := range metrics.Resources() {
				if v := units.Get(res); v > peak {
					peak = v
				}
			}
			// The synthetic load is deliberately unclamped: saturated
			// analyzers must stay comparable to each other, or every
			// overloaded candidate ties at 1.0 and placement collapses
			// onto the name tie-break.
			load := peak / p.EpochCapacity
			out[i] = directory.Registration{
				Container: name,
				Addr:      "sim://" + name,
				Profile: directory.ResourceProfile{
					CPUCapacity: p.EpochCapacity, NetCapacity: p.EpochCapacity, DiscCapacity: p.EpochCapacity,
				},
				Services: []directory.ServiceDesc{{
					Type:         directory.ServiceAnalysis,
					Capabilities: []string{"cpu", "memory", "disk", "process", "traffic"},
				}},
				Load: load,
			}
		}
		return out
	}

	place := func(taskID, category string) string {
		reg, err := sched.Pick(loadbalance.Task{ID: taskID, Category: category}, candidates())
		if err != nil {
			return analyzerName(0)
		}
		return reg.Container
	}

	for i, req := range mix.Requests() {
		k := req.Kind
		collector := fmt.Sprintf("Collector %d", i%nc+1)
		r.charge(collector, "Request "+k.String(), p.Model.Request(k))
		r.charge(collector, "Parse "+k.String(), p.Model.Parse(k))
		r.transfer(collector, storage, "Transfer parsed "+k.String(),
			p.ParsedFraction*reqNet(p, k))
		r.charge(storage, "Storing", p.Model.Storing())

		analyzer := place(fmt.Sprintf("task-%d", i), categoryOf(k))
		if !g.DisableOverhead {
			r.chargeOverhead(analyzer, "Dispatch", p.Dispatch)
		}
		// Analyzer pulls the consolidated extract from storage.
		r.transfer(storage, analyzer, "Query "+k.String(), p.QueryFraction*reqNet(p, k))
		r.charge(analyzer, "Inference "+k.String(), p.Model.Inference(k))
	}

	// Cross-kind inference needs the data of all three kinds.
	for i := 0; i < mix.Rounds(); i++ {
		analyzer := place(fmt.Sprintf("cross-%d", i), "")
		if !g.DisableOverhead {
			r.chargeOverhead(analyzer, "Dispatch", p.Dispatch)
		}
		var crossQuery float64
		for _, k := range roundKinds() {
			crossQuery += p.QueryFraction * reqNet(p, k)
		}
		r.transfer(storage, analyzer, "Query AxBxC", crossQuery)
		r.charge(analyzer, "Inference AxBxC", p.Model.CrossInference())
	}

	// Membership heartbeats: every grid host renews its directory lease
	// once per epoch.
	if !g.DisableOverhead {
		for i := 0; i < nc; i++ {
			r.chargeOverhead(fmt.Sprintf("Collector %d", i+1), "Heartbeat", p.Heartbeat)
		}
		r.chargeOverhead(storage, "Heartbeat", p.Heartbeat)
		for i := 0; i < na; i++ {
			r.chargeOverhead(analyzerName(i), "Heartbeat", p.Heartbeat)
		}
	}
	return r.outcome(g.Name(), mix)
}

// categoryOf maps a request kind to the metric category its inference
// needs (A: processor usage, B: memory, C: disk — the example metrics of
// §4.1).
func categoryOf(k metrics.RequestKind) string {
	switch k {
	case metrics.KindA:
		return "cpu"
	case metrics.KindB:
		return "memory"
	default:
		return "disk"
	}
}

// Figure6 runs the paper's exact comparison: the 10+10+10 mix through
// (a) centralized, (b) multi-agent with 2 collectors and (c) an agent
// grid with 3 collectors, 1 storage host and 2 inference hosts.
func Figure6(p Params) (a, b, c *Outcome) {
	mix := workload.PaperMix()
	a = Centralized{Params: p}.Run(mix)
	b = MultiAgent{Params: p, Collectors: 2}.Run(mix)
	c = AgentGrid{Params: p, Collectors: 3, Analyzers: 2}.Run(mix)
	return a, b, c
}
