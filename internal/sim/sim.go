// Package sim implements the deterministic cost simulator behind the
// paper's evaluation (§4.1, Table 1 and Figure 6) and the extension
// studies DESIGN.md lists. Costs are the paper's dimensionless relative
// units; a simulation charges each task's units to the host that performs
// it and reports per-host utilization, the workload makespan (the
// largest single-resource load on any host, i.e. the bottleneck) and
// coordination overhead.
package sim

import (
	"fmt"
	"math"

	"agentgrid/internal/metrics"
	"agentgrid/internal/workload"
)

// Params tunes the cost model around Table 1.
type Params struct {
	// Model is the task cost table (Table 1 by default).
	Model *metrics.CostModel
	// ParsedFraction is the size of parsed data relative to raw
	// (§4.1: collectors remove unnecessary information before
	// transmitting). Default 0.4.
	ParsedFraction float64
	// QueryFraction is analysis-query traffic relative to raw data
	// (analyzers pull consolidated data from storage). Default 0.2.
	QueryFraction float64
	// Dispatch is the per-task coordination cost the grid pays for
	// brokering (the root's scheduling messages). Default {1,1,0}.
	Dispatch metrics.Cost
	// Heartbeat is the per-grid-host per-epoch membership overhead
	// (directory registration renewal). Default {1,2,0}.
	Heartbeat metrics.Cost
	// EpochCapacity is the relative units one commodity host can absorb
	// per management epoch; feeds scheduler load fractions and the
	// feasibility deadline in the crossover study. Default 500.
	EpochCapacity float64
}

// DefaultParams returns the calibrated defaults documented above.
func DefaultParams() Params {
	return Params{
		Model:          metrics.NewCostModel(),
		ParsedFraction: 0.4,
		QueryFraction:  0.2,
		Dispatch:       metrics.Cost{1, 1, 0},
		Heartbeat:      metrics.Cost{1, 2, 0},
		EpochCapacity:  500,
	}
}

func (p Params) withDefaults() Params {
	if p.Model == nil {
		p.Model = metrics.NewCostModel()
	}
	if p.ParsedFraction == 0 {
		p.ParsedFraction = 0.4
	}
	if p.QueryFraction == 0 {
		p.QueryFraction = 0.2
	}
	if p.EpochCapacity == 0 {
		p.EpochCapacity = 500
	}
	if p.Dispatch == (metrics.Cost{}) {
		p.Dispatch = metrics.Cost{1, 1, 0}
	}
	if p.Heartbeat == (metrics.Cost{}) {
		p.Heartbeat = metrics.Cost{1, 2, 0}
	}
	return p
}

// Outcome is one architecture's simulation result.
type Outcome struct {
	// Arch names the architecture.
	Arch string
	// Mix is the workload that ran.
	Mix workload.Mix
	// Hosts is per-host resource utilization (the bars of Figure 6).
	Hosts []metrics.HostUsage
	// Makespan is the bottleneck: the largest single-resource unit
	// count on any host. With unit capacity per relative time this is
	// the epoch length the architecture needs.
	Makespan float64
	// Total is the sum of all units consumed across hosts.
	Total metrics.Cost
	// Overhead is the coordination-only share of Total (dispatch +
	// heartbeats), zero for non-grid architectures.
	Overhead metrics.Cost
}

// HostCount returns the number of hosts the architecture used.
func (o *Outcome) HostCount() int { return len(o.Hosts) }

// MaxPerResource returns the largest per-host total for each resource.
func (o *Outcome) MaxPerResource() metrics.Cost {
	var mx metrics.Cost
	for _, hu := range o.Hosts {
		for i, v := range hu.Units {
			if v > mx[i] {
				mx[i] = v
			}
		}
	}
	return mx
}

// run-time accounting shared by the architectures.
type run struct {
	params   Params
	ledger   metrics.Ledger
	overhead metrics.Cost
}

func (r *run) charge(host, task string, c metrics.Cost) {
	r.ledger.Host(host).Charge(task, c)
}

func (r *run) chargeOverhead(host, task string, c metrics.Cost) {
	r.charge(host, task, c)
	r.overhead = r.overhead.Add(c)
}

func (r *run) outcome(arch string, mix workload.Mix) *Outcome {
	hosts := r.ledger.Snapshot()
	out := &Outcome{Arch: arch, Mix: mix, Hosts: hosts, Overhead: r.overhead}
	for _, hu := range hosts {
		out.Total = out.Total.Add(hu.Units)
		for _, res := range metrics.Resources() {
			if v := hu.Units.Get(res); v > out.Makespan {
				out.Makespan = v
			}
		}
	}
	return out
}

// transfer charges a network-only move of `units` to both endpoints, as
// each host's NIC carries the traffic.
func (r *run) transfer(from, to, task string, units float64) {
	c := metrics.Cost{metrics.Network: units}
	r.charge(from, task, c)
	r.charge(to, task, c)
}

// Architecture is one of the three management models compared in §4.
type Architecture interface {
	// Name labels the architecture in reports.
	Name() string
	// Run simulates the mix and returns the outcome.
	Run(mix workload.Mix) *Outcome
}

// Sanity guard for cost lookups shared by architectures.
func reqNet(p Params, k metrics.RequestKind) float64 {
	return p.Model.Request(k).Get(metrics.Network)
}

// roundKinds enumerates the request kinds of one complete round.
func roundKinds() []metrics.RequestKind { return metrics.Kinds() }

// FormatOutcome renders an outcome in the layout of a Figure 6 panel.
func FormatOutcome(o *Outcome) string {
	s := fmt.Sprintf("%s (%s)\n", o.Arch, o.Mix)
	s += metrics.RenderUsage(o.Hosts)
	s += fmt.Sprintf("makespan (bottleneck units): %.0f\n", o.Makespan)
	s += fmt.Sprintf("total units: CPU %.0f, Network %.0f, Disc %.0f (overhead %.0f)\n",
		o.Total.Get(metrics.CPU), o.Total.Get(metrics.Network), o.Total.Get(metrics.Disc),
		o.Overhead.Total())
	return s
}

// almostEqual guards float comparisons in invariants and tests.
func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }
