package sim

import (
	"testing"

	"agentgrid/internal/loadbalance"
	"agentgrid/internal/metrics"
	"agentgrid/internal/workload"
)

// TestAgentGridAccountingHandVerified pins the grid architecture's
// charges to hand-computed values with a deterministic round-robin
// placement and overhead disabled.
//
// PaperMix interleaves A,B,C so collector i%3 sees exactly one kind:
// Collector 1 all A, Collector 2 all B, Collector 3 all C (10 each).
func TestAgentGridAccountingHandVerified(t *testing.T) {
	o := AgentGrid{
		Collectors:      3,
		Analyzers:       2,
		Scheduler:       loadbalance.NewRoundRobin(),
		DisableOverhead: true,
	}.Run(workload.PaperMix())

	get := func(name string) metrics.Cost {
		hu, ok := host(o, name)
		if !ok {
			t.Fatalf("missing host %s in %+v", name, o.Hosts)
		}
		return hu.Units
	}

	// Collector k: 10 × (Request CPU 10 + Parse CPU 15) = 250 CPU.
	// Net = 10 × (raw request net + 0.4 × parsed send).
	if got := get("Collector 1"); got != (metrics.Cost{250, 10 * (5 + 2), 0}) {
		t.Fatalf("Collector 1 = %v", got)
	}
	if got := get("Collector 2"); got != (metrics.Cost{250, 10 * (10 + 4), 0}) {
		t.Fatalf("Collector 2 = %v", got)
	}
	if got := get("Collector 3"); got != (metrics.Cost{250, 10 * (15 + 6), 0}) {
		t.Fatalf("Collector 3 = %v", got)
	}

	// Storage: 30 stores (CPU 5, Disc 10); Net = parsed in (0.4×300)
	// + per-request queries out (0.2×300) + cross queries (10×0.2×30).
	if got := get("Storing"); got != (metrics.Cost{150, 120 + 60 + 60, 300}) {
		t.Fatalf("Storing = %v", got)
	}

	// Analyzers: 40 tasks round-robin -> 20 each: 15 single-kind
	// inferences (CPU 20, Disc 5) + 5 cross (CPU 40, Disc 8).
	wantAnalyzerCPU := 15*20.0 + 5*40.0
	wantAnalyzerDisc := 15*5.0 + 5*8.0
	for _, name := range []string{"Manager 1", "Manager 2"} {
		got := get(name)
		if got.Get(metrics.CPU) != wantAnalyzerCPU || got.Get(metrics.Disc) != wantAnalyzerDisc {
			t.Fatalf("%s = %v, want CPU %v Disc %v", name, got, wantAnalyzerCPU, wantAnalyzerDisc)
		}
	}

	// Conservation: total CPU equals the centralized model's 1900 (work
	// neither appears nor disappears when distributed); total disc 530.
	if o.Total.Get(metrics.CPU) != 1900 {
		t.Fatalf("total CPU = %v", o.Total.Get(metrics.CPU))
	}
	if o.Total.Get(metrics.Disc) != 530 {
		t.Fatalf("total Disc = %v", o.Total.Get(metrics.Disc))
	}
	// Network: raw 300 + parsed transfers 2×120 + queries 2×120.
	if o.Total.Get(metrics.Network) != 300+240+240 {
		t.Fatalf("total Net = %v", o.Total.Get(metrics.Network))
	}
	// Makespan: the analyzers' CPU (500) is the bottleneck.
	if o.Makespan != wantAnalyzerCPU {
		t.Fatalf("makespan = %v", o.Makespan)
	}
}

// TestMultiAgentConservation checks CPU/Disc conservation for (b) too.
func TestMultiAgentConservation(t *testing.T) {
	a := Centralized{}.Run(workload.PaperMix())
	b := MultiAgent{Collectors: 2}.Run(workload.PaperMix())
	for _, res := range []metrics.Resource{metrics.CPU, metrics.Disc} {
		if a.Total.Get(res) != b.Total.Get(res) {
			t.Fatalf("%s not conserved: %v vs %v", res, a.Total.Get(res), b.Total.Get(res))
		}
	}
}
