package sim

import (
	"strings"
	"testing"

	"agentgrid/internal/loadbalance"
	"agentgrid/internal/metrics"
	"agentgrid/internal/workload"
)

func host(o *Outcome, name string) (metrics.HostUsage, bool) {
	for _, hu := range o.Hosts {
		if hu.Host == name {
			return hu, true
		}
	}
	return metrics.HostUsage{}, false
}

func TestCentralizedAccounting(t *testing.T) {
	// Hand-checked totals for one round (1 request of each type):
	// CPU: requests 3*10 + parse 3*15 + storing 3*5 + inf 3*20 + cross 40 = 190
	// Net: 5+10+15 = 30
	// Disc: storing 3*10 + inf 3*5 + cross 8 = 53
	o := Centralized{}.Run(workload.Mix{A: 1, B: 1, C: 1})
	m, ok := host(o, "Manager")
	if !ok {
		t.Fatal("no Manager host")
	}
	want := metrics.Cost{190, 30, 53}
	if m.Units != want {
		t.Fatalf("manager units = %v, want %v", m.Units, want)
	}
	if o.HostCount() != 1 {
		t.Fatalf("hosts = %d", o.HostCount())
	}
	if o.Makespan != 190 {
		t.Fatalf("makespan = %v", o.Makespan)
	}
	if o.Overhead.Total() != 0 {
		t.Fatalf("centralized overhead = %v", o.Overhead)
	}
}

func TestCentralizedScalesLinearly(t *testing.T) {
	o1 := Centralized{}.Run(workload.Mix{A: 1, B: 1, C: 1})
	o10 := Centralized{}.Run(workload.PaperMix())
	if o10.Makespan != 10*o1.Makespan {
		t.Fatalf("makespan 1->10: %v -> %v", o1.Makespan, o10.Makespan)
	}
}

func TestMultiAgentAccounting(t *testing.T) {
	o := MultiAgent{Collectors: 2}.Run(workload.PaperMix())
	if o.HostCount() != 3 {
		t.Fatalf("hosts = %v", o.Hosts)
	}
	m, _ := host(o, "Manager")
	c1, _ := host(o, "Collector 1")
	c2, _ := host(o, "Collector 2")
	// Collectors absorb request+parse CPU; manager keeps storing+inference.
	// Manager CPU per round: 3*5 + 3*20 + 40 = 115; over 10 rounds: 1150.
	if got := m.Units.Get(metrics.CPU); got != 1150 {
		t.Fatalf("manager CPU = %v", got)
	}
	// Collector CPU: 15 requests each: 15*(10+15) = 375.
	if c1.Units.Get(metrics.CPU) != 375 || c2.Units.Get(metrics.CPU) != 375 {
		t.Fatalf("collector CPU = %v / %v", c1.Units.Get(metrics.CPU), c2.Units.Get(metrics.CPU))
	}
	// Manager network: only parsed transfers: 0.4 * (10*(5+10+15)) = 120.
	if got := m.Units.Get(metrics.Network); got != 120 {
		t.Fatalf("manager network = %v", got)
	}
}

func TestFigure6QualitativeShape(t *testing.T) {
	a, b, c := Figure6(DefaultParams())

	// (a): the single manager dominates; its network load is the
	// highest network reading of all three models (raw data on the wire).
	aMgr, _ := host(a, "Manager")
	bMgr, _ := host(b, "Manager")
	if aMgr.Units.Get(metrics.Network) <= bMgr.Units.Get(metrics.Network) {
		t.Fatal("centralized manager network should exceed multi-agent manager network")
	}
	maxNet := func(o *Outcome) float64 { return o.MaxPerResource().Get(metrics.Network) }
	if maxNet(a) <= maxNet(b) || maxNet(a) <= maxNet(c) {
		t.Fatalf("centralized should have the highest per-host network: %v %v %v",
			maxNet(a), maxNet(b), maxNet(c))
	}

	// (b): manager CPU is still the bottleneck, but lower than (a).
	if bMgr.Units.Get(metrics.CPU) >= aMgr.Units.Get(metrics.CPU) {
		t.Fatal("multi-agent manager CPU should drop vs centralized")
	}
	if b.Makespan >= a.Makespan {
		t.Fatal("multi-agent should beat centralized on makespan")
	}
	// The multi-agent bottleneck is the manager's CPU.
	if b.Makespan != bMgr.Units.Get(metrics.CPU) {
		t.Fatalf("multi-agent bottleneck should be manager CPU: %v vs %v",
			b.Makespan, bMgr.Units.Get(metrics.CPU))
	}

	// (c): six hosts, far lower per-host peak: "extensive work load
	// balancing thus improving resource utilization and allowing higher
	// scalability".
	if c.HostCount() != 6 {
		t.Fatalf("grid hosts = %v", c.Hosts)
	}
	if c.Makespan >= b.Makespan || c.Makespan >= a.Makespan {
		t.Fatalf("grid makespan %v should be lowest (%v, %v)", c.Makespan, a.Makespan, b.Makespan)
	}
	// Both analyzers got work (the balancer spread inference).
	m1, ok1 := host(c, "Manager 1")
	m2, ok2 := host(c, "Manager 2")
	if !ok1 || !ok2 {
		t.Fatalf("analyzers missing: %v", c.Hosts)
	}
	if m1.Units.Get(metrics.CPU) == 0 || m2.Units.Get(metrics.CPU) == 0 {
		t.Fatal("an analyzer did no work")
	}
	// Grid pays coordination overhead the others do not.
	if c.Overhead.Total() == 0 {
		t.Fatal("grid overhead missing")
	}
	// Total useful work is conserved across architectures up to
	// transfer/overhead deltas: CPU totals must be identical for (a)
	// and (b) collectors+manager, and grid CPU = that + dispatch CPU.
	if a.Total.Get(metrics.CPU) != b.Total.Get(metrics.CPU) {
		t.Fatalf("CPU total changed between (a) %v and (b) %v",
			a.Total.Get(metrics.CPU), b.Total.Get(metrics.CPU))
	}
}

func TestFigure6Deterministic(t *testing.T) {
	a1, b1, c1 := Figure6(DefaultParams())
	a2, b2, c2 := Figure6(DefaultParams())
	if FormatOutcome(a1) != FormatOutcome(a2) ||
		FormatOutcome(b1) != FormatOutcome(b2) ||
		FormatOutcome(c1) != FormatOutcome(c2) {
		t.Fatal("simulation not deterministic")
	}
}

func TestAgentGridOverheadToggle(t *testing.T) {
	mix := workload.PaperMix()
	with := AgentGrid{Collectors: 3, Analyzers: 2}.Run(mix)
	without := AgentGrid{Collectors: 3, Analyzers: 2, DisableOverhead: true}.Run(mix)
	if without.Overhead.Total() != 0 {
		t.Fatalf("overhead not disabled: %v", without.Overhead)
	}
	if with.Total.Total() <= without.Total.Total() {
		t.Fatal("overhead did not increase totals")
	}
}

func TestFormatOutcome(t *testing.T) {
	o := Centralized{}.Run(workload.Mix{A: 1, B: 1, C: 1})
	s := FormatOutcome(o)
	for _, want := range []string{"centralized", "Manager", "makespan", "total units"} {
		if !strings.Contains(s, want) {
			t.Fatalf("FormatOutcome missing %q:\n%s", want, s)
		}
	}
}

func TestCrossoverShape(t *testing.T) {
	volumes := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	res := Crossover(DefaultParams(), volumes)
	if len(res.Points) != len(volumes) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Makespans are monotone in volume, and the grid's is always the
	// smallest.
	for i, pt := range res.Points {
		if pt.AgentGrid >= pt.Centralized || pt.AgentGrid >= pt.MultiAgent {
			t.Fatalf("grid not fastest at volume %d: %+v", pt.Volume, pt)
		}
		if i > 0 && pt.Centralized <= res.Points[i-1].Centralized {
			t.Fatal("centralized makespan not increasing")
		}
	}
	// The paper's claim: the centralized model stops fitting the epoch
	// first; the grid survives to larger volumes.
	if res.CentralizedLimit == 0 || res.GridLimit <= res.CentralizedLimit {
		t.Fatalf("limits: centralized %d, multi-agent %d, grid %d",
			res.CentralizedLimit, res.MultiAgentLimit, res.GridLimit)
	}
	if res.MultiAgentLimit < res.CentralizedLimit {
		t.Fatal("multi-agent should outlast centralized")
	}
	if res.Advantage < 0 {
		t.Fatalf("no advantage point found: %s", res.Format())
	}
	out := res.Format()
	if !strings.Contains(out, "epoch deadline") {
		t.Fatalf("Format missing deadline:\n%s", out)
	}
}

func TestScalingShape(t *testing.T) {
	counts := []int{1, 2, 4, 8, 16}
	pts := Scaling(DefaultParams(), workload.PaperMix().Scaled(8), counts)
	if len(pts) != len(counts) {
		t.Fatalf("points = %d", len(pts))
	}
	// Analyzer peak falls (weakly) as hosts are added; speedup grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].AnalyzerPeak > pts[i-1].AnalyzerPeak {
			t.Fatalf("analyzer peak rose: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].Speedup < 4 {
		t.Fatalf("16 analyzers speedup = %v, want >= 4", pts[len(pts)-1].Speedup)
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("base speedup = %v", pts[0].Speedup)
	}
	if !strings.Contains(FormatScaling(pts), "analyzers") {
		t.Fatal("FormatScaling broken")
	}
}

func TestBalancerAblation(t *testing.T) {
	pts := BalancerAblation(DefaultParams(), workload.PaperMix().Scaled(4), 4, 42)
	if len(pts) != len(loadbalance.Strategies()) {
		t.Fatalf("points = %d", len(pts))
	}
	byName := map[string]BalancerPoint{}
	for _, pt := range pts {
		byName[pt.Strategy] = pt
		if pt.Imbalance < 1 {
			t.Fatalf("%s imbalance %v < 1", pt.Strategy, pt.Imbalance)
		}
	}
	// Load-aware strategies must not be worse than random placement.
	if byName["least-loaded"].Imbalance > byName["random"].Imbalance {
		t.Fatalf("least-loaded (%v) worse than random (%v)",
			byName["least-loaded"].Imbalance, byName["random"].Imbalance)
	}
	if byName["capability"].Imbalance > byName["random"].Imbalance+0.2 {
		t.Fatalf("capability far worse than random: %+v", pts)
	}
	if !strings.Contains(FormatBalancers(pts), "strategy") {
		t.Fatal("FormatBalancers broken")
	}
}

func TestMobilityStudy(t *testing.T) {
	pts := MobilityStudy(DefaultParams(), 30, []int{1, 2, 4, 8, 16})
	// Ship-data cost grows with rounds; migration is flat.
	for i := 1; i < len(pts); i++ {
		if pts[i].ShipData <= pts[i-1].ShipData {
			t.Fatal("ship-data cost not growing")
		}
		if pts[i].MigrateAgent != pts[0].MigrateAgent {
			t.Fatal("migration cost should be one-time")
		}
	}
	be := MobilityBreakEven(pts)
	if be <= 1 {
		t.Fatalf("break-even = %d, want > 1 (migration has upfront cost)", be)
	}
	if !strings.Contains(FormatMobility(pts), "migration pays") {
		t.Fatal("FormatMobility missing break-even line")
	}
	// A huge agent never pays off within the horizon.
	never := MobilityStudy(DefaultParams(), 1e9, []int{1, 2, 4})
	if MobilityBreakEven(never) != -1 {
		t.Fatal("impossible break-even reported")
	}
}

func TestClusteringStudy(t *testing.T) {
	pts := ClusteringStudy(100, 4, 8, 7)
	byName := map[string]ClusteringPoint{}
	for _, pt := range pts {
		byName[pt.Strategy] = pt
	}
	da := byName["device-affinity"]
	rs := byName["random-shard"]
	if da.Recall != 1.0 {
		t.Fatalf("device-affinity recall = %v", da.Recall)
	}
	if rs.Recall >= 0.5 {
		t.Fatalf("random-shard recall = %v, should lose most correlations", rs.Recall)
	}
	if da.Clusters != 100 {
		t.Fatalf("device-affinity clusters = %d", da.Clusters)
	}
	if !strings.Contains(FormatClustering(pts), "recall") {
		t.Fatal("FormatClustering broken")
	}
}

func TestCustomSchedulerInjection(t *testing.T) {
	// Round-robin placement is deterministic and alternates analyzers.
	o := AgentGrid{Collectors: 3, Analyzers: 2, Scheduler: loadbalance.NewRoundRobin()}.Run(workload.PaperMix())
	m1, _ := host(o, "Manager 1")
	m2, _ := host(o, "Manager 2")
	d1 := m1.Units.Get(metrics.CPU)
	d2 := m2.Units.Get(metrics.CPU)
	if d1 == 0 || d2 == 0 {
		t.Fatalf("round-robin starved an analyzer: %v / %v", d1, d2)
	}
}
