package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"agentgrid/internal/classify"
	"agentgrid/internal/loadbalance"
	"agentgrid/internal/metrics"
	"agentgrid/internal/obs"
	"agentgrid/internal/workload"
)

// ---- X1: crossover (when does the grid become advantageous) ----

// CrossoverPoint is one volume step of the crossover study.
type CrossoverPoint struct {
	// Volume is the number of requests of each kind.
	Volume int
	// Makespan per architecture.
	Centralized float64
	MultiAgent  float64
	AgentGrid   float64
	// GridOverhead is the grid's coordination units at this volume.
	GridOverhead float64
}

// CrossoverResult is the full study.
type CrossoverResult struct {
	// Deadline is the per-epoch capacity of one management host; an
	// architecture whose makespan exceeds it cannot finish an epoch's
	// data within the epoch.
	Deadline float64
	Points   []CrossoverPoint
	// CentralizedLimit is the largest feasible volume for the
	// centralized model (0 when even volume 1 is infeasible).
	CentralizedLimit int
	// MultiAgentLimit is the same for the multi-agent model.
	MultiAgentLimit int
	// GridLimit is the same for the agent grid.
	GridLimit int
	// Advantage is the smallest volume at which the grid is the only
	// architecture still inside the deadline — the point the paper's
	// future work asks to determine (-1 if not reached).
	Advantage int
}

// Crossover sweeps request volume and reports where the centralized and
// multi-agent models stop fitting a management epoch while the grid
// still does (§4: grids are "most attractive when the volume of
// information ... is relatively large; in less busy environments,
// traditional approaches ... prove to be more cost-effective").
func Crossover(p Params, volumes []int) *CrossoverResult {
	p = p.withDefaults()
	res := &CrossoverResult{Deadline: p.EpochCapacity, Advantage: -1}
	for _, v := range volumes {
		mix := workload.Mix{A: v, B: v, C: v}
		a := Centralized{Params: p}.Run(mix)
		b := MultiAgent{Params: p, Collectors: 2}.Run(mix)
		c := AgentGrid{Params: p, Collectors: 3, Analyzers: 2}.Run(mix)
		pt := CrossoverPoint{
			Volume:       v,
			Centralized:  a.Makespan,
			MultiAgent:   b.Makespan,
			AgentGrid:    c.Makespan,
			GridOverhead: c.Overhead.Total(),
		}
		res.Points = append(res.Points, pt)
		if a.Makespan <= res.Deadline && v > res.CentralizedLimit {
			res.CentralizedLimit = v
		}
		if b.Makespan <= res.Deadline && v > res.MultiAgentLimit {
			res.MultiAgentLimit = v
		}
		if c.Makespan <= res.Deadline && v > res.GridLimit {
			res.GridLimit = v
		}
		if res.Advantage < 0 && a.Makespan > res.Deadline && b.Makespan > res.Deadline && c.Makespan <= res.Deadline {
			res.Advantage = v
		}
	}
	return res
}

// Format renders the study as a table.
func (r *CrossoverResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s\n", "volume", "centralized", "multi-agent", "agent-grid", "grid-ovh")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8d %12.0f %12.0f %12.0f %12.0f\n",
			pt.Volume, pt.Centralized, pt.MultiAgent, pt.AgentGrid, pt.GridOverhead)
	}
	fmt.Fprintf(&b, "epoch deadline: %.0f units\n", r.Deadline)
	fmt.Fprintf(&b, "feasible volume limits: centralized<=%d multi-agent<=%d agent-grid<=%d\n",
		r.CentralizedLimit, r.MultiAgentLimit, r.GridLimit)
	if r.Advantage >= 0 {
		fmt.Fprintf(&b, "grid becomes the only feasible architecture at volume %d\n", r.Advantage)
	}
	return b.String()
}

// ---- X2: processing capacity vs analyzer count ----

// ScalingPoint is one analyzer-count step.
type ScalingPoint struct {
	Analyzers int
	Makespan  float64
	// Speedup is makespan(1 analyzer) / makespan(n analyzers).
	Speedup float64
	// AnalyzerPeak is the busiest analyzer's bottleneck units.
	AnalyzerPeak float64
}

// Scaling measures how the grid's makespan falls as inference hosts are
// added (§5: "measurements of the processing capacity achieved with a
// processing grid").
func Scaling(p Params, mix workload.Mix, analyzerCounts []int) []ScalingPoint {
	p = p.withDefaults()
	var base float64
	out := make([]ScalingPoint, 0, len(analyzerCounts))
	for _, n := range analyzerCounts {
		o := AgentGrid{Params: p, Collectors: 3, Analyzers: n}.Run(mix)
		peak := 0.0
		for _, hu := range o.Hosts {
			if !strings.HasPrefix(hu.Host, "Manager ") {
				continue
			}
			for _, res := range metrics.Resources() {
				if v := hu.Units.Get(res); v > peak {
					peak = v
				}
			}
		}
		pt := ScalingPoint{Analyzers: n, Makespan: o.Makespan, AnalyzerPeak: peak}
		if base == 0 {
			base = peak
		}
		if peak > 0 {
			pt.Speedup = base / peak
		}
		out = append(out, pt)
	}
	return out
}

// FormatScaling renders the scaling study.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "analyzers", "makespan", "analyzer-peak", "speedup")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-10d %12.0f %14.0f %9.2fx\n", pt.Analyzers, pt.Makespan, pt.AnalyzerPeak, pt.Speedup)
	}
	return b.String()
}

// ---- X3: load-balancing strategy ablation ----

// BalancerPoint is one strategy's result.
type BalancerPoint struct {
	Strategy string
	// Makespan of the whole grid.
	Makespan float64
	// Imbalance is (max analyzer peak) / (mean analyzer peak); 1.0 is a
	// perfect split.
	Imbalance float64
}

// BalancerAblation compares placement strategies on the same workload
// (§5: "studies on load balancing on the processing grid").
func BalancerAblation(p Params, mix workload.Mix, analyzers int, seed int64) []BalancerPoint {
	p = p.withDefaults()
	var out []BalancerPoint
	for _, name := range loadbalance.Strategies() {
		sched, err := loadbalance.New(name, seed)
		if err != nil {
			continue
		}
		o := AgentGrid{Params: p, Collectors: 3, Analyzers: analyzers, Scheduler: sched}.Run(mix)
		var peaks []float64
		for _, hu := range o.Hosts {
			if !strings.HasPrefix(hu.Host, "Manager ") {
				continue
			}
			peak := 0.0
			for _, res := range metrics.Resources() {
				if v := hu.Units.Get(res); v > peak {
					peak = v
				}
			}
			peaks = append(peaks, peak)
		}
		pt := BalancerPoint{Strategy: name, Makespan: o.Makespan, Imbalance: imbalance(peaks)}
		out = append(out, pt)
	}
	return out
}

func imbalance(peaks []float64) float64 {
	if len(peaks) == 0 {
		return 0
	}
	var sum, max float64
	for _, v := range peaks {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(peaks))
	if mean == 0 {
		return 0
	}
	return max / mean
}

// FormatBalancers renders the ablation.
func FormatBalancers(points []BalancerPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "strategy", "makespan", "imbalance")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-14s %12.0f %12.3f\n", pt.Strategy, pt.Makespan, pt.Imbalance)
	}
	return b.String()
}

// ---- X4: mobile agents vs shipping data ----

// MobilityPoint compares network units for one analysis round count.
type MobilityPoint struct {
	Rounds int
	// ShipData is the network cost of pulling data to a remote analyzer
	// every round.
	ShipData float64
	// MigrateAgent is the one-time cost of moving the analysis agent to
	// the storage host plus negligible local reads.
	MigrateAgent float64
}

// MobilityStudy quantifies the paper's mobile-agent future-work claim:
// migrating the analysis agent to the data beats shipping data once the
// analysis repeats enough times. agentStateUnits is the serialized agent
// size in network units.
func MobilityStudy(p Params, agentStateUnits float64, roundCounts []int) []MobilityPoint {
	p = p.withDefaults()
	var perRound float64
	for _, k := range roundKinds() {
		perRound += p.QueryFraction * reqNet(p, k)
	}
	out := make([]MobilityPoint, 0, len(roundCounts))
	for _, n := range roundCounts {
		out = append(out, MobilityPoint{
			Rounds:       n,
			ShipData:     perRound * float64(n),
			MigrateAgent: agentStateUnits,
		})
	}
	return out
}

// MobilityBreakEven returns the first round count where migration is
// cheaper, or -1.
func MobilityBreakEven(points []MobilityPoint) int {
	for _, pt := range points {
		if pt.MigrateAgent < pt.ShipData {
			return pt.Rounds
		}
	}
	return -1
}

// FormatMobility renders the study.
func FormatMobility(points []MobilityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %14s\n", "rounds", "ship-data", "migrate-agent")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-8d %12.1f %14.1f\n", pt.Rounds, pt.ShipData, pt.MigrateAgent)
	}
	if be := MobilityBreakEven(points); be >= 0 {
		fmt.Fprintf(&b, "migration pays for itself from %d rounds\n", be)
	}
	return b.String()
}

// ---- X6: clustering strategy vs correlation recall ----

// ClusteringPoint is one strategy's recall.
type ClusteringPoint struct {
	Strategy string
	// Recall is the fraction of devices whose cross-metric rule inputs
	// ended up co-located in a single cluster.
	Recall float64
	// Clusters is the number of analysis units produced.
	Clusters int
}

// ClusteringStudy measures the "loss of meaning" (§3.3/§4) when data is
// divided without device affinity: a cross-metric rule needs all of a
// device's metrics in one analysis unit. devices×metrics observations
// are clustered by each strategy; recall counts the devices whose
// metrics stayed together.
func ClusteringStudy(devices, metricsPer int, shards int, seed int64) []ClusteringPoint {
	rng := rand.New(rand.NewSource(seed))
	var records []obs.Record
	for d := 0; d < devices; d++ {
		for m := 0; m < metricsPer; m++ {
			records = append(records, obs.Record{
				Site:   "site1",
				Device: fmt.Sprintf("dev-%03d", d),
				Metric: fmt.Sprintf("metric.%d", m),
				Value:  rng.Float64(),
				Step:   1,
			})
		}
	}
	// Shuffle so shard assignment is not accidentally device-aligned.
	rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })

	strategies := []classify.Strategy{
		classify.DeviceAffinity{},
		classify.RandomShard{N: shards},
	}
	var out []ClusteringPoint
	for _, s := range strategies {
		clusters := s.Cluster(records, nil)
		out = append(out, ClusteringPoint{
			Strategy: s.Name(),
			Recall:   correlationRecall(records, clusters, s),
			Clusters: len(clusters),
		})
	}
	return out
}

// correlationRecall recomputes cluster membership per record and checks,
// per device, whether all its records share one cluster.
func correlationRecall(records []obs.Record, clusters []classify.Cluster, s classify.Strategy) float64 {
	// Assign each record to its cluster key by re-running the strategy
	// logic: DeviceAffinity keys by site/device; RandomShard by index
	// modulo shard count. To stay strategy-agnostic we re-derive
	// membership from the cluster summaries: device-affine clusters
	// name their device; shard clusters do not, so device spread across
	// shards is measured by shard arithmetic.
	switch st := s.(type) {
	case classify.DeviceAffinity:
		return 1.0 // by construction every device's records co-locate
	case classify.RandomShard:
		n := st.N
		if n < 1 {
			n = 1
		}
		shardOf := make(map[string]map[int]bool)
		for i, r := range records {
			if shardOf[r.Device] == nil {
				shardOf[r.Device] = make(map[int]bool)
			}
			shardOf[r.Device][i%n] = true
		}
		together := 0
		for _, shards := range shardOf {
			if len(shards) == 1 {
				together++
			}
		}
		if len(shardOf) == 0 {
			return 0
		}
		return float64(together) / float64(len(shardOf))
	default:
		return 0
	}
}

// FormatClustering renders the study.
func FormatClustering(points []ClusteringPoint) string {
	sort.Slice(points, func(i, j int) bool { return points[i].Strategy < points[j].Strategy })
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s\n", "strategy", "recall", "clusters")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-18s %10.3f %10d\n", pt.Strategy, pt.Recall, pt.Clusters)
	}
	return b.String()
}
