package trace

import (
	"sync"
	"sync/atomic"
)

// Collector is the lock-striped, bounded buffer ended spans land in.
// Each shard is a fixed ring: under pressure the oldest span in the
// shard is overwritten and a drop counted, so a hot pipeline degrades
// to losing history, never to blocking or growing without bound.
// Spans shard by trace ID, keeping one trace's spans in one stripe and
// letting unrelated traces proceed without contending.
type Collector struct {
	shards  []cshard
	mask    uint64
	dropped atomic.Uint64
}

type cshard struct {
	mu    sync.Mutex
	buf   []Span // guarded by mu; fixed-size ring
	start int    // guarded by mu
	n     int    // guarded by mu
	// pad keeps adjacent shards off one cache line so striping
	// actually buys parallelism.
	_ [64]byte
}

// newCollector builds a collector with shards rounded up to a power of
// two (the shard index is a mask of the trace ID's low bits).
func newCollector(shards, capacity int) *Collector {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Collector{shards: make([]cshard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].buf = make([]Span, capacity)
	}
	return c
}

// Add appends one ended span, overwriting the shard's oldest span (and
// counting a drop) when the ring is full.
func (c *Collector) Add(sp Span) {
	sh := &c.shards[sp.TraceID&c.mask]
	sh.mu.Lock()
	if sh.n == len(sh.buf) {
		sh.buf[sh.start] = sp
		sh.start = (sh.start + 1) % len(sh.buf)
		sh.mu.Unlock()
		c.dropped.Add(1)
		return
	}
	sh.buf[(sh.start+sh.n)%len(sh.buf)] = sp
	sh.n++
	sh.mu.Unlock()
}

// Drain removes and returns every buffered span. Order is per-shard
// arrival order; the store re-sorts by start time on query.
func (c *Collector) Drain() []Span {
	var out []Span
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			out = append(out, sh.buf[(sh.start+j)%len(sh.buf)])
		}
		sh.start, sh.n = 0, 0
		sh.mu.Unlock()
	}
	return out
}

// Len returns how many spans are buffered across all shards.
func (c *Collector) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.n
		sh.mu.Unlock()
	}
	return total
}

// Dropped returns the cumulative count of spans lost to ring overflow.
func (c *Collector) Dropped() uint64 { return c.dropped.Load() }
