package trace

import (
	"sort"
	"sync"
)

// Store is the queryable in-memory span store the collector flushes
// into. It indexes spans by trace ID and by ACL conversation ID and
// bounds retention by trace count, evicting the oldest-admitted trace
// first.
type Store struct {
	max int

	mu     sync.Mutex
	traces map[uint64][]Span   // guarded by mu
	order  []uint64            // guarded by mu; admission order for eviction
	byConv map[string][]uint64 // guarded by mu; conversation -> trace IDs
}

func newStore(maxTraces int) *Store {
	return &Store{
		max:    maxTraces,
		traces: make(map[uint64][]Span),
		byConv: make(map[string][]uint64),
	}
}

// Add ingests drained spans, admitting new traces and evicting the
// oldest beyond the store's bound.
func (s *Store) Add(spans []Span) {
	if len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range spans {
		if _, ok := s.traces[sp.TraceID]; !ok {
			s.order = append(s.order, sp.TraceID)
		}
		s.traces[sp.TraceID] = append(s.traces[sp.TraceID], sp)
		if sp.Conversation != "" && !containsID(s.byConv[sp.Conversation], sp.TraceID) {
			s.byConv[sp.Conversation] = append(s.byConv[sp.Conversation], sp.TraceID)
		}
	}
	for len(s.order) > s.max {
		s.evictOldestLocked()
	}
}

func (s *Store) evictOldestLocked() {
	id := s.order[0]
	s.order = s.order[1:]
	for _, sp := range s.traces[id] {
		if sp.Conversation == "" {
			continue
		}
		ids := s.byConv[sp.Conversation]
		for i, v := range ids {
			if v == id {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(s.byConv, sp.Conversation)
		} else {
			s.byConv[sp.Conversation] = ids
		}
	}
	delete(s.traces, id)
}

// Spans returns the stored spans of the given hex trace ID, sorted by
// start time (ties by span ID, which is mint order).
func (s *Store) Spans(traceID string) []Span {
	id := parseID(traceID)
	s.mu.Lock()
	spans := append([]Span(nil), s.traces[id]...)
	s.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start.Equal(spans[j].Start) {
			return spans[i].ID < spans[j].ID
		}
		return spans[i].Start.Before(spans[j].Start)
	})
	return spans
}

// ByConversation returns the hex trace IDs that carried the given ACL
// conversation ID, in admission order.
func (s *Store) ByConversation(convID string) []string {
	s.mu.Lock()
	ids := append([]uint64(nil), s.byConv[convID]...)
	s.mu.Unlock()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = formatID(id)
	}
	return out
}

// TraceIDs returns every retained trace ID, oldest first.
func (s *Store) TraceIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	for i, id := range s.order {
		out[i] = formatID(id)
	}
	return out
}

// Len returns how many traces and spans the store retains.
func (s *Store) Len() (traces, spans int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.traces {
		spans += len(v)
	}
	return len(s.traces), spans
}

func containsID(ids []uint64, id uint64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
