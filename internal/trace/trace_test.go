package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartRoot("x"); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if sp := tr.ContinueFromMessage("x", &acl.Message{}); sp != nil {
		t.Fatal("nil tracer continued a span")
	}
	if sp := tr.ChildFromContext(context.Background(), "x"); sp != nil {
		t.Fatal("nil tracer minted a child")
	}
	tr.Flush()
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("nil tracer dropped %d", d)
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", st)
	}

	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetConversation("c")
	sp.SetError(errors.New("boom"))
	sp.Stamp(&acl.Message{})
	sp.End()
	if c := sp.Child("y"); c != nil {
		t.Fatal("nil span minted a child")
	}
	if got := sp.Context(); !got.IsZero() {
		t.Fatalf("nil span context = %+v", got)
	}
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
}

func TestPropagationThroughMessage(t *testing.T) {
	tr := New(Options{})
	root := tr.StartRoot("collect.poll")
	if root == nil {
		t.Fatal("no root span")
	}
	root.SetAttr("agent", "cg-1")

	m := &acl.Message{ConversationID: "conv-1"}
	root.Stamp(m)
	if m.Trace == nil || m.Trace.TraceID == "" || m.Trace.SpanID == "" {
		t.Fatalf("stamp left trace incomplete: %+v", m.Trace)
	}

	// Receiving side: continue from the message, as agent.dispatch does.
	cont := tr.ContinueFromMessage("agent.handle", m)
	if cont == nil {
		t.Fatal("no continuation span")
	}
	if cont.TraceID != root.TraceID {
		t.Fatalf("trace id changed across hop: %x vs %x", cont.TraceID, root.TraceID)
	}
	if cont.Parent != root.ID {
		t.Fatalf("continuation parent = %x, want %x", cont.Parent, root.ID)
	}
	if cont.Conversation != "conv-1" {
		t.Fatalf("conversation not inherited: %q", cont.Conversation)
	}

	// Intra-process: context.Context carries the span down a call chain.
	ctx := NewContext(context.Background(), cont)
	child := tr.ChildFromContext(ctx, "classify.store")
	if child == nil || child.Parent != cont.ID || child.TraceID != root.TraceID {
		t.Fatalf("context child misparented: %+v", child)
	}

	child.End()
	cont.End()
	root.End()
	tr.Flush()

	spans := tr.Store().Spans(formatID(root.TraceID))
	if len(spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(spans))
	}
	if got := spans[0].Attr("agent"); got != "cg-1" {
		t.Fatalf("root attr agent = %q", got)
	}
}

func TestReplyKeepsTraceContinuity(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartRoot("origin")
	m := &acl.Message{
		Performative: acl.Request,
		Sender:       acl.NewAID("a", "p"),
		Receivers:    []acl.AID{acl.NewAID("b", "p")},
		ReplyWith:    "rw-1",
	}
	sp.Stamp(m)

	// An uninstrumented responder replies without opening a span; the
	// reply must still thread into the same trace, parented under the
	// requester's span.
	reply := m.Reply(acl.NewAID("b", "p"), acl.Inform)
	if reply.Trace == nil {
		t.Fatal("reply dropped the trace")
	}
	if reply.Trace.TraceID != m.Trace.TraceID {
		t.Fatal("reply changed trace id")
	}
	if reply.Trace.ParentSpan() != m.Trace.SpanID {
		t.Fatalf("reply parent = %q, want %q", reply.Trace.ParentSpan(), m.Trace.SpanID)
	}
	cont := tr.ContinueFromMessage("handle-reply", reply)
	if cont == nil || cont.Parent != sp.ID {
		t.Fatalf("reply continuation misparented: %+v", cont)
	}
}

func TestStartSpanNeverStartsTrace(t *testing.T) {
	tr := New(Options{})
	if sp := tr.StartSpan("x", acl.TraceContext{}); sp != nil {
		t.Fatal("StartSpan minted a new trace from a zero context")
	}
	if sp := tr.ContinueFromMessage("x", &acl.Message{}); sp != nil {
		t.Fatal("ContinueFromMessage minted a span from a traceless message")
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{SampleEvery: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		if sp := tr.StartRoot("poll"); sp != nil {
			kept++
			sp.End()
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of 9 roots at SampleEvery=3, want 3", kept)
	}
}

func TestCollectorDropOldest(t *testing.T) {
	col := newCollector(1, 4)
	for i := 0; i < 10; i++ {
		col.Add(Span{TraceID: 1, ID: uint64(i + 1)})
	}
	if got := col.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	spans := col.Drain()
	if len(spans) != 4 {
		t.Fatalf("drained %d, want 4", len(spans))
	}
	// Drop-oldest: the survivors are the last four added.
	for i, sp := range spans {
		if want := uint64(7 + i); sp.ID != want {
			t.Fatalf("survivor %d = span %d, want %d", i, sp.ID, want)
		}
	}
	if col.Len() != 0 {
		t.Fatal("drain left spans behind")
	}
}

func TestStoreEvictionAndConversationIndex(t *testing.T) {
	st := newStore(2)
	mk := func(traceID uint64, conv string) Span {
		return Span{TraceID: traceID, ID: traceID * 10, Conversation: conv}
	}
	st.Add([]Span{mk(1, "conv-a")})
	st.Add([]Span{mk(2, "conv-b")})
	st.Add([]Span{mk(3, "conv-c")}) // evicts trace 1
	traces, _ := st.Len()
	if traces != 2 {
		t.Fatalf("retained %d traces, want 2", traces)
	}
	if got := st.Spans(formatID(1)); len(got) != 0 {
		t.Fatal("evicted trace still queryable")
	}
	if got := st.ByConversation("conv-a"); len(got) != 0 {
		t.Fatal("evicted trace still in conversation index")
	}
	if got := st.ByConversation("conv-c"); len(got) != 1 || got[0] != formatID(3) {
		t.Fatalf("ByConversation(conv-c) = %v", got)
	}
}

func TestLookupByTraceAndConversation(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartRoot("collect.poll")
	sp.SetConversation("cg-1#42")
	id := formatID(sp.TraceID)
	sp.End()

	if _, ok := tr.Lookup(id); !ok {
		t.Fatal("lookup by trace id failed")
	}
	spans, ok := tr.Lookup("cg-1#42")
	if !ok || len(spans) != 1 {
		t.Fatalf("lookup by conversation = %v, %v", spans, ok)
	}
	if _, ok := tr.Lookup("no-such-id"); ok {
		t.Fatal("lookup invented a trace")
	}
}

func TestTreeAndCriticalPath(t *testing.T) {
	base := time.Unix(0, 0)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	spans := []Span{
		{TraceID: 9, ID: 1, Name: "collect.poll", Start: at(0), Finish: at(100)},
		{TraceID: 9, ID: 2, Parent: 1, Name: "collect.ship", Start: at(10), Finish: at(95)},
		{TraceID: 9, ID: 3, Parent: 2, Name: "classify.ingest", Start: at(20), Finish: at(90)},
		{TraceID: 9, ID: 4, Parent: 3, Name: "classify.store", Start: at(25), Finish: at(30)},
		{TraceID: 9, ID: 5, Parent: 3, Name: "analyze.l1", Start: at(35), Finish: at(85)},
	}
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Span.Name != "collect.poll" {
		t.Fatalf("roots = %+v", roots)
	}
	path := CriticalPath(roots)
	var names []string
	for _, st := range path {
		names = append(names, st.Span.Name)
	}
	want := "collect.poll -> collect.ship -> classify.ingest -> analyze.l1"
	if got := strings.Join(names, " -> "); got != want {
		t.Fatalf("critical path = %s, want %s", got, want)
	}
	// classify.ingest self time on the path: 70ms - analyze.l1's 50ms.
	if path[2].Contribution != 20*time.Millisecond {
		t.Fatalf("ingest contribution = %v", path[2].Contribution)
	}
}

func TestTreeSurvivesMissingParent(t *testing.T) {
	base := time.Unix(0, 0)
	spans := []Span{
		{TraceID: 9, ID: 2, Parent: 99, Name: "orphan", Start: base, Finish: base.Add(time.Millisecond)},
		{TraceID: 9, ID: 3, Parent: 2, Name: "child", Start: base, Finish: base.Add(time.Millisecond)},
	}
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Span.Name != "orphan" || len(roots[0].Children) != 1 {
		t.Fatalf("orphan handling broken: %+v", roots)
	}
	if CriticalPath(roots) == nil {
		t.Fatal("no critical path over orphan root")
	}
}

func TestRender(t *testing.T) {
	tr := New(Options{})
	root := tr.StartRoot("collect.poll")
	root.SetAttr("agent", "cg-1")
	child := root.Child("collect.ship")
	child.SetAttrInt("batch", 12)
	child.SetError(errors.New("ship failed"))
	child.End()
	root.End()
	tr.Flush()

	out := Render(tr.Store().Spans(formatID(root.TraceID)))
	for _, want := range []string{
		"collect.poll (cg-1)", "`- collect.ship", "batch=12",
		"ERROR(ship failed)", "critical path: collect.poll -> collect.ship",
		"dominant hop:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if Render(nil) != "(no spans)\n" {
		t.Error("empty render")
	}
}

func TestAttrOverflow(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartRoot("x")
	for i := 0; i < nInlineAttrs+3; i++ {
		sp.SetAttrInt(fmt.Sprintf("k%d", i), i)
	}
	if got := len(sp.Attrs()); got != nInlineAttrs+3 {
		t.Fatalf("attrs = %d, want %d", got, nInlineAttrs+3)
	}
	if sp.Attr(fmt.Sprintf("k%d", nInlineAttrs+1)) == "" {
		t.Fatal("overflow attr not retrievable")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{Shards: 4, ShardCapacity: 64, MaxTraces: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartRoot("worker")
				sp.SetAttrInt("i", i)
				c := sp.Child("inner")
				c.End()
				sp.End()
				if i%10 == 0 {
					tr.Flush()
				}
			}
		}()
	}
	wg.Wait()
	tr.Flush()
	traces, spans := tr.Store().Len()
	if traces == 0 || spans == 0 {
		t.Fatalf("nothing stored: %d traces, %d spans", traces, spans)
	}
}

func TestParseIDForeignFallback(t *testing.T) {
	if parseID("deadbeef") != 0xdeadbeef {
		t.Fatal("hex id mangled")
	}
	h := parseID("task:cluster-7")
	if h == 0 {
		t.Fatal("foreign id hashed to zero")
	}
	if h != parseID("task:cluster-7") {
		t.Fatal("foreign id hash unstable")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartRoot("x")
	sp.End()
	sp.End()
	tr.Flush()
	_, spans := tr.Store().Len()
	if spans != 1 {
		t.Fatalf("double End stored %d spans", spans)
	}
}

// TestStoreEvictionUnderRingWraparound drives the whole pipeline —
// tracer, a deliberately tiny collector ring, the bounded store —
// hard enough that the ring wraps (dropping whole early traces) while
// the store evicts admitted ones. The invariants that must hold
// through both kinds of loss: the store never exceeds its bound, the
// conversation index never points at an evicted trace, and every
// retained trace remains queryable by ID and by conversation.
func TestStoreEvictionUnderRingWraparound(t *testing.T) {
	tr := New(Options{Shards: 1, ShardCapacity: 8, MaxTraces: 4})
	const rounds = 32
	for i := 0; i < rounds; i++ {
		sp := tr.StartRoot("collect.poll")
		sp.SetConversation(fmt.Sprintf("conv-%d", i))
		sp.Child("collect.ship").End()
		sp.End()
		// Flush only every 7th root: at two spans per round the 8-span
		// ring wraps between drains, so early traces in each batch are
		// partially or wholly dropped while later ones land intact.
		if i%7 == 6 {
			tr.Flush()
		}
	}
	tr.Flush()
	if tr.Dropped() == 0 {
		t.Fatal("ring never wrapped; shrink the shard capacity")
	}

	st := tr.Store()
	traces, spans := st.Len()
	if traces > 4 {
		t.Fatalf("store retains %d traces, bound is 4", traces)
	}
	if traces == 0 || spans == 0 {
		t.Fatalf("store empty after %d rounds (traces=%d spans=%d)", rounds, traces, spans)
	}
	ids := st.TraceIDs()
	if len(ids) != traces {
		t.Fatalf("TraceIDs() = %d entries, Len says %d", len(ids), traces)
	}
	for _, id := range ids {
		if len(st.Spans(id)) == 0 {
			t.Fatalf("retained trace %s has no queryable spans", id)
		}
	}
	// Every early conversation must be gone from the index: with 32
	// rounds and a bound of 4, conversations 0..27 cannot survive.
	for i := 0; i < rounds-4; i++ {
		if got := st.ByConversation(fmt.Sprintf("conv-%d", i)); len(got) != 0 {
			t.Fatalf("evicted conv-%d still indexed: %v", i, got)
		}
	}
	// Each surviving conversation resolves back to its retained trace.
	live := 0
	for i := rounds - 4; i < rounds; i++ {
		for _, id := range st.ByConversation(fmt.Sprintf("conv-%d", i)) {
			live++
			if len(st.Spans(id)) == 0 {
				t.Fatalf("conv-%d resolves to empty trace %s", i, id)
			}
		}
	}
	if live == 0 {
		t.Fatal("no surviving conversation resolves to a trace")
	}
}

// TestStoreReadmitsEvictedTrace pins the late-span behaviour: a span
// arriving for an already-evicted trace re-admits the trace at the
// tail of the eviction order, with a consistent conversation index —
// the case a wrapped ring produces when a trace's spans straddle two
// drains.
func TestStoreReadmitsEvictedTrace(t *testing.T) {
	st := newStore(2)
	st.Add([]Span{{TraceID: 1, ID: 10, Conversation: "conv-a"}})
	st.Add([]Span{{TraceID: 2, ID: 20}})
	st.Add([]Span{{TraceID: 3, ID: 30}}) // evicts trace 1
	if got := st.ByConversation("conv-a"); len(got) != 0 {
		t.Fatalf("evicted conversation still indexed: %v", got)
	}
	// The straggler from the wrapped ring arrives after eviction.
	st.Add([]Span{{TraceID: 1, ID: 11, Conversation: "conv-a"}}) // evicts trace 2
	traces, _ := st.Len()
	if traces != 2 {
		t.Fatalf("retained %d traces, want 2", traces)
	}
	ids := st.TraceIDs()
	if len(ids) != 2 || ids[1] != formatID(1) {
		t.Fatalf("re-admitted trace not at tail of admission order: %v", ids)
	}
	if got := st.Spans(formatID(2)); len(got) != 0 {
		t.Fatal("trace 2 should have been evicted by the re-admission")
	}
	got := st.Spans(formatID(1))
	if len(got) != 1 || got[0].ID != 11 {
		t.Fatalf("re-admitted trace spans = %+v, want just the straggler", got)
	}
	if conv := st.ByConversation("conv-a"); len(conv) != 1 || conv[0] != formatID(1) {
		t.Fatalf("ByConversation(conv-a) = %v after re-admission", conv)
	}
}
