// Package trace is the grid's causal-tracing subsystem. A trace is the
// causal closure of one root event (an SNMP poll, a chaos injection):
// every span opened while handling messages descended from that event
// shares its trace ID. Context travels in-band on acl.Message envelopes
// (acl.TraceContext) across transport hops and in context.Context
// values inside a process, so a span opened three grids downstream
// still parents into the right tree.
//
// The subsystem is pay-for-what-you-use: every constructor returns nil
// when there is no tracer, no inbound trace, or head-based sampling
// skipped the trace, and every Span/Tracer method is a no-op on a nil
// receiver. Instrumentation therefore never branches on "is tracing
// on" — it just calls through.
package trace

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"

	"agentgrid/internal/acl"
)

// Attr is one key/value span attribute. Values are strings; numeric
// attributes go through SetAttrInt so the hot path never touches
// reflection or interfaces.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// nInlineAttrs is how many attributes a span stores without
// allocating. Pipeline spans carry 2–5 attributes; the overflow slice
// exists for outliers, not the common case.
const nInlineAttrs = 6

// Span is one timed operation inside a trace. A live span is owned by
// the goroutine that started it: SetAttr/Stamp/End must not race.
// After End the span's value has been copied into the collector and
// the handle is dead. All methods are no-ops on a nil receiver.
type Span struct {
	TraceID uint64 `json:"trace_id"`
	ID      uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_id,omitempty"`

	Name string `json:"name"`
	// Conversation links the span to an ACL conversation ID so a trace
	// is findable from a task ID or contract-net conversation.
	Conversation string    `json:"conversation,omitempty"`
	Start        time.Time `json:"start"`
	Finish       time.Time `json:"finish"`
	Error        string    `json:"error,omitempty"`

	nattrs int
	attrs  [nInlineAttrs]Attr
	extra  []Attr

	t     *Tracer
	ended bool
}

// Options configure a Tracer. The zero value is usable: 8 shards of
// 4096 spans, 1024 retained traces, no sampling.
type Options struct {
	// Shards is the collector's lock-stripe count, rounded up to a
	// power of two. Default 8.
	Shards int
	// ShardCapacity is each shard's ring size in spans. When a shard
	// fills, the oldest span is overwritten and a drop counted.
	// Default 4096.
	ShardCapacity int
	// MaxTraces bounds the span store; the oldest trace is evicted
	// beyond it. Default 1024.
	MaxTraces int
	// SampleEvery applies head-based sampling at roots: record every
	// Nth new root, discard the rest. 0 or 1 records everything.
	// Continuations of a recorded trace are always recorded, and a
	// discarded root yields nil so the whole downstream chain costs
	// nothing.
	SampleEvery int
	// Salt perturbs trace-ID generation so two tracers started in the
	// same process mint distinct IDs. 0 derives one from the wall
	// clock and a process-wide tracer counter.
	Salt uint64
}

// Tracer mints spans and owns the collector and store they land in.
// All methods are safe for concurrent use and no-ops on nil.
type Tracer struct {
	col         *Collector
	store       *Store
	salt        uint64
	ctr         atomic.Uint64
	roots       atomic.Uint64
	sampleEvery uint64
}

// New builds a tracer with its collector and span store.
func New(o Options) *Tracer {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.ShardCapacity <= 0 {
		o.ShardCapacity = 4096
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = 1024
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	t := &Tracer{
		col:         newCollector(o.Shards, o.ShardCapacity),
		store:       newStore(o.MaxTraces),
		sampleEvery: uint64(o.SampleEvery),
	}
	t.salt = o.Salt
	if t.salt == 0 {
		t.salt = mix(uint64(time.Now().UnixNano()) +
			tracerSeq.Add(1)*0x9e3779b97f4a7c15)
	}
	return t
}

// tracerSeq distinguishes tracers built within one clock tick.
var tracerSeq atomic.Uint64

// StartRoot opens a new trace with the given root span, subject to
// head-based sampling: a sampled-out root returns nil and the entire
// downstream chain stays untraced.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	if t.sampleEvery > 1 && (t.roots.Add(1)-1)%t.sampleEvery != 0 {
		return nil
	}
	return t.newSpan(name, t.newTraceID(), 0)
}

// StartSpan opens a span continuing the given trace context. A zero
// context yields nil: this constructor never starts a new trace, which
// is what keeps head-based sampling head-based.
func (t *Tracer) StartSpan(name string, tc acl.TraceContext) *Span {
	if t == nil || tc.IsZero() {
		return nil
	}
	return t.newSpan(name, parseID(tc.TraceID), parseID(tc.ParentSpan()))
}

// ContinueFromMessage opens a span continuing the trace carried by m,
// recording m's conversation ID on the span. Nil when m carries no
// trace.
func (t *Tracer) ContinueFromMessage(name string, m *acl.Message) *Span {
	if t == nil || m == nil || m.Trace == nil || m.Trace.IsZero() {
		return nil
	}
	sp := t.newSpan(name, parseID(m.Trace.TraceID), parseID(m.Trace.ParentSpan()))
	sp.Conversation = m.ConversationID
	return sp
}

// ChildFromContext opens a child of the span stored in ctx, or nil
// when ctx carries none.
func (t *Tracer) ChildFromContext(ctx context.Context, name string) *Span {
	if t == nil {
		return nil
	}
	return FromContext(ctx).Child(name)
}

// Flush drains the collector into the span store. Queries go through
// the store; the tracer's own query helpers flush first.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.store.Add(t.col.Drain())
}

// Collector returns the tracer's span collector (nil on a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.col
}

// Store returns the tracer's span store (nil on a nil tracer).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Dropped returns how many spans the collector has overwritten under
// pressure since the tracer was built.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.col.Dropped()
}

// Stats summarise a tracer's buffers for status endpoints.
type Stats struct {
	// Buffered is how many spans sit in the collector awaiting Flush.
	Buffered int `json:"buffered"`
	// Dropped is the collector's cumulative overwrite count.
	Dropped uint64 `json:"dropped"`
	// Traces and Spans count what the store retains.
	Traces int `json:"traces"`
	Spans  int `json:"spans"`
}

// Stats returns a snapshot of the tracer's buffers.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	traces, spans := t.store.Len()
	return Stats{
		Buffered: t.col.Len(),
		Dropped:  t.col.Dropped(),
		Traces:   traces,
		Spans:    spans,
	}
}

// Spans flushes and returns the stored spans of the given trace ID,
// sorted by start time. See Store.Spans.
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	t.Flush()
	return t.store.Spans(traceID)
}

// Lookup flushes and resolves id first as a trace ID, then as a
// conversation ID (returning that conversation's first trace). The
// boolean reports whether anything matched.
func (t *Tracer) Lookup(id string) ([]Span, bool) {
	if t == nil {
		return nil, false
	}
	t.Flush()
	if sp := t.store.Spans(id); len(sp) > 0 {
		return sp, true
	}
	if ids := t.store.ByConversation(id); len(ids) > 0 {
		return t.store.Spans(ids[0]), true
	}
	return nil, false
}

func (t *Tracer) newSpan(name string, traceID, parent uint64) *Span {
	if traceID == 0 {
		return nil
	}
	return &Span{
		TraceID: traceID,
		ID:      t.ctr.Add(1),
		Parent:  parent,
		Name:    name,
		Start:   time.Now(),
		t:       t,
	}
}

func (t *Tracer) newTraceID() uint64 {
	id := mix(t.salt + t.ctr.Add(1)*0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return id
}

// TID returns the span's trace ID, zero for a nil (unsampled) span —
// the nil-safe accessor stages pass to telemetry exemplars and flight
// events without branching on sampling.
func (s *Span) TID() uint64 {
	if s == nil {
		return 0
	}
	return s.TraceID
}

// Context returns the span's propagation context for stamping onto an
// outbound message.
func (s *Span) Context() acl.TraceContext {
	if s == nil {
		return acl.TraceContext{}
	}
	return acl.TraceContext{
		TraceID: formatID(s.TraceID),
		SpanID:  formatID(s.ID),
		Parent:  formatID(s.Parent),
	}
}

// Stamp writes the span's context onto m, replacing any carried trace:
// downstream receivers parent under this span.
func (s *Span) Stamp(m *acl.Message) {
	if s == nil || m == nil {
		return
	}
	tc := s.Context()
	m.Trace = &tc
}

// Child opens a sub-span. Nil-safe, so untraced chains stay untraced.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.TraceID, s.ID)
}

// SetAttr records a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.nattrs < nInlineAttrs {
		s.attrs[s.nattrs] = Attr{Key: key, Value: value}
		s.nattrs++
		return
	}
	s.extra = append(s.extra, Attr{Key: key, Value: value})
}

// SetAttrInt records an integer attribute on the span.
func (s *Span) SetAttrInt(key string, value int) {
	s.SetAttr(key, strconv.Itoa(value))
}

// SetConversation links the span to an ACL conversation ID.
func (s *Span) SetConversation(id string) {
	if s == nil {
		return
	}
	s.Conversation = id
}

// SetError marks the span failed. A nil error is ignored, so callers
// can pass their return error unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.Error = err.Error()
}

// End closes the span and hands its value to the collector. Idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Finish = time.Now()
	s.t.col.Add(*s)
}

// Duration returns Finish−Start for an ended span, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish.IsZero() {
		return 0
	}
	return s.Finish.Sub(s.Start)
}

// Attrs returns the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	out := make([]Attr, 0, s.nattrs+len(s.extra))
	out = append(out, s.attrs[:s.nattrs]...)
	return append(out, s.extra...)
}

// Attr returns the value of the named attribute, or "".
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.attrs[:s.nattrs] {
		if a.Key == key {
			return a.Value
		}
	}
	for _, a := range s.extra {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

type ctxKey struct{}

// NewContext returns ctx carrying sp, for intra-process propagation
// down a call chain. A nil span returns ctx unchanged.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// parseID decodes a wire trace/span ID. IDs the grid mints are 64-bit
// hex; anything else (an operator-supplied correlation ID) is hashed
// with FNV-1a so foreign IDs still thread through a trace.
func parseID(s string) uint64 {
	if s == "" || s == "0" {
		return 0
	}
	if v, err := strconv.ParseUint(s, 16, 64); err == nil {
		return v
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// formatID encodes an internal ID for the wire. Zero encodes to "" so
// absent parents stay absent in JSON.
func formatID(v uint64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatUint(v, 16)
}

// mix is splitmix64's finalizer: a cheap bijective scramble that turns
// sequential counters into well-distributed IDs (shard selection keys
// off the low bits).
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}
