package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span in a reconstructed trace tree.
type Node struct {
	Span     Span
	Children []*Node
}

// BuildTree reconstructs the span forest of one trace. Spans whose
// parent was never collected (dropped under pressure, or emitted by an
// uninstrumented hop) surface as extra roots rather than vanishing.
// Roots and children are ordered by start time.
func BuildTree(spans []Span) []*Node {
	nodes := make(map[uint64]*Node, len(spans))
	for _, sp := range spans {
		nodes[sp.ID] = &Node{Span: sp}
	}
	var roots []*Node
	for _, sp := range spans {
		n := nodes[sp.ID]
		if p, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].Span, ns[j].Span
		if a.Start.Equal(b.Start) {
			return a.ID < b.ID
		}
		return a.Start.Before(b.Start)
	})
}

// PathStep is one hop of a critical path: the span and how much of the
// end-to-end latency it contributed itself (its duration minus the
// on-path child's, clamped at zero for async children that outlive it).
type PathStep struct {
	Span         Span
	Contribution time.Duration
}

// CriticalPath walks a trace forest from the root whose subtree
// finishes last, descending at each node into the child whose subtree
// finishes last — the chain that determined when the trace ended. The
// step with the largest contribution is the hop that dominated
// end-to-end latency.
func CriticalPath(roots []*Node) []PathStep {
	if len(roots) == 0 {
		return nil
	}
	start := roots[0]
	for _, r := range roots[1:] {
		if subtreeFinish(r).After(subtreeFinish(start)) {
			start = r
		}
	}
	var path []PathStep
	for n := start; ; {
		var next *Node
		for _, c := range n.Children {
			if next == nil || subtreeFinish(c).After(subtreeFinish(next)) {
				next = c
			}
		}
		if next == nil {
			path = append(path, PathStep{Span: n.Span, Contribution: n.Span.Duration()})
			return path
		}
		contrib := n.Span.Duration() - next.Span.Duration()
		if contrib < 0 {
			contrib = 0
		}
		path = append(path, PathStep{Span: n.Span, Contribution: contrib})
		n = next
	}
}

func subtreeFinish(n *Node) time.Time {
	t := n.Span.Finish
	for _, c := range n.Children {
		if ct := subtreeFinish(c); ct.After(t) {
			t = ct
		}
	}
	return t
}

// Render draws the trace as an ASCII span tree with durations,
// followed by its critical path. Spans on the critical path carry a
// trailing '*'; failed spans show their error.
func Render(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	roots := BuildTree(spans)
	path := CriticalPath(roots)
	onPath := make(map[uint64]bool, len(path))
	for _, st := range path {
		onPath[st.Span.ID] = true
	}

	var b strings.Builder
	first, last := spans[0].Start, spans[0].Finish
	for _, sp := range spans {
		if sp.Start.Before(first) {
			first = sp.Start
		}
		if sp.Finish.After(last) {
			last = sp.Finish
		}
	}
	fmt.Fprintf(&b, "trace %s — %d spans, %s end-to-end\n",
		formatID(spans[0].TraceID), len(spans), fmtDur(last.Sub(first)))
	for _, r := range roots {
		renderNode(&b, r, "", "", onPath)
	}

	if len(path) > 0 {
		b.WriteString("critical path: ")
		var dominant PathStep
		for i, st := range path {
			if i > 0 {
				b.WriteString(" -> ")
			}
			b.WriteString(st.Span.Name)
			if st.Contribution > dominant.Contribution {
				dominant = st
			}
		}
		fmt.Fprintf(&b, "\ndominant hop: %s (%s self time)\n",
			dominant.Span.Name, fmtDur(dominant.Contribution))
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix, branch string, onPath map[uint64]bool) {
	sp := n.Span
	b.WriteString(prefix + branch + sp.Name)
	if agent := sp.Attr("agent"); agent != "" {
		fmt.Fprintf(b, " (%s)", agent)
	}
	fmt.Fprintf(b, " %s", fmtDur(sp.Duration()))
	if sp.Conversation != "" {
		fmt.Fprintf(b, " conv=%s", sp.Conversation)
	}
	for _, a := range spanNoteAttrs(sp) {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	if sp.Error != "" {
		fmt.Fprintf(b, " ERROR(%s)", sp.Error)
	}
	if onPath[sp.ID] {
		b.WriteString(" *")
	}
	b.WriteByte('\n')
	childPrefix := prefix
	switch branch {
	case "+- ":
		childPrefix += "|  "
	case "`- ":
		childPrefix += "   "
	}
	for i, c := range n.Children {
		cb := "+- "
		if i == len(n.Children)-1 {
			cb = "`- "
		}
		renderNode(b, c, childPrefix, cb, onPath)
	}
}

// spanNoteAttrs picks the attributes worth a line in the tree; the
// agent attribute is already rendered beside the name.
func spanNoteAttrs(sp Span) []Attr {
	var out []Attr
	for _, a := range sp.Attrs() {
		if a.Key == "agent" {
			continue
		}
		out = append(out, a)
	}
	return out
}

// fmtDur rounds a duration for display; sub-microsecond spans (chaos
// annotations) render as 0s.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// MarshalJSON exposes a span's attributes and duration alongside its
// exported fields (the hot-path layout keeps attributes unexported).
func (s Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		TraceID      string        `json:"trace_id"`
		SpanID       string        `json:"span_id"`
		ParentID     string        `json:"parent_id,omitempty"`
		Name         string        `json:"name"`
		Conversation string        `json:"conversation,omitempty"`
		Start        time.Time     `json:"start"`
		Finish       time.Time     `json:"finish"`
		DurationNS   time.Duration `json:"duration_ns"`
		Error        string        `json:"error,omitempty"`
		Attrs        []Attr        `json:"attrs,omitempty"`
	}{
		TraceID:      formatID(s.TraceID),
		SpanID:       formatID(s.ID),
		ParentID:     formatID(s.Parent),
		Name:         s.Name,
		Conversation: s.Conversation,
		Start:        s.Start,
		Finish:       s.Finish,
		DurationNS:   s.Duration(),
		Error:        s.Error,
		Attrs:        s.Attrs(),
	})
}
