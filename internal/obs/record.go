// Package obs defines the common representation that collected data is
// normalized into before it crosses grid boundaries — the XML-and-
// ontology layer of the paper's §3.1 ("it is necessary to create a
// common representation for these data ... using XML and ontologies").
// A Record is one observation of one managed object; a Batch is the unit
// collectors ship to the classifier grid.
package obs

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"
)

// Record is one normalized observation.
type Record struct {
	// Site is the administrative domain the device belongs to.
	Site string `xml:"site,attr" json:"site"`
	// Device is the managed equipment name.
	Device string `xml:"device,attr" json:"device"`
	// Class is the device class ("host", "router", "switch").
	Class string `xml:"class,attr" json:"class"`
	// Metric is the managed-object name, e.g. "cpu.util" or "if.in.3".
	Metric string `xml:"metric,attr" json:"metric"`
	// Value is the observed numeric value.
	Value float64 `xml:"value,attr" json:"value"`
	// Unit is the measurement unit ("percent", "MB", "octets", "count").
	Unit string `xml:"unit,attr,omitempty" json:"unit,omitempty"`
	// Step is the device's collection sequence number; analysis uses it
	// as the logical clock.
	Step int `xml:"step,attr" json:"step"`
	// Time is the wall-clock collection instant.
	Time time.Time `xml:"time,attr" json:"time"`
}

// Validation errors.
var (
	ErrNoDevice = errors.New("obs: record has no device")
	ErrNoMetric = errors.New("obs: record has no metric")
	ErrNoSite   = errors.New("obs: record has no site")
)

// Validate checks the invariants a record must hold before entering the
// classifier grid.
func (r *Record) Validate() error {
	switch {
	case r.Site == "":
		return ErrNoSite
	case r.Device == "":
		return ErrNoDevice
	case r.Metric == "":
		return ErrNoMetric
	}
	return nil
}

// Key returns the series identity "site/device/metric" used by the store
// and the classifier's clustering.
func (r *Record) Key() string {
	return r.Site + "/" + r.Device + "/" + r.Metric
}

// String renders the record for logs.
func (r *Record) String() string {
	return fmt.Sprintf("%s=%g@%d", r.Key(), r.Value, r.Step)
}

// Batch is a set of records shipped together by one collector, possibly
// spanning heterogeneous devices (§3.2: "a file containing collected
// data sent by one grid could contain collected values from many managed
// objects in heterogeneous equipment").
type Batch struct {
	XMLName   xml.Name `xml:"batch" json:"-"`
	Collector string   `xml:"collector,attr" json:"collector"`
	Records   []Record `xml:"record" json:"records"`
}

// Validate checks every record in the batch.
func (b *Batch) Validate() error {
	if b.Collector == "" {
		return errors.New("obs: batch has no collector")
	}
	for i := range b.Records {
		if err := b.Records[i].Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}

// MarshalXML returns the batch in the common XML representation the
// grids exchange.
func MarshalBatch(b *Batch) ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return xml.Marshal(b)
}

// UnmarshalBatch parses a batch from the XML representation and
// validates it.
func UnmarshalBatch(data []byte) (*Batch, error) {
	var b Batch
	if err := xml.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obs: parse batch: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}
