package obs

import (
	"sort"
	"strings"
	"sync"
)

// Category is the management-domain concept a metric belongs to. The
// ontology groups heterogeneous metric names into categories so that
// analysis capabilities ("this container knows how to analyze disk
// problems") are expressed independently of device vocabularies.
type Category string

// Built-in categories.
const (
	CategoryCPU          Category = "cpu"
	CategoryMemory       Category = "memory"
	CategoryDisk         Category = "disk"
	CategoryProcess      Category = "process"
	CategoryTraffic      Category = "traffic"
	CategoryAvailability Category = "availability"
	CategoryUnknown      Category = "unknown"
)

// Ontology maps metric-name prefixes to categories and units. The zero
// value is empty; NewOntology returns one preloaded with the standard
// vocabulary of internal/device. Safe for concurrent use.
type Ontology struct {
	mu      sync.RWMutex
	entries map[string]ontEntry // guarded by mu; prefix -> entry
}

type ontEntry struct {
	category Category
	unit     string
}

// NewOntology returns the standard network-management ontology.
func NewOntology() *Ontology {
	o := &Ontology{entries: make(map[string]ontEntry)}
	o.Register("cpu.", CategoryCPU, "percent")
	o.Register("mem.", CategoryMemory, "MB")
	o.Register("disk.", CategoryDisk, "MB")
	o.Register("proc.", CategoryProcess, "count")
	o.Register("if.in", CategoryTraffic, "octets")
	o.Register("if.out", CategoryTraffic, "octets")
	o.Register("if.up", CategoryAvailability, "bool")
	return o
}

// Register adds a prefix mapping. Longer prefixes win over shorter ones
// at lookup time, so specific entries can refine general ones.
func (o *Ontology) Register(prefix string, c Category, unit string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.entries == nil {
		o.entries = make(map[string]ontEntry)
	}
	o.entries[prefix] = ontEntry{category: c, unit: unit}
}

// lookup finds the longest matching prefix.
func (o *Ontology) lookup(metric string) (ontEntry, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	best := ""
	var found ontEntry
	for prefix, e := range o.entries {
		if strings.HasPrefix(metric, prefix) && len(prefix) > len(best) {
			best = prefix
			found = e
		}
	}
	return found, best != ""
}

// Category classifies a metric name; unknown names map to
// CategoryUnknown.
func (o *Ontology) Category(metric string) Category {
	if e, ok := o.lookup(metric); ok {
		return e.category
	}
	return CategoryUnknown
}

// Unit returns the unit for a metric name ("" when unknown).
func (o *Ontology) Unit(metric string) string {
	if e, ok := o.lookup(metric); ok {
		return e.unit
	}
	return ""
}

// Known reports whether the ontology covers the metric.
func (o *Ontology) Known(metric string) bool {
	_, ok := o.lookup(metric)
	return ok
}

// Categories lists every category the ontology currently maps to,
// sorted and deduplicated.
func (o *Ontology) Categories() []Category {
	o.mu.RLock()
	seen := make(map[Category]bool)
	for _, e := range o.entries {
		seen[e.category] = true
	}
	o.mu.RUnlock()
	out := make([]Category, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Annotate fills a record's Unit from the ontology when empty.
func (o *Ontology) Annotate(r *Record) {
	if r.Unit == "" {
		r.Unit = o.Unit(r.Metric)
	}
}
