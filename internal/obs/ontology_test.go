package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestOntologyCategories(t *testing.T) {
	o := NewOntology()
	cases := map[string]Category{
		"cpu.util":   CategoryCPU,
		"mem.free":   CategoryMemory,
		"disk.free":  CategoryDisk,
		"proc.count": CategoryProcess,
		"if.in.3":    CategoryTraffic,
		"if.out.1":   CategoryTraffic,
		"if.up.2":    CategoryAvailability,
		"fan.speed":  CategoryUnknown,
	}
	for metric, want := range cases {
		if got := o.Category(metric); got != want {
			t.Errorf("Category(%s) = %s, want %s", metric, got, want)
		}
	}
	if o.Known("fan.speed") {
		t.Error("unknown metric marked known")
	}
	if !o.Known("cpu.util") {
		t.Error("known metric marked unknown")
	}
}

func TestOntologyUnits(t *testing.T) {
	o := NewOntology()
	if u := o.Unit("cpu.util"); u != "percent" {
		t.Errorf("Unit(cpu.util) = %q", u)
	}
	if u := o.Unit("mystery"); u != "" {
		t.Errorf("Unit(mystery) = %q", u)
	}
}

func TestOntologyLongestPrefixWins(t *testing.T) {
	o := NewOntology()
	o.Register("if.in.9", CategoryUnknown, "special")
	if got := o.Category("if.in.9"); got != CategoryUnknown {
		t.Fatalf("specific prefix lost: %s", got)
	}
	if got := o.Category("if.in.1"); got != CategoryTraffic {
		t.Fatalf("general prefix broken: %s", got)
	}
}

func TestOntologyCategoriesList(t *testing.T) {
	got := NewOntology().Categories()
	if len(got) != 6 {
		t.Fatalf("Categories = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted/deduped: %v", got)
		}
	}
}

func TestOntologyAnnotate(t *testing.T) {
	o := NewOntology()
	r := Record{Site: "s", Device: "d", Metric: "disk.free"}
	o.Annotate(&r)
	if r.Unit != "MB" {
		t.Fatalf("Unit = %q", r.Unit)
	}
	r.Unit = "KB" // existing unit untouched
	o.Annotate(&r)
	if r.Unit != "KB" {
		t.Fatal("Annotate overwrote unit")
	}
}

func TestOntologyAnnotateUnknownMetric(t *testing.T) {
	o := NewOntology()
	r := Record{Site: "s", Device: "d", Metric: "fan.speed"}
	o.Annotate(&r)
	if r.Unit != "" {
		t.Fatalf("unknown metric gained unit %q", r.Unit)
	}
}

func TestOntologyZeroValueRegister(t *testing.T) {
	var o Ontology
	o.Register("x.", CategoryCPU, "u")
	if o.Category("x.y") != CategoryCPU {
		t.Fatal("zero-value ontology unusable")
	}
}

func TestOntologyZeroValueLookups(t *testing.T) {
	// The zero value is empty but must not panic on reads.
	var o Ontology
	if got := o.Category("cpu.util"); got != CategoryUnknown {
		t.Fatalf("empty ontology Category = %s", got)
	}
	if u := o.Unit("cpu.util"); u != "" {
		t.Fatalf("empty ontology Unit = %q", u)
	}
	if o.Known("cpu.util") {
		t.Fatal("empty ontology claims knowledge")
	}
	if got := o.Categories(); len(got) != 0 {
		t.Fatalf("empty ontology Categories = %v", got)
	}
}

func TestOntologyRegisterOverride(t *testing.T) {
	o := NewOntology()
	o.Register("cpu.", CategoryProcess, "reclassified")
	if got := o.Category("cpu.util"); got != CategoryProcess {
		t.Fatalf("re-registration did not override: %s", got)
	}
	if u := o.Unit("cpu.util"); u != "reclassified" {
		t.Fatalf("unit not overridden: %q", u)
	}
}

func TestOntologyConcurrentAccess(t *testing.T) {
	// Registrations and lookups race from many goroutines; run under
	// -race this verifies the ontology's internal locking.
	o := NewOntology()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Register(fmt.Sprintf("x%d.%d.", w, i), CategoryDisk, "u")
				_ = o.Category("cpu.util")
				_ = o.Unit("mem.free")
				_ = o.Categories()
			}
		}()
	}
	wg.Wait()
	if got := o.Category("x3.99.z"); got != CategoryDisk {
		t.Fatalf("registration lost: %s", got)
	}
}
