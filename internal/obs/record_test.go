package obs

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Site:   "site1",
		Device: "web-1",
		Class:  "host",
		Metric: "cpu.util",
		Value:  73.5,
		Unit:   "percent",
		Step:   12,
		Time:   time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC),
	}
}

func TestRecordValidate(t *testing.T) {
	r := sampleRecord()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mod  func(*Record)
		want error
	}{
		{func(r *Record) { r.Site = "" }, ErrNoSite},
		{func(r *Record) { r.Device = "" }, ErrNoDevice},
		{func(r *Record) { r.Metric = "" }, ErrNoMetric},
	}
	for _, tc := range cases {
		r := sampleRecord()
		tc.mod(&r)
		if err := r.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("Validate = %v, want %v", err, tc.want)
		}
	}
}

func TestRecordValidateFirstError(t *testing.T) {
	// A record missing everything reports the site first — callers rely
	// on the precedence to build stable error messages.
	var r Record
	if err := r.Validate(); !errors.Is(err, ErrNoSite) {
		t.Fatalf("empty record = %v, want %v", err, ErrNoSite)
	}
	r.Site = "s"
	if err := r.Validate(); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("site-only record = %v, want %v", err, ErrNoDevice)
	}
}

func TestRecordKeyAndString(t *testing.T) {
	r := sampleRecord()
	if r.Key() != "site1/web-1/cpu.util" {
		t.Fatalf("Key = %q", r.Key())
	}
	if s := r.String(); !strings.Contains(s, "site1/web-1/cpu.util") || !strings.Contains(s, "73.5") {
		t.Fatalf("String = %q", s)
	}
	if s := r.String(); !strings.Contains(s, "@12") {
		t.Fatalf("String missing step: %q", s)
	}
}

func TestBatchXMLRoundtrip(t *testing.T) {
	b := &Batch{
		Collector: "collector-1",
		Records:   []Record{sampleRecord(), sampleRecord()},
	}
	b.Records[1].Metric = "mem.free"
	b.Records[1].Value = 2048

	data, err := MarshalBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `collector="collector-1"`) {
		t.Fatalf("XML missing collector attr: %s", data)
	}
	got, err := UnmarshalBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Collector != "collector-1" || len(got.Records) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	// XMLName differs after unmarshal; compare fields.
	for i := range b.Records {
		if !b.Records[i].Time.Equal(got.Records[i].Time) {
			t.Fatalf("time mismatch: %v vs %v", b.Records[i].Time, got.Records[i].Time)
		}
		a, g := b.Records[i], got.Records[i]
		a.Time, g.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(a, g) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, a)
		}
	}
}

func TestBatchEmptyRecordsRoundtrip(t *testing.T) {
	// A collector with nothing to report still ships a (valid) empty batch.
	b := &Batch{Collector: "idle"}
	data, err := MarshalBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Collector != "idle" || len(got.Records) != 0 {
		t.Fatalf("empty batch roundtrip = %+v", got)
	}
}

func TestBatchOmitsEmptyUnit(t *testing.T) {
	b := &Batch{Collector: "c", Records: []Record{sampleRecord()}}
	b.Records[0].Unit = ""
	data, err := MarshalBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "unit=") {
		t.Fatalf("empty unit serialized: %s", data)
	}
}

func TestBatchValidation(t *testing.T) {
	b := &Batch{Records: []Record{sampleRecord()}}
	if _, err := MarshalBatch(b); err == nil {
		t.Fatal("batch without collector accepted")
	}
	b.Collector = "c"
	b.Records[0].Device = ""
	if _, err := MarshalBatch(b); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("invalid record = %v", err)
	}
	if _, err := UnmarshalBatch([]byte("<not-xml")); err == nil {
		t.Fatal("malformed XML accepted")
	}
	if _, err := UnmarshalBatch([]byte("<batch collector=\"c\"><record/></batch>")); err == nil {
		t.Fatal("invalid record in XML accepted")
	}
}

func TestBatchValidationNamesBadRecord(t *testing.T) {
	b := &Batch{Collector: "c", Records: []Record{sampleRecord(), sampleRecord()}}
	b.Records[1].Metric = ""
	err := b.Validate()
	if err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("error should name the offending record: %v", err)
	}
}

func TestBatchXMLRoundtripProperty(t *testing.T) {
	metrics := []string{"cpu.util", "mem.free", "disk.free", "if.in.1", "proc.count"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := &Batch{Collector: "c"}
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			b.Records = append(b.Records, Record{
				Site:   "site1",
				Device: "dev-" + string(rune('a'+r.Intn(26))),
				Class:  "host",
				Metric: metrics[r.Intn(len(metrics))],
				Value:  r.NormFloat64() * 100,
				Step:   r.Intn(1000),
				Time:   time.Unix(r.Int63n(1<<31), 0).UTC(),
			})
		}
		data, err := MarshalBatch(b)
		if err != nil {
			return false
		}
		got, err := UnmarshalBatch(data)
		if err != nil {
			return false
		}
		if len(got.Records) != len(b.Records) {
			return false
		}
		for i := range b.Records {
			if got.Records[i].Key() != b.Records[i].Key() ||
				got.Records[i].Value != b.Records[i].Value ||
				got.Records[i].Step != b.Records[i].Step ||
				!got.Records[i].Time.Equal(b.Records[i].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
