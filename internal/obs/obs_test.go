package obs

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Site:   "site1",
		Device: "web-1",
		Class:  "host",
		Metric: "cpu.util",
		Value:  73.5,
		Unit:   "percent",
		Step:   12,
		Time:   time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC),
	}
}

func TestRecordValidate(t *testing.T) {
	r := sampleRecord()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mod  func(*Record)
		want error
	}{
		{func(r *Record) { r.Site = "" }, ErrNoSite},
		{func(r *Record) { r.Device = "" }, ErrNoDevice},
		{func(r *Record) { r.Metric = "" }, ErrNoMetric},
	}
	for _, tc := range cases {
		r := sampleRecord()
		tc.mod(&r)
		if err := r.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("Validate = %v, want %v", err, tc.want)
		}
	}
}

func TestRecordKeyAndString(t *testing.T) {
	r := sampleRecord()
	if r.Key() != "site1/web-1/cpu.util" {
		t.Fatalf("Key = %q", r.Key())
	}
	if s := r.String(); !strings.Contains(s, "site1/web-1/cpu.util") || !strings.Contains(s, "73.5") {
		t.Fatalf("String = %q", s)
	}
}

func TestBatchXMLRoundtrip(t *testing.T) {
	b := &Batch{
		Collector: "collector-1",
		Records:   []Record{sampleRecord(), sampleRecord()},
	}
	b.Records[1].Metric = "mem.free"
	b.Records[1].Value = 2048

	data, err := MarshalBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `collector="collector-1"`) {
		t.Fatalf("XML missing collector attr: %s", data)
	}
	got, err := UnmarshalBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Collector != "collector-1" || len(got.Records) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	// XMLName differs after unmarshal; compare fields.
	for i := range b.Records {
		if !b.Records[i].Time.Equal(got.Records[i].Time) {
			t.Fatalf("time mismatch: %v vs %v", b.Records[i].Time, got.Records[i].Time)
		}
		a, g := b.Records[i], got.Records[i]
		a.Time, g.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(a, g) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, a)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	b := &Batch{Records: []Record{sampleRecord()}}
	if _, err := MarshalBatch(b); err == nil {
		t.Fatal("batch without collector accepted")
	}
	b.Collector = "c"
	b.Records[0].Device = ""
	if _, err := MarshalBatch(b); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("invalid record = %v", err)
	}
	if _, err := UnmarshalBatch([]byte("<not-xml")); err == nil {
		t.Fatal("malformed XML accepted")
	}
	if _, err := UnmarshalBatch([]byte("<batch collector=\"c\"><record/></batch>")); err == nil {
		t.Fatal("invalid record in XML accepted")
	}
}

func TestBatchXMLRoundtripProperty(t *testing.T) {
	metrics := []string{"cpu.util", "mem.free", "disk.free", "if.in.1", "proc.count"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := &Batch{Collector: "c"}
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			b.Records = append(b.Records, Record{
				Site:   "site1",
				Device: "dev-" + string(rune('a'+r.Intn(26))),
				Class:  "host",
				Metric: metrics[r.Intn(len(metrics))],
				Value:  r.NormFloat64() * 100,
				Step:   r.Intn(1000),
				Time:   time.Unix(r.Int63n(1<<31), 0).UTC(),
			})
		}
		data, err := MarshalBatch(b)
		if err != nil {
			return false
		}
		got, err := UnmarshalBatch(data)
		if err != nil {
			return false
		}
		if len(got.Records) != len(b.Records) {
			return false
		}
		for i := range b.Records {
			if got.Records[i].Key() != b.Records[i].Key() ||
				got.Records[i].Value != b.Records[i].Value ||
				got.Records[i].Step != b.Records[i].Step ||
				!got.Records[i].Time.Equal(b.Records[i].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOntologyCategories(t *testing.T) {
	o := NewOntology()
	cases := map[string]Category{
		"cpu.util":   CategoryCPU,
		"mem.free":   CategoryMemory,
		"disk.free":  CategoryDisk,
		"proc.count": CategoryProcess,
		"if.in.3":    CategoryTraffic,
		"if.out.1":   CategoryTraffic,
		"if.up.2":    CategoryAvailability,
		"fan.speed":  CategoryUnknown,
	}
	for metric, want := range cases {
		if got := o.Category(metric); got != want {
			t.Errorf("Category(%s) = %s, want %s", metric, got, want)
		}
	}
	if o.Known("fan.speed") {
		t.Error("unknown metric marked known")
	}
	if !o.Known("cpu.util") {
		t.Error("known metric marked unknown")
	}
}

func TestOntologyUnits(t *testing.T) {
	o := NewOntology()
	if u := o.Unit("cpu.util"); u != "percent" {
		t.Errorf("Unit(cpu.util) = %q", u)
	}
	if u := o.Unit("mystery"); u != "" {
		t.Errorf("Unit(mystery) = %q", u)
	}
}

func TestOntologyLongestPrefixWins(t *testing.T) {
	o := NewOntology()
	o.Register("if.in.9", CategoryUnknown, "special")
	if got := o.Category("if.in.9"); got != CategoryUnknown {
		t.Fatalf("specific prefix lost: %s", got)
	}
	if got := o.Category("if.in.1"); got != CategoryTraffic {
		t.Fatalf("general prefix broken: %s", got)
	}
}

func TestOntologyCategoriesList(t *testing.T) {
	got := NewOntology().Categories()
	if len(got) != 6 {
		t.Fatalf("Categories = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted/deduped: %v", got)
		}
	}
}

func TestOntologyAnnotate(t *testing.T) {
	o := NewOntology()
	r := Record{Site: "s", Device: "d", Metric: "disk.free"}
	o.Annotate(&r)
	if r.Unit != "MB" {
		t.Fatalf("Unit = %q", r.Unit)
	}
	r.Unit = "KB" // existing unit untouched
	o.Annotate(&r)
	if r.Unit != "KB" {
		t.Fatal("Annotate overwrote unit")
	}
}

func TestOntologyZeroValueRegister(t *testing.T) {
	var o Ontology
	o.Register("x.", CategoryCPU, "u")
	if o.Category("x.y") != CategoryCPU {
		t.Fatal("zero-value ontology unusable")
	}
}
