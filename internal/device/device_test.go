package device

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeterministicEvolution(t *testing.T) {
	a := NewHost("h1", 42)
	b := NewHost("h1", 42)
	a.Advance(100)
	b.Advance(100)
	for _, m := range a.MetricNames() {
		va, _ := a.Value(m)
		vb, _ := b.Value(m)
		if va != vb {
			t.Errorf("metric %s diverged: %v vs %v", m, va, vb)
		}
	}
	c := NewHost("h1", 43) // different seed must differ somewhere
	c.Advance(100)
	same := true
	for _, m := range a.MetricNames() {
		va, _ := a.Value(m)
		vc, _ := c.Value(m)
		if va != vc {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestHostMetricSet(t *testing.T) {
	d := NewHost("h", 1)
	want := []string{MetricCPUUtil, MetricDiskFree, MetricMemFree, MetricProcCount}
	got := d.MetricNames()
	if len(got) != len(want) {
		t.Fatalf("MetricNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MetricNames = %v, want %v", got, want)
		}
	}
	if d.Class() != ClassHost || d.Name() != "h" {
		t.Error("identity wrong")
	}
}

func TestRouterAndSwitchMetricSets(t *testing.T) {
	r := NewRouter("r", 3, 1)
	if _, ok := r.Value(IfMetric(MetricIfUp, 3)); !ok {
		t.Error("router missing if.up.3")
	}
	if _, ok := r.Value(IfMetric(MetricIfInOctets, 1)); !ok {
		t.Error("router missing if.in.1")
	}
	if _, ok := r.Value(IfMetric(MetricIfUp, 4)); ok {
		t.Error("router has phantom interface 4")
	}
	s := NewSwitch("s", 8, 1)
	if _, ok := s.Value(IfMetric(MetricIfInOctets, 8)); !ok {
		t.Error("switch missing port 8")
	}
	if s.Class() != ClassSwitch {
		t.Error("class wrong")
	}
}

func TestMetricBounds(t *testing.T) {
	d := NewHost("h", 7)
	for i := 0; i < 500; i++ {
		d.Advance(1)
		cpu, _ := d.Value(MetricCPUUtil)
		if cpu < 2 || cpu > 98 {
			t.Fatalf("cpu.util out of bounds at step %d: %v", i, cpu)
		}
		disk, _ := d.Value(MetricDiskFree)
		if disk < 100 {
			t.Fatalf("disk.free below floor: %v", disk)
		}
	}
}

func TestCounterMonotonic(t *testing.T) {
	d := NewRouter("r", 1, 3)
	prev, _ := d.Value(IfMetric(MetricIfInOctets, 1))
	for i := 0; i < 200; i++ {
		d.Advance(1)
		cur, _ := d.Value(IfMetric(MetricIfInOctets, 1))
		if cur <= prev {
			t.Fatalf("counter not monotonic at step %d: %v <= %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestFaultInjection(t *testing.T) {
	d := NewHost("h", 5)
	d.Advance(10)

	d.InjectFault(FaultCPUPegged)
	if v, _ := d.Value(MetricCPUUtil); v != 100 {
		t.Fatalf("cpu with fault = %v", v)
	}
	d.InjectFault(FaultDiskFull)
	if v, _ := d.Value(MetricDiskFree); v != 1 {
		t.Fatalf("disk with fault = %v", v)
	}
	d.InjectFault(FaultMemLeak)
	if v, _ := d.Value(MetricMemFree); v != 4 {
		t.Fatalf("mem with fault = %v", v)
	}
	d.InjectFault(FaultProcStorm)
	if v, _ := d.Value(MetricProcCount); v != 2500 {
		t.Fatalf("procs with fault = %v", v)
	}
	if n := len(d.ActiveFaults()); n != 4 {
		t.Fatalf("ActiveFaults = %d", n)
	}

	d.ClearFault(FaultCPUPegged)
	d.Advance(1)
	if v, _ := d.Value(MetricCPUUtil); v == 100 {
		t.Fatal("cpu fault not cleared (or walk landed exactly on 100)")
	}
}

func TestLinkDownFault(t *testing.T) {
	r := NewRouter("r", 2, 9)
	r.InjectFault(FaultLinkDown)
	for i := 1; i <= 2; i++ {
		if v, _ := r.Value(IfMetric(MetricIfUp, i)); v != 0 {
			t.Fatalf("if.up.%d with link-down = %v", i, v)
		}
	}
	// Unrelated metrics unaffected.
	if v, _ := r.Value(MetricCPUUtil); v == 0 {
		t.Fatal("cpu zeroed by link fault")
	}
	r.ClearFault(FaultLinkDown)
	if v, _ := r.Value(IfMetric(MetricIfUp, 1)); v != 1 {
		t.Fatal("link did not come back")
	}
}

func TestAddMetricErrors(t *testing.T) {
	d := New("d", ClassHost, 1)
	if err := d.AddMetric("m", nil); err == nil {
		t.Error("nil model accepted")
	}
	if err := d.AddMetric("m", Constant(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddMetric("m", Constant(2)); err == nil {
		t.Error("duplicate metric accepted")
	}
	if _, ok := d.Value("nope"); ok {
		t.Error("phantom metric")
	}
}

func TestStepCounter(t *testing.T) {
	d := NewHost("h", 1)
	if d.Step() != 0 {
		t.Fatal("initial step not 0")
	}
	d.Advance(7)
	if d.Step() != 7 {
		t.Fatalf("Step = %d", d.Step())
	}
}

func TestModelsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if v := Constant(5).Next(rng, 0); v != 5 {
		t.Errorf("Constant = %v", v)
	}
	s := &Sinusoid{Base: 100, Amp: 10, Period: 20}
	peak := s.Next(rng, 5) // sin(pi/2) = 1
	if peak < 109 || peak > 111 {
		t.Errorf("sinusoid peak = %v", peak)
	}
	zero := &Sinusoid{Base: 100, Amp: 10} // Period <= 0 guards against div-by-zero
	if v := zero.Next(rng, 3); v < 99.999 || v > 100.001 {
		t.Errorf("degenerate sinusoid = %v", v)
	}
	dr := &Drain{Start: 100, Rate: 10, Min: 5}
	if v := dr.Next(rng, 3); v != 70 {
		t.Errorf("drain = %v", v)
	}
	if v := dr.Next(rng, 50); v != 5 {
		t.Errorf("drain floor = %v", v)
	}
	sp := &Spiky{Base: 10, P: 1, SpikeValue: 99}
	if v := sp.Next(rng, 0); v != 99 {
		t.Errorf("certain spike = %v", v)
	}
	spNever := &Spiky{Base: 10, P: 0}
	if v := spNever.Next(rng, 0); v != 10 {
		t.Errorf("no-noise spiky = %v", v)
	}
}

func TestRandomWalkBoundsProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := &RandomWalk{Start: 50, Min: 0, Max: 100, MaxStep: 10}
		for i := 0; i < int(steps); i++ {
			v := w.Next(rng, i)
			if v < 0 || v > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &Counter{MinInc: 1, MaxInc: 10}
		prev := 0.0
		for i := 0; i < 50; i++ {
			v := c.Next(rng, i)
			if v <= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
