// Package device simulates the managed network equipment the paper's
// collector grid monitors: hosts, routers and switches whose metrics
// (processor usage, memory availability, disk space, process counts,
// interface traffic — the example workload of §4.1) evolve over discrete
// time steps under seeded randomness, with injectable faults. Each device
// exposes its metrics through a MIB so the real SNMP code path is
// exercised end to end.
package device

import (
	"math"
	"math/rand"
)

// Model produces the next value of one metric. Implementations are
// deterministic given the same RNG stream and step sequence.
type Model interface {
	// Next returns the metric value at the given step. rng is the
	// device-owned seeded source.
	Next(rng *rand.Rand, step int) float64
}

// Constant is a fixed-value metric.
type Constant float64

// Next implements Model.
func (c Constant) Next(*rand.Rand, int) float64 { return float64(c) }

// RandomWalk wanders between Min and Max, moving at most MaxStep per
// step. Typical for CPU utilization.
type RandomWalk struct {
	Start   float64
	Min     float64
	Max     float64
	MaxStep float64

	cur     float64
	started bool
}

// Next implements Model.
func (w *RandomWalk) Next(rng *rand.Rand, _ int) float64 {
	if !w.started {
		w.cur = w.Start
		w.started = true
	}
	w.cur += (rng.Float64()*2 - 1) * w.MaxStep
	if w.cur < w.Min {
		w.cur = w.Min
	}
	if w.cur > w.Max {
		w.cur = w.Max
	}
	return w.cur
}

// Sinusoid models a daily-load curve: Base + Amp*sin(2π·step/Period),
// plus uniform Noise. Typical for interface traffic.
type Sinusoid struct {
	Base   float64
	Amp    float64
	Period int
	Noise  float64
}

// Next implements Model.
func (s *Sinusoid) Next(rng *rand.Rand, step int) float64 {
	period := s.Period
	if period <= 0 {
		period = 1
	}
	v := s.Base + s.Amp*math.Sin(2*math.Pi*float64(step)/float64(period))
	if s.Noise > 0 {
		v += (rng.Float64()*2 - 1) * s.Noise
	}
	return v
}

// Drain decreases linearly from Start by Rate per step, floored at Min.
// Typical for free disk space on a filling filesystem.
type Drain struct {
	Start float64
	Rate  float64
	Min   float64
}

// Next implements Model.
func (d *Drain) Next(_ *rand.Rand, step int) float64 {
	v := d.Start - d.Rate*float64(step)
	if v < d.Min {
		return d.Min
	}
	return v
}

// Counter grows monotonically by a random increment in [MinInc, MaxInc]
// per step. Typical for interface octet counters.
type Counter struct {
	MinInc float64
	MaxInc float64

	total float64
}

// Next implements Model.
func (c *Counter) Next(rng *rand.Rand, _ int) float64 {
	inc := c.MinInc
	if c.MaxInc > c.MinInc {
		inc += rng.Float64() * (c.MaxInc - c.MinInc)
	}
	c.total += inc
	return c.total
}

// Spiky is a base value with occasional spikes: every step it spikes
// with probability P to SpikeValue, otherwise returns Base plus noise.
// Typical for process counts and queue depths.
type Spiky struct {
	Base       float64
	Noise      float64
	P          float64
	SpikeValue float64
}

// Next implements Model.
func (s *Spiky) Next(rng *rand.Rand, _ int) float64 {
	if rng.Float64() < s.P {
		return s.SpikeValue
	}
	if s.Noise > 0 {
		return s.Base + (rng.Float64()*2-1)*s.Noise
	}
	return s.Base
}
