package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Class categorizes simulated equipment.
type Class string

// Device classes.
const (
	ClassHost   Class = "host"
	ClassRouter Class = "router"
	ClassSwitch Class = "switch"
)

// Fault identifies an injectable failure mode.
type Fault string

// Faults. Each pins one or more metrics at pathological values until
// cleared, the way a real incident would.
const (
	FaultCPUPegged Fault = "cpu-pegged" // cpu.util -> 100
	FaultDiskFull  Fault = "disk-full"  // disk.free -> ~0
	FaultMemLeak   Fault = "mem-leak"   // mem.free -> ~0
	FaultLinkDown  Fault = "link-down"  // if.up -> 0, traffic stalls
	FaultProcStorm Fault = "proc-storm" // proc.count -> very high
)

// Standard metric names. Collector goals and analysis rules reference
// these; the ontology in internal/obs categorizes them.
const (
	MetricCPUUtil     = "cpu.util"   // percent busy
	MetricMemFree     = "mem.free"   // megabytes free
	MetricDiskFree    = "disk.free"  // megabytes free
	MetricProcCount   = "proc.count" // processes running
	MetricIfUp        = "if.up"      // 1 up, 0 down
	MetricIfInOctets  = "if.in"      // cumulative octets in
	MetricIfOutOctets = "if.out"     // cumulative octets out
)

type metricState struct {
	model Model
	value float64
}

// Device is one simulated piece of managed equipment. Metrics evolve
// when Advance is called; faults override the affected metrics. Safe for
// concurrent use (the SNMP server reads while the simulation advances).
type Device struct {
	name  string
	class Class

	mu      sync.RWMutex
	rng     *rand.Rand
	step    int
	metrics map[string]*metricState
	order   []string
	faults  map[Fault]bool
}

// New creates a device with no metrics; add them with AddMetric or use
// NewHost / NewRouter for the standard shapes.
func New(name string, class Class, seed int64) *Device {
	return &Device{
		name:    name,
		class:   class,
		rng:     rand.New(rand.NewSource(seed)),
		metrics: make(map[string]*metricState),
		faults:  make(map[Fault]bool),
	}
}

// NewHost builds a standard server-class device with the paper's example
// metric set: processor usage, memory availability, disk space and the
// process count (§4.1).
func NewHost(name string, seed int64) *Device {
	d := New(name, ClassHost, seed)
	d.AddMetric(MetricCPUUtil, &RandomWalk{Start: 30, Min: 2, Max: 98, MaxStep: 8})
	d.AddMetric(MetricMemFree, &RandomWalk{Start: 4096, Min: 128, Max: 8192, MaxStep: 256})
	d.AddMetric(MetricDiskFree, &Drain{Start: 50000, Rate: 4, Min: 100})
	d.AddMetric(MetricProcCount, &Spiky{Base: 120, Noise: 15, P: 0.02, SpikeValue: 900})
	return d
}

// NewRouter builds a router with CPU plus per-interface state for
// ifCount interfaces: up/down, in-octets and out-octets.
func NewRouter(name string, ifCount int, seed int64) *Device {
	d := New(name, ClassRouter, seed)
	d.AddMetric(MetricCPUUtil, &RandomWalk{Start: 15, Min: 1, Max: 95, MaxStep: 5})
	for i := 1; i <= ifCount; i++ {
		d.AddMetric(ifMetric(MetricIfUp, i), Constant(1))
		d.AddMetric(ifMetric(MetricIfInOctets, i), &Counter{MinInc: 1000, MaxInc: 100000})
		d.AddMetric(ifMetric(MetricIfOutOctets, i), &Counter{MinInc: 1000, MaxInc: 100000})
	}
	return d
}

// NewSwitch builds a switch: like a router but with more, slower ports.
func NewSwitch(name string, portCount int, seed int64) *Device {
	d := New(name, ClassSwitch, seed)
	d.AddMetric(MetricCPUUtil, &RandomWalk{Start: 8, Min: 1, Max: 60, MaxStep: 3})
	for i := 1; i <= portCount; i++ {
		d.AddMetric(ifMetric(MetricIfUp, i), Constant(1))
		d.AddMetric(ifMetric(MetricIfInOctets, i), &Counter{MinInc: 100, MaxInc: 20000})
	}
	return d
}

// ifMetric names a per-interface metric, e.g. "if.in.3".
func ifMetric(base string, idx int) string { return fmt.Sprintf("%s.%d", base, idx) }

// IfMetric exposes the per-interface naming scheme to collectors.
func IfMetric(base string, idx int) string { return ifMetric(base, idx) }

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Class returns the device class.
func (d *Device) Class() Class { return d.class }

// AddMetric registers a metric driven by the model. The initial value is
// the model's step-0 output.
func (d *Device) AddMetric(name string, m Model) error {
	if m == nil {
		return errors.New("device: nil model")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.metrics[name]; dup {
		return fmt.Errorf("device: duplicate metric %q", name)
	}
	d.metrics[name] = &metricState{model: m, value: m.Next(d.rng, 0)}
	d.order = append(d.order, name)
	sort.Strings(d.order)
	return nil
}

// MetricNames lists the device's metrics, sorted.
func (d *Device) MetricNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.order...)
}

// Value returns the current value of a metric, with any active fault
// override applied.
func (d *Device) Value(metric string) (float64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ms, ok := d.metrics[metric]
	if !ok {
		return 0, false
	}
	return d.overrideLocked(metric, ms.value), true
}

// Step returns the current simulation step.
func (d *Device) Step() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.step
}

// Advance moves the simulation forward n steps, recomputing every metric.
func (d *Device) Advance(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < n; i++ {
		d.step++
		for _, name := range d.order {
			ms := d.metrics[name]
			ms.value = ms.model.Next(d.rng, d.step)
		}
	}
}

// InjectFault activates a failure mode.
func (d *Device) InjectFault(f Fault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults[f] = true
}

// ClearFault deactivates a failure mode.
func (d *Device) ClearFault(f Fault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.faults, f)
}

// ActiveFaults lists active failure modes, sorted.
func (d *Device) ActiveFaults() []Fault {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Fault, 0, len(d.faults))
	for f := range d.faults {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// overrideLocked applies fault overrides to a metric value. Caller holds
// at least a read lock.
func (d *Device) overrideLocked(metric string, v float64) float64 {
	if len(d.faults) == 0 {
		return v
	}
	switch {
	case metric == MetricCPUUtil && d.faults[FaultCPUPegged]:
		return 100
	case metric == MetricDiskFree && d.faults[FaultDiskFull]:
		return 1
	case metric == MetricMemFree && d.faults[FaultMemLeak]:
		return 4
	case metric == MetricProcCount && d.faults[FaultProcStorm]:
		return 2500
	case d.faults[FaultLinkDown] && hasBase(metric, MetricIfUp):
		return 0
	}
	return v
}

// hasBase reports whether metric is base or "base.N".
func hasBase(metric, base string) bool {
	if metric == base {
		return true
	}
	return len(metric) > len(base) && metric[:len(base)] == base && metric[len(base)] == '.'
}
