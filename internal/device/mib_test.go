package device

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/snmp"
)

func TestBuildMIBIdentity(t *testing.T) {
	d := NewHost("web-1", 1)
	mib, err := BuildMIB(d)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mib.Get(OIDSysName)
	if err != nil || v.Str != "web-1" {
		t.Fatalf("sysName = %v, %v", v, err)
	}
	v, err = mib.Get(OIDSysClass)
	if err != nil || v.Str != "host" {
		t.Fatalf("sysClass = %v, %v", v, err)
	}
	v, err = mib.Get(OIDStep)
	if err != nil || v.Int != 0 {
		t.Fatalf("step = %v, %v", v, err)
	}
	d.Advance(3)
	v, _ = mib.Get(OIDStep)
	if v.Int != 3 {
		t.Fatalf("step after advance = %v", v)
	}
}

func TestMIBMetricsTrackDevice(t *testing.T) {
	d := NewHost("h", 2)
	mib, err := BuildMIB(d)
	if err != nil {
		t.Fatal(err)
	}
	idx := MetricIndex(d, MetricCPUUtil)
	if idx == 0 {
		t.Fatal("cpu.util has no index")
	}
	// Name table matches metric table.
	nameVal, err := mib.Get(MetricNameOID(idx))
	if err != nil || nameVal.Str != MetricCPUUtil {
		t.Fatalf("name table = %v, %v", nameVal, err)
	}
	before, _ := mib.Get(MetricOID(idx))
	want, _ := d.Value(MetricCPUUtil)
	if before.Float != want {
		t.Fatalf("MIB %v != device %v", before.Float, want)
	}
	d.Advance(5)
	after, _ := mib.Get(MetricOID(idx))
	nowWant, _ := d.Value(MetricCPUUtil)
	if after.Float != nowWant {
		t.Fatalf("MIB not live: %v != %v", after.Float, nowWant)
	}
}

func TestMetricIndexMissing(t *testing.T) {
	d := NewHost("h", 1)
	if MetricIndex(d, "no.such.metric") != 0 {
		t.Fatal("phantom metric index")
	}
}

func TestStationEndToEnd(t *testing.T) {
	d := NewHost("db-1", 11)
	st, err := StartStation(d, "127.0.0.1:0", "public")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cli := snmp.NewClient("public", snmp.WithTimeout(2*time.Second))
	vbs, err := cli.Get(context.Background(), st.Addr(), OIDSysName)
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Str != "db-1" {
		t.Fatalf("sysName over UDP = %v", vbs[0].Value)
	}

	// Walk the metric table: one entry per metric.
	metrics, err := cli.Walk(context.Background(), st.Addr(), OIDMetricBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != len(d.MetricNames()) {
		t.Fatalf("walked %d metrics, want %d", len(metrics), len(d.MetricNames()))
	}
	for _, vb := range metrics {
		if _, ok := vb.Value.AsFloat(); !ok {
			t.Fatalf("metric %s not numeric: %v", vb.OID, vb.Value)
		}
	}
}

func TestFleet(t *testing.T) {
	devices := []*Device{
		NewHost("h1", 1),
		NewHost("h2", 2),
		NewRouter("r1", 2, 3),
	}
	fleet, err := NewFleet(devices, "public")
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	if len(fleet.Stations()) != 3 {
		t.Fatalf("stations = %d", len(fleet.Stations()))
	}
	st, ok := fleet.Station("r1")
	if !ok || st.Device.Name() != "r1" {
		t.Fatal("Station lookup failed")
	}
	if _, ok := fleet.Station("ghost"); ok {
		t.Fatal("phantom station")
	}

	fleet.Advance(4)
	for _, st := range fleet.Stations() {
		if st.Device.Step() != 4 {
			t.Fatalf("%s step = %d", st.Device.Name(), st.Device.Step())
		}
	}

	// Each station is queryable.
	cli := snmp.NewClient("public", snmp.WithTimeout(2*time.Second))
	for _, st := range fleet.Stations() {
		vbs, err := cli.Get(context.Background(), st.Addr(), OIDSysName)
		if err != nil {
			t.Fatalf("%s: %v", st.Device.Name(), err)
		}
		if vbs[0].Value.Str != st.Device.Name() {
			t.Fatalf("station identity mismatch: %v", vbs[0].Value)
		}
	}
}
