package device

import (
	"fmt"
	"sort"

	"agentgrid/internal/snmp"
)

// OID layout for simulated devices. System identity lives under the
// standard MIB-2 system subtree; float-valued metrics live under a
// private enterprise subtree, indexed in sorted metric-name order so the
// mapping is stable and walkable.
var (
	// OIDSysName is the device name (.1.3.6.1.2.1.1.5.0, as in MIB-2).
	OIDSysName = snmp.MustParseOID("1.3.6.1.2.1.1.5.0")
	// OIDSysClass is the device class (private extension).
	OIDSysClass = snmp.MustParseOID("1.3.6.1.4.1.5000.1.1.0")
	// OIDMetricBase roots the metric table; entry i is OIDMetricBase.i.
	OIDMetricBase = snmp.MustParseOID("1.3.6.1.4.1.5000.2")
	// OIDMetricNameBase roots the parallel metric-name table.
	OIDMetricNameBase = snmp.MustParseOID("1.3.6.1.4.1.5000.3")
	// OIDStep exposes the device's simulation step counter.
	OIDStep = snmp.MustParseOID("1.3.6.1.4.1.5000.4.0")
)

// MetricOID returns the OID serving the metric with the given index in
// the device's sorted metric-name list (1-based, as SNMP tables are).
func MetricOID(index int) snmp.OID {
	return OIDMetricBase.Append(uint32(index))
}

// MetricNameOID returns the OID serving the metric's name.
func MetricNameOID(index int) snmp.OID {
	return OIDMetricNameBase.Append(uint32(index))
}

// BuildMIB constructs the MIB view of a device: identity scalars, the
// metric-name table and live float gauges for every metric. The MIB
// reads through to the device, so values track the simulation.
func BuildMIB(d *Device) (*snmp.MIB, error) {
	mib := snmp.NewMIB()
	if err := mib.RegisterScalar(OIDSysName, snmp.StringValue(d.Name())); err != nil {
		return nil, err
	}
	if err := mib.RegisterScalar(OIDSysClass, snmp.StringValue(string(d.Class()))); err != nil {
		return nil, err
	}
	if err := mib.Register(OIDStep, func() snmp.Value {
		return snmp.IntegerValue(int64(d.Step()))
	}, nil); err != nil {
		return nil, err
	}
	names := d.MetricNames()
	sort.Strings(names)
	for i, name := range names {
		idx := i + 1
		metric := name
		if err := mib.RegisterScalar(MetricNameOID(idx), snmp.StringValue(metric)); err != nil {
			return nil, err
		}
		if err := mib.Register(MetricOID(idx), func() snmp.Value {
			v, ok := d.Value(metric)
			if !ok {
				return snmp.NullValue()
			}
			return snmp.FloatValue(v)
		}, nil); err != nil {
			return nil, err
		}
	}
	return mib, nil
}

// MetricIndex returns the 1-based table index of a metric on the device,
// or 0 when absent. Collectors use it to translate goal metric names
// into OIDs.
func MetricIndex(d *Device, metric string) int {
	names := d.MetricNames()
	sort.Strings(names)
	for i, name := range names {
		if name == metric {
			return i + 1
		}
	}
	return 0
}

// Station couples a device with the SNMP server exposing it.
type Station struct {
	Device *Device
	Server *snmp.Server
}

// StartStation builds the device's MIB and serves it over UDP on addr
// with the given community.
func StartStation(d *Device, addr, community string, opts ...snmp.ServerOption) (*Station, error) {
	mib, err := BuildMIB(d)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", d.Name(), err)
	}
	srv, err := snmp.NewServer(addr, community, mib, opts...)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", d.Name(), err)
	}
	return &Station{Device: d, Server: srv}, nil
}

// Addr returns the station's SNMP endpoint.
func (s *Station) Addr() string { return s.Server.Addr() }

// OIDTrapFault is the varbind OID carrying the fault name in a trap.
var OIDTrapFault = snmp.MustParseOID("1.3.6.1.4.1.5000.5.1")

// SendFaultTrap emits a trap announcing an active fault. The varbinds
// identify the device (sysName) and the fault, so trap consumers can
// react without polling.
func (s *Station) SendFaultTrap(f Fault) error {
	return s.Server.SendTrap([]snmp.VarBind{
		{OID: OIDSysName, Value: snmp.StringValue(s.Device.Name())},
		{OID: OIDTrapFault, Value: snmp.StringValue(string(f))},
	})
}

// Close stops the station's server.
func (s *Station) Close() error { return s.Server.Close() }

// Fleet is a set of stations advancing in lockstep — the managed network
// of one site.
type Fleet struct {
	stations []*Station
	byName   map[string]*Station
}

// NewFleet starts one station per device, all on ephemeral loopback
// ports with the same community.
func NewFleet(devices []*Device, community string) (*Fleet, error) {
	f := &Fleet{byName: make(map[string]*Station, len(devices))}
	for _, d := range devices {
		st, err := StartStation(d, "127.0.0.1:0", community)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		f.stations = append(f.stations, st)
		f.byName[d.Name()] = st
	}
	return f, nil
}

// Stations returns all stations in creation order.
func (f *Fleet) Stations() []*Station { return f.stations }

// Station returns the station for a device name.
func (f *Fleet) Station(name string) (*Station, bool) {
	st, ok := f.byName[name]
	return st, ok
}

// Advance moves every device forward n steps.
func (f *Fleet) Advance(n int) {
	for _, st := range f.stations {
		st.Device.Advance(n)
	}
}

// Close stops every station.
func (f *Fleet) Close() error {
	var firstErr error
	for _, st := range f.stations {
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
