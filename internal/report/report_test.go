package report

import (
	"context"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/analyze"
	"agentgrid/internal/obs"
	"agentgrid/internal/rules"
	"agentgrid/internal/store"
)

func seededStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New(64)
	for step := 1; step <= 10; step++ {
		for dev, base := range map[string]float64{"h1": 50, "h2": 20} {
			for metric, off := range map[string]float64{"cpu.util": 0, "mem.free": 1000} {
				err := st.Append(obs.Record{
					Site: "site1", Device: dev, Metric: metric,
					Value: base + off + float64(step),
					Step:  step, Time: time.Unix(int64(step), 0).UTC(),
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return st
}

func newIG(t *testing.T, mod func(*Config)) *Interface {
	t.Helper()
	cfg := Config{Store: seededStore(t)}
	if mod != nil {
		mod(&cfg)
	}
	a := agent.New(acl.NewAID("ig", "site1"), func(context.Context, *acl.Message) error { return nil })
	ig, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func sampleAlerts() []rules.Alert {
	return []rules.Alert{
		{Rule: "r1", Severity: rules.SeverityInfo, Site: "site1", Device: "h1", Message: "fyi"},
		{Rule: "r2", Severity: rules.SeverityWarning, Site: "site1", Device: "h2", Message: "warn"},
		{Rule: "r3", Severity: rules.SeverityCritical, Site: "site2", Message: "bad"},
	}
}

func TestConfigValidation(t *testing.T) {
	a := agent.New(acl.NewAID("ig", "s"), func(context.Context, *acl.Message) error { return nil })
	if _, err := New(a, Config{}); err == nil {
		t.Fatal("missing store accepted")
	}
}

func TestAlertsHistoryAndFilter(t *testing.T) {
	ig := newIG(t, nil)
	ig.AddAlerts(sampleAlerts())
	if got := ig.Alerts(""); len(got) != 3 {
		t.Fatalf("all alerts = %d", len(got))
	}
	if got := ig.Alerts(rules.SeverityWarning); len(got) != 2 {
		t.Fatalf("warning+ = %d", len(got))
	}
	if got := ig.Alerts(rules.SeverityCritical); len(got) != 1 || got[0].Rule != "r3" {
		t.Fatalf("critical = %+v", got)
	}
	stats := ig.Stats()
	if stats.AlertBundles != 1 || stats.Alerts != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAlertHistoryBounded(t *testing.T) {
	ig := newIG(t, func(c *Config) { c.MaxAlerts = 5 })
	for i := 0; i < 20; i++ {
		ig.AddAlerts([]rules.Alert{{Rule: "r", Message: string(rune('a' + i))}})
	}
	got := ig.Alerts("")
	if len(got) != 5 {
		t.Fatalf("retained %d", len(got))
	}
	if got[4].Message != "t" { // last of 20: 'a'+19
		t.Fatalf("kept wrong tail: %q", got[4].Message)
	}
}

func TestSubscribeUnsubscribe(t *testing.T) {
	ig := newIG(t, nil)
	sub := ig.Subscribe(8)
	ig.AddAlerts(sampleAlerts()[:2])
	if a := <-sub; a.Rule != "r1" {
		t.Fatalf("first = %+v", a)
	}
	if a := <-sub; a.Rule != "r2" {
		t.Fatalf("second = %+v", a)
	}
	ig.Unsubscribe(sub)
	if _, open := <-sub; open {
		t.Fatal("channel not closed")
	}
	// Unsubscribing twice is harmless.
	ig.Unsubscribe(sub)
	ig.AddAlerts(sampleAlerts())
}

func TestSlowSubscriberDoesNotBlock(t *testing.T) {
	ig := newIG(t, nil)
	ig.Subscribe(1) // never drained
	done := make(chan struct{})
	go func() {
		defer close(done)
		ig.AddAlerts(sampleAlerts())
		ig.AddAlerts(sampleAlerts())
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AddAlerts blocked on slow subscriber")
	}
}

func TestBuildDeviceReport(t *testing.T) {
	ig := newIG(t, nil)
	rep, err := ig.BuildDeviceReport("site1", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Device != "h1" || len(rep.Metrics) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	cpu := rep.Metrics[0]
	if cpu.Metric != "cpu.util" || cpu.Latest != 60 || cpu.Step != 10 {
		t.Fatalf("cpu status = %+v", cpu)
	}
	if cpu.Min != 51 || cpu.Max != 60 || cpu.Avg != 55.5 {
		t.Fatalf("cpu aggregates = %+v", cpu)
	}
	if _, err := ig.BuildDeviceReport("site1", "ghost"); err == nil {
		t.Fatal("ghost device reported")
	}
}

func TestBuildSiteReport(t *testing.T) {
	ig := newIG(t, nil)
	ig.AddAlerts(sampleAlerts())
	rep, err := ig.BuildSiteReport("site1", time.Unix(1000, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) != 2 {
		t.Fatalf("devices = %d", len(rep.Devices))
	}
	if len(rep.Alerts) != 2 { // only site1 alerts
		t.Fatalf("alerts = %+v", rep.Alerts)
	}
	if _, err := ig.BuildSiteReport("nowhere", time.Now()); err == nil {
		t.Fatal("phantom site reported")
	}
	prefs := ig.Preferences()
	if prefs["site/site1"] != 1 {
		t.Fatalf("prefs = %+v", prefs)
	}
}

func TestRenderFormats(t *testing.T) {
	ig := newIG(t, nil)
	ig.AddAlerts(sampleAlerts())
	rep, err := ig.BuildSiteReport("site1", time.Unix(1000, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	text, err := Render(rep, FormatText)
	if err != nil || !strings.Contains(string(text), "Device h1") || !strings.Contains(string(text), "cpu.util") {
		t.Fatalf("text render: %v\n%s", err, text)
	}
	htmlOut, err := Render(rep, FormatHTML)
	if err != nil || !strings.Contains(string(htmlOut), "<table") || !strings.Contains(string(htmlOut), "<h2>h1</h2>") {
		t.Fatalf("html render: %v", err)
	}
	xmlOut, err := Render(rep, FormatXML)
	if err != nil || !strings.Contains(string(xmlOut), "<site-report") {
		t.Fatalf("xml render: %v\n%s", err, xmlOut)
	}
	jsonOut, err := Render(rep, FormatJSON)
	if err != nil || !strings.Contains(string(jsonOut), `"site": "site1"`) {
		t.Fatalf("json render: %v", err)
	}
	if _, err := Render(rep, Format("pdf")); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestHandleAlertsOverACL(t *testing.T) {
	st := seededStore(t)
	a := agent.New(acl.NewAID("ig", "site1"), func(context.Context, *acl.Message) error { return nil })
	ig, err := New(a, Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	content, _ := analyze.EncodeAlerts(sampleAlerts())
	msg := &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("pg-root", "root"),
		Receivers:    []acl.AID{a.ID()},
		Content:      content,
		Ontology:     acl.OntologyNetworkManagement,
	}
	if err := a.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for len(ig.Alerts("")) != 3 {
		select {
		case <-deadline:
			t.Fatal("alerts never ingested")
		case <-time.After(time.Millisecond):
		}
	}
}

type fakeRuleSink struct {
	added []string
	err   error
}

func (f *fakeRuleSink) AddSource(src string) ([]string, error) {
	if f.err != nil {
		return nil, f.err
	}
	f.added = append(f.added, src)
	return []string{"r1"}, nil
}

func TestFeedbackLearnRules(t *testing.T) {
	sink := &fakeRuleSink{}
	goalCalls := 0
	ig := newIG(t, func(c *Config) {
		c.Rules = sink
		c.Goals = func(_ context.Context, spec string) error {
			goalCalls++
			return nil
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ig.Agent().Run(ctx)

	send := func(content string) {
		ig.Agent().Deliver(&acl.Message{
			Performative: acl.Request,
			Sender:       acl.NewAID("user", "site1"),
			Receivers:    []acl.AID{ig.Agent().ID()},
			Ontology:     acl.OntologyGridManagement,
			Content:      []byte(content),
		})
	}
	send("learn-rules\nrule \"x\" { when latest(m) > 1 then alert \"m\" }")
	send("goal g site1 h1 host - 1s")
	send("do-something-else")

	deadline := time.After(5 * time.Second)
	for {
		s := ig.Stats()
		if s.RulesLearned == 1 && s.GoalsAdded == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stats = %+v", ig.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	if len(sink.added) != 1 || goalCalls != 1 {
		t.Fatalf("sink = %v, goals = %d", sink.added, goalCalls)
	}
}

func TestSeverityRank(t *testing.T) {
	if severityRank(rules.SeverityCritical) <= severityRank(rules.SeverityWarning) {
		t.Fatal("ranks out of order")
	}
	if severityRank(rules.SeverityWarning) <= severityRank(rules.SeverityInfo) {
		t.Fatal("ranks out of order")
	}
	if severityRank("") != 0 {
		t.Fatal("empty severity rank")
	}
}
