package report

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// A detached server — the topology control plane's listener before any
// deployment — must answer every grid-backed endpoint with the /readyz
// not-yet-serving contract: 503 plus a JSON body naming what is
// missing. Never an empty 200, never a 404.
func TestDetachedServerNotServingContract(t *testing.T) {
	srv, err := NewDetachedServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDetachedServer: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	jsonPaths := []string{
		"/site/site1", "/device/site1/host-01", "/alerts", "/readyz",
		"/metrics", "/metrics.json", "/stats", "/trace/abc", "/topology",
	}
	for _, path := range jsonPaths {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d, want 503", path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("GET %s content type = %q, want JSON", path, ct)
		}
		var out struct {
			Ready bool   `json:"ready"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Errorf("GET %s body is not JSON: %v\n%s", path, err, body)
			continue
		}
		if out.Ready || out.Error == "" {
			t.Errorf("GET %s body = %+v", path, out)
		}
	}

	// The liveness probe keeps its plain-text shape but still reports
	// unhealthy while detached.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "unhealthy") {
		t.Errorf("detached /healthz = %d %q", resp.StatusCode, body)
	}
}

// SetInterface flips a detached server into a serving one and back.
func TestSetInterfaceAttachDetach(t *testing.T) {
	srv, err := NewDetachedServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/alerts"); code != http.StatusServiceUnavailable {
		t.Fatalf("detached /alerts = %d", code)
	}
	srv.SetInterface(newIG(t, nil))
	if code := get("/alerts"); code != http.StatusOK {
		t.Fatalf("attached /alerts = %d", code)
	}
	srv.SetInterface(nil)
	if code := get("/alerts"); code != http.StatusServiceUnavailable {
		t.Fatalf("re-detached /alerts = %d", code)
	}
}
