package report

import "encoding/json"

// jsonMarshalIndent is a tiny indirection so HTTP handlers share one
// encoding style.
func jsonMarshalIndent(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
