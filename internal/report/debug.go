package report

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"agentgrid/internal/flight"
)

// Debug endpoints: the flight recorder and the on-demand profiler.
//
//	GET  /debug/flight                 stats + recent events (text)
//	GET  /debug/flight?format=json     stats + events + dump index (JSON)
//	GET  /debug/flight?n=50            bound the event tail
//	GET  /debug/flight?dump=3          one retained dump (text or JSON)
//	POST /debug/flight                 trigger a dump, return it (JSON)
//	GET  /debug/profile?kind=cpu&seconds=5   pprof capture (binary)
//	GET  /debug/profile?kind=heap&debug=1    pprof lookup (text)
//
// Both honor the detached-server contract: 503 + JSON detail until an
// interface grid with a flight recorder is attached.

// flightRecorder returns the attached grid's flight recorder, writing
// the not-serving/not-enabled answer itself when there is none.
func (s *Server) flightRecorder(w http.ResponseWriter) *flight.Recorder {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return nil
	}
	if ig.cfg.Flight == nil {
		http.Error(w, "flight recorder not enabled", http.StatusNotFound)
		return nil
	}
	return ig.cfg.Flight
}

// handleFlight serves the flight recorder's ring and dump list.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	rec := s.flightRecorder(w)
	if rec == nil {
		return
	}
	q := r.URL.Query()
	asJSON := q.Get("format") == "json"

	if r.Method == http.MethodPost {
		reason := q.Get("reason")
		if reason == "" {
			reason = "manual: http"
		}
		d := rec.Trigger(reason)
		writeJSON(w, d)
		return
	}

	if ds := q.Get("dump"); ds != "" {
		seq, err := strconv.ParseUint(ds, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad dump sequence %q", ds), http.StatusBadRequest)
			return
		}
		d, ok := rec.Dump(seq)
		if !ok {
			http.Error(w, fmt.Sprintf("no retained dump #%d", seq), http.StatusNotFound)
			return
		}
		if asJSON {
			writeJSON(w, d)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		flight.WriteDumpText(w, d)
		return
	}

	events := rec.Events()
	if ns := q.Get("n"); ns != "" {
		if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(events) {
			events = events[len(events)-n:]
		}
	}
	if asJSON {
		dumps := rec.Dumps()
		index := make([]struct {
			Seq    uint64 `json:"seq"`
			Reason string `json:"reason"`
			Events int    `json:"events"`
		}, len(dumps))
		for i, d := range dumps {
			index[i].Seq, index[i].Reason, index[i].Events = d.Seq, d.Reason, len(d.Events)
		}
		writeJSON(w, struct {
			Stats  flight.Stats   `json:"stats"`
			Events []flight.Event `json:"events"`
			Dumps  any            `json:"dumps"`
		}{Stats: rec.Stats(), Events: events, Dumps: index})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flight.WriteStatsText(w, rec.Stats())
	fmt.Fprintf(w, "\nlast %d events:\n", len(events))
	flight.WriteEventsText(w, events)
	if dumps := rec.Dumps(); len(dumps) > 0 {
		fmt.Fprintf(w, "\nretained dumps (fetch with ?dump=<seq>):\n")
		for _, d := range dumps {
			fmt.Fprintf(w, "  #%d %s (%d events)\n", d.Seq, d.Reason, len(d.Events))
		}
	}
}

// handleProfile serves an on-demand pprof capture. CPU, mutex and block
// kinds sample for ?seconds (default 5, clamped to 20 so the capture
// finishes inside the server's write timeout); the snapshot kinds
// (heap, allocs, goroutine, threadcreate) return immediately.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	rec := s.flightRecorder(w)
	if rec == nil {
		return
	}
	q := r.URL.Query()
	kind := q.Get("kind")
	if kind == "" {
		kind = "cpu"
	}
	seconds := 5
	if ss := q.Get("seconds"); ss != "" {
		n, err := strconv.Atoi(ss)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad seconds %q", ss), http.StatusBadRequest)
			return
		}
		seconds = n
	}
	if seconds > 20 {
		seconds = 20
	}
	debug := 0
	if ds := q.Get("debug"); ds != "" {
		if n, err := strconv.Atoi(ds); err == nil {
			debug = n
		}
	}
	if debug > 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename="%s.pprof"`, kind))
	}
	if err := flight.CaptureProfile(w, kind, time.Duration(seconds)*time.Second, debug); err != nil {
		// Headers may already be out; report what we can.
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// writeJSON renders v with the package's stable JSON settings.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := jsonMarshalIndent(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
