// Package report implements the interface agent grid (IG, §3.4): the
// communication channel between the management grid and the human
// manager. It receives alert bundles from the processor grid, assembles
// management reports in several formats (text, HTML, XML — the paper's
// "flexible and multi-protocol" interface), fans alerts out to
// subscribers, serves everything over HTTP, and carries user feedback
// (new rules, new goals) back into the grid.
package report

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"html"
	"sort"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/analyze"
	"agentgrid/internal/flight"
	"agentgrid/internal/rules"
	"agentgrid/internal/store"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// Format selects a report rendering.
type Format string

// Supported report formats.
const (
	FormatText Format = "text"
	FormatHTML Format = "html"
	FormatXML  Format = "xml"
	FormatJSON Format = "json"
)

// RuleSink accepts learned rules (worker rule bases implement this via
// a small adapter in core).
type RuleSink interface {
	AddSource(src string) ([]string, error)
}

// GoalSink accepts new collection goals, as "goal ..." request strings
// understood by collectors.
type GoalSink func(ctx context.Context, goalSpec string) error

// Config configures the interface grid agent.
type Config struct {
	// Store backs report queries.
	Store analyze.StoreReader
	// Rules, when set, receives rules learned from user feedback.
	Rules RuleSink
	// Goals, when set, receives new collection goals from feedback.
	Goals GoalSink
	// MaxAlerts bounds the retained alert history (default 1024).
	MaxAlerts int
	// StatsFunc, when set, supplies a grid-wide status snapshot served
	// at GET /stats (any JSON-encodable value). Optional.
	StatsFunc func() any
	// Tracer, when set, backs the GET /trace/{id} endpoint. Optional.
	Tracer *trace.Tracer
	// Metrics, when set, registers the interface grid's alert counters
	// and backs the server's GET /metrics endpoints. Optional.
	Metrics *telemetry.Registry
	// Health, when set, backs the server's /healthz and /readyz
	// endpoints with registered per-subsystem checks. Optional.
	Health *telemetry.Health
	// Flight, when set, journals alert ingestion events and backs the
	// server's /debug/flight and /debug/profile endpoints. Optional.
	Flight *flight.Recorder
	// ErrorLog receives processing errors. Optional.
	ErrorLog func(error)
}

// Stats counts interface-grid activity.
type Stats struct {
	AlertBundles uint64
	Alerts       uint64
	Reports      uint64
	RulesLearned uint64
	GoalsAdded   uint64
	Duplicates   uint64
}

// Interface is the IG agent.
type Interface struct {
	a   *agent.Agent
	cfg Config

	mu     sync.Mutex
	alerts []rules.Alert      // guarded by mu
	seen   map[string]bool    // guarded by mu; dedup keys of retained alerts
	subs   []chan rules.Alert // guarded by mu
	prefs  map[string]int     // guarded by mu; report name -> request count (preference learning)
	stats  Stats              // guarded by mu

	mAlerts     *telemetry.Counter
	mDuplicates *telemetry.Counter
	mReports    *telemetry.Counter
	fAlert      *flight.Journal
}

// New wires interface-grid behaviour onto an agent.
func New(a *agent.Agent, cfg Config) (*Interface, error) {
	if cfg.Store == nil {
		return nil, errors.New("report: config needs a store")
	}
	if cfg.MaxAlerts <= 0 {
		cfg.MaxAlerts = 1024
	}
	ig := &Interface{a: a, cfg: cfg, prefs: make(map[string]int)}
	r := cfg.Metrics
	l := telemetry.Labels{"container": a.ID().Platform()}
	ig.mAlerts = r.Counter("report_alerts_total", "fresh alerts retained by the interface grid", l)
	ig.mDuplicates = r.Counter("report_alerts_duplicate_total", "alerts suppressed as duplicates", l)
	ig.mReports = r.Counter("report_reports_total", "management reports built", l)
	ig.fAlert = cfg.Flight.Journal("report.alert")
	a.HandleFunc(agent.Selector{
		Performative: acl.Inform,
		Ontology:     acl.OntologyNetworkManagement,
	}, ig.handleAlerts)
	a.HandleFunc(agent.Selector{
		Performative: acl.Request,
		Ontology:     acl.OntologyGridManagement,
	}, ig.handleFeedback)
	return ig, nil
}

// Agent returns the underlying agent.
func (ig *Interface) Agent() *agent.Agent { return ig.a }

// Stats returns activity counters.
func (ig *Interface) Stats() Stats {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	return ig.stats
}

// handleAlerts ingests an alert bundle from the processor grid.
func (ig *Interface) handleAlerts(_ context.Context, a *agent.Agent, m *acl.Message) {
	sp := a.Tracer().ContinueFromMessage("report.alert", m)
	sp.SetAttr("agent", a.ID().Name)
	defer sp.End()
	alerts, err := analyze.DecodeAlerts(m.Content)
	if err != nil {
		sp.SetError(err)
		ig.logErr(fmt.Errorf("report: alerts from %s: %w", m.Sender, err))
		if ig.fAlert != nil {
			ig.fAlert.Emit(flight.Event{
				Container:    a.ID().Platform(),
				Conversation: m.ConversationID,
				TraceID:      sp.TID(),
				Outcome:      flight.OutcomeError,
				Err:          err.Error(),
			})
		}
		return
	}
	sp.SetAttrInt("alerts", len(alerts))
	if ig.fAlert != nil {
		ig.fAlert.Emit(flight.Event{
			Container:    a.ID().Platform(),
			Conversation: m.ConversationID,
			TraceID:      sp.TID(),
			Size:         len(alerts),
		})
	}
	ig.AddAlerts(alerts)
}

// AddAlerts records alerts and notifies subscribers. Exposed for
// in-process pipelines (collector local alerts use it too).
//
// Alerts identical in (rule, site, device, step) are suppressed: the
// same data point analysed twice — e.g. a site-level conclusion reached
// once per collector batch — is one incident, not several.
func (ig *Interface) AddAlerts(alerts []rules.Alert) {
	if len(alerts) == 0 {
		return
	}
	ig.mu.Lock()
	fresh := alerts[:0]
	for _, a := range alerts {
		key := alertKey(a)
		if ig.seen == nil {
			ig.seen = make(map[string]bool)
		}
		if ig.seen[key] {
			ig.stats.Duplicates++
			ig.mDuplicates.Inc()
			continue
		}
		ig.seen[key] = true
		fresh = append(fresh, a)
	}
	if len(fresh) == 0 {
		ig.mu.Unlock()
		return
	}
	ig.alerts = append(ig.alerts, fresh...)
	if over := len(ig.alerts) - ig.cfg.MaxAlerts; over > 0 {
		ig.alerts = append([]rules.Alert(nil), ig.alerts[over:]...)
	}
	// Bound the dedup memory alongside the history.
	if len(ig.seen) > 4*ig.cfg.MaxAlerts {
		ig.seen = make(map[string]bool, len(ig.alerts))
		for _, a := range ig.alerts {
			ig.seen[alertKey(a)] = true
		}
	}
	ig.stats.AlertBundles++
	ig.stats.Alerts += uint64(len(fresh))
	// Notify while still holding ig.mu: the sends are non-blocking, and
	// the lock serializes them against Unsubscribe's close() — a send
	// racing a freshly closed subscription channel would panic.
	for _, sub := range ig.subs {
		for _, alert := range fresh {
			select {
			case sub <- alert:
			default: // slow subscriber loses alerts rather than blocking the grid
			}
		}
	}
	ig.mu.Unlock()
	ig.mAlerts.Add(uint64(len(fresh)))
}

func alertKey(a rules.Alert) string {
	return fmt.Sprintf("%s|%s|%s|%d|%s", a.Rule, a.Site, a.Device, a.Step, a.Message)
}

// Alerts returns the retained alert history, oldest first, optionally
// filtered by minimum severity.
func (ig *Interface) Alerts(minSeverity rules.Severity) []rules.Alert {
	rank := severityRank(minSeverity)
	ig.mu.Lock()
	defer ig.mu.Unlock()
	out := make([]rules.Alert, 0, len(ig.alerts))
	for _, a := range ig.alerts {
		if severityRank(a.Severity) >= rank {
			out = append(out, a)
		}
	}
	return out
}

func severityRank(s rules.Severity) int {
	switch s {
	case rules.SeverityCritical:
		return 2
	case rules.SeverityWarning:
		return 1
	default:
		return 0
	}
}

// Subscribe returns a channel receiving future alerts (the "alerts to
// the user" stream). Close it through Unsubscribe.
func (ig *Interface) Subscribe(buffer int) chan rules.Alert {
	ch := make(chan rules.Alert, buffer)
	ig.mu.Lock()
	ig.subs = append(ig.subs, ch)
	ig.mu.Unlock()
	return ch
}

// WaitAlert blocks until an alert matching pred is retained or
// arrives, or ctx ends; it returns the matching alert and whether one
// was found. A nil pred matches any alert. The wait is subscription-
// based — no polling — and checks the retained history after
// subscribing so a concurrent alert cannot slip through the gap.
func (ig *Interface) WaitAlert(ctx context.Context, pred func(rules.Alert) bool) (rules.Alert, bool) {
	if pred == nil {
		pred = func(rules.Alert) bool { return true }
	}
	sub := ig.Subscribe(64)
	defer ig.Unsubscribe(sub)
	for _, a := range ig.Alerts("") {
		if pred(a) {
			return a, true
		}
	}
	for {
		select {
		case a, ok := <-sub:
			if !ok {
				return rules.Alert{}, false
			}
			if pred(a) {
				return a, true
			}
		case <-ctx.Done():
			return rules.Alert{}, false
		}
	}
}

// Unsubscribe removes and closes a subscription channel.
func (ig *Interface) Unsubscribe(ch chan rules.Alert) {
	ig.mu.Lock()
	for i, sub := range ig.subs {
		if sub == ch {
			ig.subs = append(ig.subs[:i], ig.subs[i+1:]...)
			close(ch)
			break
		}
	}
	ig.mu.Unlock()
}

// handleFeedback processes user feedback requests: learning rules and
// adding goals through the grid (§3.4: "defining new rules and goals").
func (ig *Interface) handleFeedback(ctx context.Context, a *agent.Agent, m *acl.Message) {
	content := string(m.Content)
	switch {
	case strings.HasPrefix(content, "learn-rules\n"):
		src := strings.TrimPrefix(content, "learn-rules\n")
		if ig.cfg.Rules == nil {
			_ = a.Send(ctx, m.Reply(a.ID(), acl.Refuse))
			return
		}
		added, err := ig.cfg.Rules.AddSource(src)
		if err != nil {
			reply := m.Reply(a.ID(), acl.Refuse)
			reply.Content = []byte(err.Error())
			_ = a.Send(ctx, reply)
			return
		}
		ig.mu.Lock()
		ig.stats.RulesLearned += uint64(len(added))
		ig.mu.Unlock()
		reply := m.Reply(a.ID(), acl.Agree)
		reply.Content = []byte(strings.Join(added, ","))
		_ = a.Send(ctx, reply)
	case strings.HasPrefix(content, "goal "):
		if ig.cfg.Goals == nil {
			_ = a.Send(ctx, m.Reply(a.ID(), acl.Refuse))
			return
		}
		if err := ig.cfg.Goals(ctx, content); err != nil {
			reply := m.Reply(a.ID(), acl.Refuse)
			reply.Content = []byte(err.Error())
			_ = a.Send(ctx, reply)
			return
		}
		ig.mu.Lock()
		ig.stats.GoalsAdded++
		ig.mu.Unlock()
		_ = a.Send(ctx, m.Reply(a.ID(), acl.Agree))
	default:
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
	}
}

// Preferences returns how often each report was requested, the signal
// the paper's IG uses to customize itself to the user.
func (ig *Interface) Preferences() map[string]int {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	out := make(map[string]int, len(ig.prefs))
	for k, v := range ig.prefs {
		out[k] = v
	}
	return out
}

// ---- Reports ----

// DeviceReport summarizes one device's current state.
type DeviceReport struct {
	Site    string         `json:"site" xml:"site,attr"`
	Device  string         `json:"device" xml:"device,attr"`
	Metrics []MetricStatus `json:"metrics" xml:"metric"`
}

// MetricStatus is one metric's latest reading and short-window summary.
type MetricStatus struct {
	Metric string  `json:"metric" xml:"name,attr"`
	Latest float64 `json:"latest" xml:"latest,attr"`
	Avg    float64 `json:"avg" xml:"avg,attr"`
	Min    float64 `json:"min" xml:"min,attr"`
	Max    float64 `json:"max" xml:"max,attr"`
	Step   int     `json:"step" xml:"step,attr"`
}

// SiteReport aggregates devices and recent alerts for one site.
type SiteReport struct {
	XMLName xml.Name       `json:"-" xml:"site-report"`
	Site    string         `json:"site" xml:"site,attr"`
	Time    time.Time      `json:"time" xml:"time,attr"`
	Devices []DeviceReport `json:"devices" xml:"device"`
	Alerts  []rules.Alert  `json:"alerts" xml:"-"`
}

// BuildDeviceReport assembles a device report from the store.
func (ig *Interface) BuildDeviceReport(site, device string) (*DeviceReport, error) {
	ig.notePreference("device/" + site + "/" + device)
	keys := ig.cfg.Store.SeriesForDevice(site, device)
	if len(keys) == 0 {
		return nil, fmt.Errorf("report: no data for %s/%s", site, device)
	}
	rep := &DeviceReport{Site: site, Device: device}
	for _, key := range keys {
		_, _, metric, err := store.ParseKey(key)
		if err != nil {
			continue
		}
		pts := ig.cfg.Store.Window(key, 10)
		if len(pts) == 0 {
			continue
		}
		ms := MetricStatus{Metric: metric}
		ms.Latest = pts[len(pts)-1].Value
		ms.Step = pts[len(pts)-1].Step
		ms.Avg, _ = store.Avg(pts)
		ms.Min, _ = store.Min(pts)
		ms.Max, _ = store.Max(pts)
		rep.Metrics = append(rep.Metrics, ms)
	}
	sort.Slice(rep.Metrics, func(i, j int) bool { return rep.Metrics[i].Metric < rep.Metrics[j].Metric })
	ig.mu.Lock()
	ig.stats.Reports++
	ig.mu.Unlock()
	ig.mReports.Inc()
	return rep, nil
}

// BuildSiteReport assembles a site report with every known device.
func (ig *Interface) BuildSiteReport(site string, now time.Time) (*SiteReport, error) {
	ig.notePreference("site/" + site)
	rep := &SiteReport{Site: site, Time: now}
	// Devices are discoverable via the store's device index; the reader
	// interface exposes SeriesForDevice only, so walk via alerts +
	// series-for-metric is insufficient — require a device-indexed
	// store (*store.Store and *store.Federation both qualify).
	full, ok := ig.cfg.Store.(interface{ Devices() []string })
	if !ok {
		return nil, errors.New("report: site reports need a device-indexed store")
	}
	prefix := site + "/"
	for _, dev := range full.Devices() {
		if !strings.HasPrefix(dev, prefix) {
			continue
		}
		device := strings.TrimPrefix(dev, prefix)
		dr, err := ig.BuildDeviceReport(site, device)
		if err != nil {
			continue
		}
		rep.Devices = append(rep.Devices, *dr)
	}
	if len(rep.Devices) == 0 {
		return nil, fmt.Errorf("report: no devices for site %q", site)
	}
	for _, a := range ig.Alerts("") {
		if a.Site == site {
			rep.Alerts = append(rep.Alerts, a)
		}
	}
	ig.mu.Lock()
	ig.stats.Reports++
	ig.mu.Unlock()
	ig.mReports.Inc()
	return rep, nil
}

func (ig *Interface) notePreference(name string) {
	ig.mu.Lock()
	ig.prefs[name]++
	ig.mu.Unlock()
}

// Render serializes a site report in the requested format.
func Render(rep *SiteReport, f Format) ([]byte, error) {
	switch f {
	case FormatJSON:
		return json.MarshalIndent(rep, "", "  ")
	case FormatXML:
		return xml.MarshalIndent(rep, "", "  ")
	case FormatText:
		return []byte(renderText(rep)), nil
	case FormatHTML:
		return []byte(renderHTML(rep)), nil
	default:
		return nil, fmt.Errorf("report: unknown format %q", f)
	}
}

func renderText(rep *SiteReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Site report: %s (%s)\n", rep.Site, rep.Time.Format(time.RFC3339))
	for _, d := range rep.Devices {
		fmt.Fprintf(&b, "\n  Device %s\n", d.Device)
		for _, m := range d.Metrics {
			fmt.Fprintf(&b, "    %-14s latest %10.2f  avg %10.2f  min %10.2f  max %10.2f\n",
				m.Metric, m.Latest, m.Avg, m.Min, m.Max)
		}
	}
	if len(rep.Alerts) > 0 {
		fmt.Fprintf(&b, "\n  Alerts (%d):\n", len(rep.Alerts))
		for _, a := range rep.Alerts {
			fmt.Fprintf(&b, "    %s\n", a)
		}
	}
	return b.String()
}

func renderHTML(rep *SiteReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>Site %s</title></head><body>", html.EscapeString(rep.Site))
	fmt.Fprintf(&b, "<h1>Site report: %s</h1>", html.EscapeString(rep.Site))
	for _, d := range rep.Devices {
		fmt.Fprintf(&b, "<h2>%s</h2><table border=\"1\"><tr><th>Metric</th><th>Latest</th><th>Avg</th><th>Min</th><th>Max</th></tr>",
			html.EscapeString(d.Device))
		for _, m := range d.Metrics {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td></tr>",
				html.EscapeString(m.Metric), m.Latest, m.Avg, m.Min, m.Max)
		}
		b.WriteString("</table>")
	}
	if len(rep.Alerts) > 0 {
		b.WriteString("<h2>Alerts</h2><ul>")
		for _, a := range rep.Alerts {
			fmt.Fprintf(&b, "<li>%s</li>", html.EscapeString(a.String()))
		}
		b.WriteString("</ul>")
	}
	b.WriteString("</body></html>")
	return b.String()
}

func (ig *Interface) logErr(err error) {
	if ig.cfg.ErrorLog != nil {
		ig.cfg.ErrorLog(err)
	}
}
