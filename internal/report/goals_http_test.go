package report

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHTTPGoals(t *testing.T) {
	var added []string
	srv, ig := startHTTP(t, func(c *Config) {
		c.Goals = func(_ context.Context, spec string) error {
			if strings.Contains(spec, "reject-me") {
				return fmt.Errorf("bad goal")
			}
			added = append(added, spec)
			return nil
		}
	})
	base := "http://" + srv.Addr()

	resp, err := http.Post(base+"/goals", "text/plain", strings.NewReader(
		"goal g1 site1 h1 host addr1 5s\n\ngoal g2 site1 h2 host addr2 5s\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "added 2 goals") {
		t.Fatalf("goals post = %d %q", resp.StatusCode, body)
	}
	if len(added) != 2 || ig.Stats().GoalsAdded != 2 {
		t.Fatalf("added = %v, stats = %+v", added, ig.Stats())
	}

	// A failing goal turns into 400.
	resp, err = http.Post(base+"/goals", "text/plain", strings.NewReader("goal reject-me"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad goal = %d", resp.StatusCode)
	}
}

func TestHTTPGoalsNotWired(t *testing.T) {
	srv, _ := startHTTP(t, nil)
	resp, err := http.Post("http://"+srv.Addr()+"/goals", "text/plain", strings.NewReader("goal x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unwired goals = %d", resp.StatusCode)
	}
}

func TestHTTPGoalsTooLarge(t *testing.T) {
	srv, _ := startHTTP(t, func(c *Config) {
		c.Goals = func(context.Context, string) error { return nil }
	})
	huge := strings.Repeat("goal g s d c a 5s\n", 70000) // > 1 MiB
	resp, err := http.Post("http://"+srv.Addr()+"/goals", "text/plain", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge goals = %d", resp.StatusCode)
	}
}
