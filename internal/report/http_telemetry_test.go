package report

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"agentgrid/internal/telemetry"
)

func TestHTTPMetricsNotEnabled(t *testing.T) {
	srv, _ := startHTTP(t, nil)
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != 404 {
		t.Fatalf("metrics without registry = %d", code)
	}
	if code, _ := get(t, base+"/metrics.json"); code != 404 {
		t.Fatalf("metrics.json without registry = %d", code)
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	reg := telemetry.NewRegistry("agentgrid")
	reg.Counter("demo_requests_total", "demo requests", telemetry.Labels{"container": "ig"}).Add(5)
	srv, ig := startHTTP(t, func(c *Config) { c.Metrics = reg })
	ig.AddAlerts(sampleAlerts())
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE agentgrid_demo_requests_total counter",
		`agentgrid_demo_requests_total{container="ig"} 5`,
		`agentgrid_report_alerts_total{container="site1"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/metrics.json")
	if code != 200 {
		t.Fatalf("metrics.json = %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if snap.Namespace != "agentgrid" || len(snap.Metrics) == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHTTPHealthzUnhealthy(t *testing.T) {
	h := telemetry.NewHealth()
	h.Register("store", func() error { return nil })
	h.Register("collectors", func() error { return errors.New("cg-2 not polling") })
	srv, _ := startHTTP(t, func(c *Config) { c.Health = h })
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != 503 || !strings.Contains(body, "unhealthy: collectors") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	code, body = get(t, base+"/readyz")
	if code != 503 {
		t.Fatalf("readyz = %d", code)
	}
	for _, want := range []string{`"ready": false`, `"cg-2 not polling"`, `"name": "store"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("readyz missing %q:\n%s", want, body)
		}
	}

	// Flip the failing check; both probes recover.
	h.Register("collectors", func() error { return nil })
	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok" {
		t.Fatalf("recovered healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != 200 || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("recovered readyz = %d %q", code, body)
	}
}

func TestHTTPReadyzNoChecks(t *testing.T) {
	srv, _ := startHTTP(t, nil)
	code, body := get(t, "http://"+srv.Addr()+"/readyz")
	if code != 200 || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("bare readyz = %d %q", code, body)
	}
}
