package report

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"agentgrid/internal/flight"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// TestEndpointHeaders pins the response-header contract for every
// GET endpoint: an explicit Content-Type and Cache-Control: no-store
// (everything the server serves is a live snapshot).
func TestEndpointHeaders(t *testing.T) {
	reg := telemetry.NewRegistry("agentgrid")
	h := telemetry.NewHealth()
	h.Register("store", func() error { return nil })
	tr := trace.New(trace.Options{})
	sp := tr.StartRoot("test.root")
	sp.End()
	tr.Flush()
	traceID := fmt.Sprintf("%016x", sp.TID())
	rec := flight.New(flight.Options{})
	defer rec.Close()
	rec.Emit("test.stage", flight.Event{Container: "ig"})

	srv, ig := startHTTP(t, func(c *Config) {
		c.Metrics = reg
		c.Health = h
		c.Tracer = tr
		c.Flight = rec
	})
	ig.AddAlerts(sampleAlerts())
	base := "http://" + srv.Addr()

	cases := []struct {
		path     string
		wantCode int
		wantType string
	}{
		{"/metrics", 200, "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics.json", 200, "application/json"},
		{"/alerts", 200, "application/json"},
		{"/stats", 200, "application/json"},
		{"/healthz", 200, "text/plain; charset=utf-8"},
		{"/readyz", 200, "application/json"},
		{"/trace/" + traceID, 200, "text/plain; charset=utf-8"},
		{"/trace/" + traceID + "?format=json", 200, "application/json"},
		{"/topology", 503, "application/json"},
		{"/debug/flight", 200, "text/plain; charset=utf-8"},
		{"/debug/flight?format=json", 200, "application/json"},
		{"/debug/profile?kind=heap", 200, "application/octet-stream"},
		{"/debug/profile?kind=goroutine&debug=1", 200, "text/plain; charset=utf-8"},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			resp, err := http.Get(base + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.wantType {
				t.Fatalf("Content-Type = %q, want %q", got, tc.wantType)
			}
			if got := resp.Header.Get("Cache-Control"); got != "no-store" {
				t.Fatalf("Cache-Control = %q, want %q", got, "no-store")
			}
		})
	}
}

// TestDebugFlightEndpoint exercises the flight debug surface end to
// end: text tail, JSON snapshot, manual dump trigger, dump fetch.
func TestDebugFlightEndpoint(t *testing.T) {
	rec := flight.New(flight.Options{})
	defer rec.Close()
	j := rec.Journal("classify.ingest")
	for i := 0; i < 5; i++ {
		j.Emit(flight.Event{Container: "clg", Conversation: fmt.Sprintf("conv-%d", i), Size: 10 + i})
	}
	srv, _ := startHTTP(t, func(c *Config) { c.Flight = rec })
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/debug/flight")
	if code != 200 {
		t.Fatalf("debug/flight = %d", code)
	}
	for _, want := range []string{"classify.ingest", "emitted=5", "conv=conv-4"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text view missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/flight?format=json&n=2")
	if code != 200 || !strings.Contains(body, `"conv-4"`) || strings.Contains(body, `"conv-2"`) {
		t.Fatalf("json tail = %d %s", code, body)
	}

	// Trigger a dump over HTTP, then fetch it by sequence.
	resp, err := http.Post(base+"/debug/flight?reason=test-trigger", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trigger = %d", resp.StatusCode)
	}
	code, body = get(t, base+"/debug/flight?dump=1")
	if code != 200 || !strings.Contains(body, "test-trigger") {
		t.Fatalf("dump fetch = %d %s", code, body)
	}
	if code, _ := get(t, base+"/debug/flight?dump=99"); code != 404 {
		t.Fatalf("missing dump = %d, want 404", code)
	}
}

// TestDebugEndpointsDetached pins the not-serving contract: a detached
// server answers 503 with the JSON ready/error shape, not 404.
func TestDebugEndpointsDetached(t *testing.T) {
	srv, err := NewDetachedServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/debug/flight", "/debug/profile"} {
		code, body := get(t, base+path)
		if code != 503 || !strings.Contains(body, `"ready": false`) {
			t.Fatalf("%s detached = %d %q", path, code, body)
		}
	}
	// Attached but with no flight recorder: 404, not 503.
	srv2, _ := startHTTP(t, nil)
	if code, _ := get(t, "http://"+srv2.Addr()+"/debug/flight"); code != 404 {
		t.Fatalf("no-recorder debug/flight = %d, want 404", code)
	}
}
