package report

import (
	"testing"

	"agentgrid/internal/rules"
)

func TestDuplicateAlertsSuppressed(t *testing.T) {
	ig := newIG(t, nil)
	a := rules.Alert{Rule: "site-hot", Site: "s1", Step: 7, Message: "m", Severity: rules.SeverityCritical}
	// The same site-level conclusion arrives once per collector batch.
	ig.AddAlerts([]rules.Alert{a})
	ig.AddAlerts([]rules.Alert{a})
	ig.AddAlerts([]rules.Alert{a, a})

	if got := ig.Alerts(""); len(got) != 1 {
		t.Fatalf("retained %d, want 1", len(got))
	}
	stats := ig.Stats()
	if stats.Alerts != 1 || stats.Duplicates != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	// Subscribers saw it once.
	sub := ig.Subscribe(8)
	ig.AddAlerts([]rules.Alert{a})
	select {
	case leaked := <-sub:
		t.Fatalf("duplicate reached subscriber: %+v", leaked)
	default:
	}
}

func TestDistinctStepsNotSuppressed(t *testing.T) {
	ig := newIG(t, nil)
	a := rules.Alert{Rule: "site-hot", Site: "s1", Step: 7, Message: "m"}
	b := a
	b.Step = 8 // fresh data, fresh incident
	ig.AddAlerts([]rules.Alert{a})
	ig.AddAlerts([]rules.Alert{b})
	if got := ig.Alerts(""); len(got) != 2 {
		t.Fatalf("retained %d, want 2", len(got))
	}
}

func TestDedupMemoryBounded(t *testing.T) {
	ig := newIG(t, func(c *Config) { c.MaxAlerts = 4 })
	for i := 0; i < 100; i++ {
		ig.AddAlerts([]rules.Alert{{Rule: "r", Site: "s", Step: i, Message: "m"}})
	}
	ig.mu.Lock()
	seen := len(ig.seen)
	ig.mu.Unlock()
	if seen > 4*4+1 {
		t.Fatalf("dedup memory unbounded: %d entries", seen)
	}
	if got := ig.Alerts(""); len(got) != 4 {
		t.Fatalf("history = %d", len(got))
	}
}
