package report

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"agentgrid/internal/rules"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// Server exposes the interface grid over HTTP — one of the paper's
// multi-protocol user channels (HTML pages, XML/HTTP). Endpoints:
//
//	GET /site/{site}?format=text|html|xml|json   site report
//	GET /device/{site}/{device}                  device report (JSON)
//	GET /alerts?min=warning                      alert history (JSON)
//	POST /rules                                  learn rules (DSL body)
//	GET /metrics                                 Prometheus text exposition
//	GET /metrics.json                            telemetry snapshot (JSON)
//	GET /healthz                                 liveness (health-aware when checks are wired)
//	GET /readyz                                  readiness: 503 + JSON detail until every check passes
//	GET/POST/DELETE /topology                    topology lifecycle (when a control plane is attached)
//
// A server normally fronts one interface grid for its whole life
// (NewServer). The topology control plane instead starts a detached
// server (NewDetachedServer) whose interface grid comes and goes with
// deployments: until one is attached, every grid-backed endpoint
// answers the /readyz not-yet-serving contract — 503 with a JSON body
// — never an empty 200 or a 404.
type Server struct {
	mu   sync.RWMutex
	ig   *Interface   // guarded by mu; nil while detached
	topo http.Handler // guarded by mu; nil until a control plane attaches

	http *http.Server
	ln   net.Listener
	now  func() time.Time
}

// NewServer starts serving the interface grid on addr ("host:port",
// port 0 for ephemeral).
func NewServer(ig *Interface, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("report: listen: %w", err)
	}
	s := &Server{ig: ig, ln: ln, now: time.Now}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /site/{site}", s.handleSite)
	mux.HandleFunc("GET /device/{site}/{device}", s.handleDevice)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("POST /rules", s.handleRules)
	mux.HandleFunc("POST /goals", s.handleGoals)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("/topology", s.handleTopology)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/profile", s.handleProfile)
	s.http = &http.Server{
		Handler:           noStore(mux),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
	}
	go s.http.Serve(ln)
	return s, nil
}

// noStore marks every response uncacheable. Everything the server
// serves is a live snapshot — a cached /metrics or /readyz is a stale
// lie — so the header is set once here instead of per-handler.
func noStore(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		next.ServeHTTP(w, r)
	})
}

// NewDetachedServer starts a server with no interface grid attached
// yet — the topology control plane's listener, up before (and between)
// deployments. Grid-backed endpoints answer 503 until SetInterface.
func NewDetachedServer(addr string) (*Server, error) {
	return NewServer(nil, addr)
}

// SetInterface attaches (or, with nil, detaches) the interface grid
// the server fronts. The topology manager calls this as deployments
// come and go.
func (s *Server) SetInterface(ig *Interface) {
	s.mu.Lock()
	s.ig = ig
	s.mu.Unlock()
}

// SetTopologyHandler installs the /topology lifecycle handler. Without
// one the route answers the same 503 not-serving contract.
func (s *Server) SetTopologyHandler(h http.Handler) {
	s.mu.Lock()
	s.topo = h
	s.mu.Unlock()
}

// iface returns the attached interface grid, or nil while detached.
func (s *Server) iface() *Interface {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ig
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// WriteNotServing answers an endpoint whose backing subsystem is not
// there yet: 503 with a JSON body naming what is missing — the same
// shape /readyz uses, so probes and clients need one contract only.
func WriteNotServing(w http.ResponseWriter, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	body, err := jsonMarshalIndent(struct {
		Ready bool   `json:"ready"`
		Error string `json:"error"`
	}{Ready: false, Error: detail})
	if err != nil {
		return
	}
	w.Write(body)
}

// handleTopology routes the /topology lifecycle endpoint to the
// attached control plane; without one (no topology manager, or the
// grid was started outside topology-as-code) it reports not-serving.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.topo
	s.mu.RUnlock()
	if h == nil {
		WriteNotServing(w, "no topology control plane attached")
		return
	}
	h.ServeHTTP(w, r)
}

func (s *Server) handleSite(w http.ResponseWriter, r *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	site := r.PathValue("site")
	format := Format(r.URL.Query().Get("format"))
	if format == "" {
		format = FormatText
	}
	rep, err := ig.BuildSiteReport(site, s.now().UTC())
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	body, err := Render(rep, format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch format {
	case FormatHTML:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	case FormatXML:
		w.Header().Set("Content-Type", "application/xml")
	case FormatJSON:
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(body)
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	rep, err := ig.BuildDeviceReport(r.PathValue("site"), r.PathValue("device"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body, _ := Render(&SiteReport{Site: rep.Site, Devices: []DeviceReport{*rep}}, FormatJSON)
	w.Write(body)
}

// handleHealthz is the liveness probe. Without registered checks it
// reports plain "ok" (the server is up, nothing more is known); with a
// Health it degrades to 503 listing the failing checks.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ig := s.iface()
	if ig == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("unhealthy: no deployment attached\n"))
		return
	}
	ok, results := ig.cfg.Health.Check()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		failing := ""
		for _, r := range results {
			if !r.Healthy {
				if failing != "" {
					failing += ","
				}
				failing += r.Name
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unhealthy: %s\n", failing)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok"))
}

// handleReadyz is the readiness probe: 503 with per-check JSON detail
// until every registered check passes, then 200 with the same detail.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	ready, results := ig.cfg.Health.Check()
	body, err := jsonMarshalIndent(struct {
		Ready  bool                    `json:"ready"`
		Checks []telemetry.CheckResult `json:"checks"`
	}{Ready: ready, Checks: results})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(body)
}

// handleMetrics serves the registry in Prometheus text exposition
// format, suitable for scraping or `curl`.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	reg := ig.cfg.Metrics
	if reg == nil {
		http.Error(w, "telemetry not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(telemetry.RenderText(reg.Snapshot())))
}

// handleMetricsJSON serves the raw telemetry snapshot as JSON — the
// machine-readable feed `gridctl top` polls to compute live rates.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	reg := ig.cfg.Metrics
	if reg == nil {
		http.Error(w, "telemetry not enabled", http.StatusNotFound)
		return
	}
	body, err := json.Marshal(reg.Snapshot())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleStats serves the interface grid's own counters plus, when
// wired, the grid-wide snapshot from Config.StatsFunc.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	ig.mu.Lock()
	igStats := ig.stats
	ig.mu.Unlock()
	out := struct {
		Interface Stats `json:"interface"`
		Grid      any   `json:"grid,omitempty"`
	}{Interface: igStats}
	if ig.cfg.StatsFunc != nil {
		out.Grid = ig.cfg.StatsFunc()
	}
	body, err := jsonMarshalIndent(out)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleTrace serves one trace — looked up by trace ID or conversation
// ID — as the ASCII span tree with critical path (default) or JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	t := ig.cfg.Tracer
	if t == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	spans, ok := t.Lookup(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no trace or conversation %q", id), http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		body, err := jsonMarshalIndent(struct {
			Count int          `json:"count"`
			Spans []trace.Span `json:"spans"`
		}{Count: len(spans), Spans: spans})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(trace.Render(spans)))
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	min := rules.Severity(r.URL.Query().Get("min"))
	alerts := ig.Alerts(min)
	w.Header().Set("Content-Type", "application/json")
	body, err := renderAlertsJSON(alerts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(body)
}

func renderAlertsJSON(alerts []rules.Alert) ([]byte, error) {
	rep := struct {
		Count  int           `json:"count"`
		Alerts []rules.Alert `json:"alerts"`
	}{Count: len(alerts), Alerts: alerts}
	return jsonMarshalIndent(rep)
}

// handleGoals accepts one goal spec per line in the "goal ..." wire
// format and forwards each to the grid's goal sink.
func (s *Server) handleGoals(w http.ResponseWriter, r *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	if ig.cfg.Goals == nil {
		http.Error(w, "goal feedback not wired", http.StatusNotImplemented)
		return
	}
	body, err := readBounded(r, 1<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	added := 0
	for _, line := range splitLines(string(body)) {
		if line == "" {
			continue
		}
		if err := ig.cfg.Goals(r.Context(), line); err != nil {
			http.Error(w, fmt.Sprintf("line %q: %v", line, err), http.StatusBadRequest)
			return
		}
		added++
	}
	ig.mu.Lock()
	ig.stats.GoalsAdded += uint64(added)
	ig.mu.Unlock()
	fmt.Fprintf(w, "added %d goals\n", added)
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' || r == '\r' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

func readBounded(r *http.Request, limit int) ([]byte, error) {
	body := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			return body, nil
		}
		if len(body) > limit {
			return nil, fmt.Errorf("request body exceeds %d bytes", limit)
		}
	}
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	ig := s.iface()
	if ig == nil {
		WriteNotServing(w, "no deployment attached")
		return
	}
	if ig.cfg.Rules == nil {
		http.Error(w, "rule learning not wired", http.StatusNotImplemented)
		return
	}
	body, err := readBounded(r, 1<<20)
	if err != nil {
		http.Error(w, "rule source too large", http.StatusRequestEntityTooLarge)
		return
	}
	added, err := ig.cfg.Rules.AddSource(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ig.mu.Lock()
	ig.stats.RulesLearned += uint64(len(added))
	ig.mu.Unlock()
	fmt.Fprintf(w, "learned %d rules\n", len(added))
}
