package report

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startHTTP(t *testing.T, mod func(*Config)) (*Server, *Interface) {
	t.Helper()
	ig := newIG(t, mod)
	srv, err := NewServer(ig, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ig
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPHealthz(t *testing.T) {
	srv, _ := startHTTP(t, nil)
	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != 200 || body != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestHTTPSiteReportFormats(t *testing.T) {
	srv, ig := startHTTP(t, nil)
	ig.AddAlerts(sampleAlerts())
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/site/site1")
	if code != 200 || !strings.Contains(body, "Site report: site1") {
		t.Fatalf("text = %d %q", code, body)
	}
	code, body = get(t, base+"/site/site1?format=html")
	if code != 200 || !strings.Contains(body, "<html>") {
		t.Fatalf("html = %d", code)
	}
	code, body = get(t, base+"/site/site1?format=xml")
	if code != 200 || !strings.Contains(body, "<site-report") {
		t.Fatalf("xml = %d", code)
	}
	code, body = get(t, base+"/site/site1?format=json")
	if code != 200 || !strings.Contains(body, `"site": "site1"`) {
		t.Fatalf("json = %d", code)
	}
	code, _ = get(t, base+"/site/site1?format=pdf")
	if code != 400 {
		t.Fatalf("bad format = %d", code)
	}
	code, _ = get(t, base+"/site/nowhere")
	if code != 404 {
		t.Fatalf("missing site = %d", code)
	}
}

func TestHTTPDeviceReport(t *testing.T) {
	srv, _ := startHTTP(t, nil)
	base := "http://" + srv.Addr()
	code, body := get(t, base+"/device/site1/h1")
	if code != 200 || !strings.Contains(body, `"device": "h1"`) {
		t.Fatalf("device = %d %q", code, body)
	}
	code, _ = get(t, base+"/device/site1/ghost")
	if code != 404 {
		t.Fatalf("ghost device = %d", code)
	}
}

func TestHTTPAlerts(t *testing.T) {
	srv, ig := startHTTP(t, nil)
	ig.AddAlerts(sampleAlerts())
	base := "http://" + srv.Addr()
	code, body := get(t, base+"/alerts")
	if code != 200 || !strings.Contains(body, `"count": 3`) {
		t.Fatalf("alerts = %d %q", code, body)
	}
	code, body = get(t, base+"/alerts?min=critical")
	if code != 200 || !strings.Contains(body, `"count": 1`) {
		t.Fatalf("filtered alerts = %d %q", code, body)
	}
}

func TestHTTPLearnRules(t *testing.T) {
	sink := &fakeRuleSink{}
	srv, ig := startHTTP(t, func(c *Config) { c.Rules = sink })
	base := "http://" + srv.Addr()

	resp, err := http.Post(base+"/rules", "text/plain",
		strings.NewReader(`rule "via-http" { when latest(m) > 1 then alert "m" }`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "learned 1 rules") {
		t.Fatalf("post rules = %d %q", resp.StatusCode, body)
	}
	if ig.Stats().RulesLearned != 1 {
		t.Fatalf("stats = %+v", ig.Stats())
	}

	// Parse errors surface as 400.
	sink.err = fmt.Errorf("bad rule")
	resp, err = http.Post(base+"/rules", "text/plain", strings.NewReader("rule"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad rules = %d", resp.StatusCode)
	}
}

func TestHTTPLearnRulesNotWired(t *testing.T) {
	srv, _ := startHTTP(t, nil)
	resp, err := http.Post("http://"+srv.Addr()+"/rules", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unwired rules = %d", resp.StatusCode)
	}
}

func TestHTTPServerClose(t *testing.T) {
	ig := newIG(t, nil)
	srv, err := NewServer(ig, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cli := http.Client{Timeout: time.Second}
	if _, err := cli.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestHTTPStats(t *testing.T) {
	srv, ig := startHTTP(t, func(c *Config) {
		c.StatsFunc = func() any {
			return map[string]int{"containers": 7}
		}
	})
	ig.AddAlerts(sampleAlerts())
	code, body := get(t, "http://"+srv.Addr()+"/stats")
	if code != 200 {
		t.Fatalf("stats = %d", code)
	}
	for _, want := range []string{`"interface"`, `"Alerts": 3`, `"containers": 7`} {
		if !strings.Contains(body, want) {
			t.Fatalf("stats missing %q:\n%s", want, body)
		}
	}
	// Without a StatsFunc the grid section is omitted.
	srv2, _ := startHTTP(t, nil)
	code, body = get(t, "http://"+srv2.Addr()+"/stats")
	if code != 200 || strings.Contains(body, `"grid"`) {
		t.Fatalf("bare stats = %d %q", code, body)
	}
}
