package transport

import (
	"context"
	"errors"
	"sync"
	"testing"

	"agentgrid/internal/acl"
)

func msgTo(addr string) *acl.Message {
	return &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("a", "p"),
		Receivers:    []acl.AID{acl.NewAID("b", "p", addr)},
		Content:      []byte("hello"),
	}
}

type collector struct {
	mu   sync.Mutex
	msgs []*acl.Message
	ch   chan *acl.Message
}

func newCollector() *collector {
	return &collector{ch: make(chan *acl.Message, 64)}
}

func (c *collector) handle(m *acl.Message) {
	// The Handler contract: m is only valid for the duration of the
	// call (TCP delivers a per-connection scratch), so retaining it
	// requires a clone.
	m = m.Clone()
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- m
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func TestInProcDelivery(t *testing.T) {
	n := NewInProcNetwork()
	rx := newCollector()
	a, err := n.Endpoint("inproc://a", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("inproc://b", rx.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "inproc://b", msgTo("inproc://b")); err != nil {
		t.Fatal(err)
	}
	got := <-rx.ch
	if string(got.Content) != "hello" {
		t.Fatalf("content = %q", got.Content)
	}
	if !n.Lookup("inproc://a") || n.Lookup("inproc://zzz") {
		t.Error("Lookup wrong")
	}
}

func TestInProcDeliversClone(t *testing.T) {
	n := NewInProcNetwork()
	rx := newCollector()
	a, _ := n.Endpoint("inproc://a", func(*acl.Message) {})
	n.Endpoint("inproc://b", rx.handle)
	m := msgTo("inproc://b")
	if err := a.Send(context.Background(), "inproc://b", m); err != nil {
		t.Fatal(err)
	}
	m.Content[0] = 'X' // mutate after send
	got := <-rx.ch
	if string(got.Content) != "hello" {
		t.Fatal("receiver saw sender-side mutation; message not cloned")
	}
}

func TestInProcErrors(t *testing.T) {
	n := NewInProcNetwork()
	a, _ := n.Endpoint("inproc://a", func(*acl.Message) {})

	if _, err := n.Endpoint("inproc://a", func(*acl.Message) {}); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := n.Endpoint("inproc://nil", nil); err == nil {
		t.Error("nil handler accepted")
	}
	err := a.Send(context.Background(), "inproc://ghost", msgTo("x"))
	if !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("Send to ghost = %v", err)
	}
	bad := msgTo("inproc://a")
	bad.Sender = acl.AID{}
	if err := a.Send(context.Background(), "inproc://a", bad); !errors.Is(err, acl.ErrNoSender) {
		t.Errorf("invalid message = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Send(ctx, "inproc://a", msgTo("inproc://a")); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx = %v", err)
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := a.Send(context.Background(), "inproc://a", msgTo("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
	if n.Lookup("inproc://a") {
		t.Error("closed endpoint still registered")
	}
}

func TestInProcFaultInjection(t *testing.T) {
	n := NewInProcNetwork()
	rx := newCollector()
	a, _ := n.Endpoint("inproc://a", func(*acl.Message) {})
	n.Endpoint("inproc://b", rx.handle)
	n.Endpoint("inproc://c", rx.handle)

	n.SetFault(DropTo("inproc://b"))
	if err := a.Send(context.Background(), "inproc://b", msgTo("b")); !errors.Is(err, ErrFaultInjected) {
		t.Errorf("fault not injected: %v", err)
	}
	if err := a.Send(context.Background(), "inproc://c", msgTo("c")); err != nil {
		t.Errorf("unrelated send failed: %v", err)
	}

	n.SetFault(DropAll)
	if err := a.Send(context.Background(), "inproc://c", msgTo("c")); !errors.Is(err, ErrFaultInjected) {
		t.Errorf("DropAll not applied: %v", err)
	}

	n.SetFault(nil)
	if err := a.Send(context.Background(), "inproc://c", msgTo("c")); err != nil {
		t.Errorf("send after clearing fault: %v", err)
	}
	if rx.count() != 2 {
		t.Errorf("delivered %d, want 2", rx.count())
	}
}
