package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
)

func listenLoopback(t *testing.T, h Handler, opts ...TCPOption) Transport {
	t.Helper()
	tr, err := ListenTCP("127.0.0.1:0", h, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTCPDelivery(t *testing.T) {
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {})

	for i := 0; i < 5; i++ {
		m := msgTo(srv.Addr())
		m.Content = []byte(fmt.Sprintf("msg-%d", i))
		if err := cli.Send(context.Background(), srv.Addr(), m); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		select {
		case m := <-rx.ch:
			seen[string(m.Content)] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d messages", i)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d distinct messages, want 5", len(seen))
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {})

	const senders, per = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := msgTo(srv.Addr())
				m.Content = []byte(fmt.Sprintf("s%d-i%d", s, i))
				if err := cli.Send(context.Background(), srv.Addr(), m); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	deadline := time.After(10 * time.Second)
	for i := 0; i < senders*per; i++ {
		select {
		case <-rx.ch:
		case <-deadline:
			t.Fatalf("received %d of %d", i, senders*per)
		}
	}
}

func TestTCPAddrScheme(t *testing.T) {
	srv := listenLoopback(t, func(*acl.Message) {})
	if !strings.HasPrefix(srv.Addr(), "tcp://127.0.0.1:") {
		t.Fatalf("Addr = %q", srv.Addr())
	}
	if got := StripScheme("tcp://1.2.3.4:99"); got != "1.2.3.4:99" {
		t.Errorf("StripScheme = %q", got)
	}
	if got := StripScheme("1.2.3.4:99"); got != "1.2.3.4:99" {
		t.Errorf("StripScheme passthrough = %q", got)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	srv := listenLoopback(t, func(*acl.Message) {})
	cli, err := ListenTCP("127.0.0.1:0", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	cli := listenLoopback(t, func(*acl.Message) {})
	// Port 1 on loopback is almost certainly closed; dial must error fast.
	err := cli.Send(context.Background(), "tcp://127.0.0.1:1", msgTo("x"))
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPReconnectAfterServerRestart(t *testing.T) {
	rx := newCollector()
	srv, err := ListenTCP("127.0.0.1:0", rx.handle)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := listenLoopback(t, func(*acl.Message) {})

	if err := cli.Send(context.Background(), addr, msgTo(addr)); err != nil {
		t.Fatal(err)
	}
	<-rx.ch

	// Restart the server on the same port; the client's pooled connection
	// is now stale and Send must transparently re-dial.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := ListenTCP(StripScheme(addr), rx.handle)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	// A write to the stale pooled connection may report success once
	// before the kernel sees the RST, so delivery (not Send's return
	// value) is the success criterion; callers retry at the ACL layer.
	deadline := time.After(10 * time.Second)
	for {
		_ = cli.Send(context.Background(), addr, msgTo(addr))
		select {
		case <-rx.ch:
			return
		case <-deadline:
			t.Fatal("message after restart never arrived")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestTCPFaultInjection(t *testing.T) {
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {}, WithTCPFault(DropAll))
	err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr()))
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("Send = %v, want fault", err)
	}
}

func TestTCPRejectsInvalidMessage(t *testing.T) {
	srv := listenLoopback(t, func(*acl.Message) {})
	cli := listenLoopback(t, func(*acl.Message) {})
	bad := msgTo(srv.Addr())
	bad.Performative = ""
	if err := cli.Send(context.Background(), srv.Addr(), bad); !errors.Is(err, acl.ErrNoPerformative) {
		t.Fatalf("Send invalid = %v", err)
	}
}

func TestReadAllFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := acl.WriteFrame(&buf, msgTo("x")); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := ReadAllFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("read %d frames, want 3", len(msgs))
	}
	// Corrupt stream returns what was read plus the error.
	buf.Reset()
	acl.WriteFrame(&buf, msgTo("x"))
	buf.WriteString("garbage-that-is-not-a-frame")
	msgs, err = ReadAllFrames(&buf)
	if err == nil {
		t.Fatal("corrupt tail not reported")
	}
	if len(msgs) != 1 {
		t.Fatalf("read %d frames before corruption, want 1", len(msgs))
	}
}
