package transport

import (
	"math/rand"
	"sync"
	"time"

	"agentgrid/internal/acl"
)

// This file promotes the original drop-only FaultFunc hook into a
// composable fault-injection plan shared by the in-process and TCP
// transports. A FaultPlan sees every outbound message and returns a
// Decision: drop it (optionally with a specific error), delay it,
// and/or duplicate it. Plans compose with Chain, restrict with When,
// fire probabilistically with Sometimes (seeded, reproducible), and
// model bidirectional network partitions with Partition. The legacy
// FaultFunc veto hook and its DropAll/DropTo helpers remain as thin
// wrappers so existing call sites keep working.

// Decision is a fault plan's verdict on one outbound message.
type Decision struct {
	// Drop discards the message; Send fails with Err (or
	// ErrFaultInjected when Err is nil).
	Drop bool
	// Err overrides the error returned for a dropped message.
	Err error
	// Delay holds delivery for the given duration. Only transports with
	// a Holder installed (see InProcNetwork.SetHolder) can honor it;
	// without one the message is delivered immediately.
	Delay time.Duration
	// Dup delivers this many extra copies of the message.
	Dup int
}

// merge folds another decision into d: drop wins (first error kept),
// delays add, duplicates add.
func (d Decision) merge(o Decision) Decision {
	if o.Drop && !d.Drop {
		d.Drop = true
		d.Err = o.Err
	}
	d.Delay += o.Delay
	d.Dup += o.Dup
	return d
}

// FaultPlan decides the fate of each outbound message. Implementations
// must be safe for concurrent use: transports consult the plan from
// every sending goroutine.
type FaultPlan interface {
	Decide(from, to string, m *acl.Message) Decision
}

// PlanFunc adapts a function to the FaultPlan interface.
type PlanFunc func(from, to string, m *acl.Message) Decision

// Decide implements FaultPlan.
func (f PlanFunc) Decide(from, to string, m *acl.Message) Decision { return f(from, to, m) }

// Pred selects messages for When by sender address, receiver address
// and message content.
type Pred func(from, to string, m *acl.Message) bool

// ---- Primitives ----

// Drop returns a plan that drops every message it sees.
func Drop() FaultPlan {
	return PlanFunc(func(string, string, *acl.Message) Decision {
		return Decision{Drop: true}
	})
}

// Delay returns a plan that delays every message by d.
func Delay(d time.Duration) FaultPlan {
	return PlanFunc(func(string, string, *acl.Message) Decision {
		return Decision{Delay: d}
	})
}

// Dup returns a plan that delivers extra additional copies of every
// message.
func Dup(extra int) FaultPlan {
	return PlanFunc(func(string, string, *acl.Message) Decision {
		return Decision{Dup: extra}
	})
}

// ---- Combinators ----

// Chain merges the decisions of several plans: any drop wins, delays
// and duplicate counts add up. Nil plans are skipped.
func Chain(plans ...FaultPlan) FaultPlan {
	return PlanFunc(func(from, to string, m *acl.Message) Decision {
		var d Decision
		for _, p := range plans {
			if p == nil {
				continue
			}
			d = d.merge(p.Decide(from, to, m))
		}
		return d
	})
}

// When applies plan only to messages matching pred; everything else
// passes untouched.
func When(pred Pred, plan FaultPlan) FaultPlan {
	return PlanFunc(func(from, to string, m *acl.Message) Decision {
		if pred(from, to, m) {
			return plan.Decide(from, to, m)
		}
		return Decision{}
	})
}

// seededRand is a mutex-guarded deterministic random source shared by
// the probabilistic combinators. Given the same seed and the same
// sequence of Decide calls it reproduces the same faults, which is what
// makes seeded chaos schedules replayable.
type seededRand struct {
	mu sync.Mutex
	r  *rand.Rand // guarded by mu
}

func newSeededRand(seed int64) *seededRand {
	return &seededRand{r: rand.New(rand.NewSource(seed))}
}

func (s *seededRand) float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Float64()
}

func (s *seededRand) int63n(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Int63n(n)
}

// Sometimes applies plan to each message with probability p, drawn from
// a deterministic source seeded with seed. The same seed and message
// arrival order reproduce the same fault sequence.
func Sometimes(seed int64, p float64, plan FaultPlan) FaultPlan {
	src := newSeededRand(seed)
	return PlanFunc(func(from, to string, m *acl.Message) Decision {
		if src.float64() < p {
			return plan.Decide(from, to, m)
		}
		return Decision{}
	})
}

// Jitter delays each message by a uniform random duration in [0, max),
// drawn from a deterministic source seeded with seed. Combined with a
// Holder that releases messages in due-time order, jitter reorders
// traffic: a message delayed 9ms overtakes one delayed 2ms sent later.
func Jitter(seed int64, max time.Duration) FaultPlan {
	src := newSeededRand(seed)
	return PlanFunc(func(string, string, *acl.Message) Decision {
		if max <= 0 {
			return Decision{}
		}
		return Decision{Delay: time.Duration(src.int63n(int64(max)))}
	})
}

// Partition drops all traffic between the two address groups, in both
// directions — a bidirectional network split. Traffic within a group,
// or to addresses in neither group, passes.
func Partition(groupA, groupB []string) FaultPlan {
	inA := addrSet(groupA)
	inB := addrSet(groupB)
	return When(func(from, to string, _ *acl.Message) bool {
		return (inA[from] && inB[to]) || (inB[from] && inA[to])
	}, Drop())
}

// Isolate drops all traffic to or from the given addresses — the
// single-sided special case of Partition, handy for "this container
// fell off the network".
func Isolate(addrs ...string) FaultPlan {
	in := addrSet(addrs)
	return When(func(from, to string, _ *acl.Message) bool {
		return in[from] || in[to]
	}, Drop())
}

func addrSet(addrs []string) map[string]bool {
	s := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		s[a] = true
	}
	return s
}

// ---- Legacy FaultFunc compatibility ----

// PlanFromFault adapts the legacy veto-style FaultFunc to a FaultPlan:
// a non-nil error becomes a drop carrying that error.
func PlanFromFault(f FaultFunc) FaultPlan {
	return PlanFunc(func(_, to string, m *acl.Message) Decision {
		if err := f(to, m); err != nil {
			return Decision{Drop: true, Err: err}
		}
		return Decision{}
	})
}

// Holder intercepts messages a plan decided to delay. Returning true
// takes ownership: the holder must later re-inject the message (see
// InProcNetwork.Inject). Returning false tells the transport to deliver
// immediately. The chaos harness installs a holder that releases held
// messages in virtual-clock order.
type Holder func(from, to string, m *acl.Message, d Decision) bool
