package transport

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/telemetry"
)

// dialRaw opens a plain TCP connection to a transport address, for
// writing hostile bytes a Transport would never produce.
func dialRaw(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", StripScheme(addr), 5*time.Second)
}

// recv pulls one message off a collector or fails the test.
func recv(t *testing.T, rx *collector, within time.Duration) *acl.Message {
	t.Helper()
	select {
	case m := <-rx.ch:
		return m
	case <-time.After(within):
		t.Fatal("timed out waiting for message")
		return nil
	}
}

func TestMixedFormatPeersOneListener(t *testing.T) {
	// An ACL1 (JSON) peer and an ACL2 (binary) peer talk to the same
	// listener: the frame reader dispatches per frame, so a grid can
	// roll the binary codec out one container at a time.
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	old := listenLoopback(t, func(*acl.Message) {}, WithWireFormat(acl.FormatJSON))
	new_ := listenLoopback(t, func(*acl.Message) {}, WithWireFormat(acl.FormatBinary))

	for i := 0; i < 4; i++ {
		m := msgTo(srv.Addr())
		m.ConversationID = fmt.Sprintf("conv-%d", i)
		m.Trace = &acl.TraceContext{TraceID: "t1", SpanID: fmt.Sprintf("s%d", i)}
		cli := old
		if i%2 == 0 {
			cli = new_
		}
		if err := cli.Send(context.Background(), srv.Addr(), m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		m := recv(t, rx, 5*time.Second)
		seen[m.ConversationID] = true
		if m.Trace == nil || m.Trace.TraceID != "t1" {
			t.Errorf("trace context lost in transit: %+v", m.Trace)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("saw %d distinct conversations, want 4", len(seen))
	}

	// The reverse direction also interoperates: the binary-default
	// server replies to the JSON peer.
	oldRx := newCollector()
	srv2 := listenLoopback(t, oldRx.handle, WithWireFormat(acl.FormatJSON))
	if err := new_.Send(context.Background(), srv2.Addr(), msgTo(srv2.Addr())); err != nil {
		t.Fatal(err)
	}
	if m := recv(t, oldRx, 5*time.Second); !bytes.Equal(m.Content, []byte("hello")) {
		t.Fatalf("reply content = %q", m.Content)
	}
}

func TestCoalescingDeliversWithinWindow(t *testing.T) {
	// Frames staged under a flush window arrive once the window closes,
	// without any further sends.
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {}, WithFlushWindow(20*time.Millisecond))

	for i := 0; i < 3; i++ {
		if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		recv(t, rx, 5*time.Second)
	}
}

func TestCoalescingDupDelivery(t *testing.T) {
	// Chaos duplication composes with coalescing: all 1+Dup copies are
	// staged and all arrive.
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {},
		WithFlushWindow(10*time.Millisecond),
		WithTCPPlan(PlanFunc(func(string, string, *acl.Message) Decision {
			return Decision{Dup: 2}
		})))

	if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if m := recv(t, rx, 5*time.Second); !bytes.Equal(m.Content, []byte("hello")) {
			t.Fatalf("copy %d content = %q", i, m.Content)
		}
	}
}

func TestCoalescingBufferBoundaryFlush(t *testing.T) {
	// A full staging buffer flushes immediately — the window bounds
	// trickle latency, it must not delay a burst. The window here is far
	// longer than the test timeout, so delivery proves a boundary flush.
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {}, WithFlushWindow(time.Hour))

	big := msgTo(srv.Addr())
	big.Content = bytes.Repeat([]byte("x"), coalesceBufSize)
	for i := 0; i < 2; i++ {
		if err := cli.Send(context.Background(), srv.Addr(), big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if m := recv(t, rx, 5*time.Second); len(m.Content) != coalesceBufSize {
			t.Fatalf("content truncated to %d bytes", len(m.Content))
		}
	}
}

func TestCoalescingFlushOnClose(t *testing.T) {
	// Closing the sender flushes staged frames instead of dropping them.
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli, err := ListenTCP("127.0.0.1:0", func(*acl.Message) {}, WithFlushWindow(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); err != nil {
		cli.Close()
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	recv(t, rx, 5*time.Second)
}

func TestCoalescingFlushBeforeWriteDeadline(t *testing.T) {
	// The write deadline set when a frame was staged must not kill the
	// flush that happens a window later: flush refreshes the deadline.
	rx := newCollector()
	srv := listenLoopback(t, rx.handle)
	cli := listenLoopback(t, func(*acl.Message) {},
		WithWriteTimeout(50*time.Millisecond),
		WithFlushWindow(150*time.Millisecond))

	if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); err != nil {
		t.Fatal(err)
	}
	recv(t, rx, 5*time.Second)
	// The connection is still healthy: a follow-up send works.
	if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); err != nil {
		t.Fatalf("send after window flush: %v", err)
	}
	recv(t, rx, 5*time.Second)
}

func TestDecodeErrorCounter(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	decodeErrs := reg.Counter("test_decode_errors_total", "decode errors", nil)
	acceptErrs := reg.Counter("test_accept_errors_total", "accept errors", nil)
	rx := newCollector()
	srv := listenLoopback(t, rx.handle, WithTCPMetrics(WireMetrics{
		DecodeErrors: decodeErrs,
		AcceptErrors: acceptErrs,
	}))

	// A clean connect-then-hangup is not a decode error.
	cli := listenLoopback(t, func(*acl.Message) {})
	if err := cli.Send(context.Background(), srv.Addr(), msgTo(srv.Addr())); err != nil {
		t.Fatal(err)
	}
	recv(t, rx, 5*time.Second)
	cli.Close()

	// Garbage on the wire is.
	raw, err := dialRaw(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	raw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for decodeErrs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode error never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if decodeErrs.Value() != 1 {
		t.Fatalf("decode errors = %d, want 1", decodeErrs.Value())
	}
}

func TestNextAcceptBackoff(t *testing.T) {
	steps := []time.Duration{0}
	for i := 0; i < 14; i++ {
		steps = append(steps, nextAcceptBackoff(steps[len(steps)-1]))
	}
	if steps[1] != time.Millisecond {
		t.Fatalf("first backoff = %v, want 1ms", steps[1])
	}
	for i := 2; i < len(steps); i++ {
		if steps[i] < steps[i-1] {
			t.Fatalf("backoff shrank: %v after %v", steps[i], steps[i-1])
		}
		if steps[i] > time.Second {
			t.Fatalf("backoff %v exceeds 1s ceiling", steps[i])
		}
	}
	if steps[len(steps)-1] != time.Second {
		t.Fatalf("backoff never reached ceiling: %v", steps[len(steps)-1])
	}
	if nextAcceptBackoff(0) != time.Millisecond {
		t.Fatal("reset backoff did not restart at the floor")
	}
}

func TestInProcWireFidelity(t *testing.T) {
	n := NewInProcNetwork()
	n.SetWireFidelity(true)
	rx := newCollector()
	if _, err := n.Endpoint("inproc://a", func(*acl.Message) {}); err != nil {
		t.Fatal(err)
	}
	ep, err := n.Endpoint("inproc://b", rx.handle)
	if err != nil {
		t.Fatal(err)
	}
	_ = ep
	sender, err := n.Endpoint("inproc://c", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	m := msgTo("inproc://b")
	m.Trace = &acl.TraceContext{TraceID: "wf", SpanID: "1"}
	if err := sender.Send(context.Background(), "inproc://b", m); err != nil {
		t.Fatal(err)
	}
	got := recv(t, rx, time.Second)
	if !bytes.Equal(got.Content, m.Content) || got.Trace == nil || got.Trace.TraceID != "wf" {
		t.Fatalf("wire-fidelity delivery mangled message: %+v", got)
	}
	if got == m || (len(got.Content) > 0 && &got.Content[0] == &m.Content[0]) {
		t.Fatal("wire-fidelity delivery shares memory with the sender's message")
	}

	// Dup decisions produce independent decoded copies.
	n.SetPlan(PlanFunc(func(string, string, *acl.Message) Decision { return Decision{Dup: 1} }))
	if err := sender.Send(context.Background(), "inproc://b", m); err != nil {
		t.Fatal(err)
	}
	c1, c2 := recv(t, rx, time.Second), recv(t, rx, time.Second)
	if c1 == c2 {
		t.Fatal("dup copies are the same object")
	}

	// Messages the codec rejects fail the send rather than delivering
	// something the wire could never carry.
	n.SetPlan(nil)
	huge := msgTo("inproc://b")
	huge.Content = bytes.Repeat([]byte("y"), acl.MaxFrameSize+1)
	if err := sender.Send(context.Background(), "inproc://b", huge); err == nil {
		t.Fatal("oversized message delivered under wire fidelity")
	}
}

// BenchmarkTCPSendCoalesced measures the classifier-notice send path
// over loopback with and without a flush window, including the pooled
// marshal.
func BenchmarkTCPSendCoalesced(b *testing.B) {
	run := func(b *testing.B, opts ...TCPOption) {
		done := make(chan struct{}, 1)
		var got int
		target := 0
		srv, err := ListenTCP("127.0.0.1:0", func(*acl.Message) {
			got++
			if got == target {
				done <- struct{}{}
			}
		}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := ListenTCP("127.0.0.1:0", func(*acl.Message) {}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()

		m := msgTo(srv.Addr())
		m.Content = bytes.Repeat([]byte(`{"key":"site1/host-1","records":24}`), 8)
		target = b.N
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cli.Send(context.Background(), srv.Addr(), m); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	}
	b.Run("sync-flush", func(b *testing.B) { run(b) })
	b.Run("window-1ms", func(b *testing.B) { run(b, WithFlushWindow(time.Millisecond)) })
}
