package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/telemetry"
)

// TCPOption configures a TCP transport.
type TCPOption func(*tcpTransport)

// WithDialTimeout sets the per-connection dial timeout (default 5s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.dialTimeout = d }
}

// WithWriteTimeout sets the per-frame write deadline (default 10s).
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.writeTimeout = d }
}

// WithTCPFault installs a legacy fault-injection hook on outbound
// sends. It wraps the hook in a FaultPlan; WithTCPFault and WithTCPPlan
// overwrite each other.
func WithTCPFault(f FaultFunc) TCPOption {
	return func(t *tcpTransport) { t.plan = PlanFromFault(f) }
}

// WithTCPPlan installs a fault plan on outbound sends. The TCP
// transport honors Drop and Dup decisions; Delay degrades to immediate
// delivery (there is no holder on a real network — wire delay belongs
// to the in-process network the chaos harness drives).
func WithTCPPlan(p FaultPlan) TCPOption {
	return func(t *tcpTransport) { t.plan = p }
}

// WireMetrics counts bytes crossing a TCP transport's wire. The
// counters are nil-safe, so a zero WireMetrics costs nothing.
type WireMetrics struct {
	SentBytes *telemetry.Counter // marshaled frame bytes written
	RecvBytes *telemetry.Counter // raw bytes read off inbound connections
}

// WithTCPMetrics installs wire byte counters on the transport.
func WithTCPMetrics(m WireMetrics) TCPOption {
	return func(t *tcpTransport) { t.metrics = m }
}

// ListenTCP starts a TCP endpoint on addr ("host:port"; use port 0 for an
// ephemeral port) and dispatches every inbound frame to h on a dedicated
// goroutine per connection.
func ListenTCP(addr string, h Handler, opts ...TCPOption) (Transport, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &tcpTransport{
		ln:           ln,
		handler:      h,
		conns:        make(map[string]*sendConn),
		inbound:      make(map[net.Conn]struct{}),
		dialTimeout:  5 * time.Second,
		writeTimeout: 10 * time.Second,
		done:         make(chan struct{}),
	}
	for _, opt := range opts {
		opt(t)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

type tcpTransport struct {
	ln           net.Listener
	handler      Handler
	plan         FaultPlan
	metrics      WireMetrics
	dialTimeout  time.Duration
	writeTimeout time.Duration

	mu      sync.Mutex
	conns   map[string]*sendConn
	inbound map[net.Conn]struct{}
	closed  bool

	wg   sync.WaitGroup
	done chan struct{}
}

// sendConn is a pooled outbound connection with a write lock so frames
// from concurrent senders do not interleave.
type sendConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (t *tcpTransport) Addr() string { return "tcp://" + t.ln.Addr().String() }

// StripScheme converts "tcp://host:port" to "host:port"; other strings
// pass through unchanged.
func StripScheme(addr string) string {
	if i := strings.Index(addr, "://"); i >= 0 {
		return addr[i+3:]
	}
	return addr
}

func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept error; keep serving.
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *tcpTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	r := &countingReader{r: conn, c: t.metrics.RecvBytes}
	for {
		m, err := acl.ReadFrame(r)
		if err != nil {
			// EOF, deadline or codec error all end the connection; the
			// peer re-dials as needed.
			return
		}
		select {
		case <-t.done:
			return
		default:
		}
		t.handler(m)
	}
}

func (t *tcpTransport) Send(ctx context.Context, addr string, m *acl.Message) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := m.Validate(); err != nil {
		return err
	}
	var d Decision
	if t.plan != nil {
		d = t.plan.Decide(t.Addr(), addr, m)
	}
	if d.Drop {
		if d.Err != nil {
			return d.Err
		}
		return ErrFaultInjected
	}
	frame, err := acl.Marshal(m)
	if err != nil {
		return err
	}
	for copies := 0; copies <= d.Dup; copies++ {
		if err := t.sendFrame(ctx, addr, frame); err != nil {
			return err
		}
		t.metrics.SentBytes.Add(uint64(len(frame)))
	}
	return nil
}

// countingReader counts bytes flowing through an io.Reader into a
// nil-safe counter.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

func (t *tcpTransport) sendFrame(ctx context.Context, addr string, frame []byte) error {
	// One reconnect attempt: a pooled connection may have gone stale.
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := t.getConn(ctx, addr)
		if err != nil {
			return err
		}
		if err := t.writeFrame(sc, frame); err != nil {
			t.dropConn(addr, sc)
			if attempt == 0 {
				continue
			}
			return fmt.Errorf("transport: send to %s: %w", addr, err)
		}
		return nil
	}
	return fmt.Errorf("transport: send to %s failed", addr)
}

func (t *tcpTransport) writeFrame(sc *sendConn, frame []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if t.writeTimeout > 0 {
		if err := sc.conn.SetWriteDeadline(time.Now().Add(t.writeTimeout)); err != nil {
			return err
		}
	}
	_, err := sc.conn.Write(frame)
	return err
}

func (t *tcpTransport) getConn(ctx context.Context, addr string) (*sendConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return sc, nil
	}
	t.mu.Unlock()

	d := net.Dialer{Timeout: t.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", StripScheme(addr))
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	sc := &sendConn{conn: conn}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[addr]; ok {
		// Lost a dial race; use the winner.
		conn.Close()
		return existing, nil
	}
	t.conns[addr] = sc
	return sc, nil
}

func (t *tcpTransport) dropConn(addr string, sc *sendConn) {
	t.mu.Lock()
	if cur, ok := t.conns[addr]; ok && cur == sc {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	sc.conn.Close()
}

func (t *tcpTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*sendConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	close(t.done)
	err := t.ln.Close()
	for _, sc := range conns {
		sc.conn.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// ReadAllFrames drains every frame from r until EOF; it exists for tests
// and offline tooling that replay captured message logs.
func ReadAllFrames(r io.Reader) ([]*acl.Message, error) {
	var out []*acl.Message
	for {
		m, err := acl.ReadFrame(r)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}
