package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/flight"
	"agentgrid/internal/telemetry"
)

// TCPOption configures a TCP transport.
type TCPOption func(*tcpTransport)

// WithDialTimeout sets the per-connection dial timeout (default 5s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.dialTimeout = d }
}

// WithWriteTimeout sets the per-frame write deadline (default 10s).
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.writeTimeout = d }
}

// WithFlushWindow enables write coalescing: outbound frames are staged
// in a per-connection buffer and flushed when the buffer fills, when d
// elapses after the first staged frame, or when the transport closes.
// d <= 0 (the default) flushes synchronously after every frame.
func WithFlushWindow(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.flushWindow = d }
}

// WithWireFormat selects the frame encoding for outbound messages
// (default acl.FormatBinary). Inbound frames always dispatch on their
// own magic, so peers on different formats interoperate.
func WithWireFormat(f acl.Format) TCPOption {
	return func(t *tcpTransport) { t.format = f }
}

// WithTCPFault installs a legacy fault-injection hook on outbound
// sends. It wraps the hook in a FaultPlan; WithTCPFault and WithTCPPlan
// overwrite each other.
func WithTCPFault(f FaultFunc) TCPOption {
	return func(t *tcpTransport) { t.plan = PlanFromFault(f) }
}

// WithTCPPlan installs a fault plan on outbound sends. The TCP
// transport honors Drop and Dup decisions; Delay degrades to immediate
// delivery (there is no holder on a real network — wire delay belongs
// to the in-process network the chaos harness drives).
func WithTCPPlan(p FaultPlan) TCPOption {
	return func(t *tcpTransport) { t.plan = p }
}

// WireMetrics counts a TCP transport's wire activity. The counters are
// nil-safe, so a zero WireMetrics costs nothing.
type WireMetrics struct {
	SentBytes    *telemetry.Counter // marshaled frame bytes written
	RecvBytes    *telemetry.Counter // raw bytes read off inbound connections
	AcceptErrors *telemetry.Counter // transient listener accept failures
	DecodeErrors *telemetry.Counter // inbound connections ended by a bad frame
}

// WithTCPMetrics installs wire byte counters on the transport.
func WithTCPMetrics(m WireMetrics) TCPOption {
	return func(t *tcpTransport) { t.metrics = m }
}

// WithTCPFlight journals every inbound frame (and decode failure) to
// the flight recorder under the transport.serve stage. The journal is
// resolved once here so the per-frame cost in the serve loop is the
// recorder's ring append alone. A nil recorder leaves the transport
// unjournaled.
func WithTCPFlight(r *flight.Recorder) TCPOption {
	return func(t *tcpTransport) { t.flight = r.Journal("transport.serve") }
}

// coalesceBufSize is the per-connection staging buffer for write
// coalescing. A full buffer flushes immediately, so the flush window
// only bounds the latency of a trickle, never the backlog of a burst.
const coalesceBufSize = 16 << 10

// recvBufSize is the per-connection read buffer in front of the frame
// reader. Sized to swallow a whole coalesced write burst from a peer in
// one syscall.
const recvBufSize = 64 << 10

// ListenTCP starts a TCP endpoint on addr ("host:port"; use port 0 for an
// ephemeral port) and dispatches every inbound frame to h on a dedicated
// goroutine per connection.
func ListenTCP(addr string, h Handler, opts ...TCPOption) (Transport, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &tcpTransport{
		ln:           ln,
		handler:      h,
		conns:        make(map[string]*sendConn),
		inbound:      make(map[net.Conn]struct{}),
		dialTimeout:  5 * time.Second,
		writeTimeout: 10 * time.Second,
		format:       acl.FormatBinary,
		done:         make(chan struct{}),
	}
	for _, opt := range opts {
		opt(t)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

type tcpTransport struct {
	ln           net.Listener
	handler      Handler
	plan         FaultPlan
	metrics      WireMetrics
	flight       *flight.Journal
	dialTimeout  time.Duration
	writeTimeout time.Duration
	flushWindow  time.Duration
	format       acl.Format

	mu      sync.Mutex
	conns   map[string]*sendConn
	inbound map[net.Conn]struct{}
	closed  bool

	wg   sync.WaitGroup
	done chan struct{}
}

// sendConn is a pooled outbound connection. The write lock keeps frames
// from concurrent senders from interleaving; the bufio.Writer stages
// frames for coalesced flushes when the transport has a flush window.
type sendConn struct {
	t *tcpTransport

	mu    sync.Mutex
	conn  net.Conn
	bw    *bufio.Writer
	timer *time.Timer // pending window flush, nil when none
	werr  error       // sticky asynchronous flush error
}

func (t *tcpTransport) Addr() string { return "tcp://" + t.ln.Addr().String() }

// StripScheme converts "tcp://host:port" to "host:port"; other strings
// pass through unchanged.
func StripScheme(addr string) string {
	if i := strings.Index(addr, "://"); i >= 0 {
		return addr[i+3:]
	}
	return addr
}

// nextAcceptBackoff advances the accept-retry delay: 1ms on the first
// failure, doubling to a 1s ceiling. A successful accept resets it by
// passing zero back in.
func nextAcceptBackoff(cur time.Duration) time.Duration {
	const (
		floor   = time.Millisecond
		ceiling = time.Second
	)
	if cur < floor {
		return floor
	}
	if cur >= ceiling/2 {
		return ceiling
	}
	return cur * 2
}

func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	var backoff time.Duration
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient accept error (fd exhaustion, aborted handshake):
			// count it and back off instead of hot-spinning the CPU
			// against a persistently failing listener.
			t.metrics.AcceptErrors.Add(1)
			backoff = nextAcceptBackoff(backoff)
			select {
			case <-t.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *tcpTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	// Read-side coalescing: without buffering every frame costs two
	// read syscalls (header + payload); at soak rates the syscalls
	// dominate the decode. The bufio layer turns a burst of small
	// frames into one read.
	r := &countingReader{r: conn, c: t.metrics.RecvBytes}
	fr := acl.NewFrameReader(bufio.NewReaderSize(r, recvBufSize))
	// One scratch message per connection: ReadMessageInto overwrites it
	// each frame and serves binary content as a view over the frame
	// reader's buffer. This is what the Handler contract ("must not
	// retain m past the call unless they clone it") exists for.
	var scratch acl.Message
	for {
		payload, err := fr.ReadMessageInto(&scratch)
		if err != nil {
			// EOF, deadline or codec error all end the connection; the
			// peer re-dials as needed. Only genuinely bad frames count
			// as decode errors — clean hangups and our own shutdown
			// are the normal end of a connection.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				t.metrics.DecodeErrors.Add(1)
				t.flight.Emit(flight.Event{Outcome: flight.OutcomeError, Err: err.Error()})
			}
			return
		}
		if t.flight != nil {
			// Conversation ID and trace ID are interned/derived, never
			// views into the frame buffer, so the journal may retain
			// them past this iteration. Only len(payload) is read from
			// the view.
			t.flight.Emit(flight.Event{
				Conversation: scratch.ConversationID,
				TraceID:      traceIDOf(&scratch),
				Size:         len(payload),
			})
		}
		select {
		case <-t.done:
			return
		default:
		}
		t.handler(&scratch)
	}
}

// traceIDOf extracts the numeric trace ID from a decoded message's
// trace context; zero when the message is untraced.
func traceIDOf(m *acl.Message) uint64 {
	if m.Trace == nil {
		return 0
	}
	return flight.ParseTraceID(m.Trace.TraceID)
}

func (t *tcpTransport) Send(ctx context.Context, addr string, m *acl.Message) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := m.Validate(); err != nil {
		return err
	}
	var d Decision
	if t.plan != nil {
		d = t.plan.Decide(t.Addr(), addr, m)
	}
	if d.Drop {
		if d.Err != nil {
			return d.Err
		}
		return ErrFaultInjected
	}
	bp := getFrameBuf()
	frame, err := acl.AppendFrame((*bp)[:0], m, t.format)
	if err != nil {
		putFrameBuf(bp)
		return err
	}
	var sendErr error
	for copies := 0; copies <= d.Dup; copies++ {
		if sendErr = t.sendFrame(ctx, addr, frame); sendErr != nil {
			break
		}
		t.metrics.SentBytes.Add(uint64(len(frame)))
	}
	// writeFrame copies the frame into the connection's staging buffer
	// (or the kernel) before returning, so the buffer is free here.
	*bp = frame
	putFrameBuf(bp)
	return sendErr
}

// framePool recycles outbound encode buffers across Sends; the frame is
// staged into the connection before Send returns, so the buffer's
// lifetime ends with the call.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledFrame caps what Send returns to the pool, so one huge batch
// frame does not pin its buffer for the life of the process.
const maxPooledFrame = 1 << 20

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	framePool.Put(bp)
}

// countingReader counts bytes flowing through an io.Reader into a
// nil-safe counter.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

func (t *tcpTransport) sendFrame(ctx context.Context, addr string, frame []byte) error {
	// One reconnect attempt: a pooled connection may have gone stale.
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := t.getConn(ctx, addr)
		if err != nil {
			return err
		}
		if err := sc.writeFrame(frame); err != nil {
			t.dropConn(addr, sc)
			if attempt == 0 {
				continue
			}
			return fmt.Errorf("transport: send to %s: %w", addr, err)
		}
		return nil
	}
	return fmt.Errorf("transport: send to %s failed", addr)
}

// writeFrame stages one frame on the connection. With no flush window
// the frame is flushed to the kernel before returning; with a window,
// the first staged frame arms a timer that flushes the batch.
func (sc *sendConn) writeFrame(frame []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.werr != nil {
		// A previous asynchronous flush failed; surface it so the
		// caller drops this connection and redials.
		return sc.werr
	}
	if sc.t.writeTimeout > 0 {
		if err := sc.conn.SetWriteDeadline(time.Now().Add(sc.t.writeTimeout)); err != nil {
			return err
		}
	}
	// sc.mu exists exactly to serialize these staged writes: the bufio
	// writer is single-writer by contract, and the write deadline set
	// above bounds how long the lock is held.
	//gridlint:ignore heldlockio per-connection write lock; deadline-bounded, serializes the shared bufio.Writer
	if _, err := sc.bw.Write(frame); err != nil {
		sc.werr = err
		return err
	}
	if sc.t.flushWindow <= 0 {
		//gridlint:ignore heldlockio per-connection write lock; deadline-bounded, serializes the shared bufio.Writer
		if err := sc.bw.Flush(); err != nil {
			sc.werr = err
			return err
		}
		return nil
	}
	if sc.bw.Buffered() > 0 && sc.timer == nil {
		sc.timer = time.AfterFunc(sc.t.flushWindow, sc.flushWindowExpired)
	}
	return nil
}

// flushWindowExpired drains the staging buffer when the coalescing
// window closes. It refreshes the write deadline first: the deadline
// set when the frame was staged must not fire just because the frame
// waited out the window.
func (sc *sendConn) flushWindowExpired() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.timer = nil
	//gridlint:ignore heldlockio per-connection write lock; flushLocked is deadline-bounded and sc.mu is what makes the flush safe
	sc.flushLocked()
}

func (sc *sendConn) flushLocked() {
	if sc.werr != nil || sc.bw.Buffered() == 0 {
		return
	}
	if sc.t.writeTimeout > 0 {
		if err := sc.conn.SetWriteDeadline(time.Now().Add(sc.t.writeTimeout)); err != nil {
			sc.werr = err
			return
		}
	}
	if err := sc.bw.Flush(); err != nil {
		sc.werr = err
	}
}

// shutdown flushes anything still staged and closes the connection.
// Used on transport Close so a coalescing window never swallows the
// last frames of a session.
func (sc *sendConn) shutdown() {
	sc.mu.Lock()
	if sc.timer != nil {
		sc.timer.Stop()
		sc.timer = nil
	}
	//gridlint:ignore heldlockio per-connection write lock; final deadline-bounded flush before close
	sc.flushLocked()
	sc.mu.Unlock()
	sc.conn.Close()
}

func (t *tcpTransport) getConn(ctx context.Context, addr string) (*sendConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return sc, nil
	}
	t.mu.Unlock()

	d := net.Dialer{Timeout: t.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", StripScheme(addr))
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	sc := &sendConn{t: t, conn: conn, bw: bufio.NewWriterSize(conn, coalesceBufSize)}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[addr]; ok {
		// Lost a dial race; use the winner. Close outside the lock: a
		// TCP close can block flushing the never-used socket, and t.mu
		// serializes every sender.
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[addr] = sc
	t.mu.Unlock()
	return sc, nil
}

func (t *tcpTransport) dropConn(addr string, sc *sendConn) {
	t.mu.Lock()
	if cur, ok := t.conns[addr]; ok && cur == sc {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	sc.mu.Lock()
	if sc.timer != nil {
		sc.timer.Stop()
		sc.timer = nil
	}
	sc.mu.Unlock()
	// No flush: the connection failed; staged bytes die with it and the
	// caller redials.
	sc.conn.Close()
}

func (t *tcpTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*sendConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	close(t.done)
	err := t.ln.Close()
	for _, sc := range conns {
		sc.shutdown()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// ReadAllFrames drains every frame from r until EOF; it exists for tests
// and offline tooling that replay captured message logs. Mixed ACL1 and
// ACL2 streams decode transparently.
func ReadAllFrames(r io.Reader) ([]*acl.Message, error) {
	fr := acl.NewFrameReader(r)
	var out []*acl.Message
	for {
		m, err := fr.ReadMessage()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}
