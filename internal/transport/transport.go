// Package transport moves ACL messages between containers. Two
// implementations share one interface: an in-process transport for
// single-process grids and tests, and a TCP transport with length-prefixed
// frames for grids spanning machines. A fault-injection hook supports the
// failure experiments.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"agentgrid/internal/acl"
)

// Handler consumes an inbound message. Implementations must not retain m
// past the call unless they clone it.
type Handler func(m *acl.Message)

// Transport sends ACL messages to container endpoints and receives those
// addressed to its own endpoint.
type Transport interface {
	// Addr returns the endpoint other containers use to reach this one,
	// e.g. "inproc://site1/c1" or "tcp://127.0.0.1:7001".
	Addr() string
	// Send delivers m to the container listening at addr.
	Send(ctx context.Context, addr string, m *acl.Message) error
	// Close releases the endpoint. Further Sends fail.
	Close() error
}

// Common transport errors.
var (
	ErrClosed        = errors.New("transport: closed")
	ErrUnknownAddr   = errors.New("transport: unknown address")
	ErrFaultInjected = errors.New("transport: injected fault")
)

// FaultFunc inspects an outbound message and may veto it. Returning a
// non-nil error makes Send fail with that error; the message is dropped.
// It is the legacy drop-only hook; new code composes a FaultPlan (see
// fault.go) instead.
type FaultFunc func(addr string, m *acl.Message) error

// DropAll is a FaultFunc that drops every message (a dead network) — the
// thin backward-compatible wrapper around the Drop plan primitive.
func DropAll(string, *acl.Message) error { return ErrFaultInjected }

// DropTo returns a FaultFunc that drops only messages for the given
// addr — the thin backward-compatible wrapper around When+Drop.
func DropTo(target string) FaultFunc {
	return func(addr string, _ *acl.Message) error {
		if addr == target {
			return ErrFaultInjected
		}
		return nil
	}
}

// InProcNetwork is a registry of in-process endpoints. It simulates a
// network inside one process: Send looks the destination up and invokes
// its handler synchronously. Safe for concurrent use.
type InProcNetwork struct {
	mu        sync.RWMutex
	endpoints map[string]*inprocEndpoint // guarded by mu
	plan      FaultPlan                  // guarded by mu
	holder    Holder                     // guarded by mu
	wireFid   bool                       // guarded by mu
}

// NewInProcNetwork returns an empty in-process network.
func NewInProcNetwork() *InProcNetwork {
	return &InProcNetwork{endpoints: make(map[string]*inprocEndpoint)}
}

// SetFault installs (or clears, with nil) a legacy fault-injection hook
// applied to every Send on this network. It wraps the hook in a
// FaultPlan; SetFault and SetPlan overwrite each other.
func (n *InProcNetwork) SetFault(f FaultFunc) {
	if f == nil {
		n.SetPlan(nil)
		return
	}
	n.SetPlan(PlanFromFault(f))
}

// SetPlan installs (or clears, with nil) the fault plan applied to
// every Send on this network.
func (n *InProcNetwork) SetPlan(p FaultPlan) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.plan = p
}

// SetHolder installs (or clears, with nil) the holder consulted for
// messages the plan decided to delay. Without a holder, delays degrade
// to immediate delivery.
func (n *InProcNetwork) SetHolder(h Holder) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.holder = h
}

// SetWireFidelity makes the in-process network deliver through the real
// wire codec — each message is encoded into a pooled binary frame and
// every delivered copy decoded from it — instead of Clone. Slower than
// cloning, but single-process grids then exercise exactly the bytes a
// TCP grid would, so codec regressions surface in in-proc tests too.
func (n *InProcNetwork) SetWireFidelity(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wireFid = on
}

// Endpoint registers a new endpoint under the given address. The address
// must be unique on the network.
func (n *InProcNetwork) Endpoint(addr string, h Handler) (Transport, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already registered", addr)
	}
	ep := &inprocEndpoint{net: n, addr: addr, handler: h}
	n.endpoints[addr] = ep
	return ep, nil
}

// Lookup reports whether an endpoint is registered at addr.
func (n *InProcNetwork) Lookup(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.endpoints[addr]
	return ok
}

func (n *InProcNetwork) send(ctx context.Context, from, to string, m *acl.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.RLock()
	plan := n.plan
	holder := n.holder
	wireFid := n.wireFid
	ep, ok := n.endpoints[to]
	n.mu.RUnlock()
	var d Decision
	if plan != nil {
		d = plan.Decide(from, to, m)
	}
	if d.Drop {
		if d.Err != nil {
			return d.Err
		}
		return ErrFaultInjected
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}
	// Deliver 1+Dup private copies so sender-side mutation cannot race
	// the receiver. A positive delay hands each copy to the holder,
	// which re-injects it later; without a holder the delay degrades to
	// immediate delivery. With wire fidelity on, each copy is a decode
	// of the real binary frame instead of a Clone.
	if wireFid {
		return n.sendWire(ep, from, to, m, d, holder)
	}
	for i := 0; i <= d.Dup; i++ {
		clone := m.Clone()
		if d.Delay > 0 && holder != nil && holder(from, to, clone, d) {
			continue
		}
		ep.deliver(clone)
	}
	return nil
}

// sendWire is the wire-fidelity delivery path: one pooled binary encode
// of m, one decode per delivered copy.
func (n *InProcNetwork) sendWire(ep *inprocEndpoint, from, to string, m *acl.Message, d Decision, holder Holder) error {
	bp := getFrameBuf()
	frame, err := acl.AppendFrame((*bp)[:0], m, acl.FormatBinary)
	if err != nil {
		putFrameBuf(bp)
		return err
	}
	var deliverErr error
	for i := 0; i <= d.Dup; i++ {
		mc, err := acl.Unmarshal(frame)
		if err != nil {
			deliverErr = fmt.Errorf("transport: wire fidelity round trip: %w", err)
			break
		}
		if d.Delay > 0 && holder != nil && holder(from, to, mc, d) {
			continue
		}
		ep.deliver(mc)
	}
	*bp = frame
	putFrameBuf(bp)
	return deliverErr
}

// Inject delivers m directly to the endpoint at addr, bypassing the
// fault plan and holder. Holders use it to release delayed messages;
// test harnesses use it to replay captured traffic.
func (n *InProcNetwork) Inject(to string, m *acl.Message) error {
	n.mu.RLock()
	ep, ok := n.endpoints[to]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}
	ep.deliver(m.Clone())
	return nil
}

func (n *InProcNetwork) remove(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

type inprocEndpoint struct {
	net     *InProcNetwork
	addr    string
	handler Handler

	mu     sync.Mutex
	closed bool
}

func (e *inprocEndpoint) Addr() string { return e.addr }

func (e *inprocEndpoint) Send(ctx context.Context, addr string, m *acl.Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := m.Validate(); err != nil {
		return err
	}
	return e.net.send(ctx, e.addr, addr, m)
}

func (e *inprocEndpoint) deliver(m *acl.Message) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	e.handler(m)
}

func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.net.remove(e.addr)
	return nil
}
