package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
)

func testMsg(from, to string) *acl.Message {
	return &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("a", from),
		Receivers:    []acl.AID{acl.NewAID("b", to)},
	}
}

// faultInbox is a thread-safe inbox used as an endpoint handler.
type faultInbox struct {
	mu   sync.Mutex
	msgs []*acl.Message
}

func (c *faultInbox) handle(m *acl.Message) {
	m = m.Clone() // handlers must not retain the delivered scratch
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *faultInbox) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func TestChainMergesDecisions(t *testing.T) {
	p := Chain(Delay(2*time.Millisecond), Dup(1), nil, Delay(3*time.Millisecond))
	d := p.Decide("a", "b", testMsg("a", "b"))
	if d.Drop || d.Delay != 5*time.Millisecond || d.Dup != 1 {
		t.Fatalf("merged decision = %+v", d)
	}
	d = Chain(p, Drop()).Decide("a", "b", testMsg("a", "b"))
	if !d.Drop {
		t.Fatal("chained drop lost")
	}
}

func TestPartitionIsBidirectional(t *testing.T) {
	p := Partition([]string{"left"}, []string{"right"})
	cases := []struct {
		from, to string
		drop     bool
	}{
		{"left", "right", true},
		{"right", "left", true},
		{"left", "left", false},
		{"left", "elsewhere", false},
		{"elsewhere", "right", false},
	}
	for _, c := range cases {
		d := p.Decide(c.from, c.to, testMsg(c.from, c.to))
		if d.Drop != c.drop {
			t.Errorf("Partition %s->%s drop = %v, want %v", c.from, c.to, d.Drop, c.drop)
		}
	}
}

func TestSometimesIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		p := Sometimes(seed, 0.3, Drop())
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.Decide("a", "b", testMsg("a", "b")).Drop
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
	drops := 0
	for _, v := range a {
		if v {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.3 dropped %d/%d", drops, len(a))
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	max := 10 * time.Millisecond
	a := Jitter(7, max)
	b := Jitter(7, max)
	for i := 0; i < 100; i++ {
		da := a.Decide("x", "y", testMsg("x", "y")).Delay
		db := b.Decide("x", "y", testMsg("x", "y")).Delay
		if da != db {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da, db)
		}
		if da < 0 || da >= max {
			t.Fatalf("delay %v outside [0,%v)", da, max)
		}
	}
	if d := Jitter(7, 0).Decide("x", "y", testMsg("x", "y")); d.Delay != 0 {
		t.Fatalf("zero max produced delay %v", d.Delay)
	}
}

func TestInProcPlanDropAndError(t *testing.T) {
	n := NewInProcNetwork()
	var inbox faultInbox
	ep, err := n.Endpoint("inproc://dst", inbox.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	src, err := n.Endpoint("inproc://src", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	n.SetPlan(When(func(_, to string, _ *acl.Message) bool { return to == "inproc://dst" }, Drop()))
	err = src.Send(context.Background(), "inproc://dst", testMsg("src", "dst"))
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("dropped send err = %v", err)
	}
	if inbox.count() != 0 {
		t.Fatal("dropped message delivered")
	}

	custom := errors.New("custom fault")
	n.SetPlan(PlanFunc(func(string, string, *acl.Message) Decision {
		return Decision{Drop: true, Err: custom}
	}))
	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); !errors.Is(err, custom) {
		t.Fatalf("custom drop err = %v", err)
	}

	n.SetPlan(nil)
	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); err != nil {
		t.Fatalf("healed send: %v", err)
	}
	if inbox.count() != 1 {
		t.Fatalf("delivered %d messages after heal", inbox.count())
	}
}

func TestInProcDupDeliversExtraCopies(t *testing.T) {
	n := NewInProcNetwork()
	var inbox faultInbox
	if _, err := n.Endpoint("inproc://dst", inbox.handle); err != nil {
		t.Fatal(err)
	}
	src, err := n.Endpoint("inproc://src", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	n.SetPlan(Dup(2))
	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); err != nil {
		t.Fatal(err)
	}
	if inbox.count() != 3 {
		t.Fatalf("dup(2) delivered %d copies, want 3", inbox.count())
	}
}

func TestInProcHolderCapturesDelayedAndInjectReleases(t *testing.T) {
	n := NewInProcNetwork()
	var inbox faultInbox
	if _, err := n.Endpoint("inproc://dst", inbox.handle); err != nil {
		t.Fatal(err)
	}
	src, err := n.Endpoint("inproc://src", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	var held []*acl.Message
	var heldTo []string
	var mu sync.Mutex
	n.SetHolder(func(from, to string, m *acl.Message, d Decision) bool {
		mu.Lock()
		defer mu.Unlock()
		held = append(held, m)
		heldTo = append(heldTo, to)
		return true
	})
	n.SetPlan(Delay(5 * time.Millisecond))

	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); err != nil {
		t.Fatal(err)
	}
	if inbox.count() != 0 {
		t.Fatal("delayed message delivered immediately despite holder")
	}
	mu.Lock()
	captured, to := len(held), append([]string(nil), heldTo...)
	msgs := append([]*acl.Message(nil), held...)
	mu.Unlock()
	if captured != 1 {
		t.Fatalf("holder captured %d messages", captured)
	}
	for i, m := range msgs {
		if err := n.Inject(to[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if inbox.count() != 1 {
		t.Fatalf("inject delivered %d messages", inbox.count())
	}

	// Without a holder, delay degrades to immediate delivery.
	n.SetHolder(nil)
	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); err != nil {
		t.Fatal(err)
	}
	if inbox.count() != 2 {
		t.Fatal("delay without holder did not deliver immediately")
	}
}

func TestInProcSetFaultBackCompat(t *testing.T) {
	n := NewInProcNetwork()
	var inbox faultInbox
	if _, err := n.Endpoint("inproc://dst", inbox.handle); err != nil {
		t.Fatal(err)
	}
	src, err := n.Endpoint("inproc://src", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	n.SetFault(DropTo("inproc://dst"))
	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("DropTo err = %v", err)
	}
	n.SetFault(nil)
	if err := src.Send(context.Background(), "inproc://dst", testMsg("src", "dst")); err != nil {
		t.Fatal(err)
	}
	if inbox.count() != 1 {
		t.Fatalf("delivered %d", inbox.count())
	}
}

func TestTCPPlanDropAndDup(t *testing.T) {
	var inbox faultInbox
	dst, err := ListenTCP("127.0.0.1:0", inbox.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	src, err := ListenTCP("127.0.0.1:0", func(*acl.Message) {},
		WithTCPPlan(Chain(
			When(func(_, _ string, m *acl.Message) bool { return m.Performative == acl.Request }, Drop()),
			When(func(_, _ string, m *acl.Message) bool { return m.Performative == acl.Inform }, Dup(1)),
		)))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	req := testMsg("src", "dst")
	req.Performative = acl.Request
	if err := src.Send(context.Background(), dst.Addr(), req); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("tcp drop err = %v", err)
	}
	if err := src.Send(context.Background(), dst.Addr(), testMsg("src", "dst")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for inbox.count() < 2 {
		select {
		case <-deadline:
			t.Fatalf("tcp dup delivered %d copies, want 2", inbox.count())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
