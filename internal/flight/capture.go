package flight

import (
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// On-demand profile capture for the report server's /debug/profile
// endpoint. CPU, mutex and block profiles cost while armed, so capture
// is bounded: one CPU capture at a time, windows capped at
// MaxCaptureWindow, and mutex/block profiling is enabled only for the
// duration of the capture then restored.

// MaxCaptureWindow caps the sampling window of windowed captures
// (cpu, mutex, block) so a stray query cannot leave profiling armed.
const MaxCaptureWindow = 30 * time.Second

// cpuBusy serializes CPU captures: runtime/pprof supports only one
// CPU profile at a time process-wide. A busy flag (rather than a
// mutex) lets a second request fail fast instead of queueing behind a
// 30s window.
var cpuBusy atomic.Bool

// clampWindow bounds d to (0, MaxCaptureWindow], defaulting to 5s.
func clampWindow(d time.Duration) time.Duration {
	if d <= 0 {
		return 5 * time.Second
	}
	if d > MaxCaptureWindow {
		return MaxCaptureWindow
	}
	return d
}

// CaptureCPU writes a CPU profile of the next d (clamped) to w. At
// most one capture runs at a time; concurrent requests fail fast.
func CaptureCPU(w io.Writer, d time.Duration) error {
	if !cpuBusy.CompareAndSwap(false, true) {
		return fmt.Errorf("flight: a cpu capture is already running")
	}
	defer cpuBusy.Store(false)
	if err := pprof.StartCPUProfile(w); err != nil {
		return err
	}
	//gridlint:ignore sleepsync the sleep IS the sampling window, not a wait
	time.Sleep(clampWindow(d))
	pprof.StopCPUProfile()
	return nil
}

// CaptureMutex arms mutex profiling for d (clamped), writes the
// resulting profile to w, and restores the previous fraction.
func CaptureMutex(w io.Writer, d time.Duration, debug int) error {
	prev := runtime.SetMutexProfileFraction(5)
	//gridlint:ignore sleepsync the sleep IS the sampling window, not a wait
	time.Sleep(clampWindow(d))
	err := writeLookup(w, "mutex", debug)
	runtime.SetMutexProfileFraction(prev)
	return err
}

// CaptureBlock arms block profiling for d (clamped), writes the
// resulting profile to w, and disarms it.
func CaptureBlock(w io.Writer, d time.Duration, debug int) error {
	runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
	//gridlint:ignore sleepsync the sleep IS the sampling window, not a wait
	time.Sleep(clampWindow(d))
	err := writeLookup(w, "block", debug)
	runtime.SetBlockProfileRate(0)
	return err
}

// CaptureProfile dispatches a named capture. Windowed kinds (cpu,
// mutex, block) sample for d; snapshot kinds (heap, allocs, goroutine,
// threadcreate) ignore it. debug selects pprof's text rendering for
// snapshot and mutex/block kinds; the cpu kind is always binary.
func CaptureProfile(w io.Writer, kind string, d time.Duration, debug int) error {
	switch kind {
	case "cpu":
		return CaptureCPU(w, d)
	case "mutex":
		return CaptureMutex(w, d, debug)
	case "block":
		return CaptureBlock(w, d, debug)
	case "heap", "allocs", "goroutine", "threadcreate":
		return writeLookup(w, kind, debug)
	default:
		return fmt.Errorf("flight: unknown profile %q (want cpu|heap|allocs|goroutine|threadcreate|mutex|block)", kind)
	}
}

func writeLookup(w io.Writer, name string, debug int) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("flight: no %q profile", name)
	}
	return p.WriteTo(w, debug)
}
