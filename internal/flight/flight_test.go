package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/telemetry"
)

func newTestRecorder(t *testing.T, o Options) *Recorder {
	t.Helper()
	r := New(o)
	t.Cleanup(r.Close)
	return r
}

func TestEmitOrderAndFields(t *testing.T) {
	r := newTestRecorder(t, Options{Shards: 2, ShardCapacity: 8})
	r.Emit("collect.poll", Event{Container: "collector-1", Dur: 5 * time.Millisecond})
	r.Emit("classify.ingest", Event{Container: "classifier", Conversation: "conv-1", TraceID: 0xabc, Size: 42})
	r.Emit("transport.serve", Event{Outcome: OutcomeError, Err: "short frame"})

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[0].Name != "collect.poll" || evs[0].Container != "collector-1" {
		t.Fatalf("first event mangled: %+v", evs[0])
	}
	if evs[0].At == 0 {
		t.Fatal("Emit did not stamp At from the coarse clock")
	}
	if evs[1].TraceID != 0xabc || evs[1].Conversation != "conv-1" || evs[1].Size != 42 {
		t.Fatalf("second event mangled: %+v", evs[1])
	}
	if evs[2].Outcome != OutcomeError || evs[2].Err != "short frame" {
		t.Fatalf("third event mangled: %+v", evs[2])
	}
}

func TestRingWraparoundDropsOldest(t *testing.T) {
	r := newTestRecorder(t, Options{Shards: 1, ShardCapacity: 4})
	for i := 0; i < 10; i++ {
		r.Emit("analyze.task", Event{Size: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered %d events, want ring capacity 4", len(evs))
	}
	// Oldest six were overwritten; survivors are the newest four in order.
	for i, e := range evs {
		if e.Size != 6+i {
			t.Fatalf("event %d has Size %d, want %d (drop-oldest violated)", i, e.Size, 6+i)
		}
	}
	if got := r.Stats().Overwritten; got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
}

func TestTriggerDumpBounding(t *testing.T) {
	r := newTestRecorder(t, Options{Shards: 1, ShardCapacity: 8, MaxDumps: 2})
	r.Emit("report.alert", Event{})
	d1 := r.Trigger("first")
	r.Trigger("second")
	d3 := r.Trigger("third")

	dumps := r.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("retained %d dumps, want 2", len(dumps))
	}
	if dumps[0].Reason != "second" || dumps[1].Reason != "third" {
		t.Fatalf("wrong dumps retained: %q, %q", dumps[0].Reason, dumps[1].Reason)
	}
	if d1.Seq != 1 || d3.Seq != 3 {
		t.Fatalf("dump seqs = %d, %d; want 1, 3", d1.Seq, d3.Seq)
	}
	if len(d3.Events) != 1 {
		t.Fatalf("dump carried %d events, want 1", len(d3.Events))
	}
	if _, ok := r.Dump(1); ok {
		t.Fatal("evicted dump still retrievable")
	}
	if got, ok := r.Dump(3); !ok || got.Reason != "third" {
		t.Fatalf("Dump(3) = %+v, %v", got, ok)
	}
}

func TestStageAttribution(t *testing.T) {
	r := newTestRecorder(t, Options{})
	r.Emit("classify.ingest", Event{Dur: 10 * time.Millisecond})
	r.Emit("classify.ingest", Event{Outcome: OutcomeError, Err: "boom"})
	r.Emit("platform.route", Event{Outcome: OutcomeDrop})

	st := r.StageStats()
	ci := st["classify.ingest"]
	if ci.Events != 2 || ci.Errors != 1 || ci.Busy != 10*time.Millisecond {
		t.Fatalf("classify.ingest stats = %+v", ci)
	}
	if pr := st["platform.route"]; pr.Drops != 1 {
		t.Fatalf("platform.route stats = %+v", pr)
	}
	names := r.StageNames()
	if len(names) != 2 || names[0] != "classify.ingest" || names[1] != "platform.route" {
		t.Fatalf("StageNames = %v", names)
	}
}

func TestCapturePanicDumpsAndRepanics(t *testing.T) {
	var crash bytes.Buffer
	r := newTestRecorder(t, Options{CrashLog: &crash})
	r.Emit("analyze.dispatch", Event{Conversation: "conv-9"})

	var repanicked any
	func() {
		defer func() { repanicked = recover() }()
		func() {
			defer r.CapturePanic("analyzer-l2")
			panic("worker exploded")
		}()
	}()
	if repanicked != "worker exploded" {
		t.Fatalf("CapturePanic swallowed the panic: got %v", repanicked)
	}
	dumps := r.Dumps()
	if len(dumps) != 1 || !strings.Contains(dumps[0].Reason, "analyzer-l2") {
		t.Fatalf("no panic dump retained: %+v", dumps)
	}
	out := crash.String()
	if !strings.Contains(out, "panic in analyzer-l2") || !strings.Contains(out, "conv=conv-9") {
		t.Fatalf("crash log missing dump context:\n%s", out)
	}
	if !strings.Contains(out, "goroutine") {
		t.Fatalf("crash log missing stack trace:\n%s", out)
	}
}

func TestCapturePanicNoPanicIsNoop(t *testing.T) {
	r := newTestRecorder(t, Options{})
	func() {
		defer r.CapturePanic("quiet")
	}()
	if len(r.Dumps()) != 0 {
		t.Fatal("CapturePanic dumped without a panic")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit("transport.serve", Event{})
	r.Trigger("nothing")
	r.Close()
	if r.Events() != nil || r.Dumps() != nil || r.StageNames() != nil {
		t.Fatal("nil recorder returned non-nil data")
	}
	if s := r.Stats(); s.Emitted != 0 {
		t.Fatalf("nil recorder stats = %+v", s)
	}
	// A nil recorder must still re-panic.
	var repanicked any
	func() {
		defer func() { repanicked = recover() }()
		func() {
			defer r.CapturePanic("nil")
			panic("still fatal")
		}()
	}()
	if repanicked != "still fatal" {
		t.Fatal("nil CapturePanic swallowed the panic")
	}
}

func TestEventJSONHexTraceID(t *testing.T) {
	e := Event{Seq: 7, Name: "classify.ingest", TraceID: 0xdeadbeef, Outcome: OutcomeError, Err: "x"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"trace_id":"00000000deadbeef"`) {
		t.Fatalf("trace_id not hex-rendered: %s", s)
	}
	if !strings.Contains(s, `"outcome":"error"`) {
		t.Fatalf("outcome not string-rendered: %s", s)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if _, ok := back["trace_id"]; !ok {
		t.Fatalf("trace_id missing: %s", s)
	}
}

func TestConcurrentEmitSnapshotTrigger(t *testing.T) {
	r := newTestRecorder(t, Options{Shards: 4, ShardCapacity: 64})
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit("transport.serve", Event{Size: g})
				if i%100 == 0 {
					r.Events()
					r.Trigger("probe")
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Stats()
	if s.Emitted != goroutines*per {
		t.Fatalf("Emitted = %d, want %d", s.Emitted, goroutines*per)
	}
	if s.Stages["transport.serve"].Events != goroutines*per {
		t.Fatalf("stage events = %d, want %d", s.Stages["transport.serve"].Events, goroutines*per)
	}
	if got := len(r.Dumps()); got > defaultMaxDumps {
		t.Fatalf("dump list unbounded: %d", got)
	}
}

func TestProfilerFeedsRegistry(t *testing.T) {
	rec := newTestRecorder(t, Options{})
	rec.Emit("classify.ingest", Event{Dur: time.Millisecond})
	reg := telemetry.NewRegistry("agentgrid")
	p := StartProfiler(ProfilerOptions{Recorder: rec, Registry: reg, Every: time.Hour})
	t.Cleanup(p.Close)
	p.Sample()

	snap := reg.Snapshot()
	byName := map[string]telemetry.MetricSnapshot{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	g, ok := byName["agentgrid_flight_runtime_goroutines_count"]
	if !ok || len(g.Series) == 0 || g.Series[0].Value < 1 {
		t.Fatalf("goroutine gauge missing or zero: %+v", g)
	}
	if _, ok := byName["agentgrid_flight_runtime_heap_bytes"]; !ok {
		t.Fatal("heap gauge not registered")
	}
	ev, ok := byName["agentgrid_flight_stage_events_total"]
	if !ok {
		t.Fatal("per-stage counter not registered")
	}
	found := false
	for _, s := range ev.Series {
		if s.Labels["stage"] == "classify.ingest" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("classify.ingest stage series wrong: %+v", ev.Series)
	}
	busy, ok := byName["agentgrid_flight_stage_busy_seconds"]
	if !ok || len(busy.Series) == 0 || busy.Series[0].Value <= 0 {
		t.Fatalf("stage busy gauge missing: %+v", busy)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.Sample()
	p.Close()
	if q := StartProfiler(ProfilerOptions{}); q != nil {
		t.Fatal("StartProfiler without registry should return nil")
	}
}

func TestCaptureProfileKinds(t *testing.T) {
	var buf bytes.Buffer
	if err := CaptureProfile(&buf, "goroutine", 0, 1); err != nil {
		t.Fatalf("goroutine capture: %v", err)
	}
	if !strings.Contains(buf.String(), "goroutine profile") {
		t.Fatalf("goroutine profile text missing header:\n%.200s", buf.String())
	}
	buf.Reset()
	if err := CaptureProfile(&buf, "heap", 0, 0); err != nil {
		t.Fatalf("heap capture: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("heap capture wrote nothing")
	}
	if err := CaptureProfile(&buf, "nope", 0, 0); err == nil {
		t.Fatal("unknown profile kind accepted")
	}
	buf.Reset()
	if err := CaptureCPU(&buf, time.Millisecond); err != nil {
		t.Fatalf("cpu capture: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("cpu capture wrote nothing")
	}
}

func TestWriteTextRenderings(t *testing.T) {
	var b bytes.Buffer
	WriteEventsText(&b, []Event{
		{At: time.Now().UnixNano(), Name: "transport.serve", Container: "root", Size: 186, Dur: 12 * time.Microsecond, TraceID: 0xc0ffee, Conversation: "c1"},
		{At: time.Now().UnixNano(), Name: "chaos.fault", Outcome: OutcomeDrop},
	})
	out := b.String()
	for _, want := range []string{"transport.serve", "186B", "trace=0000000000c0ffee", "conv=c1", "chaos.fault", "drop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("events text missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	WriteStatsText(&b, Stats{Emitted: 2, Stages: map[string]StageStats{
		"collect.poll": {Events: 2, Busy: time.Second},
	}})
	if !strings.Contains(b.String(), "collect.poll") || !strings.Contains(b.String(), "STAGE") {
		t.Fatalf("stats text malformed:\n%s", b.String())
	}
}

func TestEmitAllocFree(t *testing.T) {
	r := newTestRecorder(t, Options{Shards: 2, ShardCapacity: 256})
	ev := Event{Container: "root", Conversation: "conv", TraceID: 1, Dur: time.Microsecond, Size: 128}
	// Warm the stage cell so steady state is measured.
	r.Emit("transport.serve", ev)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit("transport.serve", ev)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f/op at steady state, want 0", allocs)
	}
}
