package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// marshalJSON keeps the encoding/json dependency out of the hot-path
// file; Event.MarshalJSON routes through it.
func marshalJSON(v any) ([]byte, error) { return json.Marshal(v) }

// WriteEventsText renders events one per line in a fixed-width layout
// meant for terminals and crash logs:
//
//	15:04:05.000  transport.serve      classifier-1  ok     186B  12µs  conv=trap-4 trace=00c0ffee00c0ffee
func WriteEventsText(w io.Writer, events []Event) {
	for _, e := range events {
		ts := time.Unix(0, e.At).Format("15:04:05.000")
		fmt.Fprintf(w, "%s  %-22s %-16s %-5s", ts, e.Name, e.Container, e.Outcome)
		if e.Size > 0 {
			fmt.Fprintf(w, " %6dB", e.Size)
		} else {
			fmt.Fprintf(w, "        ")
		}
		if e.Dur > 0 {
			fmt.Fprintf(w, " %10s", e.Dur.Round(time.Microsecond))
		}
		if idx, ok := e.ShardIndex(); ok {
			fmt.Fprintf(w, " shard=%d", idx)
		}
		if e.Conversation != "" {
			fmt.Fprintf(w, " conv=%s", e.Conversation)
		}
		if e.TraceID != 0 {
			fmt.Fprintf(w, " trace=%016x", e.TraceID)
		}
		if e.Err != "" {
			fmt.Fprintf(w, " err=%q", e.Err)
		}
		fmt.Fprintln(w)
	}
}

// WriteDumpText renders one dump: a header line then its events.
func WriteDumpText(w io.Writer, d Dump) {
	fmt.Fprintf(w, "-- flight dump #%d at %s: %s (%d events)\n",
		d.Seq, time.Unix(0, d.At).Format(time.RFC3339Nano), d.Reason, len(d.Events))
	WriteEventsText(w, d.Events)
}

// WriteStatsText renders recorder stats with the per-stage attribution
// table sorted by stage name.
func WriteStatsText(w io.Writer, s Stats) {
	fmt.Fprintf(w, "emitted=%d buffered=%d overwritten=%d dumps=%d\n",
		s.Emitted, s.Buffered, s.Overwritten, s.Dumps)
	names := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "%-22s %12s %8s %8s %14s\n", "STAGE", "EVENTS", "ERRORS", "DROPS", "BUSY")
	}
	for _, name := range names {
		st := s.Stages[name]
		fmt.Fprintf(w, "%-22s %12d %8d %8d %14s\n",
			name, st.Events, st.Errors, st.Drops, st.Busy.Round(time.Microsecond))
	}
}
