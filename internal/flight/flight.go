// Package flight is the grid's always-on flight recorder: a
// lock-striped, drop-oldest ring journal of structured wide events
// emitted from every pipeline stage, cheap enough to leave enabled at
// the soak gate's sustained rate. When something goes wrong — a chaos
// fault fires, a health check flips unhealthy, an agent goroutine
// panics — the recorder snapshots its recent history into a bounded
// dump list so the operator can replay the seconds leading up to the
// incident instead of reconstructing them from logs.
//
// Emit is the hot-path entry point and follows the PR 7 steady-state
// discipline: no allocation, no time.Now() (timestamps come from a
// coarse clock advanced by a background ticker), one atomic sequence
// fetch, one short shard critical section copying the event by value
// into the ring. Strings stored in events must be stable — constant
// stage names and the interned header strings the ACL Into decode path
// guarantees never alias a frame buffer.
//
// Every method is nil-safe: a nil *Recorder is a no-op recorder, so
// stages wire the journal with plain field assignment and zero
// conditionals, the same contract trace and telemetry follow.
package flight

import (
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how the unit of work an event describes ended.
type Outcome uint8

const (
	// OutcomeOK is the steady-state outcome.
	OutcomeOK Outcome = iota
	// OutcomeError marks a failed unit of work (decode error, send
	// failure, handler error); Err carries the detail.
	OutcomeError
	// OutcomeDrop marks work that was deliberately shed (chaos drop
	// verdicts, full mailboxes, unroutable destinations).
	OutcomeDrop
)

// String returns the wire spelling used in JSON and text renderings.
func (o Outcome) String() string {
	switch o {
	case OutcomeError:
		return "error"
	case OutcomeDrop:
		return "drop"
	default:
		return "ok"
	}
}

// MarshalJSON renders the outcome as its string spelling.
func (o Outcome) MarshalJSON() ([]byte, error) {
	return []byte(`"` + o.String() + `"`), nil
}

// Event is one wide structured record of a unit of pipeline work. The
// struct is copied by value into the ring; it must stay flat (no
// pointers into caller-owned buffers) so retaining it is safe and the
// copy is a handful of word moves.
type Event struct {
	// Seq is the recorder-global emission sequence number, assigned by
	// Emit. Later Seq means later emission.
	Seq uint64 `json:"seq"`
	// At is the coarse wall-clock timestamp in unix nanoseconds,
	// assigned by Emit when zero.
	At int64 `json:"at"`
	// Name is the stage event name ("transport.serve",
	// "classify.ingest", ...), lowercase dot-separated — enforced by
	// the eventname gridlint analyzer at the Emit call site.
	Name string `json:"name"`
	// Container is the emitting container's platform name, when known.
	Container string `json:"container,omitempty"`
	// Conversation is the ACL conversation ID the work belonged to.
	Conversation string `json:"conversation,omitempty"`
	// TraceID links the event to the trace subsystem's span tree; zero
	// when the work carried no trace context.
	TraceID uint64 `json:"-"`
	// Dur is how long the unit of work took, when the stage timed it.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Outcome classifies the result.
	Outcome Outcome `json:"outcome"`
	// Size is a stage-relevant byte or item count (frame bytes,
	// notices in a batch, alerts raised).
	Size int `json:"size,omitempty"`
	// Shard tags store-ingest events with the lock stripe that received
	// the work, stored 1-based so the zero value means "not a sharded
	// stage". Set it with TagShard; read it with ShardIndex.
	Shard int `json:"-"`
	// Err is the error detail for non-OK outcomes.
	Err string `json:"err,omitempty"`
}

// TagShard marks the event as landing on store stripe idx (0-based).
func (e *Event) TagShard(idx int) {
	if idx >= 0 {
		e.Shard = idx + 1
	}
}

// ShardIndex returns the 0-based stripe index and whether the event was
// tagged with one.
func (e Event) ShardIndex() (int, bool) { return e.Shard - 1, e.Shard > 0 }

// eventJSON mirrors Event for encoding with the trace ID in the hex
// spelling gridctl trace accepts as input.
type eventJSON struct {
	Seq          uint64        `json:"seq"`
	At           int64         `json:"at"`
	Name         string        `json:"name"`
	Container    string        `json:"container,omitempty"`
	Conversation string        `json:"conversation,omitempty"`
	TraceID      string        `json:"trace_id,omitempty"`
	Dur          time.Duration `json:"dur_ns,omitempty"`
	Outcome      Outcome       `json:"outcome"`
	Size         int           `json:"size,omitempty"`
	Shard        *int          `json:"shard,omitempty"`
	Err          string        `json:"err,omitempty"`
}

// MarshalJSON renders the event with trace_id as the zero-padded hex
// string the trace subsystem's lookup accepts.
func (e Event) MarshalJSON() ([]byte, error) {
	j := eventJSON{
		Seq:          e.Seq,
		At:           e.At,
		Name:         e.Name,
		Container:    e.Container,
		Conversation: e.Conversation,
		Dur:          e.Dur,
		Outcome:      e.Outcome,
		Size:         e.Size,
		Err:          e.Err,
	}
	if e.TraceID != 0 {
		j.TraceID = fmt.Sprintf("%016x", e.TraceID)
	}
	if idx, ok := e.ShardIndex(); ok {
		j.Shard = &idx
	}
	return marshalJSON(j)
}

// Options configures a Recorder. The zero value picks defaults sized
// for one grid process: 8 shards of 1024 events (~850KB of history at
// 1M msgs/s is most of a second of transport events) and the last 8
// dumps retained.
type Options struct {
	// Shards is the stripe count, rounded up to a power of two.
	Shards int
	// ShardCapacity is the ring size per shard, in events.
	ShardCapacity int
	// MaxDumps bounds the retained dump list; older dumps are evicted.
	MaxDumps int
	// CrashLog receives a text rendering of the triggered dump when
	// CapturePanic fires, so the recording survives the process.
	// Defaults to io.Discard when nil; grids wire os.Stderr.
	CrashLog io.Writer
	// CoarseTick is the coarse-clock resolution. Defaults to 1ms.
	CoarseTick time.Duration
}

const (
	defaultShards    = 8
	defaultShardCap  = 1024
	defaultMaxDumps  = 8
	defaultTick      = time.Millisecond
	maxEventErrBytes = 256
)

type shard struct {
	mu    sync.Mutex
	buf   []Event // guarded by mu; fixed-size power-of-two ring
	cmask int     // len(buf)-1; ring indices wrap with & not %
	start int     // guarded by mu
	n     int     // guarded by mu
	// pad keeps adjacent shards off one cache line so striping
	// actually buys parallelism.
	_ [64]byte
}

// stageStat is the per-stage attribution cell: lock-free counters the
// continuous profiler exposes as flight_stage_* metrics.
type stageStat struct {
	events atomic.Uint64
	errs   atomic.Uint64
	drops  atomic.Uint64
	busyNS atomic.Uint64
}

// StageStats is a point-in-time copy of one stage's attribution.
type StageStats struct {
	Events uint64        `json:"events"`
	Errors uint64        `json:"errors"`
	Drops  uint64        `json:"drops"`
	Busy   time.Duration `json:"busy_ns"`
}

// Dump is one triggered snapshot of the recorder's recent history.
type Dump struct {
	Seq    uint64  `json:"seq"`
	Reason string  `json:"reason"`
	At     int64   `json:"at"`
	Events []Event `json:"events"`
}

// Stats summarizes the recorder's lifetime activity.
type Stats struct {
	Emitted     uint64                `json:"emitted"`
	Overwritten uint64                `json:"overwritten"`
	Dumps       uint64                `json:"dumps"`
	Buffered    int                   `json:"buffered"`
	Stages      map[string]StageStats `json:"stages"`
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Recorder struct {
	shards      []shard
	mask        uint64
	seq         atomic.Uint64
	overwritten atomic.Uint64
	coarse      atomic.Int64

	// stages is a copy-on-write map: Emit reads it lock-free; misses
	// take stageMu, copy, and swap. Stage-name cardinality is small
	// and fixed (one entry per instrumented call site), so the copy
	// path runs a handful of times per process.
	stages  atomic.Pointer[map[string]*stageStat]
	stageMu sync.Mutex

	dumpMu   sync.Mutex
	dumps    []Dump
	dumpSeq  uint64
	maxDumps int
	crashLog io.Writer

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds and starts a recorder. The background coarse-clock
// goroutine runs until Close.
func New(o Options) *Recorder {
	if o.Shards <= 0 {
		o.Shards = defaultShards
	}
	if o.ShardCapacity <= 0 {
		o.ShardCapacity = defaultShardCap
	}
	if o.MaxDumps <= 0 {
		o.MaxDumps = defaultMaxDumps
	}
	if o.CrashLog == nil {
		o.CrashLog = io.Discard
	}
	if o.CoarseTick <= 0 {
		o.CoarseTick = defaultTick
	}
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	cap := 1
	for cap < o.ShardCapacity {
		cap <<= 1
	}
	r := &Recorder{
		shards:   make([]shard, n),
		mask:     uint64(n - 1),
		maxDumps: o.MaxDumps,
		crashLog: o.CrashLog,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, cap)
		r.shards[i].cmask = cap - 1
	}
	empty := make(map[string]*stageStat)
	r.stages.Store(&empty)
	r.coarse.Store(time.Now().UnixNano())
	go r.tick(o.CoarseTick)
	return r
}

// tick advances the coarse clock until Close.
func (r *Recorder) tick(every time.Duration) {
	defer close(r.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.coarse.Store(now.UnixNano())
		}
	}
}

// Close stops the coarse-clock goroutine. The recorder remains usable
// (Emit falls back to the last stored timestamp), so Close ordering
// against late emitters is not a concern.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Now returns the recorder's coarse wall-clock reading in unix
// nanoseconds.
func (r *Recorder) Now() int64 {
	if r == nil {
		return time.Now().UnixNano()
	}
	return r.coarse.Load()
}

// stage returns the attribution cell for name, creating it on first
// use via copy-on-write so the steady-state read is one atomic load
// and one map lookup.
func (r *Recorder) stage(name string) *stageStat {
	m := r.stages.Load()
	if st, ok := (*m)[name]; ok {
		return st
	}
	r.stageMu.Lock()
	defer r.stageMu.Unlock()
	m = r.stages.Load()
	if st, ok := (*m)[name]; ok {
		return st
	}
	next := make(map[string]*stageStat, len(*m)+1)
	for k, v := range *m {
		next[k] = v
	}
	st := &stageStat{}
	next[name] = st
	r.stages.Store(&next)
	return st
}

// Emit journals one event under name. The event is copied by value
// into a ring shard chosen by sequence number (round-robin, spreading
// contention); when the shard is full the oldest event is overwritten
// and counted. Zero-allocation at steady state. Per-message hot paths
// should resolve a Journal once and emit through it instead, skipping
// the per-call stage lookup.
func (r *Recorder) Emit(name string, e Event) {
	if r == nil {
		return
	}
	r.emit(r.stage(name), name, e)
}

func (r *Recorder) emit(st *stageStat, name string, e Event) {
	e.Name = name
	e.Seq = r.seq.Add(1)
	if e.At == 0 {
		e.At = r.coarse.Load()
	}
	st.events.Add(1)
	if e.Outcome == OutcomeError {
		st.errs.Add(1)
	} else if e.Outcome == OutcomeDrop {
		st.drops.Add(1)
	}
	if e.Dur > 0 {
		st.busyNS.Add(uint64(e.Dur))
	}
	sh := &r.shards[e.Seq&r.mask]
	sh.mu.Lock()
	if sh.n == len(sh.buf) {
		sh.buf[sh.start] = e
		sh.start = (sh.start + 1) & sh.cmask
		sh.mu.Unlock()
		r.overwritten.Add(1)
		return
	}
	sh.buf[(sh.start+sh.n)&sh.cmask] = e
	sh.n++
	sh.mu.Unlock()
}

// Journal is a pre-resolved emitter bound to one stage name, for
// per-message hot paths (transport serve loop, platform routing): the
// stage-attribution cell is looked up once at construction, so each
// Emit is just the sequence fetch, counters, and the ring append. A
// nil Journal is a no-op, preserving the package's wiring contract.
type Journal struct {
	r    *Recorder
	name string
	st   *stageStat
}

// Journal resolves the emitter for name. The name must follow the same
// lowercase dot-separated rule as Emit's — the eventname analyzer
// checks this call site too. Returns nil on a nil recorder.
func (r *Recorder) Journal(name string) *Journal {
	if r == nil {
		return nil
	}
	return &Journal{r: r, name: name, st: r.stage(name)}
}

// Emit journals one event under the journal's stage name.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.r.emit(j.st, j.name, e)
}

// Events copies out every buffered event, oldest first (by emission
// sequence). The returned slice is the caller's.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			out = append(out, sh.buf[(sh.start+j)%len(sh.buf)])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Buffered returns how many events the rings currently hold.
func (r *Recorder) Buffered() int {
	if r == nil {
		return 0
	}
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		total += sh.n
		sh.mu.Unlock()
	}
	return total
}

// Trigger snapshots the recorder's buffered history into a new dump
// and retains it in the bounded dump list (oldest evicted). It returns
// the dump for callers that persist or assert on it.
func (r *Recorder) Trigger(reason string) Dump {
	if r == nil {
		return Dump{}
	}
	d := Dump{Reason: reason, At: r.Now(), Events: r.Events()}
	r.dumpMu.Lock()
	r.dumpSeq++
	d.Seq = r.dumpSeq
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > r.maxDumps {
		// Shift rather than re-slice so evicted dumps free their
		// event slices.
		copy(r.dumps, r.dumps[1:])
		r.dumps[len(r.dumps)-1] = Dump{}
		r.dumps = r.dumps[:len(r.dumps)-1]
	}
	r.dumpMu.Unlock()
	return d
}

// Dumps returns the retained dumps, oldest first.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	r.dumpMu.Unlock()
	return out
}

// Dump returns the retained dump with the given sequence number.
func (r *Recorder) Dump(seq uint64) (Dump, bool) {
	if r == nil {
		return Dump{}, false
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	for _, d := range r.dumps {
		if d.Seq == seq {
			return d, true
		}
	}
	return Dump{}, false
}

// Stats summarizes lifetime activity including per-stage attribution.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{
		Emitted:     r.seq.Load(),
		Overwritten: r.overwritten.Load(),
		Buffered:    r.Buffered(),
		Stages:      r.StageStats(),
	}
	r.dumpMu.Lock()
	s.Dumps = r.dumpSeq
	r.dumpMu.Unlock()
	return s
}

// StageStats copies out the per-stage attribution cells.
func (r *Recorder) StageStats() map[string]StageStats {
	if r == nil {
		return nil
	}
	m := r.stages.Load()
	out := make(map[string]StageStats, len(*m))
	for name, st := range *m {
		out[name] = StageStats{
			Events: st.events.Load(),
			Errors: st.errs.Load(),
			Drops:  st.drops.Load(),
			Busy:   time.Duration(st.busyNS.Load()),
		}
	}
	return out
}

// StageNames returns the stages seen so far, sorted. The profiler uses
// it to register per-stage metrics outside any registry callback.
func (r *Recorder) StageNames() []string {
	if r == nil {
		return nil
	}
	m := r.stages.Load()
	names := make([]string, 0, len(*m))
	for name := range *m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// stageCell exposes the live attribution cell for the profiler's
// CounterFunc/GaugeFunc callbacks; nil when the stage is unknown.
func (r *Recorder) stageCell(name string) *stageStat {
	if r == nil {
		return nil
	}
	m := r.stages.Load()
	return (*m)[name]
}

// ParseTraceID decodes the 16-digit lowercase-hex trace ID spelling
// the trace subsystem stamps onto messages (and Event.MarshalJSON
// emits). Malformed or differently-sized input returns 0 — an
// untraced event, never a wrong link. Allocation-free.
func ParseTraceID(s string) uint64 {
	if len(s) != 16 {
		return 0
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			id = id<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			id = id<<4 | uint64(c-'a'+10)
		default:
			return 0
		}
	}
	return id
}

// CapturePanic is deferred around stage goroutines: on panic it
// journals the failure, triggers a dump, writes the dump to the crash
// log so the recording survives the dying process, and re-panics with
// the original value (semantics are unchanged — the process still
// crashes; it just tells you what it was doing first).
func (r *Recorder) CapturePanic(where string) {
	v := recover()
	if v == nil {
		return
	}
	if r != nil {
		errText := fmt.Sprintf("panic: %v", v)
		if len(errText) > maxEventErrBytes {
			errText = errText[:maxEventErrBytes]
		}
		r.Emit("panic.captured", Event{Container: where, Outcome: OutcomeError, Err: errText})
		d := r.Trigger("panic in " + where + ": " + errText)
		fmt.Fprintf(r.crashLog, "flight: panic in %s: %v\n%s", where, v, debug.Stack())
		WriteDumpText(r.crashLog, d)
	}
	panic(v)
}
