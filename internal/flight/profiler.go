package flight

import (
	"runtime/metrics"
	"sync"
	"time"

	"agentgrid/internal/telemetry"
)

// runtimeSamples are the runtime/metrics series the continuous
// profiler feeds into the telemetry registry. Unknown names (older
// runtimes) read as KindBad and are skipped, so the list degrades
// instead of panicking across Go versions.
var runtimeSamples = []struct {
	name   string // runtime/metrics name
	metric string // telemetry gauge name
	help   string
}{
	{"/sched/goroutines:goroutines", "flight_runtime_goroutines_count", "Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "flight_runtime_heap_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "flight_runtime_memory_bytes", "Total bytes of memory mapped by the runtime."},
	{"/gc/cycles/total:gc-cycles", "flight_runtime_gc_cycles_count", "Completed GC cycles."},
}

// runtimeHistSamples are Float64Histogram-kind runtime series exposed
// as p99 gauges (distribution since process start).
var runtimeHistSamples = []struct {
	name   string
	metric string
	help   string
}{
	{"/sched/latencies:seconds", "flight_runtime_sched_latency_seconds", "p99 goroutine scheduling latency since start."},
	{"/sched/pauses/total/gc:seconds", "flight_runtime_gc_pause_seconds", "p99 GC stop-the-world pause since start."},
}

// ProfilerOptions configures the continuous profiler.
type ProfilerOptions struct {
	// Recorder supplies per-stage attribution; its stage counters are
	// exposed as flight_stage_* metrics as stages appear. Optional.
	Recorder *Recorder
	// Registry receives the sampled runtime and stage metrics.
	Registry *telemetry.Registry
	// Health, when set, is checked every sample tick so a
	// healthy→unhealthy transition fires its hook (and therefore a
	// flight dump) even when nothing polls the HTTP endpoints.
	Health *telemetry.Health
	// Every is the sample interval. Defaults to 5s.
	Every time.Duration
}

// Profiler continuously samples runtime/metrics into the telemetry
// registry and mirrors the recorder's per-stage attribution as
// flight_stage_* series. It is the always-on half of the profiling
// story; on-demand pprof capture lives in capture.go.
type Profiler struct {
	rec      *Recorder
	reg      *telemetry.Registry
	health   *telemetry.Health
	every    time.Duration
	gauges   map[string]*telemetry.Gauge
	histBuf  []metrics.Sample
	scalars  []metrics.Sample
	known    map[string]bool // stages already given metrics
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartProfiler builds and starts a profiler; Close stops it. Returns
// nil (a no-op profiler) when no registry is supplied.
func StartProfiler(o ProfilerOptions) *Profiler {
	if o.Registry == nil {
		return nil
	}
	if o.Every <= 0 {
		o.Every = 5 * time.Second
	}
	p := &Profiler{
		rec:    o.Recorder,
		reg:    o.Registry,
		health: o.Health,
		every:  o.Every,
		gauges: make(map[string]*telemetry.Gauge),
		known:  make(map[string]bool),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, rs := range runtimeSamples {
		p.scalars = append(p.scalars, metrics.Sample{Name: rs.name})
		p.gauges[rs.metric] = o.Registry.Gauge(rs.metric, rs.help, nil)
	}
	for _, rh := range runtimeHistSamples {
		p.histBuf = append(p.histBuf, metrics.Sample{Name: rh.name})
		p.gauges[rh.metric] = o.Registry.Gauge(rh.metric, rh.help, nil)
	}
	p.sample()
	go p.run()
	return p
}

// Close stops the sampling goroutine. Nil-safe.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Profiler) run() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sample()
		}
	}
}

// Sample takes one sample pass synchronously — tests and the /debug
// handlers use it to avoid waiting a tick. Nil-safe.
func (p *Profiler) Sample() {
	if p == nil {
		return
	}
	p.sample()
}

func (p *Profiler) sample() {
	metrics.Read(p.scalars)
	for i, s := range p.scalars {
		g := p.gauges[runtimeSamples[i].metric]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			g.Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			g.Set(s.Value.Float64())
		}
	}
	metrics.Read(p.histBuf)
	for i, s := range p.histBuf {
		if s.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		p.gauges[runtimeHistSamples[i].metric].Set(histP99(s.Value.Float64Histogram()))
	}
	p.exportStages()
	if p.health != nil {
		// Evaluating outside any registry lock; the health hook may
		// Trigger a flight dump.
		p.health.Check()
	}
}

// exportStages registers flight_stage_* callback series for stages
// that appeared since the last tick. Registration happens here — on
// the profiler goroutine, never inside a registry snapshot callback —
// honoring the registry's "callbacks must not register" rule.
func (p *Profiler) exportStages() {
	for _, name := range p.rec.StageNames() {
		if p.known[name] {
			continue
		}
		p.known[name] = true
		st := p.rec.stageCell(name)
		if st == nil {
			continue
		}
		labels := telemetry.Labels{"stage": name}
		p.reg.CounterFunc("flight_stage_events_total", "Flight events journaled per stage.", labels,
			func() uint64 { return st.events.Load() })
		p.reg.CounterFunc("flight_stage_errors_total", "Flight error-outcome events per stage.", labels,
			func() uint64 { return st.errs.Load() })
		p.reg.GaugeFunc("flight_stage_busy_seconds", "Cumulative timed work attributed to the stage.", labels,
			func() float64 { return float64(st.busyNS.Load()) / 1e9 })
	}
}

// histP99 returns the 99th-percentile upper bound of a runtime
// Float64Histogram (cumulative over the process lifetime).
func histP99(h *metrics.Float64Histogram) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets[i+1] is the upper bound of Counts[i]; the last
			// bucket's bound can be +Inf — fall back to its lower
			// bound so the gauge stays finite.
			ub := h.Buckets[i+1]
			if ub > 1e18 || ub != ub { // +Inf or NaN
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
