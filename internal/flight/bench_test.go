package flight

import (
	"testing"
	"time"
)

// BenchmarkEmit measures the steady-state journaling cost — the number
// that must stay well under the soak gate's per-message budget, since
// the transport serve loop pays it once per frame.
func BenchmarkEmit(b *testing.B) {
	r := New(Options{})
	defer r.Close()
	ev := Event{Container: "root", Conversation: "conv-1", TraceID: 42, Size: 186}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("transport.serve", ev)
	}
}

// BenchmarkEmitTimed includes a duration so the stage-attribution
// busy-time add is on the measured path.
func BenchmarkEmitTimed(b *testing.B) {
	r := New(Options{})
	defer r.Close()
	ev := Event{Container: "analyzer", Dur: 250 * time.Microsecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("analyze.task", ev)
	}
}

// BenchmarkJournalEmit is the pre-resolved hot-path variant the
// transport serve loop uses — the per-frame cost at the soak gate.
func BenchmarkJournalEmit(b *testing.B) {
	r := New(Options{})
	defer r.Close()
	j := r.Journal("transport.serve")
	ev := Event{Container: "root", Conversation: "conv-1", TraceID: 42, Size: 186}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Emit(ev)
	}
}

// BenchmarkEmitParallel exercises shard striping under contention.
func BenchmarkEmitParallel(b *testing.B) {
	r := New(Options{})
	defer r.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ev := Event{Container: "root", Size: 186}
		for pb.Next() {
			r.Emit("transport.serve", ev)
		}
	})
}
