package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/analyze"
	"agentgrid/internal/directory"
	"agentgrid/internal/platform"
	"agentgrid/internal/rules"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/transport"
)

// WorkerNodeConfig configures a standalone analysis node that joins a
// TCP-mode grid — the paper's "if the system requires a greater
// processing capacity, we need only to add it to the grid" (§3.3),
// exercised across process boundaries.
type WorkerNodeConfig struct {
	// Name is the node's container name, unique in the grid.
	Name string
	// RootAddr is the grid root container's TCP address
	// ("tcp://host:port"), as printed by the grid daemon.
	RootAddr string
	// ClassifierAddr is the classifier container's TCP address (hosts
	// the store-query agent). Defaults to RootAddr's host with store
	// queries answered by the root when empty — must normally be set.
	ClassifierAddr string
	// ListenHost binds the node's own endpoint (default "127.0.0.1").
	ListenHost string
	// Rules is the node's analysis rule base source.
	Rules string
	// HeartbeatEvery is the lease renewal period (default 1s).
	HeartbeatEvery time.Duration
	// ErrorLog receives node errors. Optional.
	ErrorLog func(error)
}

// WorkerNode is a running remote analysis node.
type WorkerNode struct {
	cfg       WorkerNodeConfig
	container *platform.Container
	worker    *analyze.Worker
	metrics   *telemetry.Registry
	df        *DFClient
	cancel    context.CancelFunc
}

// NewWorkerNode builds and wires the node; Start launches it.
func NewWorkerNode(cfg WorkerNodeConfig) (*WorkerNode, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: worker node needs a name")
	}
	if cfg.RootAddr == "" {
		return nil, errors.New("core: worker node needs the root address")
	}
	if cfg.ListenHost == "" {
		cfg.ListenHost = "127.0.0.1"
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.ClassifierAddr == "" {
		cfg.ClassifierAddr = cfg.RootAddr
	}

	profile := directory.ResourceProfile{CPUCapacity: 100, NetCapacity: 100, DiscCapacity: 100}
	// Static resolver: the only platforms this node addresses without
	// explicit addresses are the grid root and the classifier.
	resolver := func(aid acl.AID) (string, error) {
		switch aid.Platform() {
		case "pg-root":
			return cfg.RootAddr, nil
		case "clg":
			return cfg.ClassifierAddr, nil
		}
		return "", fmt.Errorf("core: worker node cannot resolve %s", aid.Name)
	}
	metrics := telemetry.NewRegistry("agentgrid")
	c, err := platform.New(platform.Config{
		Name: cfg.Name, Platform: cfg.Name, Profile: profile,
		Resolver: resolver, ErrorLog: cfg.ErrorLog,
		Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	wl := telemetry.Labels{"container": cfg.Name}
	if err := c.AttachTCP(cfg.ListenHost+":0", transport.WithTCPMetrics(transport.WireMetrics{
		SentBytes: metrics.Counter("acl_sent_bytes_total", "ACL frame bytes written to TCP peers", wl),
		RecvBytes: metrics.Counter("acl_received_bytes_total", "ACL frame bytes read from TCP peers", wl),
	})); err != nil {
		return nil, err
	}

	// Store access goes through a dedicated I/O agent so the analyzer's
	// goroutine can block on remote reads without deadlocking.
	ioAgent, err := c.SpawnAgent("storeio")
	if err != nil {
		c.Stop()
		return nil, err
	}
	storeClient := NewStoreQueryClient(ioAgent,
		acl.NewAID(StoreQueryAgentName, "clg", transportAddr(cfg.ClassifierAddr)), 2*time.Second)

	wa, err := c.SpawnAgent(analyze.WorkerAgentName)
	if err != nil {
		c.Stop()
		return nil, err
	}
	rb := rules.NewRuleBase()
	if cfg.Rules != "" {
		if _, err := rb.AddSource(cfg.Rules); err != nil {
			c.Stop()
			return nil, fmt.Errorf("core: worker node rules: %w", err)
		}
	}
	w, err := analyze.NewWorker(wa, analyze.WorkerConfig{
		Store: storeClient, Rules: rb, ErrorLog: cfg.ErrorLog,
		Metrics:  metrics,
		LoadFunc: c.TelemetryLoad,
	})
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.SetLoadFunc(w.Load)

	node := &WorkerNode{cfg: cfg, container: c, worker: w, metrics: metrics}
	node.df = NewDFClient(wa,
		acl.NewAID(DFAgentName, "pg-root", cfg.RootAddr),
		func() directory.Registration {
			return c.Registration([]directory.ServiceDesc{{
				Type:         directory.ServiceAnalysis,
				Capabilities: w.Capabilities(),
			}})
		})
	return node, nil
}

// transportAddr normalizes an address for AID embedding.
func transportAddr(addr string) string {
	if addr == "" {
		return addr
	}
	if transport.StripScheme(addr) == addr {
		return "tcp://" + addr
	}
	return addr
}

// Start launches the node, registers it with the grid root's DF and
// begins heartbeating. The node serves tasks until Stop.
func (n *WorkerNode) Start(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	n.cancel = cancel
	if err := n.container.Start(runCtx); err != nil {
		cancel()
		return err
	}
	if err := n.df.Register(runCtx); err != nil {
		cancel()
		return err
	}
	return n.df.StartHeartbeat(n.cfg.HeartbeatEvery)
}

// Stop deregisters and shuts the node down.
func (n *WorkerNode) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	n.df.Deregister(ctx)
	if n.cancel != nil {
		n.cancel()
	}
	return n.container.Stop()
}

// Addr returns the node's transport address.
func (n *WorkerNode) Addr() string { return n.container.Addr() }

// Worker returns the node's analysis worker for inspection.
func (n *WorkerNode) Worker() *analyze.Worker { return n.worker }

// Metrics returns the node's own telemetry registry.
func (n *WorkerNode) Metrics() *telemetry.Registry { return n.metrics }
