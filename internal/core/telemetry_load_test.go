package core

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/classify"
	"agentgrid/internal/workload"
)

// TestContractNetAwardsAvoidMeasuredLoad closes the §3.5 loop: a
// container whose *measured* load is high — its mailboxes are backing
// up, even though its worker has zero tasks in flight — must lose
// contract-net auctions to an idle peer.
func TestContractNetAwardsAvoidMeasuredLoad(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 11}
	cfg := Config{
		Site:           "site1",
		Negotiated:     true,
		Analyzers:      2,
		BidWindow:      200 * time.Millisecond,
		TaskTimeout:    5 * time.Second,
		HeartbeatEvery: 50 * time.Millisecond,
	}
	g, _ := testGrid(t, cfg, spec)

	// Wedge pg-1: a blocked agent with a tiny mailbox drives the
	// container's telemetry-derived load to 1 while its analysis worker
	// stays task-idle — only measured load distinguishes the peers.
	c1, ok := g.Container("pg-1")
	if !ok {
		t.Fatal("no pg-1 container")
	}
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	wedge, err := c1.SpawnAgent("wedge", agent.WithMailboxSize(4))
	if err != nil {
		t.Fatal(err)
	}
	wedge.HandleFunc(agent.Selector{Performative: acl.Inform}, func(context.Context, *agent.Agent, *acl.Message) {
		<-release
	})
	// Keep topping the mailbox up: the run loop pops one message into
	// the blocked handler, so refill until the queue reads full.
	wedgeDeadline := time.Now().Add(5 * time.Second)
	for c1.TelemetryLoad() < 0.9 {
		wedge.Deliver(&acl.Message{Performative: acl.Inform}) // errors once full are the point
		if time.Now().After(wedgeDeadline) {
			t.Fatalf("wedged TelemetryLoad = %v, want ~1", c1.TelemetryLoad())
		}
		time.Sleep(time.Millisecond)
	}

	// The container's load reporter pushes the measured value into the
	// directory between heartbeats.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reg, ok := g.Directory().Get("pg-1")
		if ok && reg.Load > 0.9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("directory never saw pg-1's measured load; entry %+v", reg)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Auction a batch of analysis tasks; every award must go to pg-2.
	notice := &classify.Notice{Collector: "test", Clusters: []classify.Cluster{
		{Key: "site1/h1", Site: "site1", Device: "h1", Categories: []string{"cpu"}, Records: 1, MaxStep: 1},
		{Key: "site1/h2", Site: "site1", Device: "h2", Categories: []string{"cpu"}, Records: 1, MaxStep: 1},
	}}
	g.Root().HandleNotice(context.Background(), notice)

	// 2 clusters × (L1+L2) + 1 site L3 = 5 auctions. Negotiation runs
	// on its own goroutines, so poll the workers' completed-task counts.
	const wantTasks = 5
	ws := g.Workers()
	taskDeadline := time.Now().Add(15 * time.Second)
	for ws[1].Stats().Tasks < wantTasks {
		if time.Now().After(taskDeadline) {
			t.Fatalf("pg-2 ran %d/%d tasks; pg-1 %d; root stats %+v",
				ws[1].Stats().Tasks, wantTasks, ws[0].Stats().Tasks, g.Root().Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := ws[0].Stats().Tasks; got != 0 {
		t.Fatalf("wedged pg-1 was awarded %d tasks, want 0", got)
	}
}
