package core

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/workload"
)

// TestMultiSiteScoping reproduces the two-site layout of the paper's
// Figure 2: one management grid monitors Site I and Site II. Level-3
// correlation must stay site-scoped — a pile of hot hosts at site-i
// must not raise a site-ii conclusion — while the shared knowledge base
// (the same rules) serves both sites.
func TestMultiSiteScoping(t *testing.T) {
	g, err := NewGrid(Config{
		Site:  "site-i", // default site; goals below carry their own sites
		Rules: gridRules,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := g.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	// Two fleets, one per site.
	mkFleet := func(site string, seed int64) (*device.Fleet, workload.FleetSpec) {
		spec := workload.FleetSpec{Site: site, Hosts: 3, Seed: seed}
		fleet, err := device.NewFleet(spec.BuildDevices(), "public")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fleet.Close() })
		return fleet, spec
	}
	fleetI, specI := mkFleet("site-i", 1)
	fleetII, specII := mkFleet("site-ii", 2)
	if err := g.AddGoals(workload.Goals(specI, fleetI, 1, time.Hour)[0]); err != nil {
		t.Fatal(err)
	}
	if err := g.AddGoals(workload.Goals(specII, fleetII, 1, time.Hour)[0]); err != nil {
		t.Fatal(err)
	}

	// Only Site I melts down.
	fleetI.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	fleetI.Stations()[1].Device.InjectFault(device.FaultCPUPegged)
	fleetI.Advance(2)
	fleetII.Advance(2)

	if err := g.CollectNow(ctx); err != nil {
		t.Fatal(err)
	}
	// Wait for both sites' data: 6 devices x 4 metrics.
	deadline := time.After(15 * time.Second)
	for {
		if n, _ := g.Store().Stats(); n == 24 {
			break
		}
		select {
		case <-deadline:
			n, _ := g.Store().Stats()
			t.Fatalf("series = %d, want 24", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !g.WaitIdle(15 * time.Second) {
		t.Fatal("grid never drained")
	}
	for {
		var siteHotI bool
		for _, a := range g.Alerts() {
			if a.Rule == "site-hot" {
				if a.Site != "site-i" {
					t.Fatalf("site-level alert leaked across sites: %+v", a)
				}
				siteHotI = true
			}
			if a.Rule == "hot-cpu" && a.Site == "site-ii" {
				t.Fatalf("device alert on healthy site: %+v", a)
			}
		}
		if siteHotI {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no site-i correlation; alerts %+v", g.Alerts())
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Reports are per site and disjoint.
	repI, err := g.Interface().BuildSiteReport("site-i", time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	repII, err := g.Interface().BuildSiteReport("site-ii", time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	if len(repI.Devices) != 3 || len(repII.Devices) != 3 {
		t.Fatalf("report devices = %d / %d", len(repI.Devices), len(repII.Devices))
	}
	if len(repII.Alerts) != 0 {
		t.Fatalf("site-ii report carries alerts: %+v", repII.Alerts)
	}
}
