package core

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/workload"
)

// TestRemoteWorkerJoinsTCPGrid runs the grid in TCP mode, joins an
// external worker node over loopback TCP, removes the in-grid analyzers
// and verifies the remote node carries the analysis — the "just add it
// to the grid" scalability claim across process-style boundaries.
func TestRemoteWorkerJoinsTCPGrid(t *testing.T) {
	cfg := Config{
		Site:           "site1",
		Analyzers:      1,
		Rules:          gridRules,
		TCPHost:        "127.0.0.1",
		TaskTimeout:    time.Second,
		HeartbeatEvery: 100 * time.Millisecond,
	}
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := g.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	if g.RootAddr() == "" || g.ClassifierAddr() == "" {
		t.Fatalf("TCP addresses missing: root %q clg %q", g.RootAddr(), g.ClassifierAddr())
	}

	node, err := NewWorkerNode(WorkerNodeConfig{
		Name:           "remote-1",
		RootAddr:       g.RootAddr(),
		ClassifierAddr: g.ClassifierAddr(),
		Rules:          gridRules,
		HeartbeatEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	// The node appears in the grid directory.
	deadline := time.After(10 * time.Second)
	for {
		if _, ok := g.Directory().Get("remote-1"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("remote node never registered")
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Kill the in-grid analyzer so only the remote node can work.
	for _, c := range g.containers {
		if c.Name() == "pg-1" {
			c.Stop()
		}
	}
	g.Directory().Deregister("pg-1")

	// Monitor a faulty host.
	spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 13}
	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	if err := g.AddGoals(workload.Goals(spec, fleet, 1, time.Hour)[0]); err != nil {
		t.Fatal(err)
	}
	if err := g.CollectNow(ctx); err != nil {
		t.Fatal(err)
	}

	// The remote worker must produce the alert (its L1 rule reads the
	// store through the query protocol).
	for {
		var hot bool
		for _, a := range g.Alerts() {
			if a.Rule == "hot-cpu" {
				hot = true
			}
		}
		if hot {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("remote node produced no alert; node stats %+v, root stats %+v",
				node.Worker().Stats(), g.Root().Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if node.Worker().Stats().Tasks == 0 {
		t.Fatal("remote worker ran no tasks")
	}
}

func TestWorkerNodeValidation(t *testing.T) {
	if _, err := NewWorkerNode(WorkerNodeConfig{RootAddr: "x"}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := NewWorkerNode(WorkerNodeConfig{Name: "n"}); err == nil {
		t.Error("missing root addr accepted")
	}
	if _, err := NewWorkerNode(WorkerNodeConfig{
		Name: "n", RootAddr: "tcp://127.0.0.1:1", Rules: "rule {",
	}); err == nil {
		t.Error("bad rules accepted")
	}
}

func TestTransportAddrNormalization(t *testing.T) {
	if got := transportAddr("127.0.0.1:9"); got != "tcp://127.0.0.1:9" {
		t.Fatalf("bare addr = %q", got)
	}
	if got := transportAddr("tcp://127.0.0.1:9"); got != "tcp://127.0.0.1:9" {
		t.Fatalf("scheme addr = %q", got)
	}
	if got := transportAddr(""); got != "" {
		t.Fatalf("empty addr = %q", got)
	}
}

// TestStoreProxyRoundtrip exercises the query protocol directly within
// one in-proc grid.
func TestStoreProxyRoundtrip(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 3}
	g, _ := testGrid(t, Config{Site: "site1"}, spec)
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		if n, _ := g.Store().Stats(); n == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("store never filled")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// A client on the IG agent queries the clg store agent.
	clgAID := g.Classifier().Agent().ID()
	clgAID.Name = StoreQueryAgentName + "@clg"
	client := NewStoreQueryClient(g.Interface().Agent(), clgAID, 2*time.Second)

	key := "site1/host-01/cpu.util"
	p, ok := client.Latest(key)
	if !ok {
		t.Fatal("remote Latest found nothing")
	}
	direct, _ := g.Store().Latest(key)
	if p.Value != direct.Value {
		t.Fatalf("remote %v != direct %v", p.Value, direct.Value)
	}
	if w := client.Window(key, 5); len(w) == 0 {
		t.Fatal("remote Window empty")
	}
	if keys := client.SeriesForMetric("cpu.util"); len(keys) != 1 || keys[0] != key {
		t.Fatalf("remote SeriesForMetric = %v", keys)
	}
	if keys := client.SeriesForDevice("site1", "host-01"); len(keys) != 4 {
		t.Fatalf("remote SeriesForDevice = %v", keys)
	}
	if _, ok := client.Latest("no/such/series"); ok {
		t.Fatal("phantom remote series")
	}
}
