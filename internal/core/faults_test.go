package core

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/transport"
	"agentgrid/internal/workload"
)

// TestGridSurvivesNetworkPartition drops all traffic to the classifier,
// verifies collectors count ship errors, then heals the partition and
// verifies the pipeline resumes — the transport fault-injection hook
// exercised through the whole stack.
func TestGridSurvivesNetworkPartition(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: 21}
	g, _ := testGrid(t, Config{Site: "site1"}, spec)

	// Partition: nothing reaches the classifier container.
	g.net.SetFault(transport.DropTo("inproc://clg"))
	_ = g.CollectNow(context.Background()) // collection succeeds, shipping fails

	deadline := time.After(10 * time.Second)
	for {
		var shipErrors uint64
		for _, c := range g.Collectors() {
			shipErrors += c.Stats().ShipErrors
		}
		if shipErrors > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("ship errors never counted during partition")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if n, _ := g.Store().Stats(); n != 0 {
		t.Fatalf("data leaked through the partition: %d series", n)
	}

	// Heal and retry: the pipeline must recover without restarts.
	g.net.SetFault(nil)
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	for {
		if n, _ := g.Store().Stats(); n == 8 {
			break
		}
		select {
		case <-deadline:
			n, _ := g.Store().Stats()
			t.Fatalf("pipeline did not recover: %d series", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !g.WaitIdle(15 * time.Second) {
		t.Fatal("grid did not drain after recovery")
	}
}
