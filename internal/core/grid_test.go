package core

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/collect"
	"agentgrid/internal/device"
	"agentgrid/internal/directory"
	"agentgrid/internal/workload"
)

const gridRules = `
rule "hot-cpu" level 1 category cpu severity critical {
    when latest(cpu.util) > 95
    then alert "CPU pegged on {device}"
}
rule "low-disk" level 2 category disk {
    when latest(disk.free) < 10
    then alert "disk nearly full on {device}"
}
rule "site-hot" level 3 category cpu severity critical {
    when count_above(cpu.util, 95) >= 2
    then alert "multiple hot hosts at {site}"
}
`

// testGrid builds a grid plus a simulated fleet and returns both with a
// cleanup.
func testGrid(t *testing.T, cfg Config, spec workload.FleetSpec) (*Grid, *device.Fleet) {
	t.Helper()
	if cfg.Rules == "" {
		cfg.Rules = gridRules
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := g.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Stop() })

	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })

	split := workload.Goals(spec, fleet, 1, time.Hour)
	if err := g.AddGoals(split[0]); err != nil {
		t.Fatal(err)
	}
	return g, fleet
}

func TestGridAssembly(t *testing.T) {
	g, err := NewGrid(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	// Defaults: 3 collectors + clg + root + 2 analyzers + ig = 8
	// containers, all registered.
	if n := g.Directory().Len(); n != 8 {
		t.Fatalf("directory entries = %d", n)
	}
	if len(g.Workers()) != 2 || len(g.Collectors()) != 3 {
		t.Fatalf("workers=%d collectors=%d", len(g.Workers()), len(g.Collectors()))
	}
	if g.Store() == nil || g.Interface() == nil || g.Root() == nil || g.Classifier() == nil {
		t.Fatal("accessor returned nil")
	}
}

func TestGridRejectsBadConfig(t *testing.T) {
	if _, err := NewGrid(Config{Rules: "rule {"}); err == nil {
		t.Fatal("bad rules accepted")
	}
	if _, err := NewGrid(Config{LocalRules: "zzz"}); err == nil {
		t.Fatal("bad local rules accepted")
	}
	if _, err := NewGrid(Config{Scheduler: "astrology"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}

// TestPipelineEndToEnd exercises the full Figure 1 / Figure 2 workflow:
// devices -> SNMP collection -> classification/storage -> multi-level
// analysis -> alerts at the interface grid.
func TestPipelineEndToEnd(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 4, Seed: 5}
	g, fleet := testGrid(t, Config{Site: "site1"}, spec)

	// Drive two hosts into a CPU fault so L1 and L3 rules fire.
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	fleet.Stations()[1].Device.InjectFault(device.FaultCPUPegged)
	fleet.Advance(3)

	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Classification is asynchronous: wait for every device's metrics
	// to land in the store, then for analysis to drain.
	storeDeadline := time.After(15 * time.Second)
	for {
		if n, _ := g.Store().Stats(); n == 4*4 {
			break
		}
		select {
		case <-storeDeadline:
			n, _ := g.Store().Stats()
			t.Fatalf("series = %d, want 16", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !g.WaitIdle(15 * time.Second) {
		t.Fatalf("grid never went idle; pending %v", g.Root().PendingTasks())
	}
	// Alerts reached the interface grid: per-device criticals plus the
	// site-level correlation.
	deadline := time.After(10 * time.Second)
	for {
		alerts := g.Alerts()
		var deviceHot, siteHot bool
		for _, a := range alerts {
			switch a.Rule {
			case "hot-cpu":
				deviceHot = true
			case "site-hot":
				siteHot = true
			}
		}
		if deviceHot && siteHot {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("alerts incomplete: %+v", g.Alerts())
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Reports build from live data.
	rep, err := g.Interface().BuildSiteReport("site1", time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) != 4 {
		t.Fatalf("report devices = %d", len(rep.Devices))
	}
}

func TestGridRuleLearningPropagates(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 9}
	g, _ := testGrid(t, Config{Site: "site1"}, spec)

	src := `rule "learned" level 2 category memory { when latest(mem.free) > 0 then alert "mem seen on {device}" }`
	// Learn through the IG's rule sink (as the HTTP POST /rules path does).
	names, err := fanoutRuleSink(g.Workers()).AddSource(src)
	if err != nil || len(names) != 1 {
		t.Fatalf("learn = %v, %v", names, err)
	}
	for i, w := range g.Workers() {
		if _, ok := w.Rules().Get("learned"); !ok {
			t.Fatalf("worker %d missing learned rule", i)
		}
	}

	// The learned rule fires on the next cycle.
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.WaitIdle(15 * time.Second)
	deadline := time.After(10 * time.Second)
	for {
		var seen bool
		for _, a := range g.Alerts() {
			if a.Rule == "learned" {
				seen = true
			}
		}
		if seen {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("learned rule never fired; alerts %+v", g.Alerts())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestGridLocalPreAnalysis(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 2}
	cfg := Config{
		Site: "site1",
		LocalRules: `rule "local-hot" severity critical {
            when latest(cpu.util) >= 100 then alert "local alarm {device}"
        }`,
	}
	g, fleet := testGrid(t, cfg, spec)
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The local alert arrives without waiting for the processor grid.
	deadline := time.After(10 * time.Second)
	for {
		var local bool
		for _, a := range g.Alerts() {
			if a.Rule == "local-hot" {
				local = true
			}
		}
		if local {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no local alert; alerts %+v", g.Alerts())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestGridHTTPFrontend(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: 3}
	g, _ := testGrid(t, Config{Site: "site1"}, spec)
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.WaitIdle(15 * time.Second)

	addr, err := g.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	again, err := g.StartHTTP("127.0.0.1:0")
	if err != nil || again != addr {
		t.Fatalf("second StartHTTP = %q, %v", again, err)
	}
	resp, err := http.Get("http://" + addr + "/site/site1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "host-01") {
		t.Fatalf("HTTP report = %d %q", resp.StatusCode, body)
	}
}

func TestGridNegotiatedMode(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: 7}
	g, fleet := testGrid(t, Config{Site: "site1", Negotiated: true, TaskTimeout: 5 * time.Second}, spec)
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(20 * time.Second)
	for {
		var hot bool
		for _, a := range g.Alerts() {
			if a.Rule == "hot-cpu" {
				hot = true
			}
		}
		if hot {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("negotiated grid produced no alert; stats %+v", g.Root().Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestGridFailoverAfterWorkerDeath(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: 8}
	cfg := Config{
		Site:           "site1",
		Analyzers:      2,
		TaskTimeout:    300 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
	}
	g, fleet := testGrid(t, cfg, spec)
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)

	// Stop one worker container entirely: its heartbeats stop, its
	// lease expires, and the root reassigns its tasks.
	for _, c := range g.containers {
		if c.Name() == "pg-1" {
			c.Stop()
		}
	}
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(20 * time.Second)
	for {
		var hot bool
		for _, a := range g.Alerts() {
			if a.Rule == "hot-cpu" {
				hot = true
			}
		}
		if hot {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no alert after worker death; stats %+v pending %v",
				g.Root().Stats(), g.Root().PendingTasks())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestParseGoalSpec(t *testing.T) {
	goal, err := ParseGoalSpec("goal g1 site1 host-01 host 127.0.0.1:99 30s cpu.util mem.free")
	if err != nil {
		t.Fatal(err)
	}
	if goal.Name != "g1" || goal.Device != "host-01" || goal.Interval != 30*time.Second || len(goal.Metrics) != 2 {
		t.Fatalf("goal = %+v", goal)
	}
	if _, err := ParseGoalSpec("goal too short"); err == nil {
		t.Fatal("short spec accepted")
	}
	if _, err := ParseGoalSpec("goal g1 site1 dev host addr nottime"); err == nil {
		t.Fatal("bad interval accepted")
	}
	if _, err := ParseGoalSpec("notgoal a b c d e f"); err == nil {
		t.Fatal("wrong keyword accepted")
	}
	dash, err := ParseGoalSpec("goal g site dev host - 1s")
	if err != nil || dash.Addr != "" {
		t.Fatalf("dash addr = %+v, %v", dash, err)
	}
}

func TestGoalBalancedAcrossCollectors(t *testing.T) {
	g, err := NewGrid(Config{Collectors: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	for i := 0; i < 4; i++ {
		goal := collect.Goal{
			Name: string(rune('a' + i)), Site: "s", Device: "d",
			Class: "host", Interval: time.Hour,
		}
		if err := g.AddGoal(goal); err != nil {
			t.Fatal(err)
		}
	}
	cols := g.Collectors()
	if len(cols[0].Goals()) != 2 || len(cols[1].Goals()) != 2 {
		t.Fatalf("goal split = %d / %d", len(cols[0].Goals()), len(cols[1].Goals()))
	}
}

func TestDFClientServer(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 1}
	g, _ := testGrid(t, Config{Site: "site1"}, spec)

	reg, ok := g.Directory().Get("pg-1")
	if !ok {
		t.Fatal("pg-1 not registered")
	}
	dfAID := g.Root().Agent().ID()
	dfAID.Name = DFAgentName + "@pg-root"

	client := NewDFClient(g.Interface().Agent(), dfAID, func() directory.Registration {
		reg.Load = 0.75
		return reg
	})
	if err := client.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		got, ok := g.Directory().Get("pg-1")
		if ok && got.Load == 0.75 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("remote register never applied: %+v", got)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := client.Deregister(context.Background()); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := g.Directory().Get("pg-1"); !ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("remote deregister never applied")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestGridStatusSnapshot(t *testing.T) {
	spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: 30}
	g, _ := testGrid(t, Config{Site: "site1"}, spec)
	if err := g.CollectNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.WaitIdle(15 * time.Second)

	st := g.Status()
	if st.Site != "site1" || st.Containers != 8 || st.DirectoryEntries != 8 {
		t.Fatalf("status identity = %+v", st)
	}
	if st.StoreSeries == 0 || st.StoreAppends == 0 {
		t.Fatalf("status store = %+v", st)
	}
	if len(st.Workers) != 2 || len(st.Collectors) != 3 {
		t.Fatalf("status fleets = %+v", st)
	}
	if st.Root.Notices == 0 || st.Root.Completed == 0 {
		t.Fatalf("status root = %+v", st.Root)
	}
	if st.Classifier.Batches == 0 {
		t.Fatalf("status classifier = %+v", st.Classifier)
	}

	// And over HTTP.
	addr, err := g.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"directory_entries": 8`) {
		t.Fatalf("HTTP stats = %d %q", resp.StatusCode, body)
	}
}
