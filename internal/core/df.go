// Package core assembles the paper's complete management grid (Figure
// 2): collector, classifier, processor and interface grids wired over an
// agent platform, with the grid root's directory service, heartbeat
// leases, load balancing and alert flow. It is the library's primary
// entry point: examples and the command-line tools build on it.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
)

// DFAgentName is the local name of the directory-facilitator agent the
// grid root hosts (the "D1" of the paper's Figure 4).
const DFAgentName = "df"

// dfOntology tags directory protocol messages.
const dfOntology = "directory-facilitator"

// dfRequest is the content of a register/renew request.
type dfRequest struct {
	Op           string                 `json:"op"` // "register" | "renew" | "deregister"
	Registration directory.Registration `json:"registration,omitempty"`
	Container    string                 `json:"container,omitempty"`
	Load         float64                `json:"load,omitempty"`
}

// DFServer exposes a directory over ACL so containers on other
// processes can register and renew leases remotely (Figure 4's
// interaction, made concrete).
type DFServer struct {
	dir *directory.Directory
}

// NewDFServer wires directory-facilitator behaviour onto an agent.
func NewDFServer(a *agent.Agent, dir *directory.Directory) (*DFServer, error) {
	if dir == nil {
		return nil, errors.New("core: DF server needs a directory")
	}
	s := &DFServer{dir: dir}
	a.HandleFunc(agent.Selector{
		Performative: acl.Request,
		Ontology:     dfOntology,
	}, s.handle)
	return s, nil
}

func (s *DFServer) handle(ctx context.Context, a *agent.Agent, m *acl.Message) {
	var req dfRequest
	if err := json.Unmarshal(m.Content, &req); err != nil {
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
		return
	}
	var err error
	switch req.Op {
	case "register":
		err = s.dir.Register(req.Registration)
	case "renew":
		err = s.dir.Renew(req.Container, req.Load)
	case "deregister":
		s.dir.Deregister(req.Container)
	default:
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
		return
	}
	if err != nil {
		reply := m.Reply(a.ID(), acl.Refuse)
		reply.Content = []byte(err.Error())
		_ = a.Send(ctx, reply)
		return
	}
	_ = a.Send(ctx, m.Reply(a.ID(), acl.Agree))
}

// DFClient registers a remote container with the grid root's DF and
// keeps its lease alive.
type DFClient struct {
	a    *agent.Agent
	df   acl.AID
	self func() directory.Registration
}

// NewDFClient returns a client that sends directory traffic from agent
// a to the DF at df. self produces the container's current registration
// (including its load).
func NewDFClient(a *agent.Agent, df acl.AID, self func() directory.Registration) *DFClient {
	return &DFClient{a: a, df: df, self: self}
}

// send fires one DF request; answers are fire-and-forget (a lost renew
// is repaired by the next heartbeat).
func (c *DFClient) send(ctx context.Context, req dfRequest) error {
	content, err := json.Marshal(req)
	if err != nil {
		return err
	}
	msg := &acl.Message{
		Performative:   acl.Request,
		Receivers:      []acl.AID{c.df},
		Content:        content,
		Language:       "json",
		Ontology:       dfOntology,
		ConversationID: c.a.NewConversationID(),
	}
	sp := c.a.Tracer().ChildFromContext(ctx, "df."+req.Op)
	sp.SetAttr("agent", c.a.ID().Name)
	sp.Stamp(msg)
	defer sp.End()
	err = c.a.Send(ctx, msg)
	sp.SetError(err)
	return err
}

// Register announces the container to the DF.
func (c *DFClient) Register(ctx context.Context) error {
	return c.send(ctx, dfRequest{Op: "register", Registration: c.self()})
}

// StartHeartbeat installs a goal renewing the lease every interval.
func (c *DFClient) StartHeartbeat(interval time.Duration) error {
	return c.a.AddGoal(agent.Goal{
		Name:     "df-heartbeat",
		Interval: interval,
		Action: func(ctx context.Context, _ *agent.Agent) error {
			reg := c.self()
			return c.send(ctx, dfRequest{Op: "renew", Container: reg.Container, Load: reg.Load})
		},
	})
}

// Deregister removes the container from the DF.
func (c *DFClient) Deregister(ctx context.Context) error {
	reg := c.self()
	return c.send(ctx, dfRequest{Op: "deregister", Container: reg.Container})
}
