package core

import (
	"fmt"

	"agentgrid/internal/acl"
	"agentgrid/internal/store"
)

// classifierContainerName names classifier partition i of n. A
// single-classifier grid keeps the historical "clg" name so existing
// tooling, chaos targets and specs keep resolving.
func classifierContainerName(i, n int) string {
	if n == 1 {
		return "clg"
	}
	return fmt.Sprintf("clg-%d", i+1)
}

// partitionRouter maps a device to the classifier partition owning its
// management domain and skips unhealthy partitions, so one classifier
// crash never stalls ingest of other domains. Ownership is the same
// FNV-1a site/device hash the store's stripes and the federation use.
type partitionRouter struct {
	g     *Grid
	names []string  // classifier container names, by partition
	aids  []acl.AID // classifier agent AIDs, by partition
}

// Route returns the dispatch target for a device's batches: the owning
// partition when it is healthy, otherwise the next healthy partition in
// ring order (its store will hold the records until the owner returns —
// ingest keeps flowing). When every partition looks unhealthy the owner
// is returned anyway so the send surfaces the delivery error.
func (r *partitionRouter) Route(site, device string) (acl.AID, bool) {
	n := len(r.aids)
	owner := store.PartitionIndex(site, device, n)
	for k := 0; k < n; k++ {
		i := (owner + k) % n
		if r.healthy(i) {
			return r.aids[i], true
		}
	}
	return r.aids[owner], true
}

// healthy reports whether partition i can take traffic: its directory
// lease is live (crashes deregister; missed heartbeats sweep) and its
// container is still attached to a transport.
func (r *partitionRouter) healthy(i int) bool {
	if _, ok := r.g.dir.Get(r.names[i]); !ok {
		return false
	}
	c, ok := r.g.Container(r.names[i])
	return ok && c.Addr() != ""
}
