package core

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
	"agentgrid/internal/store"
)

// dfRig wires a DF server and a capture of its replies without any
// container; the agents exchange messages directly.
type dfRig struct {
	dir     *directory.Directory
	server  *agent.Agent
	replies chan *acl.Message
}

func buildDFRig(t *testing.T) *dfRig {
	t.Helper()
	rig := &dfRig{
		dir:     directory.New(time.Minute),
		replies: make(chan *acl.Message, 8),
	}
	rig.server = agent.New(acl.NewAID(DFAgentName, "root"), func(_ context.Context, m *acl.Message) error {
		rig.replies <- m.Clone()
		return nil
	})
	if _, err := NewDFServer(rig.server, rig.dir); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go rig.server.Run(ctx)
	return rig
}

func (r *dfRig) deliver(t *testing.T, content string) acl.Performative {
	t.Helper()
	msg := &acl.Message{
		Performative: acl.Request,
		Sender:       acl.NewAID("client", "elsewhere"),
		Receivers:    []acl.AID{r.server.ID()},
		Content:      []byte(content),
		Ontology:     dfOntology,
	}
	if err := r.server.Deliver(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-r.replies:
		return reply.Performative
	case <-time.After(5 * time.Second):
		t.Fatal("no DF reply")
		return ""
	}
}

func TestDFServerOps(t *testing.T) {
	rig := buildDFRig(t)

	reg := `{"op":"register","registration":{"container":"c1","addr":"tcp://1:1",
        "profile":{"cpu_capacity":1,"net_capacity":1,"disc_capacity":1},
        "services":[{"type":"analysis"}]}}`
	if p := rig.deliver(t, reg); p != acl.Agree {
		t.Fatalf("register reply = %s", p)
	}
	if rig.dir.Len() != 1 {
		t.Fatal("registration not applied")
	}
	if p := rig.deliver(t, `{"op":"renew","container":"c1","load":0.5}`); p != acl.Agree {
		t.Fatalf("renew reply = %s", p)
	}
	got, _ := rig.dir.Get("c1")
	if got.Load != 0.5 {
		t.Fatalf("load = %v", got.Load)
	}
	// Renewing an unknown container is refused.
	if p := rig.deliver(t, `{"op":"renew","container":"ghost","load":0.1}`); p != acl.Refuse {
		t.Fatalf("ghost renew reply = %s", p)
	}
	// Invalid registration is refused.
	if p := rig.deliver(t, `{"op":"register","registration":{"container":""}}`); p != acl.Refuse {
		t.Fatalf("bad register reply = %s", p)
	}
	// Unknown op and garbage are not-understood.
	if p := rig.deliver(t, `{"op":"dance"}`); p != acl.NotUnderstood {
		t.Fatalf("unknown op reply = %s", p)
	}
	if p := rig.deliver(t, `{{{`); p != acl.NotUnderstood {
		t.Fatalf("garbage reply = %s", p)
	}
	// Deregister removes the entry.
	if p := rig.deliver(t, `{"op":"deregister","container":"c1"}`); p != acl.Agree {
		t.Fatalf("deregister reply = %s", p)
	}
	if rig.dir.Len() != 0 {
		t.Fatal("deregister not applied")
	}
}

func TestDFServerNeedsDirectory(t *testing.T) {
	a := agent.New(acl.NewAID("df", "x"), func(context.Context, *acl.Message) error { return nil })
	if _, err := NewDFServer(a, nil); err == nil {
		t.Fatal("nil directory accepted")
	}
}

func TestStoreQueryServerNeedsStore(t *testing.T) {
	a := agent.New(acl.NewAID("sq", "x"), func(context.Context, *acl.Message) error { return nil })
	if _, err := NewStoreQueryServer(a, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

// TestStoreQueryUnknownOp covers the server's error answers.
func TestStoreQueryUnknownOp(t *testing.T) {
	replies := make(chan *acl.Message, 1)
	server := agent.New(acl.NewAID(StoreQueryAgentName, "clg"), func(_ context.Context, m *acl.Message) error {
		replies <- m.Clone()
		return nil
	})
	if _, err := NewStoreQueryServer(server, newEmptyStore()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go server.Run(ctx)

	for _, content := range []string{`{"op":"explode"}`, `not json`} {
		msg := &acl.Message{
			Performative: acl.QueryRef,
			Sender:       acl.NewAID("w", "pg-9"),
			Receivers:    []acl.AID{server.ID()},
			Content:      []byte(content),
			Ontology:     storeQueryOntology,
		}
		if err := server.Deliver(msg); err != nil {
			t.Fatal(err)
		}
		select {
		case reply := <-replies:
			if reply.Performative != acl.Inform {
				t.Fatalf("reply = %s", reply.Performative)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no reply")
		}
	}
}

// newEmptyStore returns a fresh store for server tests.
func newEmptyStore() *store.Store { return store.New(4) }
