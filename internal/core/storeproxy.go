package core

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/analyze"
	"agentgrid/internal/store"
)

// StoreQueryAgentName is the local name of the store-query agent hosted
// on the container that owns the management store.
const StoreQueryAgentName = "storeq"

// storeQueryOntology tags store query traffic.
const storeQueryOntology = "store-query"

// storeQuery is one remote read.
type storeQuery struct {
	Op     string `json:"op"` // latest | window | series-for-metric | series-for-device
	Key    string `json:"key,omitempty"`
	N      int    `json:"n,omitempty"`
	Metric string `json:"metric,omitempty"`
	Site   string `json:"site,omitempty"`
	Device string `json:"device,omitempty"`
}

// storeReply is the answer.
type storeReply struct {
	Point  *store.Point  `json:"point,omitempty"`
	Points []store.Point `json:"points,omitempty"`
	Keys   []string      `json:"keys,omitempty"`
	Found  bool          `json:"found"`
	Err    string        `json:"err,omitempty"`
}

// StoreQueryServer answers remote store reads — how analysis workers on
// other machines consolidate against the management repository.
type StoreQueryServer struct {
	st analyze.StoreReader
}

// NewStoreQueryServer wires store-query behaviour onto an agent.
func NewStoreQueryServer(a *agent.Agent, st analyze.StoreReader) (*StoreQueryServer, error) {
	if st == nil {
		return nil, errors.New("core: store query server needs a store")
	}
	s := &StoreQueryServer{st: st}
	a.HandleFunc(agent.Selector{
		Performative: acl.QueryRef,
		Ontology:     storeQueryOntology,
	}, s.handle)
	return s, nil
}

func (s *StoreQueryServer) handle(ctx context.Context, a *agent.Agent, m *acl.Message) {
	var q storeQuery
	reply := m.Reply(a.ID(), acl.Inform)
	var out storeReply
	if err := json.Unmarshal(m.Content, &q); err != nil {
		out.Err = "malformed query"
	} else {
		switch q.Op {
		case "latest":
			p, ok := s.st.Latest(q.Key)
			out.Found = ok
			if ok {
				out.Point = &p
			}
		case "window":
			out.Points = s.st.Window(q.Key, q.N)
			out.Found = true
		case "series-for-metric":
			out.Keys = s.st.SeriesForMetric(q.Metric)
			out.Found = true
		case "series-for-device":
			out.Keys = s.st.SeriesForDevice(q.Site, q.Device)
			out.Found = true
		default:
			out.Err = "unknown op " + q.Op
		}
	}
	reply.Content, _ = json.Marshal(out)
	reply.Language = "json"
	_ = a.Send(ctx, reply)
}

// StoreQueryClient is an analyze.StoreReader backed by ACL queries to a
// remote StoreQueryServer. Reads block up to Timeout; on failure they
// report "no data", which rule evaluation treats as a false condition —
// the same degradation a real manager shows when its repository is
// unreachable.
type StoreQueryClient struct {
	a       *agent.Agent
	server  acl.AID
	timeout time.Duration

	mu    sync.Mutex
	waits map[string]chan *acl.Message
}

// Interface compliance.
var _ analyze.StoreReader = (*StoreQueryClient)(nil)

// NewStoreQueryClient returns a remote store reader sending queries from
// agent a to the query server at server.
func NewStoreQueryClient(a *agent.Agent, server acl.AID, timeout time.Duration) *StoreQueryClient {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	c := &StoreQueryClient{
		a: a, server: server, timeout: timeout,
		waits: make(map[string]chan *acl.Message),
	}
	a.HandleFunc(agent.Selector{
		Performative: acl.Inform,
		Ontology:     storeQueryOntology,
	}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		c.mu.Lock()
		ch, ok := c.waits[m.InReplyTo]
		c.mu.Unlock()
		if ok {
			select {
			case ch <- m:
			default:
			}
		}
	})
	return c
}

// roundTrip must not run on the agent's handler goroutine — analysis
// workers run tasks there. analyze.Worker.Run executes on the handler
// goroutine for direct dispatch, so the client spawns queries from that
// context too; deadlock is avoided because the *reply* arrives at this
// agent's mailbox and is processed... on the same goroutine. To keep the
// worker synchronous, remote-store workers must run queries from a
// different agent than the one executing the task. The worker node
// therefore hosts a dedicated "storeio" agent for this client.
func (c *StoreQueryClient) roundTrip(q storeQuery) (*storeReply, bool) {
	content, err := json.Marshal(q)
	if err != nil {
		return nil, false
	}
	replyWith := c.a.NewConversationID()
	ch := make(chan *acl.Message, 1)
	c.mu.Lock()
	c.waits[replyWith] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waits, replyWith)
		c.mu.Unlock()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	msg := &acl.Message{
		Performative:   acl.QueryRef,
		Receivers:      []acl.AID{c.server},
		Content:        content,
		Language:       "json",
		Ontology:       storeQueryOntology,
		ConversationID: replyWith,
		ReplyWith:      replyWith,
	}
	if err := c.a.Send(ctx, msg); err != nil {
		return nil, false
	}
	select {
	case <-ctx.Done():
		return nil, false
	case m := <-ch:
		var out storeReply
		if err := json.Unmarshal(m.Content, &out); err != nil || out.Err != "" {
			return nil, false
		}
		return &out, true
	}
}

// Latest implements analyze.StoreReader.
func (c *StoreQueryClient) Latest(key string) (store.Point, bool) {
	out, ok := c.roundTrip(storeQuery{Op: "latest", Key: key})
	if !ok || !out.Found || out.Point == nil {
		return store.Point{}, false
	}
	return *out.Point, true
}

// Window implements analyze.StoreReader.
func (c *StoreQueryClient) Window(key string, n int) []store.Point {
	out, ok := c.roundTrip(storeQuery{Op: "window", Key: key, N: n})
	if !ok {
		return nil
	}
	return out.Points
}

// SeriesForMetric implements analyze.StoreReader.
func (c *StoreQueryClient) SeriesForMetric(metric string) []string {
	out, ok := c.roundTrip(storeQuery{Op: "series-for-metric", Metric: metric})
	if !ok {
		return nil
	}
	return out.Keys
}

// SeriesForDevice implements analyze.StoreReader.
func (c *StoreQueryClient) SeriesForDevice(site, device string) []string {
	out, ok := c.roundTrip(storeQuery{Op: "series-for-device", Site: site, Device: device})
	if !ok {
		return nil
	}
	return out.Keys
}
