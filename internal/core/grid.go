package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/analyze"
	"agentgrid/internal/classify"
	"agentgrid/internal/collect"
	"agentgrid/internal/directory"
	"agentgrid/internal/flight"
	"agentgrid/internal/loadbalance"
	"agentgrid/internal/obs"
	"agentgrid/internal/platform"
	"agentgrid/internal/report"
	"agentgrid/internal/rules"
	"agentgrid/internal/snmp"
	"agentgrid/internal/store"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
	"agentgrid/internal/transport"
)

// Config describes a management grid to assemble.
type Config struct {
	// Site is the administrative domain name.
	Site string
	// Collectors is the collector-container count (default 3, the
	// paper's Figure 6(c) layout).
	Collectors int
	// Analyzers is the analysis-container count (default 2).
	Analyzers int
	// Classifiers is the classifier-partition count (default 1). With
	// N > 1 the grid deploys N classifier containers, each owning the
	// site/device-hash partition of the device space and its own store
	// partition; collectors route batches to the owning partition and
	// analysis reads through a federated view.
	Classifiers int
	// StoreShards is each store partition's lock-stripe count (default
	// store.DefaultShards, rounded to a power of two, capped at
	// store.MaxShards).
	StoreShards int
	// Community is the SNMP community used for collection.
	Community string
	// Rules is DSL source loaded into every analysis worker.
	Rules string
	// LocalRules is DSL source for collector-side pre-analysis
	// (level 1); alerts it raises go straight to the interface grid.
	LocalRules string
	// Scheduler is a loadbalance strategy name (default "capability");
	// ignored when Negotiated is set.
	Scheduler string
	// Negotiated places analysis tasks via contract-net bidding.
	Negotiated bool
	// BidWindow bounds contract-net proposal collection when Negotiated
	// (default 1s). Chaos tests shorten it so partitioned negotiations
	// fail fast.
	BidWindow time.Duration
	// StorePoints bounds per-series history (default store default).
	StorePoints int
	// TaskTimeout bounds analysis dispatch (default 10s).
	TaskTimeout time.Duration
	// HeartbeatEvery is the directory lease renewal period (default
	// 1s); the lease TTL is 3x this.
	HeartbeatEvery time.Duration
	// TCPHost, when set (e.g. "127.0.0.1"), binds every container to a
	// TCP endpoint on that host instead of the in-process network, so
	// external worker nodes (cmd/agentgridd -mode worker) can join the
	// grid.
	TCPHost string
	// WireFormat selects the TCP frame encoding: "binary" (ACL2, the
	// default) or "json" (ACL1). Only meaningful with TCPHost; the
	// in-process network carries messages without encoding them.
	WireFormat string
	// FlushWindow enables per-connection TCP write coalescing: frames
	// are staged and flushed together after this window (0 = flush
	// every frame). Only meaningful with TCPHost.
	FlushWindow time.Duration
	// Trace configures the grid's causal tracer. The zero value traces
	// everything with default buffers; see trace.Options for sampling
	// and sizing knobs.
	Trace trace.Options
	// Flight configures the grid's always-on flight recorder. The zero
	// value records with default ring sizing; see flight.Options.
	Flight flight.Options
	// ProfileEvery is the continuous profiler's sampling period
	// (default 5s). Negative disables the profiler goroutine.
	ProfileEvery time.Duration
	// ErrorLog receives grid-internal errors. Optional.
	ErrorLog func(error)
}

func (c Config) withDefaults() Config {
	if c.Site == "" {
		c.Site = "site1"
	}
	if c.Collectors <= 0 {
		c.Collectors = 3
	}
	if c.Analyzers <= 0 {
		c.Analyzers = 2
	}
	if c.Classifiers <= 0 {
		c.Classifiers = 1
	}
	if c.Community == "" {
		c.Community = "public"
	}
	if c.Scheduler == "" {
		c.Scheduler = "capability"
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	return c
}

// Grid is a complete, running management grid in one process: the
// paper's Figure 2 with an in-process message network. Containers,
// agents, directory and store are all live and inspectable.
type Grid struct {
	cfg Config

	net         *transport.InProcNetwork
	dir         *directory.Directory
	stores      []*store.Store // one partition store per classifier
	fed         *store.Federation
	tracer      *trace.Tracer
	metrics     *telemetry.Registry
	health      *telemetry.Health
	flight      *flight.Recorder
	profiler    *flight.Profiler
	containers  []*platform.Container
	collectors  []*collect.Collector
	classifiers []*classify.Classifier
	router      *partitionRouter
	root        *analyze.Root
	workers     []*analyze.Worker
	ig          *report.Interface
	http        *report.Server

	cancel  context.CancelFunc
	started bool
}

// NewGrid assembles (but does not start) a management grid.
func NewGrid(cfg Config) (*Grid, error) {
	cfg = cfg.withDefaults()
	g := &Grid{
		cfg:     cfg,
		net:     transport.NewInProcNetwork(),
		dir:     directory.New(3 * cfg.HeartbeatEvery),
		tracer:  trace.New(cfg.Trace),
		metrics: telemetry.NewRegistry("agentgrid"),
		health:  telemetry.NewHealth(),
		flight:  flight.New(cfg.Flight),
	}
	// One store partition per classifier; the federation is the grid's
	// cross-partition read view. A single-partition federation delegates
	// straight through, so the unsharded grid pays nothing.
	for i := 0; i < cfg.Classifiers; i++ {
		g.stores = append(g.stores, store.NewSharded(cfg.StorePoints, cfg.StoreShards))
	}
	g.fed = store.NewFederation(g.stores)
	// A health degradation is exactly the moment the pre-incident tail
	// matters: snapshot the ring before it scrolls away.
	g.health.SetTransitionHook(func(healthy bool, failing []string) {
		if !healthy {
			g.flight.Trigger("health: degraded (" + strings.Join(failing, ",") + ")")
		}
	})

	profile := directory.ResourceProfile{CPUCapacity: 100, NetCapacity: 100, DiscCapacity: 100}
	resolver := func(aid acl.AID) (string, error) {
		if reg, ok := g.dir.Get(aid.Platform()); ok {
			return reg.Addr, nil
		}
		return "", fmt.Errorf("core: unresolvable agent %s", aid.Name)
	}
	newContainer := func(name string) (*platform.Container, error) {
		c, err := platform.New(platform.Config{
			Name: name, Platform: name, Profile: profile,
			Resolver: resolver, ErrorLog: cfg.ErrorLog,
			Tracer:  g.tracer,
			Metrics: g.metrics,
			Flight:  g.flight,
			// Close the §3.5 loop: each container periodically reports
			// its telemetry-measured load into the directory, so
			// contract-net awards react to observed pressure between
			// heartbeats.
			LoadReporter:    g.dir.UpdateLoad,
			LoadReportEvery: cfg.HeartbeatEvery / 2,
		})
		if err != nil {
			return nil, err
		}
		if cfg.TCPHost != "" {
			wl := telemetry.Labels{"container": name}
			opts := []transport.TCPOption{transport.WithTCPMetrics(transport.WireMetrics{
				SentBytes:    g.metrics.Counter("acl_sent_bytes_total", "ACL frame bytes written to TCP peers", wl),
				RecvBytes:    g.metrics.Counter("acl_received_bytes_total", "ACL frame bytes read from TCP peers", wl),
				AcceptErrors: g.metrics.Counter("acl_accept_errors_total", "transient TCP listener accept failures", wl),
				DecodeErrors: g.metrics.Counter("acl_decode_errors_total", "inbound TCP connections ended by an undecodable frame", wl),
			}), transport.WithTCPFlight(g.flight)}
			switch cfg.WireFormat {
			case "", "binary":
				// transport's default is already ACL2 binary.
			case "json":
				opts = append(opts, transport.WithWireFormat(acl.FormatJSON))
			default:
				return nil, fmt.Errorf("core: unknown wire format %q (binary|json)", cfg.WireFormat)
			}
			if cfg.FlushWindow > 0 {
				opts = append(opts, transport.WithFlushWindow(cfg.FlushWindow))
			}
			err = c.AttachTCP(cfg.TCPHost+":0", opts...)
		} else {
			err = c.AttachInProc(g.net, "inproc://"+name)
		}
		if err != nil {
			return nil, err
		}
		g.containers = append(g.containers, c)
		return c, nil
	}

	// ---- Interface grid (IG) ----
	igC, err := newContainer("ig")
	if err != nil {
		return nil, err
	}
	igAgent, err := igC.SpawnAgent("interface")
	if err != nil {
		return nil, err
	}
	igAID := igAgent.ID()

	// ---- Processor grid (PG): root + workers ----
	rootC, err := newContainer("pg-root")
	if err != nil {
		return nil, err
	}
	rootAgent, err := rootC.SpawnAgent("pg-root")
	if err != nil {
		return nil, err
	}
	var sched loadbalance.Scheduler
	if !cfg.Negotiated {
		sched, err = loadbalance.New(cfg.Scheduler, 1)
		if err != nil {
			return nil, err
		}
	}
	g.root, err = analyze.NewRoot(rootAgent, analyze.RootConfig{
		Directory:   g.dir,
		Scheduler:   sched,
		Negotiated:  cfg.Negotiated,
		BidWindow:   cfg.BidWindow,
		Interface:   igAID,
		TaskTimeout: cfg.TaskTimeout,
		ErrorLog:    cfg.ErrorLog,
		Metrics:     g.metrics,
		Flight:      g.flight,
	})
	if err != nil {
		return nil, err
	}
	// The root hosts the DF agent of Figure 4.
	dfAgent, err := rootC.SpawnAgent(DFAgentName)
	if err != nil {
		return nil, err
	}
	if _, err := NewDFServer(dfAgent, g.dir); err != nil {
		return nil, err
	}
	if err := g.register(rootC, directory.ServiceBroker, nil); err != nil {
		return nil, err
	}
	if err := g.heartbeat(rootC, rootAgent, directory.ServiceBroker, nil); err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Analyzers; i++ {
		wc, err := newContainer(fmt.Sprintf("pg-%d", i+1))
		if err != nil {
			return nil, err
		}
		wa, err := wc.SpawnAgent(analyze.WorkerAgentName)
		if err != nil {
			return nil, err
		}
		rb := rules.NewRuleBase()
		if cfg.Rules != "" {
			if _, err := rb.AddSource(cfg.Rules); err != nil {
				return nil, fmt.Errorf("core: worker rules: %w", err)
			}
		}
		w, err := analyze.NewWorker(wa, analyze.WorkerConfig{
			Store: g.fed, Rules: rb, ErrorLog: cfg.ErrorLog,
			Metrics: g.metrics,
			Flight:  g.flight,
			// The worker's contract-net bid folds in the container's
			// telemetry-measured load, not just its busy-task count.
			LoadFunc: wc.TelemetryLoad,
		})
		if err != nil {
			return nil, err
		}
		wc.SetLoadFunc(w.Load)
		g.workers = append(g.workers, w)
		if err := g.register(wc, directory.ServiceAnalysis, w.Capabilities()); err != nil {
			return nil, err
		}
		if err := g.heartbeat(wc, wa, directory.ServiceAnalysis, w.Capabilities()); err != nil {
			return nil, err
		}
	}

	// ---- Classifier grid (CLG) ----
	// One container per partition, each owning its partition store. A
	// single-classifier grid keeps the historical "clg" container name.
	rootAID := rootAgent.ID()
	clgAIDs := make([]acl.AID, cfg.Classifiers)
	clgNames := make([]string, cfg.Classifiers)
	for i := 0; i < cfg.Classifiers; i++ {
		name := classifierContainerName(i, cfg.Classifiers)
		clgC, err := newContainer(name)
		if err != nil {
			return nil, err
		}
		clgAgent, err := clgC.SpawnAgent("classifier")
		if err != nil {
			return nil, err
		}
		cl, err := classify.New(clgAgent, classify.Config{
			Store:     g.stores[i],
			Processor: rootAID,
			Ontology:  obs.NewOntology(),
			ErrorLog:  cfg.ErrorLog,
			Metrics:   g.metrics,
			Flight:    g.flight,
		})
		if err != nil {
			return nil, err
		}
		g.classifiers = append(g.classifiers, cl)
		if err := g.register(clgC, directory.ServiceClassification, nil); err != nil {
			return nil, err
		}
		if err := g.heartbeat(clgC, clgAgent, directory.ServiceClassification, nil); err != nil {
			return nil, err
		}
		// Each classifier container also answers remote store queries
		// for worker nodes on other machines, over its own partition.
		sqAgent, err := clgC.SpawnAgent(StoreQueryAgentName)
		if err != nil {
			return nil, err
		}
		if _, err := NewStoreQueryServer(sqAgent, g.stores[i]); err != nil {
			return nil, err
		}
		clgAIDs[i] = clgAgent.ID()
		clgNames[i] = name
	}
	g.router = &partitionRouter{g: g, names: clgNames, aids: clgAIDs}

	// ---- Collector grid (CG) ----
	var localRules *rules.RuleBase
	if cfg.LocalRules != "" {
		localRules = rules.NewRuleBase()
		if _, err := localRules.AddSource(cfg.LocalRules); err != nil {
			return nil, fmt.Errorf("core: local rules: %w", err)
		}
	}
	// With one partition every batch goes to clg directly; with more,
	// the router picks the owning (or next healthy) partition per batch.
	var route func(site, device string) (acl.AID, bool)
	if cfg.Classifiers > 1 {
		route = g.router.Route
	}
	for i := 0; i < cfg.Collectors; i++ {
		cgC, err := newContainer(fmt.Sprintf("cg-%d", i+1))
		if err != nil {
			return nil, err
		}
		ca, err := cgC.SpawnAgent("collector")
		if err != nil {
			return nil, err
		}
		col, err := collect.New(ca, collect.Config{
			Site:       cfg.Site,
			Classifier: clgAIDs[0],
			Route:      route,
			Iface: &collect.SNMPInterface{
				Client: snmp.NewClient(cfg.Community, snmp.WithTimeout(2*time.Second)),
			},
			Ontology:   obs.NewOntology(),
			LocalRules: localRules,
			AlertSink: func(a rules.Alert) {
				// Collector pre-analysis alerts go straight to the IG.
				g.ig.AddAlerts([]rules.Alert{a})
			},
			ErrorLog: cfg.ErrorLog,
			Metrics:  g.metrics,
			Flight:   g.flight,
		})
		if err != nil {
			return nil, err
		}
		g.collectors = append(g.collectors, col)
		if err := g.register(cgC, directory.ServiceCollection, nil); err != nil {
			return nil, err
		}
		if err := g.heartbeat(cgC, ca, directory.ServiceCollection, nil); err != nil {
			return nil, err
		}
	}

	// The IG wires last: it needs the workers for rule learning.
	g.ig, err = report.New(igAgent, report.Config{
		Store:     g.fed,
		Rules:     fanoutRuleSink(g.workers),
		Goals:     g.goalFromSpec,
		StatsFunc: func() any { return g.Status() },
		Tracer:    g.tracer,
		Metrics:   g.metrics,
		Health:    g.health,
		Flight:    g.flight,
		ErrorLog:  cfg.ErrorLog,
	})
	if err != nil {
		return nil, err
	}
	if err := g.register(igC, directory.ServiceInterface, nil); err != nil {
		return nil, err
	}
	if err := g.heartbeat(igC, igAgent, directory.ServiceInterface, nil); err != nil {
		return nil, err
	}
	g.registerGridMetrics()
	g.registerHealthChecks()
	if cfg.ProfileEvery >= 0 {
		g.profiler = flight.StartProfiler(flight.ProfilerOptions{
			Recorder: g.flight,
			Registry: g.metrics,
			Health:   g.health,
			Every:    cfg.ProfileEvery,
		})
	}
	return g, nil
}

// registerGridMetrics publishes shared-subsystem gauges and counters
// that no single container owns: store, directory and tracer state.
func (g *Grid) registerGridMetrics() {
	g.metrics.GaugeFunc("store_series_count", "time series retained by the management data store", nil, func() float64 {
		series, _ := g.fed.Stats()
		return float64(series)
	})
	g.metrics.CounterFunc("store_appends_total", "records appended to the management data store", nil, func() uint64 {
		_, appends := g.fed.Stats()
		return appends
	})
	// Per-stripe census gauges make placement skew visible: gridctl top
	// folds these into its shard-balance line.
	for pi, st := range g.stores {
		partition := fmt.Sprintf("%d", pi)
		for si := 0; si < st.ShardCount(); si++ {
			st, si := st, si
			l := telemetry.Labels{"partition": partition, "shard": fmt.Sprintf("%d", si)}
			g.metrics.GaugeFunc("store_shard_series_count", "time series on one store lock stripe", l, func() float64 {
				return float64(st.ShardStat(si).Series)
			})
			g.metrics.CounterFunc("store_shard_appends_total", "records appended to one store lock stripe", l, func() uint64 {
				return st.ShardStat(si).Appends
			})
		}
	}
	g.metrics.GaugeFunc("directory_entries_count", "live container registrations in the grid directory", nil, func() float64 {
		return float64(g.dir.Len())
	})
	g.metrics.CounterFunc("trace_spans_dropped_total", "trace spans lost to collector ring overwrite", nil, func() uint64 {
		return g.tracer.Stats().Dropped
	})
}

// registerHealthChecks wires the grid's per-subsystem health checks,
// served by the report server at /healthz and /readyz.
func (g *Grid) registerHealthChecks() {
	g.health.Register("containers", func() error {
		detached := ""
		for _, c := range g.containers {
			if c.Addr() == "" {
				if detached != "" {
					detached += ","
				}
				detached += c.Name()
			}
		}
		if detached != "" {
			return fmt.Errorf("detached: %s", detached)
		}
		return nil
	})
	g.health.Register("analysis", func() error {
		if len(g.dir.Search(directory.Query{ServiceType: directory.ServiceAnalysis})) == 0 {
			return errors.New("no live analysis registration in the directory")
		}
		return nil
	})
	g.health.Register("collectors", func() error {
		if len(g.dir.Search(directory.Query{ServiceType: directory.ServiceCollection})) == 0 {
			return errors.New("no live collector registration in the directory")
		}
		return nil
	})
	g.health.Register("trace", func() error {
		st := g.tracer.Stats()
		kept := uint64(st.Spans + st.Buffered)
		if st.Dropped > 0 && st.Dropped > kept {
			return fmt.Errorf("dropping spans faster than retaining them (%d dropped, %d kept)", st.Dropped, kept)
		}
		return nil
	})
}

// register puts a container into the grid directory.
func (g *Grid) register(c *platform.Container, service string, caps []string) error {
	return g.dir.Register(c.Registration([]directory.ServiceDesc{{
		Type: service, Capabilities: caps,
	}}))
}

// heartbeat keeps a container's lease fresh so the root's failover
// sweep can distinguish live containers from dead ones. The renewed
// load is the telemetry-measured value (§3.5), and a container whose
// lease was swept while it was unreachable re-registers itself on the
// next beat instead of staying lost.
func (g *Grid) heartbeat(c *platform.Container, a *agent.Agent, service string, caps []string) error {
	return a.AddGoal(agent.Goal{
		Name:     "df-heartbeat",
		Interval: g.cfg.HeartbeatEvery,
		Action: func(context.Context, *agent.Agent) error {
			err := g.dir.Renew(c.Name(), c.MeasuredLoad())
			if errors.Is(err, directory.ErrNotFound) {
				return g.register(c, service, caps)
			}
			return err
		},
	})
}

// fanoutRuleSink teaches learned rules to every analysis worker.
type fanoutRuleSink []*analyze.Worker

func (f fanoutRuleSink) AddSource(src string) ([]string, error) {
	var added []string
	for i, w := range f {
		names, err := w.Rules().AddSource(src)
		if err != nil {
			return added, fmt.Errorf("core: worker %d: %w", i, err)
		}
		if i == 0 {
			added = names
		}
	}
	return added, nil
}

// goalFromSpec parses an IG "goal ..." feedback line and installs it on
// the least-loaded collector.
func (g *Grid) goalFromSpec(ctx context.Context, spec string) error {
	goal, err := ParseGoalSpec(spec)
	if err != nil {
		return err
	}
	return g.AddGoal(*goal)
}

// ParseGoalSpec parses "goal <name> <site> <device> <class> <addr>
// <interval> [metrics...]" — the wire format collectors and the IG use.
func ParseGoalSpec(spec string) (*collect.Goal, error) {
	fields := splitFields(spec)
	if len(fields) < 7 || fields[0] != "goal" {
		return nil, errors.New("core: goal spec needs: goal <name> <site> <device> <class> <addr> <interval> [metrics...]")
	}
	interval, err := time.ParseDuration(fields[6])
	if err != nil {
		return nil, fmt.Errorf("core: goal interval: %w", err)
	}
	goal := &collect.Goal{
		Name: fields[1], Site: fields[2], Device: fields[3],
		Class: fields[4], Addr: fields[5], Interval: interval,
		Metrics: fields[7:],
	}
	if goal.Addr == "-" {
		goal.Addr = ""
	}
	return goal, goal.Validate()
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// Start launches every container. Stop (or cancelling the context)
// shuts the grid down.
func (g *Grid) Start(ctx context.Context) error {
	if g.started {
		return errors.New("core: grid already started")
	}
	runCtx, cancel := context.WithCancel(ctx)
	g.cancel = cancel
	for _, c := range g.containers {
		if err := c.Start(runCtx); err != nil {
			cancel()
			return err
		}
	}
	g.started = true
	return nil
}

// Stop shuts the grid down, including any HTTP frontend.
func (g *Grid) Stop() error {
	var firstErr error
	if g.http != nil {
		firstErr = g.http.Close()
		g.http = nil
	}
	if g.cancel != nil {
		g.cancel()
	}
	for _, c := range g.containers {
		if err := c.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	g.profiler.Close()
	g.flight.Close()
	g.started = false
	return firstErr
}

// StartHTTP exposes the interface grid over HTTP on addr and returns
// the bound address.
func (g *Grid) StartHTTP(addr string) (string, error) {
	if g.http != nil {
		return g.http.Addr(), nil
	}
	srv, err := report.NewServer(g.ig, addr)
	if err != nil {
		return "", err
	}
	g.http = srv
	return srv.Addr(), nil
}

// AddGoal installs a collection goal on the collector with the fewest
// goals (simple static balance across the CG).
func (g *Grid) AddGoal(goal collect.Goal) error {
	if len(g.collectors) == 0 {
		return errors.New("core: no collectors")
	}
	best := g.collectors[0]
	for _, c := range g.collectors[1:] {
		if len(c.Goals()) < len(best.Goals()) {
			best = c
		}
	}
	return best.AddGoal(goal)
}

// AddGoals installs a batch of goals.
func (g *Grid) AddGoals(goals []collect.Goal) error {
	for _, goal := range goals {
		if err := g.AddGoal(goal); err != nil {
			return err
		}
	}
	return nil
}

// CollectNow triggers every goal on every collector once, synchronously
// with respect to collection (analysis completes asynchronously).
func (g *Grid) CollectNow(ctx context.Context) error {
	var firstErr error
	for _, c := range g.collectors {
		for _, name := range c.Goals() {
			if err := c.CollectNow(ctx, name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// WaitIdle blocks until the processor grid has no in-flight tasks, or
// the timeout elapses. It reports whether the grid went idle. The wait
// is event-driven: the root wakes waiters on the exact transition to an
// empty pending-task table instead of polling.
func (g *Grid) WaitIdle(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return g.root.WaitIdle(ctx)
}

// Accessors for inspection, tooling and tests.

// Store returns the grid's first store partition — the whole store in
// the default single-classifier layout.
func (g *Grid) Store() *store.Store { return g.stores[0] }

// Stores returns every store partition, indexed by classifier
// partition.
func (g *Grid) Stores() []*store.Store { return append([]*store.Store(nil), g.stores...) }

// Federation returns the grid's cross-partition read view.
func (g *Grid) Federation() *store.Federation { return g.fed }

// RootAddr returns the pg-root container's transport address — the
// endpoint external worker nodes dial to join the grid.
func (g *Grid) RootAddr() string { return g.containerAddr("pg-root") }

// ClassifierAddr returns the first classifier container's transport
// address, which hosts the store-query service remote workers read
// from.
func (g *Grid) ClassifierAddr() string {
	return g.containerAddr(classifierContainerName(0, g.cfg.Classifiers))
}

func (g *Grid) containerAddr(name string) string {
	for _, c := range g.containers {
		if c.Name() == name {
			return c.Addr()
		}
	}
	return ""
}

// Network returns the grid's in-process message network. The chaos
// harness installs fault plans on it; in TCP mode (TCPHost set) the
// network exists but carries no grid traffic.
func (g *Grid) Network() *transport.InProcNetwork { return g.net }

// Containers returns every container in the grid, in assembly order
// (ig, pg-root, pg-N..., clg or clg-1..clg-N, cg-N...). The topology
// subsystem builds its per-container census from this.
func (g *Grid) Containers() []*platform.Container {
	return append([]*platform.Container(nil), g.containers...)
}

// Container returns a grid container by name ("clg", "pg-root",
// "pg-1", "cg-1", "ig", ...).
func (g *Grid) Container(name string) (*platform.Container, bool) {
	for _, c := range g.containers {
		if c.Name() == name {
			return c, true
		}
	}
	return nil, false
}

// Directory returns the grid root's directory.
func (g *Grid) Directory() *directory.Directory { return g.dir }

// Interface returns the interface grid.
func (g *Grid) Interface() *report.Interface { return g.ig }

// Root returns the processor-grid root.
func (g *Grid) Root() *analyze.Root { return g.root }

// Workers returns the analysis workers.
func (g *Grid) Workers() []*analyze.Worker { return append([]*analyze.Worker(nil), g.workers...) }

// Collectors returns the collector agents.
func (g *Grid) Collectors() []*collect.Collector {
	return append([]*collect.Collector(nil), g.collectors...)
}

// Classifier returns the first classifier-grid agent.
func (g *Grid) Classifier() *classify.Classifier { return g.classifiers[0] }

// Classifiers returns every classifier partition agent.
func (g *Grid) Classifiers() []*classify.Classifier {
	return append([]*classify.Classifier(nil), g.classifiers...)
}

// Tracer returns the grid's causal tracer.
func (g *Grid) Tracer() *trace.Tracer { return g.tracer }

// Metrics returns the grid's telemetry registry.
func (g *Grid) Metrics() *telemetry.Registry { return g.metrics }

// Health returns the grid's health check set.
func (g *Grid) Health() *telemetry.Health { return g.health }

// Flight returns the grid's always-on flight recorder.
func (g *Grid) Flight() *flight.Recorder { return g.flight }

// Profiler returns the grid's continuous runtime profiler (nil when
// disabled with a negative ProfileEvery).
func (g *Grid) Profiler() *flight.Profiler { return g.profiler }

// Alerts returns the interface grid's alert history.
func (g *Grid) Alerts() []rules.Alert { return g.ig.Alerts("") }

// GridStatus is a grid-wide status snapshot (served at GET /stats).
type GridStatus struct {
	Site             string                `json:"site"`
	Containers       int                   `json:"containers"`
	DirectoryEntries int                   `json:"directory_entries"`
	StoreSeries      int                   `json:"store_series"`
	StoreAppends     uint64                `json:"store_appends"`
	Root             analyze.RootStats     `json:"root"`
	Workers          []analyze.WorkerStats `json:"workers"`
	Collectors       []collect.Stats       `json:"collectors"`
	// Classifier aggregates every partition's counters.
	Classifier classify.Stats `json:"classifier"`
	// Partitions is the classifier partition map: index i owns every
	// device with store.PartitionIndex(site, device, len) == i. The
	// published mapping is what external routers must agree with.
	Partitions []PartitionStatus `json:"partitions"`
	Trace      trace.Stats       `json:"trace"`
}

// PartitionStatus is one classifier partition's census row.
type PartitionStatus struct {
	Partition  int            `json:"partition"`
	Container  string         `json:"container"`
	Series     int            `json:"series"`
	Appends    uint64         `json:"appends"`
	Healthy    bool           `json:"healthy"`
	Classifier classify.Stats `json:"classifier"`
}

// Status assembles the current grid-wide snapshot.
func (g *Grid) Status() GridStatus {
	series, appends := g.fed.Stats()
	st := GridStatus{
		Site:             g.cfg.Site,
		Containers:       len(g.containers),
		DirectoryEntries: g.dir.Len(),
		StoreSeries:      series,
		StoreAppends:     appends,
		Root:             g.root.Stats(),
		Trace:            g.tracer.Stats(),
	}
	for i, cl := range g.classifiers {
		cs := cl.Stats()
		st.Classifier.Batches += cs.Batches
		st.Classifier.Records += cs.Records
		st.Classifier.ParseErrors += cs.ParseErrors
		st.Classifier.StoreErrors += cs.StoreErrors
		st.Classifier.Notices += cs.Notices
		ps, pa := g.stores[i].Stats()
		st.Partitions = append(st.Partitions, PartitionStatus{
			Partition:  i,
			Container:  g.router.names[i],
			Series:     ps,
			Appends:    pa,
			Healthy:    g.router.healthy(i),
			Classifier: cs,
		})
	}
	for _, w := range g.workers {
		st.Workers = append(st.Workers, w.Stats())
	}
	for _, c := range g.collectors {
		st.Collectors = append(st.Collectors, c.Stats())
	}
	return st
}
