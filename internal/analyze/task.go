// Package analyze implements the processor agent grid (PG, §3.3) — "the
// most important part of the architecture". A root agent acts as the
// broker of Figure 3: it receives the classifier's data notices, divides
// the analysis into tasks (per-device level 1/2 scans and per-site level
// 3 correlation), places each task on a worker container using a
// load-balancing strategy or contract-net negotiation, reassigns tasks
// when workers die, and forwards the resulting alerts to the interface
// grid. Worker agents hold the rule base and evaluate it against the
// management store.
package analyze

import (
	"encoding/json"
	"fmt"

	"agentgrid/internal/rules"
)

// Task is one unit of analysis work the root hands a worker.
type Task struct {
	// ID is unique per root.
	ID string `json:"id"`
	// Level is the analysis level (1, 2 or 3).
	Level int `json:"level"`
	// Site scopes the task.
	Site string `json:"site"`
	// Device scopes level 1/2 tasks; empty for level 3.
	Device string `json:"device,omitempty"`
	// Categories are the metric categories present in the cluster — the
	// knowledge the task needs.
	Categories []string `json:"categories,omitempty"`
	// Step is the newest logical step of the data under analysis.
	Step int `json:"step"`
}

// PrimaryCategory returns the first category (scheduler knowledge hint).
func (t *Task) PrimaryCategory() string {
	if len(t.Categories) == 0 {
		return ""
	}
	return t.Categories[0]
}

// EncodeTask serializes a task for ACL content.
func EncodeTask(t *Task) ([]byte, error) { return json.Marshal(t) }

// DecodeTask parses a task from ACL content.
func DecodeTask(data []byte) (*Task, error) {
	var t Task
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("analyze: decode task: %w", err)
	}
	if t.ID == "" || t.Level < 1 || t.Level > 3 || t.Site == "" {
		return nil, fmt.Errorf("analyze: malformed task %+v", t)
	}
	return &t, nil
}

// Result is a worker's answer for one task.
type Result struct {
	// TaskID echoes the task.
	TaskID string `json:"task_id"`
	// Worker names the container/agent that produced the result.
	Worker string `json:"worker"`
	// Alerts raised by the rules.
	Alerts []rules.Alert `json:"alerts,omitempty"`
	// Facts derived during forward chaining.
	Facts []string `json:"facts,omitempty"`
	// RulesRun counts rules evaluated (for the capacity experiments).
	RulesRun int `json:"rules_run"`
}

// EncodeResult serializes a result for ACL content.
func EncodeResult(r *Result) ([]byte, error) { return json.Marshal(r) }

// DecodeResult parses a result from ACL content.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("analyze: decode result: %w", err)
	}
	return &r, nil
}

// EncodeAlerts serializes an alert bundle the root forwards to the
// interface grid.
func EncodeAlerts(alerts []rules.Alert) ([]byte, error) { return json.Marshal(alerts) }

// DecodeAlerts parses an alert bundle.
func DecodeAlerts(data []byte) ([]rules.Alert, error) {
	var out []rules.Alert
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("analyze: decode alerts: %w", err)
	}
	return out, nil
}
