package analyze

import (
	"fmt"

	"agentgrid/internal/agent"
	"agentgrid/internal/mobility"
	"agentgrid/internal/rules"
)

// MobileAnalystKind is the mobility kind of a migratable analysis
// agent. Its serialized payload is its rule base in DSL source form, so
// the knowledge travels with the agent ("migration of analysis
// activities", paper §5).
const MobileAnalystKind = "analysis-agent"

// RegisterMobileAnalyst registers the analysis-agent kind with a
// container's mobility manager. Each container supplies its own store
// access — which is the point of migrating: an analyst reconstructed on
// the storage container reads locally instead of pulling data over the
// network.
func RegisterMobileAnalyst(m *mobility.Manager, st StoreReader) error {
	return m.Register(MobileAnalystKind, func(a *agent.Agent, state *mobility.State) error {
		rb := rules.NewRuleBase()
		if len(state.Payload) > 0 {
			if _, err := rb.AddSource(string(state.Payload)); err != nil {
				return fmt.Errorf("analyze: mobile analyst rules: %w", err)
			}
		}
		_, err := NewWorker(a, WorkerConfig{Store: st, Rules: rb})
		return err
	})
}

// AnalystState builds the migratable state of an analysis agent with
// the given local name and rule base.
func AnalystState(localName string, rb *rules.RuleBase) *mobility.State {
	return &mobility.State{
		Kind:    MobileAnalystKind,
		Name:    localName,
		Payload: []byte(rb.Source()),
	}
}
