package analyze

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/classify"
	"agentgrid/internal/directory"
	"agentgrid/internal/loadbalance"
	"agentgrid/internal/obs"
	"agentgrid/internal/platform"
	"agentgrid/internal/rules"
	"agentgrid/internal/store"
	"agentgrid/internal/transport"
)

// grid is a full in-process processor grid for tests: a root container,
// n worker containers, a shared store and directory.
type grid struct {
	t         *testing.T
	net       *transport.InProcNetwork
	dir       *directory.Directory
	st        *store.Store
	root      *Root
	rootC     *platform.Container
	workers   map[string]*Worker
	workerCs  map[string]*platform.Container
	results   chan *Result
	alertsRx  chan []rules.Alert
	cancelAll context.CancelFunc
}

const testRules = `
rule "l1-hot" level 1 category cpu severity critical {
    when latest(cpu.util) > 90
    then alert "hot {device}"
}
rule "l2-sustained" level 2 category cpu {
    when avg(cpu.util, 5) > 80
    then alert "sustained {device}"
}
rule "l3-site" level 3 category cpu severity critical {
    when count_above(cpu.util, 90) >= 2
    then alert "site {site} melting"
}
`

func buildGrid(t *testing.T, nWorkers int, mod func(*RootConfig)) *grid {
	t.Helper()
	g := &grid{
		t:        t,
		net:      transport.NewInProcNetwork(),
		dir:      directory.New(time.Minute),
		st:       store.New(256),
		workers:  make(map[string]*Worker),
		workerCs: make(map[string]*platform.Container),
		results:  make(chan *Result, 256),
		alertsRx: make(chan []rules.Alert, 256),
	}
	profile := directory.ResourceProfile{CPUCapacity: 100, NetCapacity: 100, DiscCapacity: 100}
	resolver := func(aid acl.AID) (string, error) {
		if reg, ok := g.dir.Get(aid.Platform()); ok {
			return reg.Addr, nil
		}
		return "", fmt.Errorf("unresolvable %s", aid.Name)
	}

	ctx, cancel := context.WithCancel(context.Background())
	g.cancelAll = cancel
	t.Cleanup(cancel)

	// Root container.
	rootC, err := platform.New(platform.Config{
		Name: "root", Platform: "root", Profile: profile, Resolver: resolver,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rootC.AttachInProc(g.net, "inproc://root"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rootC.Stop() })
	g.rootC = rootC
	rootAgent, err := rootC.SpawnAgent("pg-root")
	if err != nil {
		t.Fatal(err)
	}
	// The IG sink lives on the root container for simplicity.
	igAgent, err := rootC.SpawnAgent("ig")
	if err != nil {
		t.Fatal(err)
	}
	igAgent.HandleFunc(agent.Selector{Performative: acl.Inform},
		func(_ context.Context, _ *agent.Agent, m *acl.Message) {
			if alerts, err := DecodeAlerts(m.Content); err == nil {
				g.alertsRx <- alerts
			}
		})

	cfg := RootConfig{
		Directory:   g.dir,
		Scheduler:   loadbalance.NewCapability(),
		Interface:   acl.NewAID("ig", "root"),
		TaskTimeout: 500 * time.Millisecond,
		MaxAttempts: 3,
		OnResult:    func(res *Result) { g.results <- res },
	}
	if mod != nil {
		mod(&cfg)
	}
	root, err := NewRoot(rootAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.root = root
	g.dir.Register(directory.Registration{
		Container: "root", Addr: rootC.Addr(), Profile: profile,
		Services: []directory.ServiceDesc{{Type: directory.ServiceBroker}},
	})

	// Worker containers (platform name == container name).
	for i := 0; i < nWorkers; i++ {
		name := fmt.Sprintf("pg-%d", i)
		wc, err := platform.New(platform.Config{
			Name: name, Platform: name, Profile: profile, Resolver: resolver,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := wc.AttachInProc(g.net, "inproc://"+name); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { wc.Stop() })
		wa, err := wc.SpawnAgent(WorkerAgentName)
		if err != nil {
			t.Fatal(err)
		}
		rb := rules.NewRuleBase()
		if _, err := rb.AddSource(testRules); err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(wa, WorkerConfig{Store: g.st, Rules: rb})
		if err != nil {
			t.Fatal(err)
		}
		g.workers[name] = w
		g.workerCs[name] = wc
		g.dir.Register(directory.Registration{
			Container: name, Addr: wc.Addr(), Profile: profile,
			Services: []directory.ServiceDesc{{
				Type:         directory.ServiceAnalysis,
				Capabilities: w.Capabilities(),
			}},
		})
		if err := wc.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := rootC.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return g
}

func (g *grid) seedStore(device string, cpuVals ...float64) {
	g.t.Helper()
	for i, v := range cpuVals {
		err := g.st.Append(obs.Record{
			Site: "site1", Device: device, Metric: "cpu.util",
			Value: v, Step: i + 1, Time: time.Unix(int64(i), 0),
		})
		if err != nil {
			g.t.Fatal(err)
		}
	}
}

func (g *grid) notice(devices ...string) *classify.Notice {
	n := &classify.Notice{Collector: "collector-1@site1"}
	for _, d := range devices {
		n.Clusters = append(n.Clusters, classify.Cluster{
			Key: "site1/" + d, Site: "site1", Device: d, Class: "host",
			Categories: []string{"cpu"}, Records: 1, MaxStep: 5,
		})
	}
	return n
}

func (g *grid) collectResults(n int, timeout time.Duration) []*Result {
	g.t.Helper()
	var out []*Result
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case res := <-g.results:
			out = append(out, res)
		case <-deadline:
			g.t.Fatalf("got %d of %d results; stats %+v", len(out), n, g.root.Stats())
		}
	}
	return out
}

func TestTaskCodec(t *testing.T) {
	task := &Task{ID: "t1", Level: 2, Site: "s", Device: "d", Categories: []string{"cpu"}, Step: 9}
	raw, err := EncodeTask(task)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "t1" || got.Level != 2 || got.PrimaryCategory() != "cpu" {
		t.Fatalf("roundtrip = %+v", got)
	}
	if (&Task{}).PrimaryCategory() != "" {
		t.Fatal("empty categories")
	}
	for _, bad := range []string{`{}`, `{"id":"x","level":9,"site":"s"}`, `{"id":"x","level":1}`, `nope`} {
		if _, err := DecodeTask([]byte(bad)); err == nil {
			t.Errorf("DecodeTask(%s) accepted", bad)
		}
	}
}

func TestResultAndAlertCodecs(t *testing.T) {
	res := &Result{TaskID: "t", Worker: "w", Alerts: []rules.Alert{{Rule: "r", Message: "m"}}, RulesRun: 3}
	raw, _ := EncodeResult(res)
	got, err := DecodeResult(raw)
	if err != nil || got.TaskID != "t" || len(got.Alerts) != 1 {
		t.Fatalf("result roundtrip = %+v, %v", got, err)
	}
	if _, err := DecodeResult([]byte("z")); err == nil {
		t.Fatal("garbage result accepted")
	}
	alerts := []rules.Alert{{Rule: "a"}, {Rule: "b"}}
	rawA, _ := EncodeAlerts(alerts)
	gotA, err := DecodeAlerts(rawA)
	if err != nil || len(gotA) != 2 {
		t.Fatalf("alerts roundtrip = %+v, %v", gotA, err)
	}
	if _, err := DecodeAlerts([]byte("z")); err == nil {
		t.Fatal("garbage alerts accepted")
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	g := buildGrid(t, 1, nil)
	wa, _ := g.rootC.SpawnAgent("spare")
	if _, err := NewWorker(wa, WorkerConfig{Rules: rules.NewRuleBase()}); err == nil {
		t.Error("worker without store accepted")
	}
	if _, err := NewWorker(wa, WorkerConfig{Store: g.st}); err == nil {
		t.Error("worker without rules accepted")
	}
}

func TestRootConfigValidation(t *testing.T) {
	g := buildGrid(t, 1, nil)
	ra, _ := g.rootC.SpawnAgent("spare-root")
	if _, err := NewRoot(ra, RootConfig{Scheduler: loadbalance.NewRoundRobin()}); err == nil {
		t.Error("root without directory accepted")
	}
	ra2, _ := g.rootC.SpawnAgent("spare-root-2")
	if _, err := NewRoot(ra2, RootConfig{Directory: g.dir}); err == nil {
		t.Error("root without scheduler accepted")
	}
}

func TestWorkerRunLevels(t *testing.T) {
	g := buildGrid(t, 1, nil)
	g.seedStore("h1", 95, 96, 97, 98, 99)
	g.seedStore("h2", 92, 93, 94, 95, 96)
	w := g.workers["pg-0"]

	// Level 1: latest > 90.
	res := w.Run(&Task{ID: "a", Level: 1, Site: "site1", Device: "h1", Step: 5})
	if len(res.Alerts) != 1 || res.Alerts[0].Rule != "l1-hot" {
		t.Fatalf("L1 = %+v", res.Alerts)
	}
	// Level 2: avg over window > 80.
	res = w.Run(&Task{ID: "b", Level: 2, Site: "site1", Device: "h1", Step: 5})
	if len(res.Alerts) != 1 || res.Alerts[0].Rule != "l2-sustained" {
		t.Fatalf("L2 = %+v", res.Alerts)
	}
	// Level 3: two devices above 90.
	res = w.Run(&Task{ID: "c", Level: 3, Site: "site1", Step: 5})
	if len(res.Alerts) != 1 || res.Alerts[0].Rule != "l3-site" {
		t.Fatalf("L3 = %+v", res.Alerts)
	}
	if res.Worker == "" || res.RulesRun != 1 {
		t.Fatalf("result meta = %+v", res)
	}
	stats := w.Stats()
	if stats.Tasks != 3 || stats.Alerts != 3 {
		t.Fatalf("worker stats = %+v", stats)
	}
}

func TestEndToEndDispatch(t *testing.T) {
	g := buildGrid(t, 3, nil)
	g.seedStore("h1", 95, 96, 97, 98, 99)
	g.seedStore("h2", 10, 11, 12, 13, 14)

	g.root.HandleNotice(context.Background(), g.notice("h1", "h2"))
	// 2 devices × L1+L2 + 1 site L3 = 5 tasks.
	results := g.collectResults(5, 10*time.Second)
	byLevel := map[int]int{}
	var alerts int
	for _, res := range results {
		alerts += len(res.Alerts)
		// infer level via task count only; alerts checked in aggregate
		_ = res
		byLevel[0]++
	}
	if alerts == 0 {
		t.Fatal("no alerts from hot device")
	}
	stats := g.root.Stats()
	if stats.Completed != 5 || stats.Notices != 1 {
		t.Fatalf("root stats = %+v", stats)
	}
	if len(g.root.PendingTasks()) != 0 {
		t.Fatalf("pending = %v", g.root.PendingTasks())
	}
	if stats.AlertsForward == 0 {
		t.Fatal("alerts not forwarded to interface grid")
	}
}

func TestL3Deduplication(t *testing.T) {
	g := buildGrid(t, 1, func(cfg *RootConfig) {
		cfg.TaskTimeout = 10 * time.Second // no sweeping interference
	})
	g.seedStore("h1", 50)
	// Two notices in a row: the second L3 for site1 must be suppressed
	// while the first is in flight; device tasks still dispatch.
	g.root.HandleNotice(context.Background(), g.notice("h1"))
	g.root.HandleNotice(context.Background(), g.notice("h1"))
	// Tasks: notice1 -> L1+L2+L3; notice2 -> L1+L2 (+L3 only if first
	// finished already). Accept 5 or 6 but dispatched must be <= 6.
	g.collectResults(5, 10*time.Second)
	stats := g.root.Stats()
	if stats.Dispatched > 6 {
		t.Fatalf("dispatched = %d, dedup broken", stats.Dispatched)
	}
}

func TestFailoverToAnotherWorker(t *testing.T) {
	g := buildGrid(t, 2, func(cfg *RootConfig) {
		cfg.TaskTimeout = 300 * time.Millisecond
	})
	g.seedStore("h1", 95)

	// Kill pg-0's analyzer agent so its tasks time out; directory still
	// lists it (lease not expired), so dispatch may choose it.
	g.workerCs["pg-0"].KillAgent(WorkerAgentName)

	g.root.HandleNotice(context.Background(), g.notice("h1"))
	results := g.collectResults(3, 15*time.Second)
	for _, res := range results {
		if res.Worker != "analyzer@pg-1" {
			t.Fatalf("result from %s", res.Worker)
		}
	}
}

func TestAbandonAfterMaxAttempts(t *testing.T) {
	g := buildGrid(t, 1, func(cfg *RootConfig) {
		cfg.TaskTimeout = 200 * time.Millisecond
		cfg.MaxAttempts = 2
	})
	g.seedStore("h1", 95)
	g.workerCs["pg-0"].KillAgent(WorkerAgentName)

	g.root.HandleNotice(context.Background(), g.notice("h1"))
	deadline := time.After(15 * time.Second)
	for {
		stats := g.root.Stats()
		if stats.Abandoned >= 3 && len(g.root.PendingTasks()) == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stats = %+v, pending = %v", g.root.Stats(), g.root.PendingTasks())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestNegotiatedDispatch(t *testing.T) {
	g := buildGrid(t, 3, func(cfg *RootConfig) {
		cfg.Scheduler = nil
		cfg.Negotiated = true
		cfg.BidWindow = 300 * time.Millisecond
		cfg.TaskTimeout = 10 * time.Second
	})
	g.seedStore("h1", 95, 96, 97, 98, 99)

	g.root.HandleNotice(context.Background(), g.notice("h1"))
	results := g.collectResults(3, 15*time.Second)
	var alerts int
	for _, res := range results {
		alerts += len(res.Alerts)
	}
	if alerts == 0 {
		t.Fatal("negotiated path produced no alerts")
	}
	if g.root.Stats().Completed != 3 {
		t.Fatalf("stats = %+v", g.root.Stats())
	}
}

func TestRuleLearningChangesCapabilities(t *testing.T) {
	g := buildGrid(t, 1, nil)
	w := g.workers["pg-0"]
	before := w.Capabilities()
	if _, err := w.Rules().AddSource(`rule "mem" level 2 category memory { when latest(mem.free) < 64 then alert "oom" }`); err != nil {
		t.Fatal(err)
	}
	after := w.Capabilities()
	if len(after) != len(before)+1 {
		t.Fatalf("capabilities %v -> %v", before, after)
	}
}

func TestWorkerLoadReflectsCapacity(t *testing.T) {
	g := buildGrid(t, 1, nil)
	w := g.workers["pg-0"]
	if w.Load() != 0 {
		t.Fatal("idle load not 0")
	}
	var wg sync.WaitGroup
	block := make(chan struct{})
	// Occupy the worker through its public Run path with a slow store.
	_ = block
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w.Run(&Task{ID: fmt.Sprintf("t%d", i), Level: 1, Site: "site1", Device: "h1", Step: 1})
		}(i)
	}
	wg.Wait()
	if w.Load() != 0 {
		t.Fatal("load did not return to 0")
	}
	if w.Stats().Tasks != 2 {
		t.Fatalf("stats = %+v", w.Stats())
	}
}
