package analyze

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/classify"
	"agentgrid/internal/obs"
	"agentgrid/internal/store"
)

// TestNoticeOverACL drives the root through its message handler rather
// than HandleNotice, as the real classifier does.
func TestNoticeOverACL(t *testing.T) {
	g := buildGrid(t, 2, nil)
	g.seedStore("h1", 95, 96, 97, 98, 99)

	notice := g.notice("h1")
	content, err := classify.EncodeNotice(notice)
	if err != nil {
		t.Fatal(err)
	}
	msg := &acl.Message{
		Performative:   acl.Inform,
		Sender:         acl.NewAID("classifier", "clg"),
		Receivers:      []acl.AID{g.root.Agent().ID()},
		Content:        content,
		Language:       "json",
		Ontology:       acl.OntologyGridManagement,
		Protocol:       acl.ProtocolRequest,
		ConversationID: "n1",
	}
	if err := g.root.Agent().Deliver(msg); err != nil {
		t.Fatal(err)
	}
	g.collectResults(3, 10*time.Second) // L1 + L2 + L3
	if g.root.Stats().Notices != 1 {
		t.Fatalf("stats = %+v", g.root.Stats())
	}
}

func TestMalformedNoticeOverACL(t *testing.T) {
	var errs atomic.Int64
	g := buildGrid(t, 1, func(cfg *RootConfig) {
		cfg.ErrorLog = func(error) { errs.Add(1) }
	})
	msg := &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("classifier", "clg"),
		Receivers:    []acl.AID{g.root.Agent().ID()},
		Content:      []byte("<<<garbage"),
		Ontology:     acl.OntologyGridManagement,
		Protocol:     acl.ProtocolRequest,
	}
	if err := g.root.Agent().Deliver(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for g.root.Stats().Notices != 0 || errs.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("garbage notice not rejected (errs=%d)", errs.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestWorkerFailureReplyTriggersReassign covers the explicit failure
// path: the root treats a failure reply as "reassign now".
func TestWorkerFailureReplyTriggersReassign(t *testing.T) {
	g := buildGrid(t, 2, func(cfg *RootConfig) {
		cfg.TaskTimeout = 10 * time.Second // only the failure reply may trigger
	})
	g.seedStore("h1", 95)
	g.root.HandleNotice(context.Background(), g.notice("h1"))

	// Snatch one pending task and fake its worker's failure reply.
	deadline := time.After(5 * time.Second)
	var taskID string
	for taskID == "" {
		if ids := g.root.PendingTasks(); len(ids) > 0 {
			taskID = ids[0]
		}
		select {
		case <-deadline:
			t.Fatal("no pending tasks")
		default:
		}
	}
	fail := &acl.Message{
		Performative: acl.Failure,
		Sender:       acl.NewAID(WorkerAgentName, "pg-0"),
		Receivers:    []acl.AID{g.root.Agent().ID()},
		Protocol:     acl.ProtocolRequest,
		InReplyTo:    taskReplyPrefix + taskID,
	}
	if err := g.root.Agent().Deliver(fail); err != nil {
		t.Fatal(err)
	}
	// All tasks still complete (reassigned to a live worker).
	g.collectResults(3, 15*time.Second)
	if g.root.Stats().Reassigned == 0 {
		t.Fatalf("stats = %+v", g.root.Stats())
	}
	// An unrelated failure (no task tag) is ignored harmlessly.
	unrelated := &acl.Message{
		Performative: acl.Failure,
		Sender:       acl.NewAID("x", "pg-0"),
		Receivers:    []acl.AID{g.root.Agent().ID()},
		Protocol:     acl.ProtocolRequest,
		InReplyTo:    "something-else",
	}
	if err := g.root.Agent().Deliver(unrelated); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerRejectsGarbageTask(t *testing.T) {
	g := buildGrid(t, 1, nil)
	w := g.workers["pg-0"]
	// Garbage task through the worker's ACL handler.
	msg := &acl.Message{
		Performative: acl.Request,
		Sender:       acl.NewAID("pg-root", "root"),
		Receivers:    []acl.AID{w.Agent().ID()},
		Content:      []byte("junk"),
		Ontology:     acl.OntologyGridManagement,
		Protocol:     acl.ProtocolRequest,
	}
	if err := w.Agent().Deliver(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for w.Stats().RejectedUnknown == 0 {
		select {
		case <-deadline:
			t.Fatal("garbage task not rejected")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestNegotiatedBidPrefersKnowledge: with equal load, the worker whose
// rule base knows the task's category underbids the ignorant one.
func TestNegotiatedBidPrefersKnowledge(t *testing.T) {
	g := buildGrid(t, 2, func(cfg *RootConfig) {
		cfg.Scheduler = nil
		cfg.Negotiated = true
		cfg.BidWindow = 300 * time.Millisecond
		cfg.TaskTimeout = 10 * time.Second
	})
	// pg-0 keeps the cpu rules; pg-1 forgets everything (no knowledge).
	ignorant := g.workers["pg-1"]
	for _, name := range ignorant.Rules().Names() {
		ignorant.Rules().Remove(name)
	}
	ignorant.Rules().AddSource(`rule "other" level 1 category traffic { when latest(if.in.1) > 1e18 then alert "x" }`)

	g.seedStore("h1", 95, 96, 97, 98, 99)
	g.root.HandleNotice(context.Background(), g.notice("h1")) // categories: cpu
	results := g.collectResults(3, 15*time.Second)
	for _, res := range results {
		if res.Worker != "analyzer@pg-0" {
			t.Fatalf("cpu task went to the ignorant worker: %+v", res)
		}
	}
}

// Unit coverage for the reader-env adapters.
func TestReaderEnvAdapters(t *testing.T) {
	st := store.New(16)
	st.Append(obs.Record{Site: "s", Device: "d", Metric: "m", Value: 5, Step: 1, Time: time.Unix(1, 0)})
	st.Append(obs.Record{Site: "s", Device: "e", Metric: "m", Value: 7, Step: 1, Time: time.Unix(1, 0)})
	st.Append(obs.Record{Site: "other", Device: "z", Metric: "m", Value: 100, Step: 1, Time: time.Unix(1, 0)})

	dev := &deviceReaderEnv{reader: st, site: "s", device: "d"}
	if f := dev.FleetLatest("m"); len(f) != 1 || f[0] != 5 {
		t.Fatalf("device FleetLatest = %v", f)
	}
	if dev.FleetLatest("ghost") != nil {
		t.Fatal("device phantom fleet")
	}
	if dev.Fact("x") {
		t.Fatal("device env has facts")
	}
	site := &siteReaderEnv{reader: st, site: "s"}
	if avg, ok := site.Latest("m"); !ok || avg != 6 {
		t.Fatalf("site Latest = %v, %v", avg, ok)
	}
	if _, ok := site.Latest("ghost"); ok {
		t.Fatal("site phantom latest")
	}
	if site.Window("m", 3) != nil {
		t.Fatal("site window should be nil")
	}
	if site.Fact("x") {
		t.Fatal("site env has facts")
	}
	if f := site.FleetLatest("m"); len(f) != 2 {
		t.Fatalf("site FleetLatest = %v", f)
	}
}
