package analyze

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/flight"
	"agentgrid/internal/negotiate"
	"agentgrid/internal/rules"
	"agentgrid/internal/store"
	"agentgrid/internal/telemetry"
)

// StoreReader is the store access a worker needs. *store.Store
// satisfies it; a remote-store proxy could too.
type StoreReader interface {
	Latest(key string) (store.Point, bool)
	Window(key string, n int) []store.Point
	SeriesForMetric(metric string) []string
	SeriesForDevice(site, device string) []string
}

// Interface compliance: the in-memory store is a valid reader.
var _ StoreReader = (*store.Store)(nil)

// WorkerConfig configures an analysis worker.
type WorkerConfig struct {
	// Store is where classified data lives.
	Store StoreReader
	// Rules is the worker's knowledge base.
	Rules *rules.RuleBase
	// Capacity is how many concurrent tasks the worker is sized for
	// (load = busy/capacity). Default 4.
	Capacity int
	// LoadFunc, when set, contributes an extra load signal to Load —
	// the hosting container's telemetry-derived load in production, so
	// contract-net bids reflect measured pressure (mailbox depth,
	// handle latency), not just the task count. Optional.
	LoadFunc func() float64
	// ErrorLog receives evaluation errors. Optional.
	ErrorLog func(error)
	// Metrics, when set, registers the worker's task counters and
	// per-level task latency histograms. Optional.
	Metrics *telemetry.Registry
	// Flight, when set, journals one wide event per task execution to
	// the flight recorder. Optional.
	Flight *flight.Recorder
}

// WorkerStats counts worker activity.
type WorkerStats struct {
	Tasks           uint64
	Alerts          uint64
	RejectedUnknown uint64
}

// Worker is a processor-grid analysis agent.
type Worker struct {
	a   *agent.Agent
	cfg WorkerConfig

	mu    sync.Mutex
	busy  int         // guarded by mu
	stats WorkerStats // guarded by mu

	mTasks    *telemetry.Counter
	mAlerts   *telemetry.Counter
	mBids     *telemetry.Counter
	mRejected *telemetry.Counter
	mTaskSec  [3]*telemetry.Histogram // indexed by level-1
	fTask     [3]*flight.Journal      // indexed by level-1
}

// NewWorker wires analysis behaviour onto an agent: it accepts task
// requests (fipa-request) and contract-net awards, runs the rule base at
// the requested level, and replies with results.
func NewWorker(a *agent.Agent, cfg WorkerConfig) (*Worker, error) {
	if cfg.Store == nil {
		return nil, errors.New("analyze: worker needs a store")
	}
	if cfg.Rules == nil {
		return nil, errors.New("analyze: worker needs a rule base")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4
	}
	w := &Worker{a: a, cfg: cfg}
	reg := cfg.Metrics
	l := telemetry.Labels{"container": a.ID().Platform()}
	w.mTasks = reg.Counter("analyze_tasks_total", "analysis tasks executed", l)
	w.mAlerts = reg.Counter("analyze_alerts_total", "alerts raised by rule evaluation", l)
	w.mBids = reg.Counter("analyze_bids_total", "contract-net bids submitted", l)
	w.mRejected = reg.Counter("analyze_rejected_unknown_total", "task requests that failed to decode", l)
	for lvl := 1; lvl <= 3; lvl++ {
		hl := telemetry.Labels{"container": a.ID().Platform(), "level": fmt.Sprintf("l%d", lvl)}
		w.mTaskSec[lvl-1] = reg.Histogram("analyze_task_seconds", "analysis task execution wall time", hl)
		w.fTask[lvl-1] = cfg.Flight.Journal(levelSpanName(lvl))
	}
	reg.GaugeFunc("analyze_worker_load_ratio", "worker load fraction (busy tasks plus container telemetry)", l, w.Load)

	// Direct dispatch path: request carrying a task.
	a.HandleFunc(agent.Selector{
		Performative: acl.Request,
		Protocol:     acl.ProtocolRequest,
		Ontology:     acl.OntologyGridManagement,
	}, w.handleTaskRequest)

	// Negotiated path: contract-net participant. The bid is the current
	// load plus a knowledge penalty when the task's category is outside
	// the worker's rule base — §3.5's first principle (route to
	// containers "with knowledge to process it") expressed as price.
	negotiate.RegisterParticipant(a, negotiate.ParticipantFuncs{
		BidFunc: func(nt negotiate.Task) (float64, bool) {
			w.mBids.Inc()
			bid := w.Load()
			if task, err := DecodeTask(nt.Payload); err == nil {
				if cat := task.PrimaryCategory(); cat != "" && !w.knowsCategory(cat) {
					bid += knowledgePenalty
				}
			}
			return bid, true
		},
		ExecuteFunc: func(ctx context.Context, nt negotiate.Task) (negotiate.Result, error) {
			task, err := DecodeTask(nt.Payload)
			if err != nil {
				return negotiate.Result{}, err
			}
			sp := a.Tracer().ChildFromContext(ctx, levelSpanName(task.Level))
			sp.SetAttr("agent", a.ID().Name)
			sp.SetConversation(task.ID)
			defer sp.End()
			res := w.run(task, sp.TID())
			sp.SetAttrInt("alerts", len(res.Alerts))
			out, err := EncodeResult(res)
			if err != nil {
				sp.SetError(err)
				return negotiate.Result{}, err
			}
			return negotiate.Result{Output: out}, nil
		},
	})
	return w, nil
}

// Agent returns the underlying agent.
func (w *Worker) Agent() *agent.Agent { return w.a }

// Rules returns the worker's rule base (the interface grid adds learned
// rules through it).
func (w *Worker) Rules() *rules.RuleBase { return w.cfg.Rules }

// Load returns the worker's load fraction in [0,1]: its busy-task
// fraction, raised by the configured LoadFunc when that measures the
// hosting container as more pressured than the task count shows.
func (w *Worker) Load() float64 {
	w.mu.Lock()
	l := float64(w.busy) / float64(w.cfg.Capacity)
	w.mu.Unlock()
	if w.cfg.LoadFunc != nil {
		if m := w.cfg.LoadFunc(); m > l {
			l = m
		}
	}
	if l > 1 {
		l = 1
	}
	return l
}

// Stats returns activity counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Capabilities returns the metric categories the worker's rule base
// covers — what it advertises to the directory.
func (w *Worker) Capabilities() []string { return w.cfg.Rules.Categories() }

// knowledgePenalty is added to a contract-net bid when the worker's rule
// base lacks the task's category; a knowledgeable idle worker always
// underbids an ignorant one, but ignorant workers still keep the grid
// live when nobody knows the category.
const knowledgePenalty = 10

// knowsCategory reports whether the rule base covers a metric category.
func (w *Worker) knowsCategory(cat string) bool {
	for _, c := range w.cfg.Rules.Categories() {
		if c == cat {
			return true
		}
	}
	return false
}

// handleTaskRequest answers the root's direct dispatch.
func (w *Worker) handleTaskRequest(ctx context.Context, a *agent.Agent, m *acl.Message) {
	task, err := DecodeTask(m.Content)
	if err != nil {
		w.mu.Lock()
		w.stats.RejectedUnknown++
		w.mu.Unlock()
		w.mRejected.Inc()
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
		return
	}
	sp := a.Tracer().ContinueFromMessage(levelSpanName(task.Level), m)
	sp.SetAttr("agent", a.ID().Name)
	defer sp.End()
	res := w.run(task, sp.TID())
	sp.SetAttrInt("alerts", len(res.Alerts))
	reply := m.Reply(a.ID(), acl.Inform)
	reply.Language = "json"
	reply.Content, err = EncodeResult(res)
	if err != nil {
		sp.SetError(err)
		fail := m.Reply(a.ID(), acl.Failure)
		fail.Content = []byte(err.Error())
		sp.Stamp(fail)
		_ = a.Send(ctx, fail)
		return
	}
	sp.Stamp(reply)
	_ = a.Send(ctx, reply)
}

// levelSpanName names an analysis span after its level: analyze.l1,
// analyze.l2, analyze.l3.
func levelSpanName(level int) string {
	switch level {
	case 1:
		return "analyze.l1"
	case 2:
		return "analyze.l2"
	case 3:
		return "analyze.l3"
	}
	return "analyze.task"
}

// Run executes one task synchronously — the multiple-level analyses of
// §3.3. Exposed for in-process pipelines, negotiation and benchmarks.
func (w *Worker) Run(task *Task) *Result { return w.run(task, 0) }

// run is Run with the caller's trace identity attached, so the task
// latency histogram keeps an exemplar and the flight journal links the
// event back to the span tree.
func (w *Worker) run(task *Task, tid uint64) (result *Result) {
	w.mu.Lock()
	w.busy++
	w.mu.Unlock()
	start := time.Now()
	defer func() {
		d := time.Since(start)
		if task.Level >= 1 && task.Level <= 3 {
			w.mTaskSec[task.Level-1].ObserveTrace(d, tid)
			if j := w.fTask[task.Level-1]; j != nil {
				j.Emit(flight.Event{
					Container:    w.a.ID().Platform(),
					Conversation: task.ID,
					TraceID:      tid,
					Dur:          d,
					Size:         len(result.Alerts),
				})
			}
		}
		w.mTasks.Inc()
		w.mu.Lock()
		w.busy--
		w.stats.Tasks++
		w.mu.Unlock()
	}()

	var env rules.Env
	scope := rules.Scope{Site: task.Site, Device: task.Device, Step: task.Step}
	switch task.Level {
	case 3:
		env = &siteReaderEnv{reader: w.cfg.Store, site: task.Site}
	default:
		env = &deviceReaderEnv{reader: w.cfg.Store, site: task.Site, device: task.Device}
	}
	alerts, facts := rules.Evaluate(w.cfg.Rules, task.Level, env, scope)

	w.mu.Lock()
	w.stats.Alerts += uint64(len(alerts))
	w.mu.Unlock()
	w.mAlerts.Add(uint64(len(alerts)))
	return &Result{
		TaskID:   task.ID,
		Worker:   w.a.ID().Name,
		Alerts:   alerts,
		Facts:    facts,
		RulesRun: len(w.cfg.Rules.ForLevel(task.Level)),
	}
}

// deviceReaderEnv adapts a StoreReader to the rules.Env contract for
// one device (levels 1 and 2).
type deviceReaderEnv struct {
	reader StoreReader
	site   string
	device string
}

func (e *deviceReaderEnv) key(metric string) string {
	return e.site + "/" + e.device + "/" + metric
}

func (e *deviceReaderEnv) Latest(metric string) (float64, bool) {
	p, ok := e.reader.Latest(e.key(metric))
	if !ok {
		return 0, false
	}
	return p.Value, true
}

func (e *deviceReaderEnv) Window(metric string, n int) []store.Point {
	return e.reader.Window(e.key(metric), n)
}

func (e *deviceReaderEnv) FleetLatest(metric string) []float64 {
	if v, ok := e.Latest(metric); ok {
		return []float64{v}
	}
	return nil
}

func (e *deviceReaderEnv) Fact(string) bool { return false }

// siteReaderEnv adapts a StoreReader to site scope (level 3).
type siteReaderEnv struct {
	reader StoreReader
	site   string
}

func (e *siteReaderEnv) FleetLatest(metric string) []float64 {
	keys := e.reader.SeriesForMetric(metric)
	prefix := e.site + "/"
	var out []float64
	for _, k := range keys {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			continue
		}
		if p, ok := e.reader.Latest(k); ok {
			out = append(out, p.Value)
		}
	}
	return out
}

func (e *siteReaderEnv) Latest(metric string) (float64, bool) {
	vals := e.FleetLatest(metric)
	if len(vals) == 0 {
		return 0, false
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals)), true
}

func (e *siteReaderEnv) Window(string, int) []store.Point { return nil }

func (e *siteReaderEnv) Fact(string) bool { return false }
