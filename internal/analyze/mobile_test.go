package analyze

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
	"agentgrid/internal/mobility"
	"agentgrid/internal/obs"
	"agentgrid/internal/platform"
	"agentgrid/internal/rules"
	"agentgrid/internal/store"
	"agentgrid/internal/transport"
)

// countingStore wraps a store and counts reads, modelling the network
// cost of remote store access.
type countingStore struct {
	inner *store.Store
	reads atomic.Uint64
}

func (c *countingStore) Latest(key string) (store.Point, bool) {
	c.reads.Add(1)
	return c.inner.Latest(key)
}

func (c *countingStore) Window(key string, n int) []store.Point {
	c.reads.Add(1)
	return c.inner.Window(key, n)
}

func (c *countingStore) SeriesForMetric(metric string) []string {
	c.reads.Add(1)
	return c.inner.SeriesForMetric(metric)
}

func (c *countingStore) SeriesForDevice(site, device string) []string {
	c.reads.Add(1)
	return c.inner.SeriesForDevice(site, device)
}

// TestMobileAnalystMigration moves an analysis agent from a compute
// container to the storage container; afterwards it answers tasks there
// with its rules intact, reading the store locally.
func TestMobileAnalystMigration(t *testing.T) {
	n := transport.NewInProcNetwork()
	profile := directory.ResourceProfile{CPUCapacity: 10, NetCapacity: 10, DiscCapacity: 10}
	mk := func(name string) *platform.Container {
		c, err := platform.New(platform.Config{Name: name, Platform: name, Profile: profile})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachInProc(n, "inproc://"+name); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Stop() })
		return c
	}
	compute := mk("compute")
	storage := mk("storage")

	// The shared data lives on the storage container; the compute
	// container would have to read it "remotely" (counted).
	st := store.New(64)
	for i := 1; i <= 10; i++ {
		st.Append(obs.Record{Site: "site1", Device: "h1", Metric: "cpu.util",
			Value: 95, Step: i, Time: time.Unix(int64(i), 0)})
	}
	remoteView := &countingStore{inner: st}

	mCompute, err := mobility.NewManager(compute)
	if err != nil {
		t.Fatal(err)
	}
	mStorage, err := mobility.NewManager(storage)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterMobileAnalyst(mCompute, remoteView); err != nil {
		t.Fatal(err)
	}
	if err := RegisterMobileAnalyst(mStorage, st); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	compute.Start(ctx)
	storage.Start(ctx)

	// Born on the compute container with a rule base.
	rb := rules.NewRuleBase()
	if _, err := rb.AddSource(`rule "hot" level 2 category cpu { when avg(cpu.util, 5) > 90 then alert "hot {device}" }`); err != nil {
		t.Fatal(err)
	}
	state := AnalystState("roaming-analyst", rb)
	if _, err := mCompute.Spawn(state); err != nil {
		t.Fatal(err)
	}

	// Migrate it to the storage container.
	captured, err := mCompute.CaptureState(MobileAnalystKind, "roaming-analyst", []byte(rb.Source()))
	if err != nil {
		t.Fatal(err)
	}
	if err := mCompute.Migrate(ctx, captured, mStorage.AID(storage.Addr()), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := compute.Agent("roaming-analyst"); ok {
		t.Fatal("analyst still on compute container")
	}
	remoteReadsBefore := remoteView.reads.Load()

	// Drive a task at the migrated analyst over ACL and await the result.
	probe, err := storage.SpawnAgent("probe")
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan *Result, 1)
	probe.HandleFunc(agent.Selector{Performative: acl.Inform}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		if res, err := DecodeResult(m.Content); err == nil {
			results <- res
		}
	})
	task := &Task{ID: "t1", Level: 2, Site: "site1", Device: "h1", Categories: []string{"cpu"}, Step: 10}
	content, _ := EncodeTask(task)
	err = probe.Send(ctx, &acl.Message{
		Performative:   acl.Request,
		Receivers:      []acl.AID{acl.NewAID("roaming-analyst", "storage")},
		Content:        content,
		Language:       "json",
		Ontology:       acl.OntologyGridManagement,
		Protocol:       acl.ProtocolRequest,
		ConversationID: "t1",
		ReplyWith:      "task:t1",
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-results:
		if len(res.Alerts) != 1 || res.Alerts[0].Rule != "hot" {
			t.Fatalf("migrated analyst result = %+v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("migrated analyst never answered")
	}

	// The analysis ran against the storage container's local store: the
	// compute-side (remote) view saw no new reads.
	if got := remoteView.reads.Load(); got != remoteReadsBefore {
		t.Fatalf("analysis still read remotely: %d -> %d", remoteReadsBefore, got)
	}
}

func TestAnalystStateCarriesRules(t *testing.T) {
	rb := rules.NewRuleBase()
	rb.AddSource(`rule "a" { when latest(x) > 1 then alert "a" }`)
	st := AnalystState("name", rb)
	if st.Kind != MobileAnalystKind || st.Name != "name" {
		t.Fatalf("state = %+v", st)
	}
	rb2 := rules.NewRuleBase()
	if _, err := rb2.AddSource(string(st.Payload)); err != nil {
		t.Fatalf("payload not parseable: %v", err)
	}
	if rb2.Len() != 1 {
		t.Fatal("rules lost")
	}
}

func TestMobileAnalystRejectsBadRules(t *testing.T) {
	n := transport.NewInProcNetwork()
	c, err := platform.New(platform.Config{Name: "c", Platform: "c",
		Profile: directory.ResourceProfile{CPUCapacity: 1, NetCapacity: 1, DiscCapacity: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInProc(n, "inproc://c"); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	m, err := mobility.NewManager(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterMobileAnalyst(m, store.New(4)); err != nil {
		t.Fatal(err)
	}
	_, err = m.Spawn(&mobility.State{Kind: MobileAnalystKind, Name: "x", Payload: []byte("rule {")})
	if err == nil {
		t.Fatal("bad payload accepted")
	}
	if _, ok := c.Agent("x"); ok {
		t.Fatal("half-built analyst left behind")
	}
}
