package analyze

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/classify"
	"agentgrid/internal/directory"
	"agentgrid/internal/flight"
	"agentgrid/internal/loadbalance"
	"agentgrid/internal/negotiate"
	"agentgrid/internal/rules"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// WorkerAgentName is the local name every analysis worker agent uses;
// combined with its container name (used as the platform) it yields the
// worker's AID.
const WorkerAgentName = "analyzer"

// AIDForWorker builds the AID of the analyzer agent on a registered
// container.
func AIDForWorker(reg directory.Registration) acl.AID {
	return acl.NewAID(WorkerAgentName, reg.Container, reg.Addr)
}

// taskReplyPrefix tags reply-with values so the root can tell task
// results from other informs.
const taskReplyPrefix = "task:"

// RootConfig configures the processor-grid root.
type RootConfig struct {
	// Directory lists the analysis containers (Figure 4's D1).
	Directory *directory.Directory
	// Scheduler places tasks (direct dispatch). Required unless
	// Negotiated.
	Scheduler loadbalance.Scheduler
	// Negotiated switches placement to contract-net bidding.
	Negotiated bool
	// BidWindow bounds proposal collection when Negotiated (default 1s).
	BidWindow time.Duration
	// Interface, when set, receives alert bundles.
	Interface acl.AID
	// TaskTimeout is how long a dispatched task may stay unanswered
	// before reassignment (default 10s).
	TaskTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per task (default 3).
	MaxAttempts int
	// OnResult observes every completed task. Optional.
	OnResult func(*Result)
	// ErrorLog receives dispatch errors. Optional.
	ErrorLog func(error)
	// Metrics, when set, registers the broker's dispatch counters, an
	// in-flight task gauge and the contract-net negotiation metrics.
	// Optional.
	Metrics *telemetry.Registry
	// Flight, when set, journals notice, dispatch and completion events
	// to the flight recorder. Optional.
	Flight *flight.Recorder
}

// RootStats counts root activity.
type RootStats struct {
	Notices       uint64
	Dispatched    uint64
	Completed     uint64
	Reassigned    uint64
	Abandoned     uint64
	AlertsForward uint64
}

type pendingTask struct {
	task     *Task
	worker   string // container name
	deadline time.Time
	attempts int
	excluded map[string]bool
}

// Root is the processor-grid broker.
type Root struct {
	a   *agent.Agent
	cfg RootConfig
	ini *negotiate.Initiator

	mu          sync.Mutex
	pending     map[string]*pendingTask // guarded by mu
	l3busy      map[string]bool         // guarded by mu
	stats       RootStats               // guarded by mu
	idleWaiters []chan struct{}         // guarded by mu

	// notice is handleInform's decode scratch. The agent dispatch loop
	// is single-threaded, so one scratch per root suffices; HandleNotice
	// copies anything it retains (task categories) out of it.
	notice classify.Notice

	mNotices    *telemetry.Counter
	mDispatched *telemetry.Counter
	mCompleted  *telemetry.Counter
	mReassigned *telemetry.Counter
	mAbandoned  *telemetry.Counter
	mAlertsFwd  *telemetry.Counter

	fNotice   *flight.Journal
	fDispatch *flight.Journal
	fComplete *flight.Journal
}

// NewRoot wires broker behaviour onto an agent.
func NewRoot(a *agent.Agent, cfg RootConfig) (*Root, error) {
	if cfg.Directory == nil {
		return nil, errors.New("analyze: root needs a directory")
	}
	if cfg.Scheduler == nil && !cfg.Negotiated {
		return nil, errors.New("analyze: root needs a scheduler or negotiation")
	}
	if cfg.TaskTimeout <= 0 {
		cfg.TaskTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BidWindow <= 0 {
		cfg.BidWindow = time.Second
	}
	r := &Root{
		a:       a,
		cfg:     cfg,
		pending: make(map[string]*pendingTask),
		l3busy:  make(map[string]bool),
	}
	r.fNotice = cfg.Flight.Journal("analyze.notice")
	r.fDispatch = cfg.Flight.Journal("analyze.dispatch")
	r.fComplete = cfg.Flight.Journal("analyze.complete")
	reg := cfg.Metrics
	l := telemetry.Labels{"container": a.ID().Platform()}
	r.mNotices = reg.Counter("analyze_notices_total", "cluster notices received from the classifier", l)
	r.mDispatched = reg.Counter("analyze_tasks_dispatched_total", "analysis tasks dispatched to workers", l)
	r.mCompleted = reg.Counter("analyze_tasks_completed_total", "analysis tasks completed", l)
	r.mReassigned = reg.Counter("analyze_tasks_reassigned_total", "analysis tasks reassigned after failure or timeout", l)
	r.mAbandoned = reg.Counter("analyze_tasks_abandoned_total", "analysis tasks abandoned", l)
	r.mAlertsFwd = reg.Counter("analyze_alerts_forwarded_total", "alerts forwarded to the interface grid", l)
	reg.GaugeFunc("analyze_tasks_inflight_count", "analysis tasks currently awaiting a worker result", l, func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.pending))
	})
	if cfg.Negotiated {
		r.ini = negotiate.NewInitiator(a)
		r.ini.SetMetrics(negotiate.Metrics{
			CFPs:      reg.Counter("negotiate_cfps_total", "contract-net calls for proposals sent", l),
			Proposals: reg.Counter("negotiate_proposals_total", "contract-net bids received", l),
			Refusals:  reg.Counter("negotiate_refusals_total", "contract-net refusals (explicit or unreachable)", l),
			Awards:    reg.Counter("negotiate_awards_total", "contract-net tasks awarded and completed", l),
			Rounds:    reg.Histogram("negotiate_round_seconds", "full negotiation round wall time", l),
		})
		if cfg.Flight != nil {
			r.ini.SetFlight(cfg.Flight)
		}
	}

	a.HandleFunc(agent.Selector{
		Performative: acl.Inform,
		Ontology:     acl.OntologyGridManagement,
		Protocol:     acl.ProtocolRequest,
	}, r.handleInform)
	a.HandleFunc(agent.Selector{
		Performative: acl.Failure,
		Protocol:     acl.ProtocolRequest,
	}, r.handleFailure)

	// Reassignment sweep: half the timeout keeps worst-case detection
	// under 1.5 timeouts.
	sweep := cfg.TaskTimeout / 2
	if sweep < 10*time.Millisecond {
		sweep = 10 * time.Millisecond
	}
	err := a.AddGoal(agent.Goal{
		Name:     "task-sweep",
		Interval: sweep,
		Action: func(ctx context.Context, _ *agent.Agent) error {
			r.SweepOverdue(ctx)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Agent returns the underlying agent.
func (r *Root) Agent() *agent.Agent { return r.a }

// Stats returns activity counters.
func (r *Root) Stats() RootStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// retireLocked removes a task from the pending table, releases its
// level-3 site slot and wakes idle waiters when the table drains.
// Caller holds r.mu. Every path that retires a pending task must go
// through here so WaitIdle cannot miss the transition to empty.
func (r *Root) retireLocked(id string, task *Task) {
	delete(r.pending, id)
	if task != nil && task.Level == 3 {
		delete(r.l3busy, task.Site)
	}
	if len(r.pending) != 0 {
		return
	}
	for _, ch := range r.idleWaiters {
		close(ch)
	}
	r.idleWaiters = nil
}

// WaitIdle blocks until the root has no in-flight tasks or ctx ends,
// reporting whether the root went idle. The wait is channel-based —
// waiters are woken on the exact transition to an empty pending table
// rather than polling.
func (r *Root) WaitIdle(ctx context.Context) bool {
	r.mu.Lock()
	if len(r.pending) == 0 {
		r.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	r.idleWaiters = append(r.idleWaiters, ch)
	r.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// PendingTasks returns the IDs of in-flight tasks, sorted.
func (r *Root) PendingTasks() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.pending))
	for id := range r.pending {
		out = append(out, id)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// handleInform dispatches on the inform's role: a task result (tagged
// in-reply-to) or a classifier notice.
func (r *Root) handleInform(ctx context.Context, a *agent.Agent, m *acl.Message) {
	if strings.HasPrefix(m.InReplyTo, taskReplyPrefix) {
		r.handleResult(ctx, m)
		return
	}
	notice := &r.notice
	if err := classify.DecodeNoticeInto(m.Content, notice); err != nil {
		r.logErr(fmt.Errorf("analyze: notice from %s: %w", m.Sender, err))
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
		return
	}
	sp := a.Tracer().ContinueFromMessage("analyze.notice", m)
	sp.SetAttr("collector", notice.Collector)
	sp.SetAttrInt("clusters", len(notice.Clusters))
	ctx = trace.NewContext(ctx, sp)
	start := time.Now()
	defer func() {
		sp.End()
		if r.fNotice != nil {
			r.fNotice.Emit(flight.Event{
				Container:    a.ID().Platform(),
				Conversation: m.ConversationID,
				TraceID:      sp.TID(),
				Dur:          time.Since(start),
				Size:         len(notice.Clusters),
			})
		}
	}()
	r.HandleNotice(ctx, notice)
}

// HandleNotice divides a classifier notice into tasks and dispatches
// them — Figure 3's division of analysis activities. Exposed for
// in-process pipelines.
func (r *Root) HandleNotice(ctx context.Context, notice *classify.Notice) {
	r.mu.Lock()
	r.stats.Notices++
	r.mNotices.Inc()
	r.mu.Unlock()
	sites := make(map[string]int) // site -> max step
	for _, cluster := range notice.Clusters {
		site := cluster.Site
		if site == "" && cluster.Device == "" {
			// Shard cluster (ablation strategy): site may still be set.
			site = "unknown"
		}
		if cluster.MaxStep > sites[site] {
			sites[site] = cluster.MaxStep
		}
		// Level 1: fresh scan; Level 2: consolidation with history.
		// Tasks outlive the notice (it may be a reused decode scratch),
		// so they get their own copy of the category list.
		categories := append([]string(nil), cluster.Categories...)
		for _, level := range []int{1, 2} {
			task := &Task{
				ID:         r.a.NewConversationID(),
				Level:      level,
				Site:       cluster.Site,
				Device:     cluster.Device,
				Categories: categories,
				Step:       cluster.MaxStep,
			}
			r.dispatch(ctx, task, nil)
		}
	}
	// Level 3: one cross-device correlation task per site, not
	// duplicated while one is already in flight.
	for site, step := range sites {
		r.mu.Lock()
		busy := r.l3busy[site]
		if !busy {
			r.l3busy[site] = true
		}
		r.mu.Unlock()
		if busy {
			continue
		}
		task := &Task{
			ID:    r.a.NewConversationID(),
			Level: 3,
			Site:  site,
			Step:  step,
		}
		r.dispatch(ctx, task, nil)
	}
}

// dispatch places one task on a worker.
func (r *Root) dispatch(ctx context.Context, task *Task, excluded map[string]bool) {
	if excluded == nil {
		excluded = make(map[string]bool)
	}
	candidates := r.cfg.Directory.Search(directory.Query{ServiceType: directory.ServiceAnalysis})
	// Directory load is heartbeat-delayed; overlay the root's own view
	// of in-flight tasks so a burst spreads instead of piling onto the
	// first name until the next renewal.
	inflight := make(map[string]int)
	r.mu.Lock()
	for _, pt := range r.pending {
		if pt.worker != "" {
			inflight[pt.worker]++
		}
	}
	r.mu.Unlock()
	eligible := candidates[:0]
	for _, c := range candidates {
		if excluded[c.Container] {
			continue
		}
		if n := inflight[c.Container]; n > 0 {
			// Saturating overlay: 1 task -> +0.5, 2 -> +0.67, ...
			c.Load += (1 - c.Load) * float64(n) / float64(n+1)
		}
		eligible = append(eligible, c)
	}
	if len(eligible) == 0 {
		r.abandon(task, fmt.Errorf("analyze: no eligible workers for task %s", task.ID))
		return
	}

	if r.cfg.Negotiated {
		go r.dispatchNegotiated(ctx, task, eligible, excluded)
		return
	}

	reg, err := r.cfg.Scheduler.Pick(loadbalance.Task{
		ID:       task.ID,
		Category: task.PrimaryCategory(),
	}, eligible)
	if err != nil {
		r.abandon(task, err)
		return
	}
	r.sendTask(ctx, task, reg, excluded)
}

// sendTask transmits the task request and registers the pending entry.
func (r *Root) sendTask(ctx context.Context, task *Task, reg directory.Registration, excluded map[string]bool) {
	content, err := EncodeTask(task)
	if err != nil {
		r.abandon(task, err)
		return
	}
	r.mu.Lock()
	pt := r.pending[task.ID]
	if pt == nil {
		pt = &pendingTask{task: task, excluded: excluded}
		r.pending[task.ID] = pt
	}
	pt.worker = reg.Container
	pt.deadline = time.Now().Add(r.cfg.TaskTimeout)
	pt.attempts++
	r.stats.Dispatched++
	r.mDispatched.Inc()
	r.mu.Unlock()

	msg := &acl.Message{
		Performative:   acl.Request,
		Receivers:      []acl.AID{AIDForWorker(reg)},
		Content:        content,
		Language:       "json",
		Ontology:       acl.OntologyGridManagement,
		Protocol:       acl.ProtocolRequest,
		ConversationID: task.ID,
		ReplyWith:      taskReplyPrefix + task.ID,
	}
	sp := r.a.Tracer().ChildFromContext(ctx, "analyze.dispatch")
	sp.SetAttrInt("level", task.Level)
	sp.SetAttr("worker", reg.Container)
	sp.SetConversation(task.ID)
	sp.Stamp(msg)
	err = r.a.Send(ctx, msg)
	sp.SetError(err)
	sp.End()
	r.journalDispatch(task, sp.TID(), err)
	if err != nil {
		r.logErr(fmt.Errorf("analyze: send task %s to %s: %w", task.ID, reg.Container, err))
		r.reassign(ctx, task.ID, reg.Container)
	}
}

// journalDispatch records one dispatch attempt in the flight recorder.
func (r *Root) journalDispatch(task *Task, tid uint64, err error) {
	if r.fDispatch == nil {
		return
	}
	e := flight.Event{
		Container:    r.a.ID().Platform(),
		Conversation: task.ID,
		TraceID:      tid,
		Size:         task.Level,
	}
	if err != nil {
		e.Outcome = flight.OutcomeError
		e.Err = err.Error()
	}
	r.fDispatch.Emit(e)
}

// dispatchNegotiated places the task via contract-net. Runs on its own
// goroutine because Negotiate blocks on replies.
func (r *Root) dispatchNegotiated(ctx context.Context, task *Task, eligible []directory.Registration, excluded map[string]bool) {
	content, err := EncodeTask(task)
	if err != nil {
		r.abandon(task, err)
		return
	}
	participants := make([]acl.AID, len(eligible))
	for i, reg := range eligible {
		participants[i] = AIDForWorker(reg)
	}
	r.mu.Lock()
	pt := r.pending[task.ID]
	if pt == nil {
		pt = &pendingTask{task: task, excluded: excluded}
		r.pending[task.ID] = pt
	}
	pt.attempts++
	pt.deadline = time.Now().Add(r.cfg.TaskTimeout)
	r.stats.Dispatched++
	r.mDispatched.Inc()
	r.mu.Unlock()

	sp := r.a.Tracer().ChildFromContext(ctx, "analyze.dispatch")
	sp.SetAttrInt("level", task.Level)
	sp.SetConversation(task.ID)
	ctx = trace.NewContext(ctx, sp)
	defer sp.End()
	outcome, err := r.ini.Negotiate(ctx, participants, negotiate.Task{
		ID:      task.ID,
		Kind:    fmt.Sprintf("analysis-l%d", task.Level),
		Payload: content,
	}, r.cfg.BidWindow)
	r.journalDispatch(task, sp.TID(), err)
	if err != nil {
		sp.SetError(err)
		r.logErr(fmt.Errorf("analyze: negotiate task %s: %w", task.ID, err))
		r.mu.Lock()
		r.retireLocked(task.ID, task)
		r.stats.Abandoned++
		r.mAbandoned.Inc()
		r.mu.Unlock()
		return
	}
	res, err := DecodeResult(outcome.Output)
	if err != nil {
		r.logErr(err)
		return
	}
	r.complete(ctx, res)
}

// handleResult consumes a worker's inform reply.
func (r *Root) handleResult(ctx context.Context, m *acl.Message) {
	res, err := DecodeResult(m.Content)
	if err != nil {
		r.logErr(fmt.Errorf("analyze: result from %s: %w", m.Sender, err))
		return
	}
	sp := r.a.Tracer().ContinueFromMessage("analyze.complete", m)
	sp.SetAttr("worker", m.Sender.Name)
	sp.SetAttrInt("alerts", len(res.Alerts))
	ctx = trace.NewContext(ctx, sp)
	defer sp.End()
	r.complete(ctx, res)
}

// complete retires a pending task and forwards its alerts.
func (r *Root) complete(ctx context.Context, res *Result) {
	r.mu.Lock()
	pt, ok := r.pending[res.TaskID]
	if ok {
		r.retireLocked(res.TaskID, pt.task)
		r.stats.Completed++
		r.mCompleted.Inc()
	}
	r.mu.Unlock()
	if !ok {
		return // duplicate or late result
	}
	if r.fComplete != nil {
		r.fComplete.Emit(flight.Event{
			Container:    r.a.ID().Platform(),
			Conversation: res.TaskID,
			TraceID:      trace.FromContext(ctx).TID(),
			Size:         len(res.Alerts),
		})
	}
	if r.cfg.OnResult != nil {
		r.cfg.OnResult(res)
	}
	if len(res.Alerts) > 0 && !r.cfg.Interface.IsZero() {
		r.forwardAlerts(ctx, res.Alerts)
	}
}

// forwardAlerts ships an alert bundle to the interface grid.
func (r *Root) forwardAlerts(ctx context.Context, alerts []rules.Alert) {
	content, err := EncodeAlerts(alerts)
	if err != nil {
		r.logErr(err)
		return
	}
	msg := &acl.Message{
		Performative:   acl.Inform,
		Receivers:      []acl.AID{r.cfg.Interface},
		Content:        content,
		Language:       "json",
		Ontology:       acl.OntologyNetworkManagement,
		ConversationID: r.a.NewConversationID(),
	}
	sp := r.a.Tracer().ChildFromContext(ctx, "analyze.forward")
	sp.SetAttrInt("alerts", len(alerts))
	sp.Stamp(msg)
	err = r.a.Send(ctx, msg)
	sp.SetError(err)
	sp.End()
	if err != nil {
		r.logErr(fmt.Errorf("analyze: forward alerts: %w", err))
		return
	}
	r.mu.Lock()
	r.stats.AlertsForward += uint64(len(alerts))
	r.mAlertsFwd.Add(uint64(len(alerts)))
	r.mu.Unlock()
}

// handleFailure reassigns a task its worker could not finish.
func (r *Root) handleFailure(ctx context.Context, _ *agent.Agent, m *acl.Message) {
	id := strings.TrimPrefix(m.InReplyTo, taskReplyPrefix)
	if id == m.InReplyTo {
		return // unrelated failure
	}
	r.mu.Lock()
	pt, ok := r.pending[id]
	var worker string
	if ok {
		worker = pt.worker
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	r.reassign(ctx, id, worker)
}

// SweepOverdue reassigns tasks whose deadline passed (dead or wedged
// worker). It also expires dead directory entries first so the
// rescheduling sees fresh membership. Normally driven by the root's
// task-sweep goal; exposed for deterministic tests.
func (r *Root) SweepOverdue(ctx context.Context) {
	r.cfg.Directory.Sweep()
	now := time.Now()
	type overdue struct {
		id     string
		worker string
	}
	r.mu.Lock()
	var due []overdue
	for id, pt := range r.pending {
		if now.After(pt.deadline) {
			due = append(due, overdue{id: id, worker: pt.worker})
		}
	}
	r.mu.Unlock()
	for _, o := range due {
		r.reassign(ctx, o.id, o.worker)
	}
}

// reassign excludes the failed worker and re-dispatches, up to
// MaxAttempts.
func (r *Root) reassign(ctx context.Context, taskID, failedWorker string) {
	r.mu.Lock()
	pt, ok := r.pending[taskID]
	if !ok {
		r.mu.Unlock()
		return
	}
	if failedWorker != "" {
		pt.excluded[failedWorker] = true
	}
	if pt.attempts >= r.cfg.MaxAttempts {
		r.retireLocked(taskID, pt.task)
		r.stats.Abandoned++
		r.mAbandoned.Inc()
		r.mu.Unlock()
		r.logErr(fmt.Errorf("analyze: task %s abandoned after %d attempts", taskID, pt.attempts))
		return
	}
	r.stats.Reassigned++
	r.mReassigned.Inc()
	task := pt.task
	excluded := pt.excluded
	// Push the deadline so the sweep does not double-fire while the new
	// dispatch is in flight.
	pt.deadline = time.Now().Add(r.cfg.TaskTimeout)
	r.mu.Unlock()
	r.dispatch(ctx, task, excluded)
}

// abandon drops a task that cannot be placed.
func (r *Root) abandon(task *Task, err error) {
	r.mu.Lock()
	r.retireLocked(task.ID, task)
	r.stats.Abandoned++
	r.mAbandoned.Inc()
	r.mu.Unlock()
	r.logErr(err)
}

func (r *Root) logErr(err error) {
	if r.cfg.ErrorLog != nil {
		r.cfg.ErrorLog(err)
	}
}
