package store

import (
	"errors"
	"math"
)

// Aggregations over point windows, used by the processor grid's level-2
// consolidation analyses.

// ErrEmptyWindow is returned when an aggregation has no points.
var ErrEmptyWindow = errors.New("store: empty window")

// Avg returns the arithmetic mean of the window.
func Avg(pts []Point) (float64, error) {
	if len(pts) == 0 {
		return 0, ErrEmptyWindow
	}
	var sum float64
	for _, p := range pts {
		sum += p.Value
	}
	return sum / float64(len(pts)), nil
}

// Min returns the smallest value in the window.
func Min(pts []Point) (float64, error) {
	if len(pts) == 0 {
		return 0, ErrEmptyWindow
	}
	m := math.Inf(1)
	for _, p := range pts {
		if p.Value < m {
			m = p.Value
		}
	}
	return m, nil
}

// Max returns the largest value in the window.
func Max(pts []Point) (float64, error) {
	if len(pts) == 0 {
		return 0, ErrEmptyWindow
	}
	m := math.Inf(-1)
	for _, p := range pts {
		if p.Value > m {
			m = p.Value
		}
	}
	return m, nil
}

// Rate returns the per-step rate of change between the first and last
// points — how counters become throughput.
func Rate(pts []Point) (float64, error) {
	if len(pts) < 2 {
		return 0, ErrEmptyWindow
	}
	first, last := pts[0], pts[len(pts)-1]
	steps := last.Step - first.Step
	if steps <= 0 {
		return 0, ErrEmptyWindow
	}
	return (last.Value - first.Value) / float64(steps), nil
}

// Stddev returns the population standard deviation of the window.
func Stddev(pts []Point) (float64, error) {
	mean, err := Avg(pts)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, p := range pts {
		d := p.Value - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pts))), nil
}

// Trend returns the least-squares slope of value against step — the
// "is this filling up" signal used for disk-exhaustion prediction.
func Trend(pts []Point) (float64, error) {
	if len(pts) < 2 {
		return 0, ErrEmptyWindow
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := float64(p.Step)
		sx += x
		sy += p.Value
		sxx += x * x
		sxy += x * p.Value
	}
	n := float64(len(pts))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, ErrEmptyWindow // all points at the same step
	}
	return (n*sxy - sx*sy) / den, nil
}
