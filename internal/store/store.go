// Package store implements the management data repository the classifier
// grid writes into and the processor grid consolidates from (§3.2–3.3).
// Observations are kept as bounded time series keyed by
// site/device/metric, with secondary indexes by device and by metric,
// window queries and aggregations for the multi-level analyses, and
// synchronous replication across peers for the paper's future-work item
// on storage and replication.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/obs"
)

// Point is one stored observation.
type Point struct {
	Step  int       `json:"step"`
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// series is a ring buffer of points in append order.
type series struct {
	site   string
	device string
	metric string
	buf    []Point
	start  int // index of oldest point
	count  int
}

func (s *series) append(p Point) {
	if s.count < len(s.buf) {
		s.buf[(s.start+s.count)%len(s.buf)] = p
		s.count++
		return
	}
	// Full: overwrite oldest.
	s.buf[s.start] = p
	s.start = (s.start + 1) % len(s.buf)
}

// points returns the series oldest-first.
func (s *series) points() []Point {
	out := make([]Point, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

func (s *series) latest() (Point, bool) {
	if s.count == 0 {
		return Point{}, false
	}
	return s.buf[(s.start+s.count-1)%len(s.buf)], true
}

// Store is one storage node. Safe for concurrent use.
type Store struct {
	maxPoints int

	mu       sync.RWMutex
	series   map[string]*series  // guarded by mu
	byDevice map[string][]string // guarded by mu; "site/device" -> sorted keys
	byMetric map[string][]string // guarded by mu; metric -> sorted keys
	appends  uint64              // guarded by mu
}

// Store errors.
var (
	ErrNoSeries = errors.New("store: no such series")
)

// DefaultMaxPoints bounds each series when no explicit cap is given.
const DefaultMaxPoints = 4096

// New returns a store keeping at most maxPoints observations per series
// (0 means DefaultMaxPoints).
func New(maxPoints int) *Store {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	return &Store{
		maxPoints: maxPoints,
		series:    make(map[string]*series),
		byDevice:  make(map[string][]string),
		byMetric:  make(map[string][]string),
	}
}

// Append stores one record.
func (s *Store) Append(r obs.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(r)
	return nil
}

// appendLocked stores one already-validated record. Callers hold s.mu.
func (s *Store) appendLocked(r obs.Record) {
	key := r.Key()
	ser, ok := s.series[key]
	if !ok {
		ser = &series{
			site:   r.Site,
			device: r.Device,
			metric: r.Metric,
			buf:    make([]Point, s.maxPoints),
		}
		s.series[key] = ser
		devKey := r.Site + "/" + r.Device
		s.byDevice[devKey] = insertSorted(s.byDevice[devKey], key)
		s.byMetric[r.Metric] = insertSorted(s.byMetric[r.Metric], key)
	}
	ser.append(Point{Step: r.Step, Time: r.Time, Value: r.Value})
	s.appends++
}

// AppendBatch stores every record of a batch under a single lock
// acquisition, stopping at the first invalid record (records before it
// are stored). A classifier draining collector batches through here
// takes the write lock once per batch instead of once per record.
func (s *Store) AppendBatch(b *obs.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range b.Records {
		if err := b.Records[i].Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		s.appendLocked(b.Records[i])
	}
	return nil
}

func insertSorted(list []string, key string) []string {
	i := sort.SearchStrings(list, key)
	if i < len(list) && list[i] == key {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = key
	return list
}

// Latest returns the most recent point of a series.
func (s *Store) Latest(key string) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[key]
	if !ok {
		return Point{}, false
	}
	return ser.latest()
}

// Window returns the most recent n points of a series, oldest first.
func (s *Store) Window(key string, n int) []Point {
	s.mu.RLock()
	ser, ok := s.series[key]
	var pts []Point
	if ok {
		pts = ser.points()
	}
	s.mu.RUnlock()
	if len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	return pts
}

// Range returns the points with fromStep <= Step <= toStep, oldest first.
func (s *Store) Range(key string, fromStep, toStep int) []Point {
	s.mu.RLock()
	ser, ok := s.series[key]
	var pts []Point
	if ok {
		pts = ser.points()
	}
	s.mu.RUnlock()
	out := pts[:0]
	for _, p := range pts {
		if p.Step >= fromStep && p.Step <= toStep {
			out = append(out, p)
		}
	}
	return out
}

// Keys lists all series keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SeriesForDevice returns the series keys of one device, sorted.
func (s *Store) SeriesForDevice(site, device string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.byDevice[site+"/"+device]...)
}

// SeriesForMetric returns the series keys carrying a metric, sorted.
func (s *Store) SeriesForMetric(metric string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.byMetric[metric]...)
}

// Devices lists "site/device" identifiers present in the store, sorted.
func (s *Store) Devices() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.byDevice))
	for k := range s.byDevice {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Stats returns (series count, total appends).
func (s *Store) Stats() (seriesCount int, appends uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series), s.appends
}

// ParseKey splits a series key into site, device and metric.
func ParseKey(key string) (site, device, metric string, err error) {
	parts := strings.SplitN(key, "/", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", "", fmt.Errorf("store: malformed series key %q", key)
	}
	return parts[0], parts[1], parts[2], nil
}
