// Package store implements the management data repository the classifier
// grid writes into and the processor grid consolidates from (§3.2–3.3).
// Observations are kept as bounded time series keyed by
// site/device/metric, with secondary indexes by device and by metric,
// window queries and aggregations for the multi-level analyses, and
// synchronous replication across peers for the paper's future-work item
// on storage and replication.
//
// The store is lock-striped: series are distributed over a power-of-two
// number of shards by an FNV-1a hash of "site/device", so every series
// of one device co-locates on one shard and writers for different
// devices take different locks. Device-scoped reads (Latest, Window,
// Range, SeriesForDevice) touch exactly one shard; global reads (Keys,
// Devices, SeriesForMetric, Stats) merge the shards' sorted index
// slices with a k-way merge.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"agentgrid/internal/obs"
)

// Point is one stored observation.
type Point struct {
	Step  int       `json:"step"`
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// series is a ring buffer of points in append order.
type series struct {
	site   string
	device string
	metric string
	buf    []Point
	start  int // index of oldest point
	count  int
}

func (s *series) append(p Point) {
	if s.count < len(s.buf) {
		s.buf[(s.start+s.count)%len(s.buf)] = p
		s.count++
		return
	}
	// Full: overwrite oldest.
	s.buf[s.start] = p
	s.start = (s.start + 1) % len(s.buf)
}

// points returns the series oldest-first.
func (s *series) points() []Point {
	return s.tail(s.count)
}

// tail copies the most recent n points, oldest first. Copying only the
// requested suffix keeps the time under the shard lock proportional to
// the window asked for, not the 4096-point ring backing it.
func (s *series) tail(n int) []Point {
	if n > s.count {
		n = s.count
	}
	if n <= 0 {
		return nil
	}
	out := make([]Point, n)
	first := s.start + s.count - n
	for i := 0; i < n; i++ {
		out[i] = s.buf[(first+i)%len(s.buf)]
	}
	return out
}

// stepRange copies the points with fromStep <= Step <= toStep, oldest
// first — only matching points are copied while the lock is held.
func (s *series) stepRange(fromStep, toStep int) []Point {
	var out []Point
	for i := 0; i < s.count; i++ {
		p := s.buf[(s.start+i)%len(s.buf)]
		if p.Step >= fromStep && p.Step <= toStep {
			out = append(out, p)
		}
	}
	return out
}

func (s *series) latest() (Point, bool) {
	if s.count == 0 {
		return Point{}, false
	}
	return s.buf[(s.start+s.count-1)%len(s.buf)], true
}

// shard is one lock stripe: a private mutex over its own series map and
// secondary indexes. A device's series never straddle shards.
type shard struct {
	mu       sync.RWMutex
	series   map[string]*series  // guarded by mu
	byDevice map[string][]string // guarded by mu; "site/device" -> sorted keys
	byMetric map[string][]string // guarded by mu; metric -> sorted keys
	appends  uint64              // guarded by mu

	// pad spaces shards apart so neighbouring stripes' mutexes do not
	// share a cache line under concurrent writers.
	_ [64]byte
}

// Store is one storage node. Safe for concurrent use.
type Store struct {
	maxPoints int
	shards    []*shard
	mask      uint32 // len(shards)-1; shard count is a power of two
}

// Store errors.
var (
	ErrNoSeries = errors.New("store: no such series")
)

// DefaultMaxPoints bounds each series when no explicit cap is given.
const DefaultMaxPoints = 4096

// DefaultShards is the lock-stripe count when no explicit count is
// given. MaxShards bounds explicit counts (cross-shard reads carry a
// per-shard cost, and thousands of stripes is a configuration mistake).
const (
	DefaultShards = 16
	MaxShards     = 256
)

// New returns a store keeping at most maxPoints observations per series
// (0 means DefaultMaxPoints), striped over DefaultShards shards.
func New(maxPoints int) *Store {
	return NewSharded(maxPoints, 0)
}

// NewSharded returns a store with an explicit shard count, rounded up
// to the next power of two and clamped to [1, MaxShards]. Zero means
// DefaultShards. A 1-shard store behaves exactly like the historical
// single-mutex store — the oracle the sharding tests compare against.
func NewSharded(maxPoints, shards int) *Store {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	n := normalizeShards(shards)
	s := &Store{maxPoints: maxPoints, shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i] = &shard{
			series:   make(map[string]*series),
			byDevice: make(map[string][]string),
			byMetric: make(map[string][]string),
		}
	}
	return s
}

// normalizeShards applies the default, the ceiling and the power-of-two
// rounding.
func normalizeShards(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FNV-1a, the stripe hash. Hashing site and device separately (with the
// '/' joiner folded in) avoids concatenating on the hot path while
// producing the same digest as hashing "site/device".
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv1aString(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	return h
}

// deviceHash hashes "site/device" with FNV-1a.
func deviceHash(site, device string) uint32 {
	h := fnv1aString(uint32(fnvOffset32), site)
	h ^= uint32('/')
	h *= fnvPrime32
	return fnv1aString(h, device)
}

// keyDevicePrefix returns the length of the "site/device" prefix of a
// series key (the whole key when it has fewer than two separators).
func keyDevicePrefix(key string) int {
	seen := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			seen++
			if seen == 2 {
				return i
			}
		}
	}
	return len(key)
}

// ShardCount returns the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardIndex returns the stripe owning a device's series.
func (s *Store) ShardIndex(site, device string) int {
	return int(deviceHash(site, device) & s.mask)
}

func (s *Store) shardFor(site, device string) *shard {
	return s.shards[deviceHash(site, device)&s.mask]
}

func (s *Store) shardForKey(key string) *shard {
	return s.shards[fnv1aString(uint32(fnvOffset32), key[:keyDevicePrefix(key)])&s.mask]
}

// Append stores one record.
func (s *Store) Append(r obs.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	sh := s.shardFor(r.Site, r.Device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.appendLocked(r, s.maxPoints)
	return nil
}

// appendLocked stores one already-validated record. Callers hold sh.mu.
func (sh *shard) appendLocked(r obs.Record, maxPoints int) {
	key := r.Key()
	ser, ok := sh.series[key]
	if !ok {
		ser = &series{
			site:   r.Site,
			device: r.Device,
			metric: r.Metric,
			buf:    make([]Point, maxPoints),
		}
		sh.series[key] = ser
		devKey := r.Site + "/" + r.Device
		sh.byDevice[devKey] = insertSorted(sh.byDevice[devKey], key)
		sh.byMetric[r.Metric] = insertSorted(sh.byMetric[r.Metric], key)
	}
	ser.append(Point{Step: r.Step, Time: r.Time, Value: r.Value})
	sh.appends++
}

// AppendBatch stores every record of a batch, stopping at the first
// invalid record (records before it are stored). The batch is split per
// stripe: each touched shard's lock is taken exactly once, covering all
// of the batch's records that hash to it, so a classifier draining a
// single-device collector batch still pays one lock acquisition.
func (s *Store) AppendBatch(b *obs.Batch) error {
	// Validate the storable prefix first so the per-shard passes below
	// need no error handling inside the locks.
	n := len(b.Records)
	var invalid error
	for i := range b.Records {
		if err := b.Records[i].Validate(); err != nil {
			invalid = fmt.Errorf("record %d: %w", i, err)
			n = i
			break
		}
	}
	// One pass per touched shard: for each not-yet-visited stripe, lock
	// it once and store every prefix record it owns. The visited set is
	// a stack bitmap (MaxShards bits), so the common single-device batch
	// does one scan under one lock with zero extra allocation.
	var visited [MaxShards / 64]uint64
	for i := 0; i < n; i++ {
		idx := s.ShardIndex(b.Records[i].Site, b.Records[i].Device)
		if visited[idx/64]&(1<<(idx%64)) != 0 {
			continue
		}
		visited[idx/64] |= 1 << (idx % 64)
		sh := s.shards[idx]
		sh.mu.Lock()
		for j := i; j < n; j++ {
			if s.ShardIndex(b.Records[j].Site, b.Records[j].Device) == idx {
				sh.appendLocked(b.Records[j], s.maxPoints)
			}
		}
		sh.mu.Unlock()
	}
	return invalid
}

func insertSorted(list []string, key string) []string {
	i := sort.SearchStrings(list, key)
	if i < len(list) && list[i] == key {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = key
	return list
}

// Latest returns the most recent point of a series.
func (s *Store) Latest(key string) (Point, bool) {
	sh := s.shardForKey(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[key]
	if !ok {
		return Point{}, false
	}
	return ser.latest()
}

// Window returns the most recent n points of a series, oldest first.
// Only the requested tail is copied under the shard lock.
func (s *Store) Window(key string, n int) []Point {
	sh := s.shardForKey(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[key]
	if !ok {
		return nil
	}
	return ser.tail(n)
}

// Range returns the points with fromStep <= Step <= toStep, oldest
// first. Only matching points are copied under the shard lock.
func (s *Store) Range(key string, fromStep, toStep int) []Point {
	sh := s.shardForKey(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[key]
	if !ok {
		return nil
	}
	return ser.stepRange(fromStep, toStep)
}

// Keys lists all series keys, sorted — a k-way merge of the shards'
// key sets.
func (s *Store) Keys() []string {
	lists := make([][]string, 0, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.RLock()
		keys := make([]string, 0, len(sh.series))
		for k := range sh.series {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
		sort.Strings(keys)
		lists = append(lists, keys)
	}
	return mergeSorted(lists)
}

// SeriesForDevice returns the series keys of one device, sorted. A
// device's series co-locate, so this reads exactly one shard.
func (s *Store) SeriesForDevice(site, device string) []string {
	sh := s.shardFor(site, device)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]string(nil), sh.byDevice[site+"/"+device]...)
}

// SeriesForMetric returns the series keys carrying a metric, sorted —
// a k-way merge of the shards' (already sorted) metric indexes.
func (s *Store) SeriesForMetric(metric string) []string {
	lists := make([][]string, 0, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.RLock()
		if keys := sh.byMetric[metric]; len(keys) > 0 {
			lists = append(lists, append([]string(nil), keys...))
		}
		sh.mu.RUnlock()
	}
	return mergeSorted(lists)
}

// Devices lists "site/device" identifiers present in the store, sorted.
func (s *Store) Devices() []string {
	lists := make([][]string, 0, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.RLock()
		devs := make([]string, 0, len(sh.byDevice))
		for k := range sh.byDevice {
			devs = append(devs, k)
		}
		sh.mu.RUnlock()
		sort.Strings(devs)
		lists = append(lists, devs)
	}
	return mergeSorted(lists)
}

// mergeSorted k-way merges sorted string slices into one sorted slice.
// The inputs are disjoint (shards partition the key space), so no
// deduplication is needed. Nil when every input is empty.
func mergeSorted(lists [][]string) []string {
	// Drop empties; the common cases are zero or one non-empty list.
	live := lists[:0]
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
			total += len(l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]string, 0, total)
	heads := make([]int, len(live))
	for len(out) < total {
		best := -1
		for i, l := range live {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || l[heads[i]] < live[best][heads[best]] {
				best = i
			}
		}
		out = append(out, live[best][heads[best]])
		heads[best]++
	}
	return out
}

// Stats returns (series count, total appends), summed over shards.
func (s *Store) Stats() (seriesCount int, appends uint64) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		seriesCount += len(sh.series)
		appends += sh.appends
		sh.mu.RUnlock()
	}
	return seriesCount, appends
}

// ShardStat is one stripe's census row.
type ShardStat struct {
	Series  int    `json:"series"`
	Appends uint64 `json:"appends"`
}

// ShardStats returns the per-stripe census, indexed by shard. The
// per-shard telemetry gauges and the gridctl top balance line read
// skew from this.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		out[i] = s.ShardStat(i)
	}
	return out
}

// ShardStat returns one stripe's census row, locking only that stripe.
func (s *Store) ShardStat(i int) ShardStat {
	sh := s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return ShardStat{Series: len(sh.series), Appends: sh.appends}
}

// ParseKey splits a series key into site, device and metric.
func ParseKey(key string) (site, device, metric string, err error) {
	parts := strings.SplitN(key, "/", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", "", fmt.Errorf("store: malformed series key %q", key)
	}
	return parts[0], parts[1], parts[2], nil
}
