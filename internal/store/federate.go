package store

// Federation is a read-side view over the per-partition stores of a
// partitioned classifier grid. Device-scoped queries (Latest, Window,
// Range, SeriesForDevice) route to the partition owning the device;
// cross-domain queries (Keys, Devices, SeriesForMetric, Stats) fan out
// across every partition and merge — the federated query path the L3
// analyzer runs its grid-wide correlations over.
//
// A Federation holds no locks of its own: each partition store is
// internally synchronized, so federated reads are as concurrent as the
// partitions themselves.
type Federation struct {
	parts []*Store
}

// PartitionIndex maps a device to its owning partition out of n — the
// same FNV-1a("site/device") digest the store's lock stripes use, so
// the collector router, the classifier partitions, and the federation
// all agree on ownership.
func PartitionIndex(site, device string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(deviceHash(site, device) % uint32(n))
}

// NewFederation builds a federated view over partition stores. The
// slice order must match the partition numbering used for routing.
func NewFederation(parts []*Store) *Federation {
	return &Federation{parts: parts}
}

// Partitions returns the number of member stores.
func (f *Federation) Partitions() int { return len(f.parts) }

// Partition returns member i for tooling and tests.
func (f *Federation) Partition(i int) (*Store, bool) {
	if i < 0 || i >= len(f.parts) {
		return nil, false
	}
	return f.parts[i], true
}

func (f *Federation) partForKey(key string) *Store {
	if len(f.parts) == 1 {
		return f.parts[0]
	}
	h := fnv1aString(uint32(fnvOffset32), key[:keyDevicePrefix(key)])
	return f.parts[h%uint32(len(f.parts))]
}

// Latest reads from the partition owning the series' device.
func (f *Federation) Latest(key string) (Point, bool) {
	return f.partForKey(key).Latest(key)
}

// Window reads from the partition owning the series' device.
func (f *Federation) Window(key string, n int) []Point {
	return f.partForKey(key).Window(key, n)
}

// Range reads from the partition owning the series' device.
func (f *Federation) Range(key string, fromStep, toStep int) []Point {
	return f.partForKey(key).Range(key, fromStep, toStep)
}

// SeriesForDevice routes to the partition owning the device.
func (f *Federation) SeriesForDevice(site, device string) []string {
	return f.parts[PartitionIndex(site, device, len(f.parts))].SeriesForDevice(site, device)
}

// SeriesForMetric fans the query across every partition and merges the
// sorted results — partitions are disjoint by device, so the merge
// needs no deduplication.
func (f *Federation) SeriesForMetric(metric string) []string {
	lists := make([][]string, len(f.parts))
	for i, p := range f.parts {
		lists[i] = p.SeriesForMetric(metric)
	}
	return mergeSorted(lists)
}

// Keys lists every series key across all partitions, sorted.
func (f *Federation) Keys() []string {
	lists := make([][]string, len(f.parts))
	for i, p := range f.parts {
		lists[i] = p.Keys()
	}
	return mergeSorted(lists)
}

// Devices lists every "site/device" across all partitions, sorted.
func (f *Federation) Devices() []string {
	lists := make([][]string, len(f.parts))
	for i, p := range f.parts {
		lists[i] = p.Devices()
	}
	return mergeSorted(lists)
}

// Stats sums series and append counts over all partitions.
func (f *Federation) Stats() (seriesCount int, appends uint64) {
	for _, p := range f.parts {
		s, a := p.Stats()
		seriesCount += s
		appends += a
	}
	return seriesCount, appends
}
