package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"agentgrid/internal/obs"
)

func TestNormalizeShards(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
		{256, 256}, {257, MaxShards}, {1 << 20, MaxShards},
	}
	for _, c := range cases {
		if got := NewSharded(4, c.in).ShardCount(); got != c.want {
			t.Errorf("NewSharded(_, %d).ShardCount() = %d, want %d", c.in, got, c.want)
		}
	}
}

// Every series of a device lands on the device's shard: co-location is
// what lets SeriesForDevice and single-device batches touch one stripe.
func TestDeviceSeriesColocate(t *testing.T) {
	s := NewSharded(8, 16)
	for d := 0; d < 50; d++ {
		dev := fmt.Sprintf("h%02d", d)
		want := s.ShardIndex("site1", dev)
		for m := 0; m < 4; m++ {
			if err := s.Append(rec(dev, fmt.Sprintf("m%d", m), 1, 1)); err != nil {
				t.Fatal(err)
			}
		}
		for _, key := range s.SeriesForDevice("site1", dev) {
			site, device, _, err := ParseKey(key)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.ShardIndex(site, device); got != want {
				t.Fatalf("series %s on shard %d, device owns %d", key, got, want)
			}
		}
	}
	// The stripes together hold exactly the global census.
	total := 0
	for _, st := range s.ShardStats() {
		total += st.Series
	}
	if n, _ := s.Stats(); n != total || n != 200 {
		t.Fatalf("stripe census %d != Stats %d (want 200)", total, n)
	}
}

// Property: every cross-shard merged query on a 16-shard store (and on
// a 4-partition federation over 16-shard stores) answers exactly like
// the single-mutex 1-shard oracle fed the same records.
func TestShardedQueriesMatchOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		oracle := NewSharded(8, 1)
		sharded := NewSharded(8, 16)
		parts := make([]*Store, 4)
		for i := range parts {
			parts[i] = NewSharded(8, 16)
		}
		fed := NewFederation(parts)

		devices := make([]string, 1+r.Intn(20))
		for i := range devices {
			devices[i] = fmt.Sprintf("dev-%02d", r.Intn(30))
		}
		metrics := []string{"cpu.util", "mem.free", "if.in.1"}
		n := 1 + r.Intn(300)
		for i := 0; i < n; i++ {
			rc := rec(devices[r.Intn(len(devices))], metrics[r.Intn(len(metrics))], i, r.Float64())
			if oracle.Append(rc) != nil || sharded.Append(rc) != nil {
				return false
			}
			if parts[PartitionIndex(rc.Site, rc.Device, 4)].Append(rc) != nil {
				return false
			}
		}

		same := func(a, b []string) bool {
			return len(a) == len(b) && (len(a) == 0 || reflect.DeepEqual(a, b))
		}
		if !same(oracle.Keys(), sharded.Keys()) || !same(oracle.Keys(), fed.Keys()) {
			return false
		}
		if !same(oracle.Devices(), sharded.Devices()) || !same(oracle.Devices(), fed.Devices()) {
			return false
		}
		for _, m := range metrics {
			if !same(oracle.SeriesForMetric(m), sharded.SeriesForMetric(m)) ||
				!same(oracle.SeriesForMetric(m), fed.SeriesForMetric(m)) {
				return false
			}
		}
		for _, dev := range devices {
			if !same(oracle.SeriesForDevice("site1", dev), sharded.SeriesForDevice("site1", dev)) ||
				!same(oracle.SeriesForDevice("site1", dev), fed.SeriesForDevice("site1", dev)) {
				return false
			}
		}
		for _, key := range oracle.Keys() {
			op, ook := oracle.Latest(key)
			sp, sok := sharded.Latest(key)
			fp, fok := fed.Latest(key)
			if ook != sok || ook != fok || op != sp || op != fp {
				return false
			}
			if !reflect.DeepEqual(oracle.Window(key, 5), sharded.Window(key, 5)) ||
				!reflect.DeepEqual(oracle.Window(key, 5), fed.Window(key, 5)) {
				return false
			}
			if !reflect.DeepEqual(oracle.Range(key, 10, 200), sharded.Range(key, 10, 200)) ||
				!reflect.DeepEqual(oracle.Range(key, 10, 200), fed.Range(key, 10, 200)) {
				return false
			}
		}
		os1, oa := oracle.Stats()
		ss, sa := sharded.Stats()
		fs, fa := fed.Stats()
		return os1 == ss && os1 == fs && oa == sa && oa == fa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A multi-device batch is split per stripe with one lock acquisition
// per touched shard; the stored result is indistinguishable from
// per-record appends.
func TestAppendBatchSpansShards(t *testing.T) {
	s := NewSharded(16, 16)
	b := &obs.Batch{Collector: "c"}
	for d := 0; d < 40; d++ {
		b.Records = append(b.Records, rec(fmt.Sprintf("h%02d", d), "cpu.util", 1, float64(d)))
	}
	if err := s.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if n, appends := s.Stats(); n != 40 || appends != 40 {
		t.Fatalf("Stats = %d series, %d appends", n, appends)
	}
	for d := 0; d < 40; d++ {
		key := fmt.Sprintf("site1/h%02d/cpu.util", d)
		if p, ok := s.Latest(key); !ok || p.Value != float64(d) {
			t.Fatalf("Latest(%s) = %+v, %v", key, p, ok)
		}
	}
	// An invalid record mid-batch stores the prefix and reports the
	// offending index — same contract as the single-mutex store.
	bad := &obs.Batch{Collector: "c", Records: []obs.Record{
		rec("x1", "m", 1, 1), {Metric: "m"}, rec("x2", "m", 1, 1),
	}}
	if err := s.AppendBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if _, ok := s.Latest("site1/x1/m"); !ok {
		t.Fatal("valid prefix not stored")
	}
	if _, ok := s.Latest("site1/x2/m"); ok {
		t.Fatal("record after invalid one stored")
	}
}

// Concurrent writers spread over the stripes plus cross-shard readers:
// the -race gate for the per-shard locking, and the census must add up.
func TestConcurrentShardedAppends(t *testing.T) {
	s := NewSharded(64, 16)
	const writers, perWriter = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("h%02d", w)
			b := &obs.Batch{Collector: "c", Records: make([]obs.Record, 2)}
			for i := 0; i < perWriter; i++ {
				b.Records[0] = rec(dev, "cpu.util", i, float64(i))
				b.Records[1] = rec(dev, "mem.free", i, float64(i))
				if err := s.AppendBatch(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s.Keys()
			s.SeriesForMetric("cpu.util")
			s.Devices()
			s.ShardStats()
		}
	}()
	wg.Wait()
	<-done
	n, appends := s.Stats()
	if n != writers*2 || appends != writers*perWriter*2 {
		t.Fatalf("Stats = %d series, %d appends", n, appends)
	}
	var stripeAppends uint64
	for _, st := range s.ShardStats() {
		stripeAppends += st.Appends
	}
	if stripeAppends != appends {
		t.Fatalf("stripe appends %d != total %d", stripeAppends, appends)
	}
}
