package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"agentgrid/internal/obs"
)

// Snapshot is a serializable dump of a store, used for replica repair
// and cold starts.
type Snapshot struct {
	MaxPoints int                `json:"max_points"`
	Series    map[string][]Point `json:"series"`
}

// Snapshot captures the store's contents, one shard at a time. Each
// shard is internally consistent; the snapshot is not atomic across
// shards (writes racing a snapshot may land in an already-copied or a
// not-yet-copied shard). Replica repair tolerates this: the replica
// set's own lock excludes writers during Repair.
func (s *Store) Snapshot() *Snapshot {
	snap := &Snapshot{MaxPoints: s.maxPoints, Series: make(map[string][]Point)}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for key, ser := range sh.series {
			snap.Series[key] = ser.points()
		}
		sh.mu.RUnlock()
	}
	return snap
}

// Restore replaces the store's contents with the snapshot.
func (s *Store) Restore(snap *Snapshot) error {
	if snap == nil {
		return errors.New("store: nil snapshot")
	}
	// Validate and bucket by owning shard outside any lock, so a
	// malformed key fails the restore before any shard is cleared.
	type restored struct {
		ser *series
		key string
	}
	buckets := make([][]restored, len(s.shards))
	for key, pts := range snap.Series {
		site, dev, metric, err := ParseKey(key)
		if err != nil {
			return err
		}
		ser := &series{site: site, device: dev, metric: metric, buf: make([]Point, s.maxPoints)}
		for _, p := range pts {
			ser.append(p)
		}
		idx := s.ShardIndex(site, dev)
		buckets[idx] = append(buckets[idx], restored{ser: ser, key: key})
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.series = make(map[string]*series, len(buckets[i]))
		sh.byDevice = make(map[string][]string)
		sh.byMetric = make(map[string][]string)
		for _, r := range buckets[i] {
			sh.series[r.key] = r.ser
			devKey := r.ser.site + "/" + r.ser.device
			sh.byDevice[devKey] = insertSorted(sh.byDevice[devKey], r.key)
			sh.byMetric[r.ser.metric] = insertSorted(sh.byMetric[r.ser.metric], r.key)
		}
		sh.mu.Unlock()
	}
	return nil
}

// MarshalSnapshot encodes a snapshot for shipping between replicas.
func MarshalSnapshot(snap *Snapshot) ([]byte, error) {
	return json.Marshal(snap)
}

// UnmarshalSnapshot decodes a snapshot.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	return &snap, nil
}

// ReplicaSet fans writes out to every live replica and serves reads from
// the first live one — the storage-improvement extension the paper's
// future work calls for. Replicas can be marked failed and later
// repaired from a healthy peer.
type ReplicaSet struct {
	mu       sync.RWMutex
	replicas []*Store // guarded by mu
	alive    []bool   // guarded by mu
}

// NewReplicaSet builds a replica set over n fresh stores.
func NewReplicaSet(n, maxPoints int) (*ReplicaSet, error) {
	if n < 1 {
		return nil, errors.New("store: replica set needs at least one replica")
	}
	rs := &ReplicaSet{
		replicas: make([]*Store, n),
		alive:    make([]bool, n),
	}
	for i := range rs.replicas {
		rs.replicas[i] = New(maxPoints)
		rs.alive[i] = true
	}
	return rs, nil
}

// ErrNoReplica means every replica is down.
var ErrNoReplica = errors.New("store: no live replica")

// Append writes to every live replica.
func (rs *ReplicaSet) Append(r obs.Record) error {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	wrote := false
	for i, st := range rs.replicas {
		if !rs.alive[i] {
			continue
		}
		if err := st.Append(r); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		return ErrNoReplica
	}
	return nil
}

// AppendBatch writes a whole batch to every live replica, each taking
// its write lock once. Mirrors Store.AppendBatch semantics: the first
// invalid record stops the write, and records before it are stored on
// every replica that was reached.
func (rs *ReplicaSet) AppendBatch(b *obs.Batch) error {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	wrote := false
	for i, st := range rs.replicas {
		if !rs.alive[i] {
			continue
		}
		if err := st.AppendBatch(b); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		return ErrNoReplica
	}
	return nil
}

// primaryLocked returns the first live replica. Callers hold rs.mu.
func (rs *ReplicaSet) primaryLocked() (*Store, error) {
	for i, st := range rs.replicas {
		if rs.alive[i] {
			return st, nil
		}
	}
	return nil, ErrNoReplica
}

// Latest reads from the first live replica.
func (rs *ReplicaSet) Latest(key string) (Point, bool, error) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	st, err := rs.primaryLocked()
	if err != nil {
		return Point{}, false, err
	}
	p, ok := st.Latest(key)
	return p, ok, nil
}

// Window reads from the first live replica.
func (rs *ReplicaSet) Window(key string, n int) ([]Point, error) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	st, err := rs.primaryLocked()
	if err != nil {
		return nil, err
	}
	return st.Window(key, n), nil
}

// Fail marks a replica dead (fault injection / detected crash).
func (rs *ReplicaSet) Fail(i int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if i < 0 || i >= len(rs.replicas) {
		return fmt.Errorf("store: no replica %d", i)
	}
	rs.alive[i] = false
	return nil
}

// Repair brings a dead replica back by copying a snapshot from the first
// live peer, then marks it live again.
func (rs *ReplicaSet) Repair(i int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if i < 0 || i >= len(rs.replicas) {
		return fmt.Errorf("store: no replica %d", i)
	}
	src, err := rs.primaryLocked()
	if err != nil || src == rs.replicas[i] {
		// No healthy peer to copy from (or the replica is itself the
		// first candidate): revive it with the data it already has.
		rs.alive[i] = true
		return nil
	}
	// Fresh store avoids carrying stale points written before failure;
	// keep the replica's stripe count so repair preserves its geometry.
	st := NewSharded(rs.replicas[i].maxPoints, len(rs.replicas[i].shards))
	if err := st.Restore(src.Snapshot()); err != nil {
		return err
	}
	rs.replicas[i] = st
	rs.alive[i] = true
	return nil
}

// LiveCount returns how many replicas are live.
func (rs *ReplicaSet) LiveCount() int {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	n := 0
	for _, a := range rs.alive {
		if a {
			n++
		}
	}
	return n
}

// Replica exposes replica i for verification in tests and tooling.
func (rs *ReplicaSet) Replica(i int) (*Store, bool) {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	if i < 0 || i >= len(rs.replicas) {
		return nil, false
	}
	return rs.replicas[i], true
}
