package store

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"agentgrid/internal/obs"
)

func TestAppendBatchPrefixSemantics(t *testing.T) {
	// The first invalid record stops the batch with its index in the
	// error; records before it are stored, records after it are not.
	s := New(16)
	b := &obs.Batch{Collector: "c", Records: []obs.Record{
		rec("h1", "cpu.util", 1, 10),
		rec("h2", "cpu.util", 1, 20),
		rec("", "cpu.util", 1, 30),
		rec("h3", "cpu.util", 1, 40),
	}}
	err := s.AppendBatch(b)
	if !errors.Is(err, obs.ErrNoDevice) {
		t.Fatalf("AppendBatch = %v, want ErrNoDevice", err)
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("error does not name the failing record: %v", err)
	}
	if n, appends := s.Stats(); n != 2 || appends != 2 {
		t.Fatalf("Stats after partial batch = %d series, %d appends", n, appends)
	}
	if _, ok := s.Latest("site1/h3/cpu.util"); ok {
		t.Fatal("record after the invalid one was stored")
	}
}

func TestAppendBatchMatchesAppend(t *testing.T) {
	// Batched and per-record ingest of the same records leave
	// identical stores.
	var records []obs.Record
	for d := 0; d < 4; d++ {
		for step := 1; step <= 8; step++ {
			records = append(records, rec(fmt.Sprintf("h%d", d), "cpu.util", step, float64(step)))
			records = append(records, rec(fmt.Sprintf("h%d", d), "mem.free", step, float64(100-step)))
		}
	}
	one, batch := New(16), New(16)
	for _, r := range records {
		if err := one.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.AppendBatch(&obs.Batch{Collector: "c", Records: records}); err != nil {
		t.Fatal(err)
	}
	n1, a1 := one.Stats()
	n2, a2 := batch.Stats()
	if n1 != n2 || a1 != a2 {
		t.Fatalf("stats diverge: (%d,%d) vs (%d,%d)", n1, a1, n2, a2)
	}
	for _, key := range one.Keys() {
		w1, w2 := one.Window(key, 100), batch.Window(key, 100)
		if len(w1) != len(w2) {
			t.Fatalf("%s: %d vs %d points", key, len(w1), len(w2))
		}
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("%s[%d]: %+v vs %+v", key, i, w1[i], w2[i])
			}
		}
	}
}

func TestReplicaSetAppendBatch(t *testing.T) {
	rs, err := NewReplicaSet(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	rs.Fail(1)
	b := &obs.Batch{Collector: "c", Records: []obs.Record{
		rec("h1", "cpu.util", 1, 10),
		rec("h2", "cpu.util", 1, 20),
	}}
	if err := rs.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st, _ := rs.Replica(i)
		n, _ := st.Stats()
		want := 2
		if i == 1 {
			want = 0 // dead replica missed the batch
		}
		if n != want {
			t.Fatalf("replica %d has %d series, want %d", i, n, want)
		}
	}
	rs.Fail(0)
	rs.Fail(2)
	if err := rs.AppendBatch(b); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("all-dead AppendBatch = %v, want ErrNoReplica", err)
	}
}

func TestAppendBatchConcurrent(t *testing.T) {
	// Concurrent batch writers and readers; meaningful under -race.
	s := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := &obs.Batch{Collector: "c", Records: []obs.Record{
					rec(fmt.Sprintf("h%d", w), "cpu.util", i, float64(i)),
					rec(fmt.Sprintf("h%d", w), "mem.free", i, float64(i)),
				}}
				if err := s.AppendBatch(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s.Keys()
			s.Stats()
			s.Window("site1/h0/cpu.util", 8)
		}
	}()
	wg.Wait()
	<-done
	if _, appends := s.Stats(); appends != 4*20*2 {
		t.Fatalf("appends = %d, want %d", appends, 4*20*2)
	}
}

// BenchmarkStoreAppendBatch compares per-record ingest (one lock
// acquisition per record) with batched ingest (one per batch) on a
// collector-sized batch.
func BenchmarkStoreAppendBatch(b *testing.B) {
	records := make([]obs.Record, 0, 128)
	for d := 0; d < 8; d++ {
		for step := 1; step <= 16; step++ {
			records = append(records, rec(fmt.Sprintf("h%d", d), "cpu.util", step, float64(step)))
		}
	}
	batch := &obs.Batch{Collector: "c", Records: records}
	b.Run("per-record", func(b *testing.B) {
		s := New(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range batch.Records {
				if err := s.Append(batch.Records[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		s := New(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
