package store

import (
	"errors"
	"math"
	"testing"
)

func pts(vals ...float64) []Point {
	out := make([]Point, len(vals))
	for i, v := range vals {
		out[i] = Point{Step: i + 1, Value: v}
	}
	return out
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAvgMinMax(t *testing.T) {
	w := pts(10, 20, 30, 40)
	if v, err := Avg(w); err != nil || !almost(v, 25) {
		t.Errorf("Avg = %v, %v", v, err)
	}
	if v, err := Min(w); err != nil || v != 10 {
		t.Errorf("Min = %v, %v", v, err)
	}
	if v, err := Max(w); err != nil || v != 40 {
		t.Errorf("Max = %v, %v", v, err)
	}
}

func TestAggEmptyWindow(t *testing.T) {
	for name, f := range map[string]func([]Point) (float64, error){
		"Avg": Avg, "Min": Min, "Max": Max, "Stddev": Stddev,
	} {
		if _, err := f(nil); !errors.Is(err, ErrEmptyWindow) {
			t.Errorf("%s(nil) = %v", name, err)
		}
	}
	if _, err := Rate(pts(1)); !errors.Is(err, ErrEmptyWindow) {
		t.Error("Rate with one point accepted")
	}
	if _, err := Trend(pts(1)); !errors.Is(err, ErrEmptyWindow) {
		t.Error("Trend with one point accepted")
	}
}

func TestRate(t *testing.T) {
	// Counter rising 100 per step over steps 1..5.
	w := pts(100, 200, 300, 400, 500)
	if v, err := Rate(w); err != nil || !almost(v, 100) {
		t.Errorf("Rate = %v, %v", v, err)
	}
	// Same step twice: undefined rate.
	same := []Point{{Step: 3, Value: 1}, {Step: 3, Value: 2}}
	if _, err := Rate(same); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("Rate same-step = %v", err)
	}
}

func TestStddev(t *testing.T) {
	if v, err := Stddev(pts(2, 4, 4, 4, 5, 5, 7, 9)); err != nil || !almost(v, 2) {
		t.Errorf("Stddev = %v, %v", v, err) // classic example: σ = 2
	}
	if v, _ := Stddev(pts(5, 5, 5)); !almost(v, 0) {
		t.Errorf("Stddev constant = %v", v)
	}
}

func TestTrend(t *testing.T) {
	// disk.free falling 4 MB per step.
	w := pts(100, 96, 92, 88)
	if v, err := Trend(w); err != nil || !almost(v, -4) {
		t.Errorf("Trend = %v, %v", v, err)
	}
	flat := pts(7, 7, 7, 7)
	if v, _ := Trend(flat); !almost(v, 0) {
		t.Errorf("Trend flat = %v", v)
	}
	// All points at the same step: degenerate.
	same := []Point{{Step: 1, Value: 1}, {Step: 1, Value: 5}}
	if _, err := Trend(same); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("Trend degenerate = %v", err)
	}
}
